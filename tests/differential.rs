//! Differential accuracy suite — the paper's emulator-vs-simulator
//! validation, plus the determinism contract of the parallel backend.
//!
//! ModelNet validates its emulation against ns-2 (Figure 5, Figure 12);
//! here the role of the independent reference is played by `mn_refsim`,
//! which shares no code with the emulation path. Two families of checks:
//!
//! 1. **Emulator vs. reference simulator.** Random distilled topologies and
//!    packet workloads run through `MultiCoreEmulator` at 1, 2 and 4 cores;
//!    per-packet delivery times must land inside the analytic window the
//!    reference model predicts (propagation + transmission, plus at most
//!    one scheduler tick per hop), hop counts must match the reference
//!    route hop-for-hop, and loss-free workloads must be drop-free on both
//!    sides. A congestion workload additionally pins steady-state
//!    throughput to the reference's max-min fair share.
//! 2. **Sequential vs. parallel bit-identity.** The same random workloads
//!    run through the threaded `ParallelEmulator`; delivery streams
//!    (order, ids, times, hops, accumulated error) and per-core counter
//!    totals must be *exactly* equal to the sequential backend's.

mod common;

use proptest::prelude::*;

use common::arb_unique_path_topology;
use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator, ParallelEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_refsim::{max_min_fair_share, FlowSpec};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::{NodeId, Topology};
use mn_util::{DataRate, SimDuration, SimTime};

fn tcp_packet(id: u64, src: VnId, dst: VnId, payload: u32, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            payload_len: payload,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

fn udp_packet(id: u64, src: VnId, dst: VnId, payload: u32, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: payload,
            seq: id,
        },
        now,
    )
}

fn build_emulator(topo: &Topology, cores: usize, seed: u64) -> (MultiCoreEmulator, Binding) {
    let d = distill(topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
    let pod = greedy_k_clusters(&d, cores, seed);
    let emu = MultiCoreEmulator::new(
        &d,
        pod,
        matrix,
        &binding,
        HardwareProfile::unconstrained(),
        seed,
    );
    (emu, binding)
}

fn drain_to_idle(emu: &mut MultiCoreEmulator, from: SimTime) -> Vec<mn_emucore::Delivery> {
    let mut now = from;
    let mut all = Vec::new();
    for _ in 0..100_000 {
        let Some(t) = emu.next_wakeup() else { break };
        now = now.max(t);
        all.extend(emu.advance(now));
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Uncongested per-packet differential: every delivery lands inside the
    /// analytic window predicted by the reference simulator's route, with
    /// the reference's hop count, on 1, 2 and 4 cores, with zero drops —
    /// and core count shifts delivery times by at most one tick per hop.
    #[test]
    fn emulator_delivery_times_agree_with_the_reference_model(
        topo in arb_unique_path_topology(Just(0.0)),
    ) {
        let payload: u32 = 1000;
        let clients: Vec<NodeId> = topo.client_nodes().collect();
        let flows: Vec<FlowSpec> = (0..clients.len())
            .map(|i| FlowSpec {
                src: clients[i],
                dst: clients[(i + 1) % clients.len()],
            })
            .collect();
        // Reference model: unique latency-shortest routes, max-min rates.
        // Each flow is referenced alone (the emulator workload below is
        // serial, one packet in flight at a time), so the reference rate is
        // the path's bottleneck bandwidth.
        let reference: Vec<_> = flows
            .iter()
            .map(|&flow| max_min_fair_share(&topo, &[flow]).remove(0))
            .collect();
        let tick = SimDuration::from_micros(100);
        // (per flow, per core count) delivery times for the skew check.
        let mut times: Vec<Vec<SimTime>> = vec![Vec::new(); flows.len()];
        for cores in [1usize, 2, 4] {
            let (mut emu, binding) = build_emulator(&topo, cores, 7);
            for (fi, flow) in flows.iter().enumerate() {
                let src = binding.vn_at(flow.src).expect("client is bound");
                let dst = binding.vn_at(flow.dst).expect("client is bound");
                // One packet at a time, emulator drained to idle between
                // packets: zero queueing, so the analytic window applies.
                let pkt = tcp_packet(fi as u64, src, dst, payload, SimTime::ZERO);
                let size = pkt.size;
                let outcome = emu.submit(SimTime::ZERO, pkt);
                prop_assert!(outcome.is_accepted(), "loss-free link must accept");
                let deliveries = drain_to_idle(&mut emu, SimTime::ZERO);
                prop_assert_eq!(deliveries.len(), 1, "no drops on loss-free links");
                let d = &deliveries[0];
                let reference_flow = &reference[fi];
                prop_assert_eq!(d.hops, reference_flow.hops,
                    "emulated route length matches the reference route");
                let delay = d.core_delay();
                let bottleneck_tx = reference_flow.rate.transmission_time(size);
                let lower = reference_flow.latency + bottleneck_tx;
                let upper = reference_flow.latency
                    + bottleneck_tx * d.hops as u64
                    + tick * (d.hops as u64 + 1);
                prop_assert!(delay >= lower,
                    "cores={} flow={} delay {} below reference window start {}",
                    cores, fi, delay, lower);
                prop_assert!(delay <= upper,
                    "cores={} flow={} delay {} above reference window end {}",
                    cores, fi, delay, upper);
                times[fi].push(d.delivered_at);
            }
            let stats = emu.total_stats();
            prop_assert_eq!(stats.packets_delivered, flows.len() as u64);
            prop_assert_eq!(stats.physical_drops(), 0);
        }
        // Hop-for-hop agreement across core counts: same packets, same
        // routes, delivery-time skew bounded by one tick per core crossing
        // (at most one per hop) plus the tick-quantised delivery.
        for (fi, per_core) in times.iter().enumerate() {
            let hops = reference[fi].hops as u64;
            for pair in per_core.windows(2) {
                let skew = if pair[0] >= pair[1] { pair[0] - pair[1] } else { pair[1] - pair[0] };
                prop_assert!(skew <= tick * (hops + 1),
                    "flow {} skew {} exceeds a tick per hop", fi, skew);
            }
        }
    }

    /// Sequential-vs-parallel bit-identity on random topologies and random
    /// burst workloads: the threaded backend must reproduce the sequential
    /// delivery stream *exactly* — order, ids, times, hops, accumulated
    /// error — and the merged per-thread counters must equal the
    /// sequential totals.
    #[test]
    fn parallel_backend_is_bit_identical_on_random_workloads(
        topo in arb_unique_path_topology(Just(0.0)),
        bursts in prop::collection::vec(
            (0usize..64, 0usize..64, 0u64..20_000, 40u32..1460),
            1..40,
        ),
        cores_choice in 0usize..3,
    ) {
        let cores = [1usize, 2, 4][cores_choice];
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
        let pod = greedy_k_clusters(&d, cores, 11);
        let build = || MultiCoreEmulator::new(
            &d,
            pod.clone(),
            matrix.clone(),
            &binding,
            HardwareProfile::unconstrained(),
            23,
        );
        let vns: Vec<VnId> = binding.vns().collect();
        // The identical driver schedule for both backends: interleaved
        // submits and advances at increasing times, then drain to idle.
        enum Step {
            Submit(SimTime, Packet),
            Advance(SimTime),
        }
        let mut schedule = Vec::new();
        let mut clock = 0u64;
        for (i, &(a, b, dt, payload)) in bursts.iter().enumerate() {
            clock += dt;
            let now = SimTime::from_micros(clock);
            let src = vns[a % vns.len()];
            let dst = vns[b % vns.len()];
            schedule.push(Step::Advance(now));
            schedule.push(Step::Submit(now, udp_packet(i as u64, src, dst, payload, now)));
        }
        type Record = (u64, SimTime, SimTime, usize, SimDuration);
        let record = |d: &mn_emucore::Delivery| {
            (d.packet.id.0, d.delivered_at, d.entered_at, d.hops, d.emulation_error)
        };
        // Sequential run.
        let mut seq = build();
        let mut seq_log: Vec<Record> = Vec::new();
        let mut seq_outcomes = Vec::new();
        for step in &schedule {
            match step {
                Step::Advance(now) => {
                    seq_log.extend(seq.advance(*now).iter().map(&record));
                }
                Step::Submit(now, pkt) => {
                    seq_outcomes.push(seq.submit(*now, *pkt));
                }
            }
        }
        let mut now = SimTime::from_micros(clock);
        for _ in 0..200_000 {
            let Some(t) = seq.next_wakeup() else { break };
            now = now.max(t);
            seq_log.extend(seq.advance(now).iter().map(&record));
        }
        let seq_stats = seq.total_stats();
        // Parallel run over the identical schedule.
        let mut par = ParallelEmulator::from_sequential(build());
        let mut par_log: Vec<Record> = Vec::new();
        let mut par_outcomes = Vec::new();
        for step in &schedule {
            match step {
                Step::Advance(now) => {
                    par_log.extend(par.advance(*now).iter().map(&record));
                }
                Step::Submit(now, pkt) => {
                    par_outcomes.push(par.submit(*now, *pkt));
                }
            }
        }
        let mut now = SimTime::from_micros(clock);
        for _ in 0..200_000 {
            let Some(t) = par.next_wakeup() else { break };
            now = now.max(t);
            par_log.extend(par.advance(now).iter().map(&record));
        }
        prop_assert_eq!(seq_outcomes, par_outcomes, "submit outcomes diverge");
        prop_assert_eq!(seq_log, par_log, "delivery streams diverge");
        prop_assert_eq!(seq_stats, par.total_stats(), "counters diverge");
    }
}

/// Congested differential: two flows pushed at twice their fair share
/// through the paper's ring must settle at the reference simulator's
/// max-min allocation (the access links, 2 Mb/s each).
#[test]
fn congested_throughput_matches_reference_fair_share() {
    let topo = ring_topology(&RingParams {
        routers: 2,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let clients: Vec<NodeId> = topo.client_nodes().collect();
    // Cross-ring flows: client 0 -> client 2, client 1 -> client 3.
    let flows = [
        FlowSpec {
            src: clients[0],
            dst: clients[2],
        },
        FlowSpec {
            src: clients[1],
            dst: clients[3],
        },
    ];
    let reference = max_min_fair_share(&topo, &flows);
    for allocation in &reference {
        assert_eq!(allocation.rate, DataRate::from_mbps(2), "access-limited");
    }
    let (mut emu, binding) = build_emulator(&topo, 1, 3);
    let vn = |node| binding.vn_at(node).expect("client is bound");
    // Offer 4 Mb/s per flow: a 1000-byte datagram every 2 ms for 2 s.
    let payload: u32 = 1000;
    let mut id = 0u64;
    let mut delivered_payload = [0u64; 2];
    let horizon = SimTime::from_secs(2);
    let mut now = SimTime::ZERO;
    while now < horizon {
        for flow in &flows {
            let _ = emu.submit(
                now,
                udp_packet(id, vn(flow.src), vn(flow.dst), payload, now),
            );
            id += 1;
        }
        now += SimDuration::from_millis(2);
        for delivery in emu.advance(now) {
            let fi = if delivery.packet.flow.src == vn(flows[0].src) {
                0
            } else {
                1
            };
            delivered_payload[fi] += delivery.packet.header.payload_len() as u64;
        }
    }
    // Let the queues drain and count the tail.
    for delivery in drain_to_idle(&mut emu, now) {
        let fi = if delivery.packet.flow.src == vn(flows[0].src) {
            0
        } else {
            1
        };
        delivered_payload[fi] += delivery.packet.header.payload_len() as u64;
    }
    for (fi, &bytes) in delivered_payload.iter().enumerate() {
        let goodput_mbps = bytes as f64 * 8.0 / 2.0 / 1e6;
        let reference_mbps = reference[fi].rate.as_mbps_f64();
        assert!(
            goodput_mbps >= reference_mbps * 0.75 && goodput_mbps <= reference_mbps * 1.15,
            "flow {fi}: emulated goodput {goodput_mbps:.2} Mb/s should track \
             the reference fair share {reference_mbps:.2} Mb/s"
        );
    }
    // The 2x overload genuinely exercised queue-overflow drops.
    let stats = emu.total_stats();
    assert!(stats.packets_delivered < id, "overload must drop virtually");
    assert_eq!(stats.physical_drops(), 0, "drops are virtual, not physical");
}
