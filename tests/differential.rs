//! Differential accuracy suite — the paper's emulator-vs-simulator
//! validation, plus the determinism contract of the parallel backend.
//!
//! ModelNet validates its emulation against ns-2 (Figure 5, Figure 12);
//! here the role of the independent reference is played by `mn_refsim`,
//! which shares no code with the emulation path. Two families of checks:
//!
//! 1. **Emulator vs. reference simulator.** Random distilled topologies and
//!    packet workloads run through `MultiCoreEmulator` at 1, 2 and 4 cores;
//!    per-packet delivery times must land inside the analytic window the
//!    reference model predicts (propagation + transmission, plus at most
//!    one scheduler tick per hop), hop counts must match the reference
//!    route hop-for-hop, and loss-free workloads must be drop-free on both
//!    sides. A congestion workload additionally pins steady-state
//!    throughput to the reference's max-min fair share.
//! 2. **Sequential vs. parallel bit-identity.** The same random workloads
//!    run through the threaded `ParallelEmulator`; delivery streams
//!    (order, ids, times, hops, accumulated error) and per-core counter
//!    totals must be *exactly* equal to the sequential backend's.
//! 3. **Dynamics differential.** A failure/recovery schedule (plus a CBR
//!    cross-traffic episode) runs through both backends at 1, 2 and 4
//!    cores while the reference simulator replays the *same* schedule over
//!    the target topology (`mn_refsim::ScheduledTopology`); per-phase
//!    delivery windows, hop-for-hop route agreement and reachability must
//!    match the reference, and the two backends must stay bit-identical
//!    through every reconfiguration.

mod common;

use proptest::prelude::*;

use common::arb_unique_path_topology;
use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator, ParallelEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_refsim::{max_min_fair_share, FlowSpec};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::{NodeId, Topology};
use mn_util::{DataRate, SimDuration, SimTime};

fn tcp_packet(id: u64, src: VnId, dst: VnId, payload: u32, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            payload_len: payload,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

fn udp_packet(id: u64, src: VnId, dst: VnId, payload: u32, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: payload,
            seq: id,
        },
        now,
    )
}

fn build_emulator(topo: &Topology, cores: usize, seed: u64) -> (MultiCoreEmulator, Binding) {
    let d = distill(topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
    let pod = greedy_k_clusters(&d, cores, seed);
    let emu = MultiCoreEmulator::new(
        &d,
        pod,
        matrix,
        &binding,
        HardwareProfile::unconstrained(),
        seed,
    );
    (emu, binding)
}

fn drain_to_idle(emu: &mut MultiCoreEmulator, from: SimTime) -> Vec<mn_emucore::Delivery> {
    let mut now = from;
    let mut all = Vec::new();
    for _ in 0..100_000 {
        let Some(t) = emu.next_wakeup() else { break };
        now = now.max(t);
        all.extend(emu.advance(now));
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Uncongested per-packet differential: every delivery lands inside the
    /// analytic window predicted by the reference simulator's route, with
    /// the reference's hop count, on 1, 2 and 4 cores, with zero drops —
    /// and core count shifts delivery times by at most one tick per hop.
    #[test]
    fn emulator_delivery_times_agree_with_the_reference_model(
        topo in arb_unique_path_topology(Just(0.0)),
    ) {
        let payload: u32 = 1000;
        let clients: Vec<NodeId> = topo.client_nodes().collect();
        let flows: Vec<FlowSpec> = (0..clients.len())
            .map(|i| FlowSpec {
                src: clients[i],
                dst: clients[(i + 1) % clients.len()],
            })
            .collect();
        // Reference model: unique latency-shortest routes, max-min rates.
        // Each flow is referenced alone (the emulator workload below is
        // serial, one packet in flight at a time), so the reference rate is
        // the path's bottleneck bandwidth.
        let reference: Vec<_> = flows
            .iter()
            .map(|&flow| max_min_fair_share(&topo, &[flow]).remove(0))
            .collect();
        let tick = SimDuration::from_micros(100);
        // (per flow, per core count) delivery times for the skew check.
        let mut times: Vec<Vec<SimTime>> = vec![Vec::new(); flows.len()];
        for cores in [1usize, 2, 4] {
            let (mut emu, binding) = build_emulator(&topo, cores, 7);
            for (fi, flow) in flows.iter().enumerate() {
                let src = binding.vn_at(flow.src).expect("client is bound");
                let dst = binding.vn_at(flow.dst).expect("client is bound");
                // One packet at a time, emulator drained to idle between
                // packets: zero queueing, so the analytic window applies.
                let pkt = tcp_packet(fi as u64, src, dst, payload, SimTime::ZERO);
                let size = pkt.size;
                let outcome = emu.submit(SimTime::ZERO, pkt);
                prop_assert!(outcome.is_accepted(), "loss-free link must accept");
                let deliveries = drain_to_idle(&mut emu, SimTime::ZERO);
                prop_assert_eq!(deliveries.len(), 1, "no drops on loss-free links");
                let d = &deliveries[0];
                let reference_flow = &reference[fi];
                prop_assert_eq!(d.hops, reference_flow.hops,
                    "emulated route length matches the reference route");
                let delay = d.core_delay();
                let bottleneck_tx = reference_flow.rate.transmission_time(size);
                let lower = reference_flow.latency + bottleneck_tx;
                let upper = reference_flow.latency
                    + bottleneck_tx * d.hops as u64
                    + tick * (d.hops as u64 + 1);
                prop_assert!(delay >= lower,
                    "cores={} flow={} delay {} below reference window start {}",
                    cores, fi, delay, lower);
                prop_assert!(delay <= upper,
                    "cores={} flow={} delay {} above reference window end {}",
                    cores, fi, delay, upper);
                times[fi].push(d.delivered_at);
            }
            let stats = emu.total_stats();
            prop_assert_eq!(stats.packets_delivered, flows.len() as u64);
            prop_assert_eq!(stats.physical_drops(), 0);
        }
        // Hop-for-hop agreement across core counts: same packets, same
        // routes, delivery-time skew bounded by one tick per core crossing
        // (at most one per hop) plus the tick-quantised delivery.
        for (fi, per_core) in times.iter().enumerate() {
            let hops = reference[fi].hops as u64;
            for pair in per_core.windows(2) {
                let skew = if pair[0] >= pair[1] { pair[0] - pair[1] } else { pair[1] - pair[0] };
                prop_assert!(skew <= tick * (hops + 1),
                    "flow {} skew {} exceeds a tick per hop", fi, skew);
            }
        }
    }

    /// Sequential-vs-parallel bit-identity on random topologies and random
    /// burst workloads: the threaded backend must reproduce the sequential
    /// delivery stream *exactly* — order, ids, times, hops, accumulated
    /// error — and the merged per-thread counters must equal the
    /// sequential totals.
    #[test]
    fn parallel_backend_is_bit_identical_on_random_workloads(
        topo in arb_unique_path_topology(Just(0.0)),
        bursts in prop::collection::vec(
            (0usize..64, 0usize..64, 0u64..20_000, 40u32..1460),
            1..40,
        ),
        cores_choice in 0usize..3,
    ) {
        let cores = [1usize, 2, 4][cores_choice];
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
        let pod = greedy_k_clusters(&d, cores, 11);
        let build = || MultiCoreEmulator::new(
            &d,
            pod.clone(),
            matrix.clone(),
            &binding,
            HardwareProfile::unconstrained(),
            23,
        );
        let vns: Vec<VnId> = binding.vns().collect();
        // The identical driver schedule for both backends: interleaved
        // submits and advances at increasing times, then drain to idle.
        enum Step {
            Submit(SimTime, Packet),
            Advance(SimTime),
        }
        let mut schedule = Vec::new();
        let mut clock = 0u64;
        for (i, &(a, b, dt, payload)) in bursts.iter().enumerate() {
            clock += dt;
            let now = SimTime::from_micros(clock);
            let src = vns[a % vns.len()];
            let dst = vns[b % vns.len()];
            schedule.push(Step::Advance(now));
            schedule.push(Step::Submit(now, udp_packet(i as u64, src, dst, payload, now)));
        }
        type Record = (u64, SimTime, SimTime, usize, SimDuration);
        let record = |d: &mn_emucore::Delivery| {
            (d.packet.id.0, d.delivered_at, d.entered_at, d.hops, d.emulation_error)
        };
        // Sequential run.
        let mut seq = build();
        let mut seq_log: Vec<Record> = Vec::new();
        let mut seq_outcomes = Vec::new();
        for step in &schedule {
            match step {
                Step::Advance(now) => {
                    seq_log.extend(seq.advance(*now).iter().map(&record));
                }
                Step::Submit(now, pkt) => {
                    seq_outcomes.push(seq.submit(*now, *pkt));
                }
            }
        }
        let mut now = SimTime::from_micros(clock);
        for _ in 0..200_000 {
            let Some(t) = seq.next_wakeup() else { break };
            now = now.max(t);
            seq_log.extend(seq.advance(now).iter().map(&record));
        }
        let seq_stats = seq.total_stats();
        // Parallel run over the identical schedule.
        let mut par = ParallelEmulator::from_sequential(build());
        let mut par_log: Vec<Record> = Vec::new();
        let mut par_outcomes = Vec::new();
        for step in &schedule {
            match step {
                Step::Advance(now) => {
                    par_log.extend(par.advance(*now).unwrap().iter().map(&record));
                }
                Step::Submit(now, pkt) => {
                    par_outcomes.push(par.submit(*now, *pkt).unwrap());
                }
            }
        }
        let mut now = SimTime::from_micros(clock);
        for _ in 0..200_000 {
            let Some(t) = par.next_wakeup() else { break };
            now = now.max(t);
            par_log.extend(par.advance(now).unwrap().iter().map(&record));
        }
        prop_assert_eq!(seq_outcomes, par_outcomes, "submit outcomes diverge");
        prop_assert_eq!(seq_log, par_log, "delivery streams diverge");
        prop_assert_eq!(seq_stats, par.total_stats(), "counters diverge");
    }
}

/// The dynamics differential scenario: clients `a`, `b`, `c` over two stub
/// routers with distinct link latencies (unique shortest paths). `a-r1-b`
/// is the fast a↔b route; `r2` carries the detour and serves `c`.
///
/// Returns the topology plus the link ids of `a-r1` and `a-r2` (the links
/// the schedule fails) and the client nodes.
fn dynamics_scenario() -> (Topology, [mn_topology::LinkId; 2], [NodeId; 3]) {
    use mn_topology::{LinkAttrs, NodeKind};
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Client);
    let b = topo.add_node(NodeKind::Client);
    let c = topo.add_node(NodeKind::Client);
    let r1 = topo.add_node(NodeKind::Stub);
    let r2 = topo.add_node(NodeKind::Stub);
    let link = |ms: u64| LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(ms));
    let ar1 = topo.add_link(a, r1, link(1)).unwrap();
    topo.add_link(r1, b, link(2)).unwrap();
    let ar2 = topo.add_link(a, r2, link(4)).unwrap();
    topo.add_link(r2, b, link(5)).unwrap();
    topo.add_link(c, r2, link(16)).unwrap();
    (topo, [ar1, ar2], [a, b, c])
}

/// Failure/recovery schedule through Sequential, Threaded and refsim at
/// 1/2/4 cores: per-packet delivery windows and hop-for-hop route
/// agreement against the reference replaying the same schedule, plus
/// bit-identity of the probe records across backends.
#[test]
fn failure_recovery_schedule_agrees_with_reference_across_backends() {
    use mn_dynamics::{Schedule, ScheduleEngine};
    use mn_refsim::ScheduledTopology;
    use modelnet::EmulatorBackend;

    let (topo, [ar1, ar2], [a, b, c]) = dynamics_scenario();
    let d = distill(&topo, DistillationMode::HopByHop);
    let t = SimTime::from_millis;
    // Pipe/link pairs for the two links the schedule manipulates.
    let duplex = |link: mn_topology::LinkId| {
        let l = topo.link(link).unwrap();
        (
            d.find_pipe(l.a, l.b).unwrap(),
            d.find_pipe(l.b, l.a).unwrap(),
        )
    };
    let (p1f, p1r) = duplex(ar1);
    let (p2f, p2r) = duplex(ar2);
    // Two failures and two recoveries; between 200 and 300 ms both a↔b
    // paths are down and the pair is unreachable.
    let schedule = || {
        Schedule::new()
            .duplex_down(t(100), p1f, p1r)
            .duplex_down(t(200), p2f, p2r)
            .duplex_up(t(300), p1f, p1r)
            .duplex_up(t(400), p2f, p2r)
    };
    // The reference replays the same schedule over the target links.
    let reference = ScheduledTopology::new(topo.clone())
        .link_down(t(100), ar1)
        .link_down(t(200), ar2)
        .link_up(t(300), ar1)
        .link_up(t(400), ar2);
    // One probe per phase, on the pair the schedule affects and on a
    // control pair (`c -> b`) no event can touch.
    let probe_times = [t(50), t(150), t(250), t(350), t(450)];
    let payload: u32 = 1000;
    let tick = SimDuration::from_micros(100);

    type ProbeRecord = (SimTime, &'static str, Option<(SimTime, usize)>);
    let run = |cores: usize, threaded: bool| -> Vec<ProbeRecord> {
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
        let pod = greedy_k_clusters(&d, cores, 7);
        let seq = MultiCoreEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            5,
        );
        let mut backend = if threaded {
            EmulatorBackend::Threaded(ParallelEmulator::from_sequential(seq))
        } else {
            EmulatorBackend::Sequential(seq)
        };
        let mut engine = ScheduleEngine::new(d.clone(), schedule());
        let vn = |node| binding.vn_at(node).unwrap();
        let mut records = Vec::new();
        let mut id = 0u64;
        for &probe_at in &probe_times {
            // Apply every schedule event due before this probe.
            let _ = engine.apply_due(probe_at, &mut backend);
            for (label, src, dst) in [("a->b", vn(a), vn(b)), ("c->b", vn(c), vn(b))] {
                let pkt = udp_packet(id, src, dst, payload, probe_at);
                id += 1;
                let outcome = backend.submit(probe_at, pkt).unwrap();
                let mut delivered = None;
                if outcome.is_accepted() {
                    let mut deliveries = Vec::new();
                    let mut now = probe_at;
                    for _ in 0..100_000 {
                        let Some(next) = backend.next_wakeup() else {
                            break;
                        };
                        now = now.max(next);
                        backend.advance_into(now, &mut deliveries).unwrap();
                        if !deliveries.is_empty() {
                            break;
                        }
                    }
                    assert_eq!(deliveries.len(), 1, "{label} probe at {probe_at}");
                    delivered = Some((deliveries[0].delivered_at, deliveries[0].hops));
                }
                records.push((probe_at, label, delivered));
            }
        }
        records
    };

    for cores in [1usize, 2, 4] {
        let sequential = run(cores, false);
        let threaded = run(cores, true);
        assert_eq!(
            sequential, threaded,
            "{cores}-core probe records diverge across backends"
        );
        // Differential against the reference, phase by phase.
        for &(probe_at, label, delivered) in &sequential {
            let snapshot = reference.topology_at(probe_at);
            let (src, dst) = if label == "a->b" { (a, b) } else { (c, b) };
            let allocation = max_min_fair_share(&snapshot, &[FlowSpec { src, dst }]);
            let reference_flow = &allocation[0];
            match delivered {
                None => {
                    assert_eq!(
                        reference_flow.hops, 0,
                        "{label}@{probe_at}: emulator refused but reference routes"
                    );
                }
                Some((delivered_at, hops)) => {
                    assert!(
                        reference_flow.hops > 0,
                        "{label}@{probe_at}: emulator delivered but reference is unroutable"
                    );
                    assert_eq!(
                        hops, reference_flow.hops,
                        "{label}@{probe_at}: hop-for-hop route agreement"
                    );
                    // Wire size of the probes (headers included).
                    let size = udp_packet(0, VnId(0), VnId(1), payload, SimTime::ZERO).size;
                    let bottleneck_tx = reference_flow.rate.transmission_time(size);
                    let delay = delivered_at - probe_at;
                    let lower = reference_flow.latency + bottleneck_tx;
                    let upper = reference_flow.latency
                        + bottleneck_tx * hops as u64
                        + tick * (hops as u64 + 1);
                    assert!(
                        delay >= lower && delay <= upper,
                        "{label}@{probe_at}: delay {delay} outside reference window \
                         [{lower}, {upper}]"
                    );
                }
            }
        }
        // The control pair was never rerouted; the dynamic pair saw the
        // fast path, the detour, an outage, and the fast path again.
        let ab_hops: Vec<Option<usize>> = sequential
            .iter()
            .filter(|r| r.1 == "a->b")
            .map(|r| r.2.map(|(_, hops)| hops))
            .collect();
        assert_eq!(ab_hops, vec![Some(2), Some(2), None, Some(2), Some(2)]);
    }
}

/// CBR cross-traffic differential: a foreground flow sharing its
/// bottleneck with a scheduled CBR episode must track the reference's
/// fair share over the *reduced* capacity while the episode lasts.
#[test]
fn cbr_episode_tracks_reduced_reference_capacity() {
    use mn_dynamics::Schedule;
    use mn_pipe::CbrConfig;
    use mn_refsim::ScheduledTopology;
    use mn_topology::{LinkAttrs, NodeKind};
    use modelnet::EmulatorBackend;

    // One 10 Mb/s bottleneck path a - r - b.
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Client);
    let r = topo.add_node(NodeKind::Stub);
    let b = topo.add_node(NodeKind::Client);
    let fast = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
    topo.add_link(a, r, fast).unwrap();
    let rb = topo.add_link(r, b, fast).unwrap();
    let d = distill(&topo, DistillationMode::HopByHop);
    let bottleneck = d.find_pipe(r, b).unwrap();
    let cbr_rate = DataRate::from_mbps(5);
    let schedule = Schedule::new().cbr_start(
        SimTime::ZERO,
        bottleneck,
        CbrConfig::new(cbr_rate, mn_util::ByteSize::from_bytes(1000)),
    );
    // Reference: the r-b link keeps 5 of its 10 Mb/s.
    let reduced = LinkAttrs::new(DataRate::from_mbps(5), SimDuration::from_millis(1));
    let reference = ScheduledTopology::new(topo.clone()).set_link(SimTime::ZERO, rb, reduced);
    let allocation = max_min_fair_share(
        &reference.topology_at(SimTime::ZERO),
        &[FlowSpec { src: a, dst: b }],
    );
    let reference_mbps = allocation[0].rate.as_mbps_f64();
    assert!((reference_mbps - 5.0).abs() < 1e-9);

    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
    let seq =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 3);
    let mut backend = EmulatorBackend::Sequential(seq);
    let mut engine = mn_dynamics::ScheduleEngine::new(d.clone(), schedule);
    let _ = engine.apply_due(SimTime::ZERO, &mut backend);
    // Offer 8 Mb/s of foreground UDP for 2 s: a 1000-byte datagram every
    // millisecond.
    let src = binding.vn_at(a).unwrap();
    let dst = binding.vn_at(b).unwrap();
    let horizon = SimTime::from_secs(2);
    let mut now = SimTime::ZERO;
    let mut id = 0u64;
    let mut delivered_payload = 0u64;
    let mut deliveries = Vec::new();
    while now < horizon {
        let _ = backend.submit(now, udp_packet(id, src, dst, 1000, now));
        id += 1;
        now += SimDuration::from_millis(1);
        deliveries.clear();
        backend.advance_into(now, &mut deliveries).unwrap();
        delivered_payload += deliveries
            .iter()
            .map(|d| d.packet.header.payload_len() as u64)
            .sum::<u64>();
    }
    let goodput_mbps = delivered_payload as f64 * 8.0 / 2.0 / 1e6;
    assert!(
        goodput_mbps >= reference_mbps * 0.75 && goodput_mbps <= reference_mbps * 1.15,
        "foreground goodput {goodput_mbps:.2} Mb/s should track the reference \
         fair share {reference_mbps:.2} Mb/s under the CBR episode"
    );
    let stats = backend.total_stats();
    assert!(stats.cbr_injected > 1000, "the episode injected for 2 s");
    assert!(
        stats.packets_delivered < id,
        "13 Mb/s of aggregate load on a 10 Mb/s pipe must drop"
    );
}

/// Hybrid fluid/packet differential: bulk aggregates run as fluid flows
/// whose max-min share consumes pipe capacity, while foreground probes
/// stay packet-accurate in the residual. Three phases — demand-bounded
/// fluid, a mid-run resize that saturates the bottleneck, and flow removal
/// — each pinned against `mn_refsim::fluid_max_min` (fluid goodput, exact)
/// and `max_min_fair_share` over residual-capacity snapshots (foreground
/// delivery windows), at 1, 2 and 4 cores, with Sequential/Threaded
/// bit-identity throughout.
#[test]
fn hybrid_fluid_and_packet_traffic_agree_with_reference_across_backends() {
    use mn_refsim::{fluid_max_min, FluidSpec, ScheduledTopology};
    use mn_topology::{LinkAttrs, NodeKind};
    use modelnet::EmulatorBackend;

    // a - r - b at 10 Mb/s carries the bulk aggregates; probe client c
    // shares only the r-b bottleneck with them.
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Client);
    let r = topo.add_node(NodeKind::Stub);
    let b = topo.add_node(NodeKind::Client);
    let c = topo.add_node(NodeKind::Client);
    let fast = |ms: u64| LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(ms));
    let ar = topo.add_link(a, r, fast(1)).unwrap();
    let rb = topo.add_link(r, b, fast(1)).unwrap();
    topo.add_link(c, r, fast(2)).unwrap();
    let d = distill(&topo, DistillationMode::HopByHop);
    let t = SimTime::from_millis;

    // Reference, fluid half. Phase A: both aggregates demand-bounded
    // (2 + 4 of 10 Mb/s). Phase B: the second resized to 100 Mb/s at 3x
    // weight saturates the pipe: weighted water-fill gives it 8 Mb/s.
    let spec = |demand_mbps: u64, weight: u32| FluidSpec {
        src: a,
        dst: b,
        demand: DataRate::from_mbps(demand_mbps),
        weight,
    };
    let phase_a = fluid_max_min(&topo, &[spec(2, 1), spec(4, 3)]);
    assert_eq!(phase_a[0].rate, DataRate::from_mbps(2));
    assert_eq!(phase_a[1].rate, DataRate::from_mbps(4));
    let phase_b = fluid_max_min(&topo, &[spec(2, 1), spec(100, 3)]);
    assert_eq!(phase_b[0].rate, DataRate::from_mbps(2));
    assert_eq!(phase_b[1].rate, DataRate::from_mbps(8));
    // Reference, packet half: the probes' world is the topology with the
    // fluid share subtracted. Phase A leaves 4 Mb/s on a-r and r-b; phase
    // B leaves nothing (the bottleneck is effectively down); removal at
    // t=2s restores the full links.
    let residual = LinkAttrs::new(DataRate::from_mbps(4), SimDuration::from_millis(1));
    let reference = ScheduledTopology::new(topo.clone())
        .set_link(SimTime::ZERO, ar, residual)
        .set_link(SimTime::ZERO, rb, residual)
        .link_down(t(1000), ar)
        .link_down(t(1000), rb)
        .link_up(t(2000), ar)
        .link_up(t(2000), rb);

    let probe_times = [t(100), t(500), t(1100), t(1500), t(2100)];
    let payload: u32 = 1000;
    let tick = SimDuration::from_micros(100);
    type ProbeRecord = (SimTime, &'static str, Option<(SimTime, usize)>);
    type RunResult = (Vec<ProbeRecord>, [u64; 2], mn_emucore::CoreStats);

    let run = |cores: usize, threaded: bool| -> RunResult {
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
        let pod = greedy_k_clusters(&d, cores, 7);
        let seq = MultiCoreEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            5,
        );
        let mut backend = if threaded {
            EmulatorBackend::Threaded(ParallelEmulator::from_sequential(seq))
        } else {
            EmulatorBackend::Sequential(seq)
        };
        let vn = |node| binding.vn_at(node).unwrap();
        assert!(backend.add_fluid_flow(1, vn(a), vn(b), DataRate::from_mbps(2), 1, SimTime::ZERO));
        assert!(backend.add_fluid_flow(2, vn(a), vn(b), DataRate::from_mbps(4), 3, SimTime::ZERO));
        let mut records = Vec::new();
        let mut deliveries = Vec::new();
        let mut id = 0u64;
        let mut phase_a_goodput = [0u64; 2];
        for &probe_at in &probe_times {
            // Phase boundaries land between probes: resize into saturation
            // at t=1s, remove both aggregates at t=2s.
            if probe_at == t(1100) {
                backend.advance_into(t(1000), &mut deliveries).unwrap();
                phase_a_goodput = [
                    backend.fluid_flow_goodput_bytes(1).unwrap(),
                    backend.fluid_flow_goodput_bytes(2).unwrap(),
                ];
                assert!(backend.resize_fluid_flow(2, DataRate::from_mbps(100), 3, t(1000)));
            }
            if probe_at == t(2100) {
                backend.advance_into(t(2000), &mut deliveries).unwrap();
                assert!(backend.remove_fluid_flow(1, t(2000)));
                assert!(backend.remove_fluid_flow(2, t(2000)));
            }
            // The two probes share the r-b bottleneck, so they are staggered
            // 50 ms apart: simultaneous probes would queue behind each
            // other and the lone-packet analytic window would not apply.
            for (offset, label, src, dst) in [
                (SimDuration::ZERO, "a->b", vn(a), vn(b)),
                (SimDuration::from_millis(50), "c->b", vn(c), vn(b)),
            ] {
                let probe_at = probe_at + offset;
                let pkt = udp_packet(id, src, dst, payload, probe_at);
                id += 1;
                // A probe entering a pipe the fluid saturates is dropped at
                // submission (first-hop enqueue sees zero residual); one
                // entering downstream of it is accepted, then swallowed.
                let outcome = backend.submit(probe_at, pkt).unwrap();
                deliveries.clear();
                let mut delivered = None;
                if outcome.is_accepted() {
                    // Drive the emulation at wakeup granularity, bounded by
                    // a horizon: with live fluid flows the epoch grid makes
                    // the wakeup stream infinite, so "advance until
                    // delivered" would never terminate for a swallowed
                    // probe.
                    let horizon = probe_at + SimDuration::from_millis(300);
                    let mut now = probe_at;
                    while let Some(next) = backend.next_wakeup().filter(|&next| next <= horizon) {
                        now = now.max(next);
                        backend.advance_into(now, &mut deliveries).unwrap();
                        if !deliveries.is_empty() {
                            break;
                        }
                    }
                    delivered = deliveries
                        .iter()
                        .find(|del| del.packet.id.0 == id - 1)
                        .map(|del| (del.delivered_at, del.hops));
                }
                records.push((probe_at, label, delivered));
            }
        }
        (records, phase_a_goodput, backend.total_stats())
    };

    let expected_bytes =
        |alloc: &mn_refsim::FlowAllocation, secs: u64| alloc.rate.as_bps() * secs / 8;

    let mut all_goodputs: Vec<[u64; 2]> = Vec::new();
    for cores in [1usize, 2, 4] {
        let (seq_records, seq_ga, seq_stats) = run(cores, false);
        let (thr_records, thr_ga, thr_stats) = run(cores, true);
        assert_eq!(
            seq_records, thr_records,
            "{cores}-core probe records diverge across backends"
        );
        assert_eq!(seq_ga, thr_ga, "{cores}-core fluid goodput diverges");
        assert_eq!(seq_stats, thr_stats, "{cores}-core stats diverge");
        // Fluid goodput, phase A: exactly the reference share x 1 s.
        assert_eq!(seq_ga[0], expected_bytes(&phase_a[0], 1));
        assert_eq!(seq_ga[1], expected_bytes(&phase_a[1], 1));
        assert!(
            seq_stats.fluid_modelled_bytes > 0,
            "the cores metered fluid-consumed capacity"
        );
        all_goodputs.push(seq_ga);
        // Foreground differential, phase by phase, against the reference
        // over residual capacity.
        for &(probe_at, label, delivered) in &seq_records {
            let snapshot = reference.topology_at(probe_at);
            let (src, dst) = if label == "a->b" { (a, b) } else { (c, b) };
            let allocation = max_min_fair_share(&snapshot, &[FlowSpec { src, dst }]);
            let reference_flow = &allocation[0];
            match delivered {
                None => {
                    assert_eq!(
                        reference_flow.hops, 0,
                        "{label}@{probe_at}: probe swallowed but reference routes"
                    );
                }
                Some((delivered_at, hops)) => {
                    assert!(
                        reference_flow.hops > 0,
                        "{label}@{probe_at}: probe delivered but reference starves it"
                    );
                    assert_eq!(hops, reference_flow.hops, "{label}@{probe_at}: hops");
                    let size = udp_packet(0, VnId(0), VnId(1), payload, SimTime::ZERO).size;
                    let bottleneck_tx = reference_flow.rate.transmission_time(size);
                    let delay = delivered_at - probe_at;
                    let lower = reference_flow.latency + bottleneck_tx;
                    let upper = reference_flow.latency
                        + bottleneck_tx * hops as u64
                        + tick * (hops as u64 + 1);
                    assert!(
                        delay >= lower && delay <= upper,
                        "{label}@{probe_at}: delay {delay} outside residual-capacity \
                         window [{lower}, {upper}]"
                    );
                }
            }
        }
        // Phase shape: probes starve only while the fluid saturates the
        // bottleneck, and recover the moment the aggregates are removed.
        let ab: Vec<bool> = seq_records
            .iter()
            .filter(|r| r.1 == "a->b")
            .map(|r| r.2.is_some())
            .collect();
        assert_eq!(ab, vec![true, true, false, false, true]);
        let cb: Vec<bool> = seq_records
            .iter()
            .filter(|r| r.1 == "c->b")
            .map(|r| r.2.is_some())
            .collect();
        assert_eq!(cb, vec![true, true, false, false, true]);
    }
    // The coordinator-owned fluid solve is identical at every core count.
    assert!(all_goodputs.windows(2).all(|w| w[0] == w[1]));
}

/// Mid-run fluid saturation accounting: phase-B goodput (between the
/// resize at t=1s and removal at t=2s) matches the reference water-fill
/// over the saturated bottleneck, exactly, on both backends.
#[test]
fn fluid_resize_goodput_matches_reference_water_fill() {
    use mn_refsim::{fluid_max_min, FluidSpec};
    use mn_topology::{LinkAttrs, NodeKind};
    use modelnet::EmulatorBackend;

    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Client);
    let r = topo.add_node(NodeKind::Stub);
    let b = topo.add_node(NodeKind::Client);
    let fast = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
    topo.add_link(a, r, fast).unwrap();
    topo.add_link(r, b, fast).unwrap();
    let d = distill(&topo, DistillationMode::HopByHop);
    let spec = |demand_mbps: u64, weight: u32| FluidSpec {
        src: a,
        dst: b,
        demand: DataRate::from_mbps(demand_mbps),
        weight,
    };
    let phase_a = fluid_max_min(&topo, &[spec(2, 1), spec(4, 3)]);
    let phase_b = fluid_max_min(&topo, &[spec(2, 1), spec(100, 3)]);

    let run = |threaded: bool| -> ([u64; 2], [u64; 2]) {
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
        let pod = greedy_k_clusters(&d, 1, 7);
        let seq = MultiCoreEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            5,
        );
        let mut backend = if threaded {
            EmulatorBackend::Threaded(ParallelEmulator::from_sequential(seq))
        } else {
            EmulatorBackend::Sequential(seq)
        };
        let vn = |node| binding.vn_at(node).unwrap();
        assert!(backend.add_fluid_flow(1, vn(a), vn(b), DataRate::from_mbps(2), 1, SimTime::ZERO));
        assert!(backend.add_fluid_flow(2, vn(a), vn(b), DataRate::from_mbps(4), 3, SimTime::ZERO));
        let mut sink = Vec::new();
        backend
            .advance_into(SimTime::from_secs(1), &mut sink)
            .unwrap();
        let at_1s = [
            backend.fluid_flow_goodput_bytes(1).unwrap(),
            backend.fluid_flow_goodput_bytes(2).unwrap(),
        ];
        assert!(backend.resize_fluid_flow(2, DataRate::from_mbps(100), 3, SimTime::from_secs(1)));
        backend
            .advance_into(SimTime::from_secs(2), &mut sink)
            .unwrap();
        let at_2s = [
            backend.fluid_flow_goodput_bytes(1).unwrap(),
            backend.fluid_flow_goodput_bytes(2).unwrap(),
        ];
        (at_1s, at_2s)
    };
    let bytes = |alloc: &mn_refsim::FlowAllocation| alloc.rate.as_bps() / 8;
    let (seq_1s, seq_2s) = run(false);
    let (thr_1s, thr_2s) = run(true);
    assert_eq!((seq_1s, seq_2s), (thr_1s, thr_2s), "backends diverge");
    assert_eq!(seq_1s, [bytes(&phase_a[0]), bytes(&phase_a[1])]);
    assert_eq!(
        seq_2s,
        [
            bytes(&phase_a[0]) + bytes(&phase_b[0]),
            bytes(&phase_a[1]) + bytes(&phase_b[1]),
        ]
    );
}

/// Congested differential: two flows pushed at twice their fair share
/// through the paper's ring must settle at the reference simulator's
/// max-min allocation (the access links, 2 Mb/s each).
#[test]
fn congested_throughput_matches_reference_fair_share() {
    let topo = ring_topology(&RingParams {
        routers: 2,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let clients: Vec<NodeId> = topo.client_nodes().collect();
    // Cross-ring flows: client 0 -> client 2, client 1 -> client 3.
    let flows = [
        FlowSpec {
            src: clients[0],
            dst: clients[2],
        },
        FlowSpec {
            src: clients[1],
            dst: clients[3],
        },
    ];
    let reference = max_min_fair_share(&topo, &flows);
    for allocation in &reference {
        assert_eq!(allocation.rate, DataRate::from_mbps(2), "access-limited");
    }
    let (mut emu, binding) = build_emulator(&topo, 1, 3);
    let vn = |node| binding.vn_at(node).expect("client is bound");
    // Offer 4 Mb/s per flow: a 1000-byte datagram every 2 ms for 2 s.
    let payload: u32 = 1000;
    let mut id = 0u64;
    let mut delivered_payload = [0u64; 2];
    let horizon = SimTime::from_secs(2);
    let mut now = SimTime::ZERO;
    while now < horizon {
        for flow in &flows {
            let _ = emu.submit(
                now,
                udp_packet(id, vn(flow.src), vn(flow.dst), payload, now),
            );
            id += 1;
        }
        now += SimDuration::from_millis(2);
        for delivery in emu.advance(now) {
            let fi = if delivery.packet.flow.src == vn(flows[0].src) {
                0
            } else {
                1
            };
            delivered_payload[fi] += delivery.packet.header.payload_len() as u64;
        }
    }
    // Let the queues drain and count the tail.
    for delivery in drain_to_idle(&mut emu, now) {
        let fi = if delivery.packet.flow.src == vn(flows[0].src) {
            0
        } else {
            1
        };
        delivered_payload[fi] += delivery.packet.header.payload_len() as u64;
    }
    for (fi, &bytes) in delivered_payload.iter().enumerate() {
        let goodput_mbps = bytes as f64 * 8.0 / 2.0 / 1e6;
        let reference_mbps = reference[fi].rate.as_mbps_f64();
        assert!(
            goodput_mbps >= reference_mbps * 0.75 && goodput_mbps <= reference_mbps * 1.15,
            "flow {fi}: emulated goodput {goodput_mbps:.2} Mb/s should track \
             the reference fair share {reference_mbps:.2} Mb/s"
        );
    }
    // The 2x overload genuinely exercised queue-overflow drops.
    let stats = emu.total_stats();
    assert!(stats.packets_delivered < id, "overload must drop virtually");
    assert_eq!(stats.physical_drops(), 0, "drops are virtual, not physical");
}
