//! Property suite for the runtime reconfiguration machinery.
//!
//! Two invariants anchor the incremental re-routing design:
//!
//! 1. **Incremental ≡ from-scratch.** However a random schedule of link
//!    flaps (failures, restores, latency renegotiations) is applied, the
//!    incrementally maintained routing matrix must equal a from-scratch
//!    rebuild of the mutated pipe graph — route for route, pair for pair.
//!    The generator's power-of-two link latencies make every shortest path
//!    unique, so equality is exact rather than up-to-tie-breaking.
//! 2. **Down links carry no new traffic.** While a pipe is failed, nothing
//!    new may *enter* it: packets submitted during the outage are routed
//!    around it (or refused), and only descriptors that were already
//!    inside the pipe when it failed drain out — the paper's semantics,
//!    where packets inside a core finish on pre-failure state. Pinned via
//!    the pipe's own enqueue counters.

mod common;

use proptest::prelude::*;

use common::arb_unique_path_topology;
use mn_assign::{Binding, BindingParams};
use mn_distill::{distill, DistillationMode, DistilledTopology, PipeId};
use mn_dynamics::{Schedule, ScheduleEngine};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
use mn_routing::{RouteTable, RoutingMatrix};
use mn_util::{DataRate, SimDuration, SimTime};
use modelnet::EmulatorBackend;

fn udp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: 400,
            seq: id,
        },
        now,
    )
}

/// One random perturbation of a duplex link.
#[derive(Debug, Clone, Copy)]
enum Flap {
    Down,
    Restore,
    SlowerLatency,
}

fn arb_flap() -> impl Strategy<Value = Flap> {
    prop_oneof![
        Just(Flap::Down),
        Just(Flap::Restore),
        Just(Flap::SlowerLatency),
    ]
}

/// Applies `flap` to both directions of the `link_choice`-th duplex link,
/// returning the mutated pipes.
fn apply_flap(
    d: &mut DistilledTopology,
    original: &[mn_distill::PipeAttrs],
    link_choice: usize,
    flap: Flap,
) -> Vec<PipeId> {
    // Hop-by-hop distillation adds duplex pairs back to back: pipes 2k and
    // 2k+1 are the two directions of target link k.
    let links = d.pipe_count() / 2;
    let k = link_choice % links;
    let pipes = vec![PipeId(2 * k), PipeId(2 * k + 1)];
    for &p in &pipes {
        let attrs = d.pipe_attrs_mut(p).expect("pipe exists");
        match flap {
            Flap::Down => attrs.bandwidth = DataRate::ZERO,
            Flap::Restore => *attrs = original[p.index()],
            Flap::SlowerLatency => attrs.latency = attrs.latency * 2,
        }
    }
    pipes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random flap schedules ⇒ the incrementally updated matrix equals a
    /// from-scratch recomputation after every step, and the emulator's
    /// incrementally re-wired route table resolves every pair to the same
    /// pipe sequence a freshly built table would.
    #[test]
    fn incremental_rerouting_equals_scratch_recomputation(
        topo in arb_unique_path_topology(Just(0.0)),
        flaps in prop::collection::vec((any::<usize>(), arb_flap()), 1..12),
    ) {
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let original: Vec<_> = d.pipes().map(|(_, p)| p.attrs).collect();
        let mut matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
        let mut emu = MultiCoreEmulator::single_core(
            &d,
            matrix.clone(),
            &binding,
            HardwareProfile::unconstrained(),
            1,
        );
        let locations: Vec<_> = binding
            .vns()
            .map(|vn| binding.location(vn).unwrap())
            .collect();
        for (choice, flap) in flaps {
            let changed = apply_flap(&mut d, &original, choice, flap);
            let update = matrix.update_pipes(&d, &changed);
            let emu_update = emu.reroute(&d, &changed);
            prop_assert_eq!(&update.changed_pairs, &emu_update.changed_pairs);
            // 1. Matrix: incremental == scratch, pair for pair.
            let scratch = RoutingMatrix::build(&d);
            for &a in matrix.vns() {
                for &b in matrix.vns() {
                    prop_assert_eq!(
                        matrix.lookup(a, b), scratch.lookup(a, b),
                        "{} -> {} diverged after {:?}", a, b, flap
                    );
                }
            }
            // 2. Route table: every pair resolves to the same pipe
            //    sequence as a table built from scratch (ids may differ —
            //    the incremental table retains history).
            let fresh = RouteTable::build(&scratch, &locations);
            let table = emu.route_table();
            for s in 0..locations.len() {
                for t in 0..locations.len() {
                    let incremental = table.route_id(s, t).map(|id| table.pipes(id));
                    let rebuilt = fresh.route_id(s, t).map(|id| fresh.pipes(id));
                    prop_assert_eq!(incremental, rebuilt, "pair ({}, {})", s, t);
                }
            }
        }
    }

    /// While a link is down, no new descriptor enters its pipes: the
    /// pipes' enqueue counters freeze for the whole outage (in-flight
    /// packets may still drain out), and traffic submitted during the
    /// outage is steered around or refused.
    #[test]
    fn down_links_accept_no_new_descriptors(
        topo in arb_unique_path_topology(Just(0.0)),
        link_choice in any::<usize>(),
        submits in prop::collection::vec((0usize..64, 0usize..64), 8..40),
    ) {
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
        let seq = MultiCoreEmulator::single_core(
            &d,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            9,
        );
        let mut backend = EmulatorBackend::Sequential(seq);
        let vns: Vec<VnId> = binding.vns().collect();
        let links = d.pipe_count() / 2;
        let k = link_choice % links;
        let victims = [PipeId(2 * k), PipeId(2 * k + 1)];
        let down_at = SimTime::from_millis(40);
        let up_at = SimTime::from_millis(80);
        let schedule = Schedule::new()
            .duplex_down(down_at, victims[0], victims[1])
            .duplex_up(up_at, victims[0], victims[1]);
        let mut engine = ScheduleEngine::new(d.clone(), schedule);

        let enqueued_on = |backend: &EmulatorBackend, pipe: PipeId| -> u64 {
            let EmulatorBackend::Sequential(emu) = backend else {
                unreachable!("test runs the sequential backend")
            };
            emu.cores()
                .iter()
                .find_map(|core| core.pipe_stats(pipe))
                .map_or(0, |s| s.enqueued)
        };

        // Phase A: pre-failure traffic (may use the victim link).
        let mut id = 0u64;
        let mut deliveries = Vec::new();
        let mut drive = |backend: &mut EmulatorBackend,
                         window: (u64, u64),
                         id: &mut u64| {
            for (i, &(s, t)) in submits.iter().enumerate() {
                let at = SimTime::from_millis(window.0)
                    + SimDuration::from_micros((window.1 - window.0) * 1000 * i as u64
                        / submits.len() as u64);
                let src = vns[s % vns.len()];
                let dst = vns[t % vns.len()];
                let _ = backend.submit(at, udp_packet(*id, src, dst, at));
                *id += 1;
                deliveries.clear();
                backend.advance_into(at, &mut deliveries).unwrap();
            }
        };
        drive(&mut backend, (0, 40), &mut id);
        // The failure.
        let applied = engine.apply_due(down_at, &mut backend);
        prop_assert!(applied.reroute.is_some());
        let frozen: Vec<u64> = victims
            .iter()
            .map(|&p| enqueued_on(&backend, p))
            .collect();
        // Phase B: traffic during the outage.
        drive(&mut backend, (40, 80), &mut id);
        for (&p, &before) in victims.iter().zip(&frozen) {
            prop_assert_eq!(
                enqueued_on(&backend, p),
                before,
                "pipe {} accepted a descriptor while down", p
            );
        }
        // Recovery: traffic flows over the link again eventually.
        let _ = engine.apply_due(up_at, &mut backend);
        prop_assert!(engine.finished());
        drive(&mut backend, (80, 120), &mut id);
        // Drain everything still in flight (loss-free links, no CBR: the
        // emulator goes idle).
        let mut now = SimTime::from_millis(120);
        for _ in 0..100_000 {
            let Some(t) = backend.next_wakeup() else { break };
            now = now.max(t);
            deliveries.clear();
            backend.advance_into(now, &mut deliveries).unwrap();
        }
        prop_assert_eq!(backend.next_wakeup(), None);
    }
}
