//! Zero-allocation guarantee for the single-core steady state.
//!
//! The paper's core forwards near-gigabit traffic while scheduling tens of
//! thousands of pipes; that only works if the per-packet path does no
//! avoidable work. This test pins the reproduction to the same discipline: a
//! counting global allocator wraps the system allocator, the emulator is
//! warmed until every buffer (timing-wheel slots, pipe queues, tick/delivery
//! scratch) has reached its steady-state capacity, and a further measured
//! run of submit + advance must perform **zero** heap allocations on this
//! thread.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use mn_assign::{Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{star_topology, StarParams};
use mn_util::SimTime;

/// Counts allocator calls made by this thread. `Cell<u64>` has no destructor,
/// so the thread-local access inside the allocator cannot itself allocate or
/// recurse.
struct CountingAlloc;

thread_local! {
    static ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    ALLOC_CALLS.with(|c| c.set(c.get() + 1));
}

fn alloc_calls() -> u64 {
    ALLOC_CALLS.with(|c| c.get())
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc(layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        System.realloc(ptr, layout, new_size)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn tcp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            // Small payloads keep every pipe well below line rate, so queue
            // depths (and their backing buffers) settle during warm-up
            // instead of creeping for the whole run.
            payload_len: 200,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

/// Drives `iters` submit/advance cycles starting at packet/time index
/// `start`, mirroring the `core_submit_advance` benchmark loop.
fn drive(
    emu: &mut MultiCoreEmulator,
    vns: &[VnId],
    deliveries: &mut Vec<mn_emucore::Delivery>,
    start: u64,
    iters: u64,
) -> u64 {
    let mut delivered = 0;
    for i in start..start + iters {
        let now = SimTime::from_micros(i * 20);
        let src = vns[i as usize % vns.len()];
        let dst = vns[(i as usize + 7) % vns.len()];
        let _ = emu.submit(now, tcp_packet(i, src, dst, now));
        if i % 8 == 0 {
            deliveries.clear();
            emu.advance_into(now, deliveries);
            delivered += deliveries.len() as u64;
        }
    }
    delivered
}

#[test]
fn single_core_steady_state_allocates_nothing() {
    let topo = star_topology(&StarParams {
        clients: 64,
        ..StarParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let vns: Vec<VnId> = binding.vns().collect();
    let mut deliveries: Vec<mn_emucore::Delivery> = Vec::new();

    // Warm-up: cycle the timing wheel several full revolutions (256 slots ×
    // ~131 µs per slot at 20 µs of virtual time per packet ≈ 1.7 k packets
    // per revolution) so every slot, pipe queue and scratch buffer reaches
    // its steady-state capacity.
    let warmed = drive(&mut emu, &vns, &mut deliveries, 0, 30_000);
    assert!(warmed > 0, "warm-up must deliver packets");

    // Measured steady state: not a single allocator call on this thread.
    let before = alloc_calls();
    let delivered = drive(&mut emu, &vns, &mut deliveries, 30_000, 10_000);
    let delta = alloc_calls() - before;
    assert!(delivered > 0, "steady state must deliver packets");
    assert_eq!(
        delta, 0,
        "steady-state submit/advance made {delta} heap allocations; \
         the per-packet path must be allocation-free"
    );
}
