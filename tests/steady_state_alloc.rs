//! Zero-allocation guarantee for the single-core steady state.
//!
//! The paper's core forwards near-gigabit traffic while scheduling tens of
//! thousands of pipes; that only works if the per-packet path does no
//! avoidable work. This test pins the reproduction to the same discipline: a
//! counting global allocator (`mn_util::alloc`, shared with the bench
//! binaries' memory reporting) wraps the system allocator, the emulator is
//! warmed until every buffer (timing-wheel slots, pipe queues, tick/delivery
//! scratch) has reached its steady-state capacity, and a further measured
//! run of submit + advance must perform **zero** heap allocations on this
//! thread. The sharded route table's lookup path gets its own guard: row
//! shards and the chunked route store must resolve without touching the
//! heap, rewired or not.

use mn_assign::{Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{ring_topology, star_topology, RingParams, StarParams};
use mn_util::alloc::thread_alloc_calls as alloc_calls;
use mn_util::SimTime;

#[global_allocator]
static ALLOCATOR: mn_util::alloc::CountingAlloc = mn_util::alloc::CountingAlloc;

fn tcp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            // Small payloads keep every pipe well below line rate, so queue
            // depths (and their backing buffers) settle during warm-up
            // instead of creeping for the whole run.
            payload_len: 200,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

/// Drives `iters` submit/advance cycles starting at packet/time index
/// `start`, mirroring the `core_submit_advance` benchmark loop.
fn drive(
    emu: &mut MultiCoreEmulator,
    vns: &[VnId],
    deliveries: &mut Vec<mn_emucore::Delivery>,
    start: u64,
    iters: u64,
) -> u64 {
    let mut delivered = 0;
    for i in start..start + iters {
        let now = SimTime::from_micros(i * 20);
        let src = vns[i as usize % vns.len()];
        let dst = vns[(i as usize + 7) % vns.len()];
        let _ = emu.submit(now, tcp_packet(i, src, dst, now));
        if i % 8 == 0 {
            deliveries.clear();
            emu.advance_into(now, deliveries);
            delivered += deliveries.len() as u64;
        }
    }
    delivered
}

/// Like [`drive`], but with a submit cadence of 16.384 µs — an exact
/// divisor of the timing wheel's 2^17 ns slot width. The exit-time residue
/// pattern then repeats identically every wheel revolution, so slot
/// occupancy high-water marks (and hence buffer capacities) saturate during
/// warm-up instead of drifting for the whole run. An incommensurate cadence
/// (like the 20 µs of [`drive`]) leaves high-water marks creeping for
/// thousands of revolutions — warm-up noise that would mask the property
/// this test pins: the *reconfiguration* adds no allocations of its own.
fn drive_aligned(
    emu: &mut MultiCoreEmulator,
    vns: &[VnId],
    deliveries: &mut Vec<mn_emucore::Delivery>,
    start: u64,
    iters: u64,
) -> u64 {
    const CADENCE_NS: u64 = 1 << 14; // 16.384 µs, 8 submissions per slot
    let mut delivered = 0;
    for i in start..start + iters {
        let now = SimTime::from_nanos(i * CADENCE_NS);
        let src = vns[i as usize % vns.len()];
        let dst = vns[(i as usize + 7) % vns.len()];
        let _ = emu.submit(now, tcp_packet(i, src, dst, now));
        if i % 8 == 0 {
            deliveries.clear();
            emu.advance_into(now, deliveries);
            delivered += deliveries.len() as u64;
        }
    }
    delivered
}

#[test]
fn steady_state_survives_a_bandwidth_renegotiation_without_allocating() {
    // Runtime reconfiguration must not break the zero-alloc guarantee: a
    // mid-run bandwidth renegotiation (the dynamics engine's in-place
    // parameter update) and a running CBR background injector both ride
    // the warmed tick path.
    let topo = star_topology(&StarParams {
        clients: 64,
        ..StarParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let vns: Vec<VnId> = binding.vns().collect();
    let mut deliveries: Vec<mn_emucore::Delivery> = Vec::new();

    // A CBR injector on one spoke pipe runs through warm-up and the whole
    // measured window. 4096 bits every 2.097152 ms (16 wheel slots) keeps
    // the injection pattern wheel-periodic too. The episode rides the fluid
    // machinery, whose default epoch (2^23 ns = 64 wheel slots) is a whole
    // multiple of that period, so recompute deadlines stay on the grid.
    let cbr_pipe = mn_distill::PipeId(0);
    assert!(emu.set_pipe_cbr(
        cbr_pipe,
        Some(mn_pipe::CbrConfig::new(
            mn_util::DataRate::from_bps(1_953_125),
            mn_util::ByteSize::from_bytes(512),
        )),
        SimTime::ZERO,
    ));
    let warmed = drive_aligned(&mut emu, &vns, &mut deliveries, 0, 30_000);
    assert!(warmed > 0, "warm-up must deliver packets");

    // Pre-renegotiation steady state: zero allocations.
    let before = alloc_calls();
    let delivered = drive_aligned(&mut emu, &vns, &mut deliveries, 30_000, 5_000);
    let delta = alloc_calls() - before;
    assert!(delivered > 0, "steady state must deliver packets");
    assert_eq!(
        delta, 0,
        "pre-renegotiation steady state allocated {delta}x"
    );

    // Renegotiate the pipe's bandwidth in place. The call itself must not
    // allocate — it is the dynamics engine's per-event hot operation.
    let renegotiated = {
        let mut attrs = d.pipe(cbr_pipe).attrs;
        attrs.bandwidth = attrs.bandwidth.mul_f64(0.5);
        attrs
    };
    let before = alloc_calls();
    assert!(emu.update_pipe_attrs(cbr_pipe, renegotiated));
    assert_eq!(alloc_calls() - before, 0, "update_pipe_attrs allocated");

    // A re-warm lets queue depths settle at the new bandwidth (the slower
    // pipe holds more packets and lands exits in different slots, so
    // buffers may grow to the new pattern's high-water marks once)…
    let _ = drive_aligned(&mut emu, &vns, &mut deliveries, 35_000, 20_000);
    // …after which the renegotiated steady state is allocation-free again.
    let before = alloc_calls();
    let delivered = drive_aligned(&mut emu, &vns, &mut deliveries, 55_000, 10_000);
    let delta = alloc_calls() - before;
    assert!(
        delivered > 0,
        "renegotiated steady state must deliver packets"
    );
    assert!(
        emu.total_stats().cbr_injected > 0,
        "the background injector ran"
    );
    assert_eq!(
        delta, 0,
        "post-renegotiation steady state made {delta} heap allocations; \
         reconfiguration must keep the per-packet path allocation-free"
    );
}

#[test]
fn fluid_epochs_and_mid_run_resize_allocate_nothing() {
    // The hybrid fast path's steady state: live fluid bulk flows force a
    // fair-share recompute every epoch (the `advance_into` chop), and each
    // recompute redistributes per-pipe demands to the cores. All of that —
    // the water-fill solve, the goodput integrals, the residual updates —
    // must ride retained scratch. A mid-run demand resize (the flash-crowd
    // control operation) is held to the same bar: the resize call itself
    // and the re-shared steady state after it allocate nothing.
    let topo = star_topology(&StarParams {
        clients: 64,
        ..StarParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let vns: Vec<VnId> = binding.vns().collect();
    let mut deliveries: Vec<mn_emucore::Delivery> = Vec::new();

    // The default epoch (2^23 ns = 64 wheel slots) is wheel-periodic, and
    // the measured window spans enough of them that it exercises the chop +
    // solve + redistribute path, not just plain ticking.
    assert!(emu.add_fluid_flow(
        1,
        vns[1],
        vns[33],
        mn_util::DataRate::from_mbps(4),
        500_000,
        SimTime::ZERO,
    ));
    assert!(emu.add_fluid_flow(
        2,
        vns[2],
        vns[34],
        mn_util::DataRate::from_mbps(2),
        3,
        SimTime::ZERO,
    ));

    let warmed = drive_aligned(&mut emu, &vns, &mut deliveries, 0, 30_000);
    assert!(warmed > 0, "warm-up must deliver packets");

    // Steady state with live fluid flows: epochs fire, rates re-solve,
    // residuals update — zero allocations.
    let before = alloc_calls();
    let delivered = drive_aligned(&mut emu, &vns, &mut deliveries, 30_000, 5_000);
    let delta = alloc_calls() - before;
    assert!(delivered > 0, "steady state must deliver packets");
    assert_eq!(
        delta, 0,
        "steady state with fluid epochs allocated {delta}x; \
         the recompute path must run on retained scratch"
    );

    // Mid-run resize: the flash-crowd grows. The call settles integrals,
    // re-solves the fair share and pushes changed residuals — in place.
    const CADENCE_NS: u64 = 1 << 14;
    let before = alloc_calls();
    assert!(emu.resize_fluid_flow(
        1,
        mn_util::DataRate::from_mbps(6),
        750_000,
        SimTime::from_nanos(35_000 * CADENCE_NS),
    ));
    assert_eq!(alloc_calls() - before, 0, "resize_fluid_flow allocated");

    // A short re-warm lets packet queues settle against the shrunken
    // residual, after which the resized steady state is allocation-free.
    let _ = drive_aligned(&mut emu, &vns, &mut deliveries, 35_000, 10_000);
    let before = alloc_calls();
    let delivered = drive_aligned(&mut emu, &vns, &mut deliveries, 45_000, 5_000);
    let delta = alloc_calls() - before;
    assert!(delivered > 0, "resized steady state must deliver packets");
    assert_eq!(
        delta, 0,
        "post-resize steady state made {delta} heap allocations; \
         fluid reconfiguration must keep the hybrid path allocation-free"
    );

    // The fluid machinery really ran: both flows integrated goodput and the
    // modelled population is the resized one.
    assert!(emu.fluid_flow_goodput_bytes(1).unwrap() > 0);
    assert!(emu.fluid_flow_goodput_bytes(2).unwrap() > 0);
    assert_eq!(emu.fluid().modelled_clients(), 750_003);
    assert!(
        emu.total_stats().fluid_modelled_bytes > 0,
        "cores metered fluid-consumed capacity"
    );
}

/// The steady-state lookup path of the sharded copy-on-write route table —
/// `route_id` (row shard + slot) and `pipes` (chunked store) — performs no
/// heap allocation, including on a table generation produced by an
/// incremental rewire (mixed shared and freshly published row shards).
#[test]
fn sharded_route_lookups_allocate_nothing() {
    let topo = ring_topology(&RingParams {
        routers: 8,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let mut d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    // Fail a transit pipe (both directions) through the incremental path so
    // the table in force is a rewired copy-on-write generation, not the
    // pristine build.
    let far = emu
        .route_table()
        .route_id(0, emu.route_table().endpoint_count() / 2)
        .expect("ring routes all pairs");
    let victim = emu.route_table().pipes(far)[1];
    let reverse = {
        let p = d.pipe(victim);
        d.find_pipe(p.dst, p.src).expect("duplex link")
    };
    for p in [victim, reverse] {
        d.pipe_attrs_mut(p).unwrap().bandwidth = mn_util::DataRate::ZERO;
    }
    let update = emu.reroute(&d, &[victim, reverse]);
    assert!(!update.is_empty(), "failing a transit link rewires routes");
    // Every pair lookup plus the per-hop pipe-sequence access, repeatedly:
    // zero allocator calls.
    let table = emu.route_table();
    let n = table.endpoint_count();
    let before = alloc_calls();
    let mut hops = 0usize;
    for _ in 0..100 {
        for s in 0..n {
            for t in 0..n {
                if let Some(id) = table.route_id(s, t) {
                    hops += std::hint::black_box(table.pipes(id)).len();
                }
            }
        }
    }
    let delta = alloc_calls() - before;
    assert!(hops > 0, "lookups resolved routes");
    assert_eq!(
        delta, 0,
        "steady-state route lookups made {delta} heap allocations; \
         the sharded table's lookup path must be allocation-free"
    );
}

/// The tree-only matrix's on-demand route resolution — a predecessor walk
/// into a caller-supplied buffer — performs no heap allocation once the
/// buffer is warmed, including after an incremental reroute has rewritten
/// the trees in place. This is the path the sharded table's build and
/// rewire resolve every route through.
#[test]
fn on_demand_route_resolution_allocates_nothing_when_warmed() {
    let topo = ring_topology(&RingParams {
        routers: 8,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let mut d = distill(&topo, DistillationMode::HopByHop);
    let mut matrix = RoutingMatrix::build(&d);
    // Rewire through the incremental path so the trees measured below are
    // update products, not pristine build output.
    let vns = matrix.vns().to_vec();
    let victim = matrix.lookup(vns[0], vns[8]).expect("ring routes").pipes[1];
    let reverse = {
        let p = d.pipe(victim);
        d.find_pipe(p.dst, p.src).expect("duplex link")
    };
    for p in [victim, reverse] {
        d.pipe_attrs_mut(p).unwrap().bandwidth = mn_util::DataRate::ZERO;
    }
    let update = matrix.update_pipes(&d, &[victim, reverse]);
    assert!(!update.is_empty(), "failing a transit link rewires routes");
    // Warm the buffer to the longest route, then resolve every pair
    // repeatedly: zero allocator calls.
    let n = matrix.vn_count();
    let mut buf = Vec::with_capacity(matrix.max_route_length());
    let before = alloc_calls();
    let mut hops = 0usize;
    for _ in 0..100 {
        for s in 0..n {
            for t in 0..n {
                if matrix.materialize_at(s, t, &mut buf) {
                    hops += std::hint::black_box(&buf).len();
                }
            }
        }
    }
    let delta = alloc_calls() - before;
    assert!(hops > 0, "walks resolved routes");
    assert_eq!(
        delta, 0,
        "warmed on-demand route resolution made {delta} heap allocations; \
         the predecessor walk must be allocation-free"
    );
}

/// Like [`drive_aligned`], but with a 65.536 µs cadence (half a wheel slot,
/// still wheel-periodic). The last-mile ring below carries 2 Mb/s client
/// access pipes; the faster cadences would push every source past line rate
/// and the resulting permanent overload has its own (pre-existing)
/// allocation noise that would mask what this file's compensation test
/// pins. At this cadence each VN sources ~1.7 Mb/s — below access line
/// rate, like every other workload in this file.
fn drive_slow(
    emu: &mut MultiCoreEmulator,
    vns: &[VnId],
    deliveries: &mut Vec<mn_emucore::Delivery>,
    start: u64,
    iters: u64,
) -> u64 {
    const CADENCE_NS: u64 = 1 << 16;
    let mut delivered = 0;
    for i in start..start + iters {
        let now = SimTime::from_nanos(i * CADENCE_NS);
        let src = vns[i as usize % vns.len()];
        let dst = vns[(i as usize + 7) % vns.len()];
        let _ = emu.submit(now, tcp_packet(i, src, dst, now));
        if i % 8 == 0 {
            deliveries.clear();
            emu.advance_into(now, deliveries);
            delivered += deliveries.len() as u64;
        }
    }
    delivered
}

/// Compensation rides the same zero-alloc discipline: a last-mile
/// distillation with per-pipe compensation demand installed on every
/// collapsed mesh pipe must tick, fire fluid epochs and forward
/// foreground packets without a single allocator call — and a mid-run
/// compensation retune (the control operation a measured-utilisation
/// feedback loop would issue) is held to the same bar.
#[test]
fn compensated_steady_state_allocates_nothing() {
    let topo = ring_topology(&RingParams {
        routers: 8,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::LAST_MILE);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    // Install the distiller-derived compensation demand on every collapsed
    // pipe, exactly as `Experiment::compensation` does at build time.
    let rates = mn_distill::compensation_rates(&d, 0.5);
    assert!(!rates.is_empty(), "the mesh has collapsed pipes");
    for &(pipe, rate) in &rates {
        assert!(emu.set_pipe_compensation(pipe, Some(rate), SimTime::ZERO));
    }
    let vns: Vec<VnId> = binding.vns().collect();
    let mut deliveries: Vec<mn_emucore::Delivery> = Vec::new();

    let warmed = drive_slow(&mut emu, &vns, &mut deliveries, 0, 30_000);
    assert!(warmed > 0, "warm-up must deliver packets");

    // Steady state with live compensation on every mesh pipe: zero
    // allocations.
    let before = alloc_calls();
    let delivered = drive_slow(&mut emu, &vns, &mut deliveries, 30_000, 5_000);
    let delta = alloc_calls() - before;
    assert!(
        delivered > 0,
        "compensated steady state must deliver packets"
    );
    assert_eq!(
        delta, 0,
        "compensated steady state made {delta} heap allocations; \
         the compensation path must ride the retained fluid scratch"
    );

    // Retune the compensation load in place (0.5 -> 0.75) on the warmed
    // emulator: the calls themselves must not allocate…
    const CADENCE_NS: u64 = 1 << 16;
    let retuned = mn_distill::compensation_rates(&d, 0.75);
    let at = SimTime::from_nanos(35_000 * CADENCE_NS);
    let before = alloc_calls();
    for &(pipe, rate) in &retuned {
        assert!(emu.set_pipe_compensation(pipe, Some(rate), at));
    }
    assert_eq!(alloc_calls() - before, 0, "set_pipe_compensation allocated");

    // …and after a re-warm against the shrunken residuals, the retuned
    // steady state is allocation-free again.
    let _ = drive_slow(&mut emu, &vns, &mut deliveries, 35_000, 10_000);
    let before = alloc_calls();
    let delivered = drive_slow(&mut emu, &vns, &mut deliveries, 45_000, 5_000);
    let delta = alloc_calls() - before;
    assert!(delivered > 0, "retuned steady state must deliver packets");
    assert_eq!(
        delta, 0,
        "post-retune steady state made {delta} heap allocations; \
         compensation retuning must keep the per-packet path allocation-free"
    );
    assert!(
        emu.total_stats().fluid_modelled_bytes > 0,
        "the compensation demand really consumed pipe capacity"
    );
}

#[test]
fn single_core_steady_state_allocates_nothing() {
    let topo = star_topology(&StarParams {
        clients: 64,
        ..StarParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let vns: Vec<VnId> = binding.vns().collect();
    let mut deliveries: Vec<mn_emucore::Delivery> = Vec::new();

    // Warm-up: cycle the timing wheel several full revolutions (256 slots ×
    // ~131 µs per slot at 20 µs of virtual time per packet ≈ 1.7 k packets
    // per revolution) so every slot, pipe queue and scratch buffer reaches
    // its steady-state capacity.
    let warmed = drive(&mut emu, &vns, &mut deliveries, 0, 30_000);
    assert!(warmed > 0, "warm-up must deliver packets");

    // Measured steady state: not a single allocator call on this thread.
    let before = alloc_calls();
    let delivered = drive(&mut emu, &vns, &mut deliveries, 30_000, 10_000);
    let delta = alloc_calls() - before;
    assert!(delivered > 0, "steady state must deliver packets");
    assert_eq!(
        delta, 0,
        "steady-state submit/advance made {delta} heap allocations; \
         the per-packet path must be allocation-free"
    );
}
