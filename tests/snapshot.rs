//! Checkpoint/restore acceptance tests.
//!
//! The contract under test (ISSUE 10): a run snapshotted at virtual time `T`
//! and restored into a freshly built runner resumes **bit-identically** — the
//! final serialized state equals that of a run that was never interrupted —
//! on either execution backend at 1, 2 and 4 cores, in both restore
//! directions (a sequential snapshot into a threaded runner and vice versa).
//! On top of that, a worker killed mid-run by chaos injection surfaces as a
//! structured error, and recovery from the last auto-checkpoint lands on the
//! exact output of the uninterrupted run.

use proptest::prelude::*;

use mn_topology::generators::{ring_topology, RingParams};
use mn_transport::UdpStreamConfig;
use mn_util::CodecError;
use modelnet::{
    ByteSize, ChaosPlan, CoreId, DataRate, DistillationMode, EmuError, EmulatorBackend,
    ExecutionBackend, Experiment, FailureCause, LinkAttrs, NodeKind, RecoverError, Runner,
    Schedule, SimDuration, SimTime, Topology,
};

/// A ring workload with two TCP flows and a paced UDP flow: enough state
/// (congestion windows, RTO timers, pacing positions, wheel entries, RNGs)
/// that any drift after restore shows up in the serialized bytes.
fn build_seeded(cores: usize, backend: ExecutionBackend, seed: u64) -> Runner {
    let topo = ring_topology(&RingParams {
        routers: 4,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let mut runner = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .cores(cores)
        .edge_nodes(4)
        .backend(backend)
        .unconstrained_hardware()
        .seed(seed)
        .build()
        .expect("experiment builds");
    let vns = runner.vn_ids();
    runner.add_bulk_flow(vns[0], vns[5], Some(ByteSize::from_kb(512)), SimTime::ZERO);
    runner.add_bulk_flow(vns[2], vns[7], None, SimTime::from_millis(250));
    runner.add_udp_flow(
        vns[1],
        vns[6],
        UdpStreamConfig::default(),
        SimTime::from_millis(100),
    );
    runner
}

fn build(cores: usize, backend: ExecutionBackend) -> Runner {
    build_seeded(cores, backend, 11)
}

#[test]
fn restore_resumes_bit_identically_on_both_backends() {
    for backend in [ExecutionBackend::Sequential, ExecutionBackend::Threaded] {
        for cores in [1usize, 2, 4] {
            // The uninterrupted run: straight to the end.
            let mut reference = build(cores, backend);
            reference.run_until(SimTime::from_secs(6)).unwrap();
            let want = reference.snapshot().unwrap();

            // The interrupted run: snapshot at t=3s, throw the runner away,
            // restore into a freshly built one and continue.
            let mut first = build(cores, backend);
            first.run_until(SimTime::from_secs(3)).unwrap();
            let checkpoint = first.snapshot().unwrap();
            drop(first);

            let mut resumed = build(cores, backend);
            resumed.recover_from(&checkpoint).unwrap();
            assert_eq!(resumed.now(), SimTime::from_secs(3));
            resumed.run_until(SimTime::from_secs(6)).unwrap();
            let got = resumed.snapshot().unwrap();
            assert!(
                got == want,
                "resume diverged from the uninterrupted run ({backend:?}, {cores} cores)"
            );
        }
    }
}

#[test]
fn snapshots_restore_across_backends() {
    for cores in [1usize, 2, 4] {
        // Both backends produce byte-identical snapshots of the same run...
        let mut sequential = build(cores, ExecutionBackend::Sequential);
        sequential.run_until(SimTime::from_secs(3)).unwrap();
        let at_mid = sequential.snapshot().unwrap();
        let mut threaded = build(cores, ExecutionBackend::Threaded);
        threaded.run_until(SimTime::from_secs(3)).unwrap();
        assert!(
            threaded.snapshot().unwrap() == at_mid,
            "sequential and threaded snapshots differ at {cores} cores"
        );

        sequential.run_until(SimTime::from_secs(6)).unwrap();
        let want = sequential.snapshot().unwrap();

        // ...and a mid-run snapshot restores into either backend, landing
        // both on the uninterrupted run's exact final state.
        for backend in [ExecutionBackend::Sequential, ExecutionBackend::Threaded] {
            let mut resumed = build(cores, backend);
            resumed.recover_from(&at_mid).unwrap();
            resumed.run_until(SimTime::from_secs(6)).unwrap();
            assert!(
                resumed.snapshot().unwrap() == want,
                "cross-backend resume into {backend:?} diverged at {cores} cores"
            );
        }
    }
}

#[test]
fn chaos_panic_recovery_matches_the_uninterrupted_run() {
    let cores = 2;
    // The uninterrupted reference, auto-checkpointing on the same grid so
    // its serialized state (armed checkpoint events) matches the victim's.
    let mut reference = build(cores, ExecutionBackend::Threaded);
    reference.set_auto_checkpoint(SimDuration::from_secs(1));
    reference.run_until(SimTime::from_secs(8)).unwrap();
    let want = reference.snapshot().unwrap();

    // The victim: checkpoints until t=4s, then a chaos plan kills one of
    // its workers.
    let mut victim = build(cores, ExecutionBackend::Threaded);
    victim.set_auto_checkpoint(SimDuration::from_secs(1));
    victim.run_until(SimTime::from_secs(4)).unwrap();
    let (checkpoint_at, _) = victim.last_checkpoint().expect("auto-checkpoint fired");
    assert!(checkpoint_at >= SimTime::from_secs(1));
    let EmulatorBackend::Threaded(par) = victim.backend_mut() else {
        unreachable!("victim was built threaded");
    };
    assert!(par.set_chaos(CoreId(1), ChaosPlan::new().panic_on_next_command()));

    // The death is a structured error, not a panic or a hang — and it
    // poisons the runner so later calls keep failing fast.
    let err = victim.run_until(SimTime::from_secs(8)).unwrap_err();
    assert!(
        matches!(
            &err,
            EmuError::WorkerFailure {
                cause: FailureCause::Panicked(_),
                ..
            }
        ),
        "unexpected failure shape: {err:?}"
    );
    assert_eq!(victim.failure(), Some(&err));
    assert!(victim.run_until(SimTime::from_secs(9)).is_err());

    // Recovery: a fresh runner (fresh worker pool) from the last surviving
    // checkpoint, run to the same deadline, lands on the exact final state.
    let (resume_at, bytes) = victim
        .last_checkpoint()
        .expect("checkpoint survives the crash");
    let bytes = bytes.to_vec();
    let mut recovered = build(cores, ExecutionBackend::Threaded);
    recovered.recover_from(&bytes).unwrap();
    assert_eq!(recovered.now(), resume_at);
    assert!(recovered.failure().is_none());
    recovered.run_until(SimTime::from_secs(8)).unwrap();
    assert!(
        recovered.snapshot().unwrap() == want,
        "recovery from the last checkpoint diverged from the uninterrupted run"
    );
}

/// Restore with a dynamics schedule installed: the cursor fast-forwards over
/// the already-applied prefix and the remaining events fire on time.
#[test]
fn restore_replays_the_dynamics_cursor() {
    let build = || {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        let r1 = topo.add_node(NodeKind::Stub);
        let r2 = topo.add_node(NodeKind::Stub);
        let fast = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let slow = LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(6));
        topo.add_link(a, r1, fast).unwrap();
        topo.add_link(r1, b, fast).unwrap();
        topo.add_link(a, r2, slow).unwrap();
        topo.add_link(r2, b, slow).unwrap();
        let d = modelnet::distill(&topo, DistillationMode::HopByHop);
        let (ar1, r1a) = (d.find_pipe(a, r1).unwrap(), d.find_pipe(r1, a).unwrap());
        let schedule = Schedule::new()
            .duplex_down(SimTime::from_secs(2), ar1, r1a)
            .duplex_up(SimTime::from_secs(5), ar1, r1a);
        let mut runner = Experiment::new(topo)
            .distillation(DistillationMode::HopByHop)
            .cores(1)
            .edge_nodes(2)
            .unconstrained_hardware()
            .seed(7)
            .with_schedule(schedule)
            .build()
            .expect("experiment builds");
        let binding = runner.binding().clone();
        let src = binding.vn_at(a).unwrap();
        let dst = binding.vn_at(b).unwrap();
        runner.add_bulk_flow(src, dst, None, SimTime::ZERO);
        runner
    };

    let mut reference = build();
    reference.run_until(SimTime::from_secs(8)).unwrap();
    let want = reference.snapshot().unwrap();

    // Snapshot between the two schedule events: the restore must replay the
    // link-down into the engine's cursor without re-touching the emulator,
    // then apply the link-up live at t=5s.
    let mut first = build();
    first.run_until(SimTime::from_secs(3)).unwrap();
    assert_eq!(first.dynamics().unwrap().cursor(), 2);
    let checkpoint = first.snapshot().unwrap();

    let mut resumed = build();
    resumed.recover_from(&checkpoint).unwrap();
    assert_eq!(resumed.dynamics().unwrap().cursor(), 2);
    resumed.run_until(SimTime::from_secs(8)).unwrap();
    assert!(
        resumed.snapshot().unwrap() == want,
        "resume across a dynamics schedule diverged"
    );
}

#[test]
fn recover_rejects_corruption_and_mismatched_configs() {
    let mut runner = build(1, ExecutionBackend::Sequential);
    runner.run_until(SimTime::from_secs(2)).unwrap();
    let bytes = runner.snapshot().unwrap();

    let mut fresh = build(1, ExecutionBackend::Sequential);
    // Truncation and bit-flips are structured codec errors, and a failed
    // restore leaves the runner untouched (it still accepts a good one).
    assert!(matches!(
        fresh.recover_from(&bytes[..bytes.len() - 1]),
        Err(RecoverError::Codec(_))
    ));
    let mut corrupt = bytes.clone();
    let last_payload_byte = corrupt.len() - 9; // final 8 bytes are the checksum
    corrupt[last_payload_byte] ^= 0xff;
    assert!(matches!(
        fresh.recover_from(&corrupt),
        Err(RecoverError::Codec(CodecError::BadChecksum))
    ));
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] ^= 0xff;
    assert!(matches!(
        fresh.recover_from(&wrong_magic),
        Err(RecoverError::Codec(CodecError::BadMagic))
    ));

    // A snapshot from a schedule-free run cannot restore into a runner that
    // has a dynamics schedule installed (and vice versa by symmetry).
    let topo = ring_topology(&RingParams {
        routers: 4,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let d = modelnet::distill(&topo, DistillationMode::HopByHop);
    let some_pipe = d.pipes().next().map(|(id, _)| id).expect("ring has pipes");
    let mut with_schedule = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .unconstrained_hardware()
        .seed(11)
        .with_schedule(Schedule::new().link_down(SimTime::from_secs(30), some_pipe))
        .build()
        .unwrap();
    assert!(matches!(
        with_schedule.recover_from(&bytes),
        Err(RecoverError::ScheduleMismatch)
    ));

    assert!(fresh.recover_from(&bytes).is_ok());
    assert_eq!(fresh.now(), SimTime::from_secs(2));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serialization is a fixed point: restoring a snapshot into a fresh
    /// runner and re-serializing reproduces the exact bytes, for arbitrary
    /// seeds, interruption points and core counts.
    #[test]
    fn snapshot_round_trip_is_byte_stable(
        seed in 0u64..6,
        mid_ms in 500u64..4000,
        cores in (0usize..3).prop_map(|i| [1usize, 2, 4][i]),
    ) {
        let mut runner = build_seeded(cores, ExecutionBackend::Sequential, seed);
        runner.run_until(SimTime::from_millis(mid_ms)).unwrap();
        let first = runner.snapshot().unwrap();
        let mut restored = build_seeded(cores, ExecutionBackend::Sequential, seed);
        restored.recover_from(&first).unwrap();
        let second = restored.snapshot().unwrap();
        prop_assert!(first == second, "round trip not byte-stable");
    }
}
