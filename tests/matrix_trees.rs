//! Property suite for the tree-only routing matrix.
//!
//! The matrix stores one shortest-route tree per source (predecessor +
//! distance rows) and derives routes on demand; a per-pipe reverse index
//! drives output-sensitive reconfiguration. Three invariants pin the design
//! against a dense reference built from the raw Dijkstra primitives:
//!
//! 1. **Observational equivalence.** Across random fail/restore/renegotiate
//!    sequences, every route *and* every distance label the incrementally
//!    maintained matrix serves must agree with an independent from-scratch
//!    single-source computation on the mutated pipe graph.
//! 2. **`RouteId` stability.** Driving a sharded route table with the
//!    matrix's updates keeps the ids of untouched pairs intact, and every
//!    id still resolves to the reference pipe sequence.
//! 3. **Reverse-index exactness.** After every step the per-pipe index
//!    equals the tree membership a scratch build derives, and a pure
//!    worsening recomputes exactly the trees in the changed pipes' index
//!    entries — the output-sensitivity claim itself.

mod common;

use std::collections::HashSet;

use proptest::prelude::*;

use common::arb_unique_path_topology;
use mn_distill::{distill, DistillationMode, DistilledTopology, PipeId};
use mn_routing::{
    route_from_tree, shortest_route_tree_with_dist, RouteId, RouteTable, RoutingMatrix,
    UNUSABLE_COST,
};
use mn_topology::NodeId;
use mn_util::DataRate;

/// One random perturbation of a duplex link.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Fail the link (bandwidth to zero): routes detour or disappear.
    Down,
    /// Restore the link's build-time attributes.
    Restore,
    /// Double the link's latency: routes may shift without a failure.
    SlowerLatency,
    /// Halve the link's (nonzero) bandwidth: no routing impact at all.
    RenegotiateBandwidth,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Down),
        Just(Op::Restore),
        Just(Op::SlowerLatency),
        Just(Op::RenegotiateBandwidth),
    ]
}

/// Applies `op` to both directions of the `link_choice`-th duplex link,
/// returning the mutated pipes. Hop-by-hop distillation adds duplex pairs
/// back to back: pipes 2k and 2k+1 are the two directions of link k.
fn apply_op(
    d: &mut DistilledTopology,
    original: &[mn_distill::PipeAttrs],
    link_choice: usize,
    op: Op,
) -> Vec<PipeId> {
    let links = d.pipe_count() / 2;
    let k = link_choice % links;
    let pipes = vec![PipeId(2 * k), PipeId(2 * k + 1)];
    for &p in &pipes {
        let attrs = d.pipe_attrs_mut(p).expect("pipe exists");
        match op {
            Op::Down => attrs.bandwidth = DataRate::ZERO,
            Op::Restore => *attrs = original[p.index()],
            Op::SlowerLatency => attrs.latency = attrs.latency * 2,
            Op::RenegotiateBandwidth => attrs.bandwidth = attrs.bandwidth.mul_f64(0.5),
        }
    }
    pipes
}

/// Independent dense reference for one source: predecessor tree + labels
/// straight from the exported Dijkstra primitive (no `RoutingMatrix` code).
fn reference_tree(d: &DistilledTopology, src: NodeId) -> (Vec<Option<PipeId>>, Vec<u64>) {
    shortest_route_tree_with_dist(d, src)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tree_matrix_matches_dense_reference_under_random_dynamics(
        topo in arb_unique_path_topology(Just(0.0)),
        ops in prop::collection::vec((any::<usize>(), arb_op()), 1..10),
    ) {
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let original: Vec<_> = d.pipes().map(|(_, p)| p.attrs).collect();
        let mut matrix = RoutingMatrix::build(&d);
        let vns = matrix.vns().to_vec();
        let locations = vns.clone();
        let n = locations.len();
        let mut table = RouteTable::build(&matrix, &locations);

        for (choice, op) in ops {
            // Output-sensitivity oracle, captured before the step: a pure
            // worsening (Down on a live link, or a latency increase) must
            // recompute exactly the union of the two pipes' reverse-index
            // entries.
            let changed_pipes = [PipeId(2 * (choice % (d.pipe_count() / 2))),
                                 PipeId(2 * (choice % (d.pipe_count() / 2)) + 1)];
            let pure_worsening = match op {
                Op::Down => changed_pipes
                    .iter()
                    .all(|&p| !d.pipe(p).attrs.bandwidth.is_zero()),
                Op::SlowerLatency => changed_pipes
                    .iter()
                    .all(|&p| !d.pipe(p).attrs.bandwidth.is_zero()),
                _ => false,
            };
            let expected_recompute: HashSet<u32> = changed_pipes
                .iter()
                .flat_map(|&p| matrix.pipe_tree_sources(p).iter().copied())
                .collect();

            let ids_before: Vec<Option<RouteId>> = (0..n * n)
                .map(|i| table.route_id(i / n, i % n))
                .collect();
            let changed = apply_op(&mut d, &original, choice, op);
            let update = matrix.update_pipes(&d, &changed);
            if !update.is_empty() {
                table.rewire_in_place(&matrix, &locations, &update.changed_pairs);
            }

            if pure_worsening {
                prop_assert_eq!(
                    update.recomputed_sources,
                    expected_recompute.len(),
                    "a worsening must recompute exactly the reverse-index trees after {:?}",
                    op
                );
            }

            // 1. Route and distance agreement with the dense reference.
            for (si, &src) in vns.iter().enumerate() {
                let (pred, dist) = reference_tree(&d, src);
                for (di, &dst) in vns.iter().enumerate() {
                    let want = route_from_tree(&d, &pred, src, dst);
                    prop_assert_eq!(
                        matrix.lookup(src, dst), want,
                        "route {} -> {} diverged after {:?}", src, dst, op
                    );
                    let want_dist =
                        (dist[dst.index()] != UNUSABLE_COST).then_some(dist[dst.index()]);
                    prop_assert_eq!(
                        matrix.distance(src, dst), want_dist,
                        "distance {} -> {} diverged after {:?}", src, dst, op
                    );
                    // Zero-copy resolution agrees with the allocating path.
                    let mut buf = Vec::new();
                    let ok = matrix.materialize_at(si, di, &mut buf);
                    prop_assert_eq!(ok, matrix.lookup(src, dst).is_some());
                    if ok {
                        prop_assert_eq!(&buf, &matrix.lookup(src, dst).unwrap().pipes);
                    }
                }
            }

            // 2. RouteId stability on untouched pairs, and reference
            //    resolution for every live id.
            let changed_set: HashSet<(NodeId, NodeId)> =
                update.changed_pairs.iter().copied().collect();
            for s in 0..n {
                for t in 0..n {
                    if !changed_set.contains(&(locations[s], locations[t])) {
                        prop_assert_eq!(
                            table.route_id(s, t),
                            ids_before[s * n + t],
                            "untouched pair ({}, {}) must keep its RouteId after {:?}",
                            s, t, op
                        );
                    }
                    if let Some(id) = table.route_id(s, t) {
                        let want = matrix
                            .lookup(locations[s], locations[t])
                            .expect("wired pairs are routable");
                        prop_assert_eq!(table.pipes(id), want.pipes.as_slice());
                    }
                }
            }

            // 3. Reverse-index exactness: incremental maintenance equals the
            //    index a from-scratch build seeds, pipe for pipe.
            let fresh = RoutingMatrix::build(&d);
            for pid in 0..d.pipe_count() {
                prop_assert_eq!(
                    matrix.pipe_tree_sources(PipeId(pid)),
                    fresh.pipe_tree_sources(PipeId(pid)),
                    "reverse index diverged for pipe {} after {:?}", pid, op
                );
            }
        }
    }
}
