//! Shared generators for the repository-level test suites.

use proptest::prelude::*;

use mn_topology::{LinkAttrs, NodeKind, Topology};
use mn_util::rngs::seeded_rng;
use mn_util::{DataRate, SimDuration};

/// A random connected topology whose link latencies are powers of two:
/// distinct links carry distinct powers, so no two different link subsets
/// can sum to the same path latency (unique binary representation). The
/// latency-shortest path between any node pair is therefore unique, and
/// independent path computations (the reference simulator, the routing
/// matrix, `shortest_path`) cannot tie-break differently.
///
/// `loss` is the loss rate applied to the stub backbone links (client
/// access links and chords stay loss-free); pass `Just(0.0)` for the
/// loss-free variant where every submitted packet must be delivered.
pub fn arb_unique_path_topology(
    loss: impl Strategy<Value = f64>,
) -> impl Strategy<Value = Topology> {
    (3usize..8, 2usize..7, any::<u64>(), loss).prop_map(|(stubs, clients, seed, loss)| {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        let mut k = 0u32;
        let mut next_latency = move || {
            k += 1;
            SimDuration::from_micros(1u64 << k)
        };
        let mut topo = Topology::new();
        let stub_ids: Vec<_> = (0..stubs).map(|_| topo.add_node(NodeKind::Stub)).collect();
        for w in stub_ids.windows(2) {
            let attrs = LinkAttrs::new(DataRate::from_mbps(rng.gen_range(5..100)), next_latency())
                .with_loss(loss);
            topo.add_link(w[0], w[1], attrs).unwrap();
        }
        for _ in 0..stubs / 2 {
            let a = stub_ids[rng.gen_range(0..stubs)];
            let b = stub_ids[rng.gen_range(0..stubs)];
            let joined = a == b || topo.neighbors(a).any(|(v, _)| v == b);
            if !joined {
                let attrs =
                    LinkAttrs::new(DataRate::from_mbps(rng.gen_range(5..100)), next_latency());
                let _ = topo.add_link(a, b, attrs);
            }
        }
        for _ in 0..clients {
            let c = topo.add_node(NodeKind::Client);
            let s = stub_ids[rng.gen_range(0..stubs)];
            let attrs = LinkAttrs::new(DataRate::from_mbps(rng.gen_range(5..20)), next_latency());
            topo.add_link(c, s, attrs).unwrap();
        }
        topo
    })
}

/// The adversarial counterpart of [`arb_unique_path_topology`]: every link
/// carries the *same* 1 ms latency, so any two equal-hop paths between a
/// node pair tie exactly, and random chords make such ties plentiful.
/// Bandwidths stay random — they are the observable that betrays *which*
/// tied path an algorithm collapsed, without affecting path cost.
///
/// Any two independent shortest-path computations (the distiller's collapse,
/// `shortest_path`, the reference simulator) must agree on these topologies
/// only if they pin ties the same way.
#[allow(dead_code)]
pub fn arb_tied_path_topology() -> impl Strategy<Value = Topology> {
    (4usize..9, 2usize..7, any::<u64>()).prop_map(|(stubs, clients, seed)| {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        let latency = SimDuration::from_millis(1);
        let mut topo = Topology::new();
        let stub_ids: Vec<_> = (0..stubs).map(|_| topo.add_node(NodeKind::Stub)).collect();
        for w in stub_ids.windows(2) {
            let attrs = LinkAttrs::new(DataRate::from_mbps(rng.gen_range(5..100)), latency);
            topo.add_link(w[0], w[1], attrs).unwrap();
        }
        // Chords create the equal-latency alternatives; aim for plenty.
        for _ in 0..stubs {
            let a = stub_ids[rng.gen_range(0..stubs)];
            let b = stub_ids[rng.gen_range(0..stubs)];
            let joined = a == b || topo.neighbors(a).any(|(v, _)| v == b);
            if !joined {
                let attrs = LinkAttrs::new(DataRate::from_mbps(rng.gen_range(5..100)), latency);
                let _ = topo.add_link(a, b, attrs);
            }
        }
        for _ in 0..clients {
            let c = topo.add_node(NodeKind::Client);
            let s = stub_ids[rng.gen_range(0..stubs)];
            let attrs = LinkAttrs::new(DataRate::from_mbps(rng.gen_range(5..20)), latency);
            topo.add_link(c, s, attrs).unwrap();
        }
        topo
    })
}
