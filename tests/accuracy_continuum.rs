//! The compensated accuracy differential, pinned against the reference
//! simulator on the congested regime.
//!
//! `BENCH_accuracy.json` charts the continuum on the paper-default ring,
//! where the interior is lightly loaded and the correct compensation load
//! is 0. This suite pins the *other* regime: a 20-router ring whose
//! transit links are saturated by the foreground workload itself. There
//! the last-mile collapse hides real ring contention inside private mesh
//! pipes, so the uncompensated distillation finishes transfers too fast —
//! and installing a compensation load sized to the contention the collapse
//! removed must strictly shrink the delivery-time error.
//!
//! Three pins:
//! 1. the hop-by-hop ground truth itself tracks `max_min_fair_share`
//!    (the refsim anchor — the truth we measure error against is real),
//! 2. compensated last-mile error < uncompensated last-mile error,
//!    strictly and substantially,
//! 3. the compensated configuration is bit-identical across
//!    Sequential/Threaded backends at 1, 2 and 4 cores.

use mn_distill::DistillationMode;
use mn_refsim::{max_min_fair_share, FlowSpec};
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::NodeId;
use mn_util::{ByteSize, DataRate};
use modelnet::{Experiment, SimDuration, SimTime};

/// Transfer size per foreground flow.
const SIZE_KB: u64 = 192;
/// Virtual horizon; flows still running at the horizon are censored to it.
const HORIZON_SECS: u64 = 30;
/// Compensation load for the compensated runs. Every transit link the
/// workload uses is shared by two flows, so each flow's collapsed pipe
/// hides roughly half the ring's capacity being consumed by its
/// competitor; 0.6 sizes the per-pipe compensation rate
/// (`bandwidth * load * (k-1)/k` = 1.6 of 3 Mb/s) so the mesh residual
/// (1.4 Mb/s) lands near the 1.5 Mb/s fair share the collapse hid.
const COMP_LOAD: f64 = 0.6;

/// A 20-router ring whose transit links (3 Mb/s) are the bottleneck: the
/// workload below puts two 1.5 Mb/s fair shares on every shared ring
/// link, under the 2 Mb/s client access rate.
fn congested_ring() -> RingParams {
    RingParams {
        routers: 20,
        clients_per_router: 2,
        ring_bandwidth: DataRate::from_mbps(3),
        ..RingParams::default()
    }
}

/// Four flows from router `5i`'s first client to router `5i+9`'s, `i` in
/// `0..4`. Nine ring links is strictly the shorter way around (the other
/// direction is eleven), so routes are unique; the spans tile the ring so
/// each flow shares eight of its nine transit links with a neighbouring
/// flow — congested, but never more than two competitors per link (more
/// pushes the TCP senders into pathological retransmission stalls).
fn workload_pairs(clients: &[NodeId]) -> Vec<(NodeId, NodeId)> {
    (0..4)
        .map(|i| (clients[2 * (5 * i)], clients[2 * ((5 * i + 9) % 20)]))
        .collect()
}

/// Runs the workload under one configuration and returns the exact
/// per-flow completion times (`None` = censored at the horizon).
fn completions(
    pairs: &[(NodeId, NodeId)],
    mode: DistillationMode,
    compensation: Option<f64>,
    cores: usize,
    threaded: bool,
) -> Vec<Option<SimTime>> {
    let mut exp = Experiment::new(ring_topology(&congested_ring()))
        .distillation(mode)
        .cores(cores)
        .edge_nodes(4)
        .unconstrained_hardware()
        .seed(17);
    if threaded {
        exp = exp.threaded();
    }
    if let Some(load) = compensation {
        exp = exp.compensation(load);
    }
    let mut runner = exp.build().expect("ring experiment builds");
    let binding = runner.binding().clone();
    let flows: Vec<_> = pairs
        .iter()
        .map(|(s, r)| {
            let src = binding.vn_at(*s).expect("sender bound");
            let dst = binding.vn_at(*r).expect("receiver bound");
            runner.add_bulk_flow(src, dst, Some(ByteSize::from_kb(SIZE_KB)), SimTime::ZERO)
        })
        .collect();
    for _ in 0..HORIZON_SECS {
        runner.run_for(SimDuration::from_secs(1)).unwrap();
        if flows.iter().all(|&f| runner.flow_completed_at(f).is_some()) {
            break;
        }
    }
    flows.iter().map(|&f| runner.flow_completed_at(f)).collect()
}

/// Mean per-flow delivery-time error vs the reference completions.
fn mean_error(reference: &[Option<SimTime>], times: &[Option<SimTime>]) -> f64 {
    let horizon = SimTime::from_secs(HORIZON_SECS).as_secs_f64();
    let secs = |t: &Option<SimTime>| t.map_or(horizon, |t| t.as_secs_f64());
    let mut sum = 0.0;
    for (r, t) in reference.iter().zip(times) {
        let (r, t) = (secs(r), secs(t));
        sum += (t - r).abs() / r;
    }
    sum / reference.len() as f64
}

#[test]
fn compensation_strictly_improves_the_congested_last_mile() {
    let topo = ring_topology(&congested_ring());
    let clients: Vec<NodeId> = topo.client_nodes().collect();
    let pairs = workload_pairs(&clients);

    // Refsim anchor, part 1: the workload is genuinely ring-limited — the
    // max-min fair share of every flow is half a shared transit link
    // (1.5 Mb/s), strictly below the 2 Mb/s access rate.
    let specs: Vec<FlowSpec> = pairs
        .iter()
        .map(|&(src, dst)| FlowSpec { src, dst })
        .collect();
    let reference = max_min_fair_share(&topo, &specs);
    for alloc in &reference {
        assert_eq!(alloc.hops, 11, "access + nine ring links + access");
        assert!(
            (alloc.rate.as_mbps_f64() - 1.5).abs() < 1e-9,
            "ring-limited split, got {} Mb/s",
            alloc.rate.as_mbps_f64()
        );
    }

    // Ground truth: hop-by-hop, one core, sequential.
    let truth = completions(&pairs, DistillationMode::HopByHop, None, 1, false);
    // Refsim anchor, part 2: the ground-truth goodput is bounded by the
    // reference fair share. TCP over eleven congested hops pays slow
    // start, queue drops and retransmissions, so the lower bound is loose
    // (the measured ratio is ~0.55); the upper bound is the sharp one — an
    // emulation bug letting flows beat max-min fairness would trip it.
    let bits = (SIZE_KB * 1024 * 8) as f64;
    for (fi, t) in truth.iter().enumerate() {
        let secs = t.expect("ground-truth transfer finishes").as_secs_f64();
        let goodput_mbps = bits / secs / 1e6;
        let reference_mbps = reference[fi].rate.as_mbps_f64();
        assert!(
            goodput_mbps >= reference_mbps * 0.4 && goodput_mbps <= reference_mbps * 1.1,
            "flow {fi}: hop-by-hop goodput {goodput_mbps:.2} Mb/s should track \
             the reference fair share {reference_mbps:.2} Mb/s"
        );
    }

    // The differential: uncompensated last-mile hides the ring contention
    // (each router pair gets a private 3 Mb/s mesh pipe, so flows run at
    // the 2 Mb/s access rate and finish early); the compensated mesh
    // residual sits near the fair share the collapse hid. The error must
    // shrink strictly — and substantially, not by a rounding artefact.
    let uncompensated = completions(&pairs, DistillationMode::LAST_MILE, None, 1, false);
    let compensated = completions(
        &pairs,
        DistillationMode::LAST_MILE,
        Some(COMP_LOAD),
        1,
        false,
    );
    let err_free = mean_error(&truth, &uncompensated);
    let err_comp = mean_error(&truth, &compensated);
    assert!(
        err_comp < err_free,
        "compensation must strictly improve the congested last-mile: \
         compensated {:.2}% vs uncompensated {:.2}%",
        err_comp * 100.0,
        err_free * 100.0
    );
    assert!(
        err_comp <= err_free * 0.75,
        "compensated {:.2}% should cut at least a quarter off {:.2}%",
        err_comp * 100.0,
        err_free * 100.0
    );

    // Bit-identity: with compensation active the Sequential and Threaded
    // backends must produce *exactly* the same completion times at every
    // core count.
    for cores in [1usize, 2, 4] {
        let seq = completions(
            &pairs,
            DistillationMode::LAST_MILE,
            Some(COMP_LOAD),
            cores,
            false,
        );
        let thr = completions(
            &pairs,
            DistillationMode::LAST_MILE,
            Some(COMP_LOAD),
            cores,
            true,
        );
        assert_eq!(
            seq, thr,
            "{cores}-core compensated completions diverge across backends"
        );
        assert_eq!(
            seq, compensated,
            "{cores}-core compensated completions diverge from the single-core run"
        );
    }
}
