//! Property suite for the sharded copy-on-write route table.
//!
//! Three invariants anchor the shard design:
//!
//! 1. **Observational equivalence.** Across random fail/restore/renegotiate
//!    sequences, the incrementally rewired sharded table must agree with a
//!    from-scratch dense reference on **every** `(src, dst)` lookup — same
//!    routability, same pipe sequence — with endpoints multiplexed two per
//!    location so row dedup is exercised throughout.
//! 2. **`RouteId` stability.** Pairs a step did not change keep their exact
//!    `RouteId` (descriptors in flight keep resolving), and every id still
//!    resolves to the pipe sequence the reference prescribes.
//! 3. **Copy-on-write identity.** After a rewire, the row shards of
//!    untouched sources are literally the same storage as before the step
//!    (`Arc` identity for spilled rows), and co-located endpoints keep
//!    sharing one shard — the publish cost is O(changed rows), which is the
//!    tentpole's whole point.

mod common;

use std::collections::HashSet;

use proptest::prelude::*;

use common::arb_unique_path_topology;
use mn_distill::{distill, DistillationMode, DistilledTopology, PipeId};
use mn_routing::{RouteId, RouteTable, RoutingMatrix};
use mn_topology::NodeId;
use mn_util::DataRate;

/// One random perturbation of a duplex link.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Fail the link (bandwidth to zero): routes detour or disappear.
    Down,
    /// Restore the link's build-time attributes.
    Restore,
    /// Double the link's latency: routes may shift without a failure.
    SlowerLatency,
    /// Halve the link's (nonzero) bandwidth: no routing impact at all.
    RenegotiateBandwidth,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Down),
        Just(Op::Restore),
        Just(Op::SlowerLatency),
        Just(Op::RenegotiateBandwidth),
    ]
}

/// Applies `op` to both directions of the `link_choice`-th duplex link,
/// returning the mutated pipes. Hop-by-hop distillation adds duplex pairs
/// back to back: pipes 2k and 2k+1 are the two directions of link k.
fn apply_op(
    d: &mut DistilledTopology,
    original: &[mn_distill::PipeAttrs],
    link_choice: usize,
    op: Op,
) -> Vec<PipeId> {
    let links = d.pipe_count() / 2;
    let k = link_choice % links;
    let pipes = vec![PipeId(2 * k), PipeId(2 * k + 1)];
    for &p in &pipes {
        let attrs = d.pipe_attrs_mut(p).expect("pipe exists");
        match op {
            Op::Down => attrs.bandwidth = DataRate::ZERO,
            Op::Restore => *attrs = original[p.index()],
            Op::SlowerLatency => attrs.latency = attrs.latency * 2,
            Op::RenegotiateBandwidth => attrs.bandwidth = attrs.bandwidth.mul_f64(0.5),
        }
    }
    pipes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn sharded_table_matches_dense_reference_under_random_dynamics(
        topo in arb_unique_path_topology(Just(0.0)),
        ops in prop::collection::vec((any::<usize>(), arb_op()), 1..10),
    ) {
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let original: Vec<_> = d.pipes().map(|(_, p)| p.attrs).collect();
        let mut matrix = RoutingMatrix::build(&d);
        // Two endpoints per location: half the endpoint set repeats the VN
        // list, so every row shard is shared by a co-located pair and
        // same-location pairs must stay unroutable (local delivery).
        let mut locations = d.vns().to_vec();
        locations.extend(d.vns().to_vec());
        let n = locations.len();
        let half = n / 2;
        let mut table = RouteTable::build(&matrix, &locations);

        for (choice, op) in ops {
            let before = table.clone();
            let ids_before: Vec<Option<RouteId>> = (0..n * n)
                .map(|i| table.route_id(i / n, i % n))
                .collect();
            let changed_pipes = apply_op(&mut d, &original, choice, op);
            let update = matrix.update_pipes(&d, &changed_pipes);
            if !update.is_empty() {
                table.rewire_in_place(&matrix, &locations, &update.changed_pairs);
            }

            // 1. Every (src, dst) lookup agrees with a scratch-built dense
            //    reference of the mutated pipe graph.
            let scratch = RoutingMatrix::build(&d);
            for s in 0..n {
                for t in 0..n {
                    let expected = if locations[s] == locations[t] {
                        None
                    } else {
                        scratch.lookup(locations[s], locations[t]).and_then(|r| {
                            if r.is_empty() {
                                None
                            } else {
                                Some(r.pipes)
                            }
                        })
                    };
                    let got = table.route_id(s, t).map(|id| table.pipes(id).to_vec());
                    prop_assert_eq!(got, expected, "pair ({}, {}) after {:?}", s, t, op);
                }
            }

            // 2. RouteId stability: pairs the update did not list keep
            //    their exact pre-step id.
            let changed_set: HashSet<(NodeId, NodeId)> =
                update.changed_pairs.iter().copied().collect();
            for s in 0..n {
                for t in 0..n {
                    if !changed_set.contains(&(locations[s], locations[t])) {
                        prop_assert_eq!(
                            table.route_id(s, t),
                            ids_before[s * n + t],
                            "untouched pair ({}, {}) must keep its RouteId after {:?}",
                            s, t, op
                        );
                    }
                }
            }

            // 3. Copy-on-write identity: sources with no changed pair keep
            //    literally the same row storage across the rewire, and
            //    co-located endpoints still share one shard.
            let changed_sources: HashSet<NodeId> =
                changed_set.iter().map(|&(src, _)| src).collect();
            for (s, loc) in locations.iter().enumerate() {
                if !changed_sources.contains(loc) {
                    prop_assert!(
                        table.row_storage_shared(&before, s),
                        "untouched source {} lost its shard storage after {:?}",
                        s, op
                    );
                }
            }
            for s in 0..half {
                prop_assert!(
                    table.row_storage_shared(&table, s),
                    "shard identity must be reflexive"
                );
                prop_assert_eq!(
                    table.spilled_row_ptr(s),
                    table.spilled_row_ptr(s + half),
                    "co-located endpoints {} and {} must share one shard",
                    s, s + half
                );
            }
        }
    }
}
