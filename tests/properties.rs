//! Property-based tests on the invariants DESIGN.md calls out: distillation
//! preserves end-to-end path quality bounds, routing structures agree, pipes
//! conserve packets, CDFs are monotone, and the virtual-time emulation is
//! deterministic for a seed.

use proptest::prelude::*;

use mn_distill::{distill, frontier_sets, DistillationMode};
use mn_pipe::EmuPipe;
use mn_routing::{route_between, RouteCache, RouteProvider, RoutingMatrix};
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::paths::{shortest_path, PathMetric};
use mn_topology::{LinkAttrs, NodeKind, Topology};
use mn_util::rngs::seeded_rng;
use mn_util::{ByteSize, Cdf, DataRate, SimDuration, SimTime};

/// A small random connected topology: a chain of stubs with clients hanging
/// off random positions and a few random chords.
fn arb_topology() -> impl Strategy<Value = Topology> {
    (3usize..10, 2usize..8, any::<u64>()).prop_map(|(stubs, clients, seed)| {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        let mut topo = Topology::new();
        let stub_ids: Vec<_> = (0..stubs).map(|_| topo.add_node(NodeKind::Stub)).collect();
        for w in stub_ids.windows(2) {
            let attrs = LinkAttrs::new(
                DataRate::from_mbps(rng.gen_range(1..100)),
                SimDuration::from_millis(rng.gen_range(1..20)),
            )
            .with_loss(rng.gen_range(0.0..0.05));
            topo.add_link(w[0], w[1], attrs).unwrap();
        }
        // A few chords.
        for _ in 0..stubs / 2 {
            let a = stub_ids[rng.gen_range(0..stubs)];
            let b = stub_ids[rng.gen_range(0..stubs)];
            if a != b {
                let attrs = LinkAttrs::new(
                    DataRate::from_mbps(rng.gen_range(1..100)),
                    SimDuration::from_millis(rng.gen_range(1..20)),
                );
                let _ = topo.add_link(a, b, attrs);
            }
        }
        for _ in 0..clients {
            let c = topo.add_node(NodeKind::Client);
            let s = stub_ids[rng.gen_range(0..stubs)];
            let attrs = LinkAttrs::new(
                DataRate::from_mbps(rng.gen_range(1..20)),
                SimDuration::from_millis(rng.gen_range(1..10)),
            );
            topo.add_link(c, s, attrs).unwrap();
        }
        topo
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// End-to-end distillation preserves each VN pair's path quality: the
    /// collapsed pipe's latency equals the shortest-path latency and its
    /// bandwidth equals the path bottleneck.
    #[test]
    fn end_to_end_collapse_preserves_path_quality(topo in arb_topology()) {
        let distilled = distill(&topo, DistillationMode::EndToEnd);
        let vns: Vec<_> = topo.client_nodes().collect();
        for (i, &a) in vns.iter().enumerate() {
            for &b in vns.iter().skip(i + 1) {
                let path = shortest_path(&topo, a, b, PathMetric::Latency).unwrap();
                let pipe_id = distilled.find_pipe(a, b).expect("mesh pipe exists");
                let pipe = distilled.pipe(pipe_id);
                prop_assert_eq!(pipe.attrs.latency, path.total_latency(&topo));
                prop_assert_eq!(pipe.attrs.bandwidth, path.bottleneck_bandwidth(&topo));
                // Reliability never exceeds any single link's reliability.
                prop_assert!(pipe.attrs.reliability() <= 1.0 + 1e-12);
                prop_assert!(pipe.attrs.reliability() >= path.reliability(&topo) - 1e-9);
            }
        }
    }

    /// Every distillation mode keeps all VN pairs mutually reachable through
    /// the pipe graph.
    #[test]
    fn distillation_preserves_vn_reachability(topo in arb_topology()) {
        for mode in [DistillationMode::HopByHop, DistillationMode::LAST_MILE, DistillationMode::EndToEnd] {
            let d = distill(&topo, mode);
            let vns = d.vns().to_vec();
            for &a in &vns {
                for &b in &vns {
                    if a != b {
                        prop_assert!(
                            route_between(&d, a, b).is_some(),
                            "{:?}: no route {} -> {}", mode, a, b
                        );
                    }
                }
            }
        }
    }

    /// Frontier sets: VNs are level 1 and every level-k node (k > 1) has a
    /// neighbour at level k-1.
    #[test]
    fn frontier_sets_are_well_formed(topo in arb_topology()) {
        let levels = frontier_sets(&topo);
        for vn in topo.client_nodes() {
            prop_assert_eq!(levels[vn.index()], Some(1));
        }
        for node in topo.node_ids() {
            if let Some(level) = levels[node.index()] {
                if level > 1 {
                    let has_parent = topo
                        .neighbors(node)
                        .any(|(n, _)| levels[n.index()] == Some(level - 1));
                    prop_assert!(has_parent);
                }
            }
        }
    }

    /// The routing matrix and the on-demand cache agree on hop counts for
    /// every pair.
    #[test]
    fn matrix_and_cache_agree(topo in arb_topology()) {
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let mut cache = RouteCache::with_default_capacity(d);
        for &a in matrix.vns() {
            for &b in matrix.vns() {
                let m = matrix.lookup(a, b).map(|r| r.hop_count());
                let c = cache.route(a, b).map(|r| r.hop_count());
                prop_assert_eq!(m, c);
            }
        }
    }

    /// Pipes conserve packets: offered = delivered + dropped + in flight.
    #[test]
    fn pipes_conserve_packets(
        queue in 1usize..40,
        loss in 0.0f64..0.3,
        sizes in prop::collection::vec(40u64..1500, 1..300),
    ) {
        let mut attrs = mn_distill::PipeAttrs::new(
            DataRate::from_mbps(2),
            SimDuration::from_millis(10),
        );
        attrs.queue_len = queue;
        attrs.loss_rate = loss;
        let mut pipe: EmuPipe<usize> = EmuPipe::new(attrs);
        let mut rng = seeded_rng(7);
        let mut t = SimTime::ZERO;
        let mut delivered = 0u64;
        for (i, &size) in sizes.iter().enumerate() {
            t += SimDuration::from_micros(200);
            let _ = pipe.enqueue(t, ByteSize::from_bytes(size), i, &mut rng);
            delivered += pipe.dequeue_ready(t).len() as u64;
        }
        let in_flight = pipe.in_flight_count() as u64;
        let stats = pipe.stats();
        prop_assert!(stats.is_conserved(sizes.len() as u64));
        prop_assert_eq!(stats.dequeued, delivered);
        prop_assert_eq!(
            sizes.len() as u64,
            delivered + in_flight + stats.dropped_total()
        );
    }

    /// CDFs are monotone non-decreasing in both coordinates and end at 1.0.
    #[test]
    fn cdf_points_are_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut cdf = Cdf::new();
        cdf.extend(samples.iter().copied());
        let pts = cdf.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
    }
}

/// Determinism is checked outside proptest (it is expensive): two runs with
/// the same seed produce identical flow results and core counters.
#[test]
fn emulation_is_deterministic_for_a_seed() {
    use modelnet::{
        ByteSize as B, DistillationMode as DM, Experiment, SimDuration as D, SimTime as T,
    };
    let run = || {
        let topo = ring_topology(&RingParams {
            routers: 5,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut runner = Experiment::new(topo)
            .distillation(DM::HopByHop)
            .seed(1234)
            .build()
            .unwrap();
        let vns = runner.vn_ids();
        let f1 = runner.add_bulk_flow(vns[0], vns[5], Some(B::from_kb(200)), T::ZERO);
        let f2 = runner.add_bulk_flow(vns[2], vns[7], None, T::ZERO);
        runner.run_for(D::from_secs(6)).unwrap();
        (
            runner.flow_completed_at(f1),
            runner.flow_bytes_acked(f2),
            runner.emulator().total_stats().packets_delivered,
        )
    };
    assert_eq!(run(), run());
}
