//! Integration tests spanning the whole workspace: the five-phase pipeline,
//! single- vs multi-core equivalence, fault injection with re-routing, and
//! accuracy bounds — each exercising several crates together through the
//! public `modelnet` API.

use mn_apps::{CfsClient, CfsConfig, CfsServer, ChordRing};
use mn_distill::DistillationMode;
use mn_dynamics::{FaultInjector, FaultKind, LinkPerturbation};
use mn_topology::generators::{
    dumbbell_topology, ring_topology, star_topology, DumbbellParams, RingParams, StarParams,
};
use mn_topology::gml;
use mn_topology::ron::{ron_mesh, RonMeshParams};
use modelnet::{
    ByteSize, DataRate, DistilledTopology, Experiment, HardwareProfile, Runner, SimDuration,
    SimTime,
};

fn finish_bulk(runner: &mut Runner, flow: modelnet::FlowId, secs: u64) -> Option<SimTime> {
    runner.run_for(SimDuration::from_secs(secs)).unwrap();
    runner.flow_completed_at(flow)
}

#[test]
fn gml_roundtrip_feeds_the_full_pipeline() {
    // Create a topology, write it to GML, read it back, and emulate on it.
    let topo = ring_topology(&RingParams {
        routers: 4,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let text = gml::write_topology(&topo);
    let parsed = gml::parse_topology(&text).expect("round trip parses");
    let mut runner = Experiment::new(parsed)
        .distillation(DistillationMode::HopByHop)
        .unconstrained_hardware()
        .build()
        .expect("experiment builds from parsed GML");
    let vns = runner.vn_ids();
    let flow = runner.add_bulk_flow(vns[0], vns[5], Some(ByteSize::from_kb(64)), SimTime::ZERO);
    assert!(finish_bulk(&mut runner, flow, 20).is_some());
}

#[test]
fn single_and_multi_core_emulations_agree_when_unconstrained() {
    // With no hardware ceilings, splitting the emulation across cores must
    // not change what flows achieve (tunnelling adds only switch latency).
    let run = |cores: usize| -> f64 {
        let topo = star_topology(&StarParams {
            clients: 12,
            ..StarParams::default()
        });
        let mut runner = Experiment::new(topo)
            .distillation(DistillationMode::HopByHop)
            .cores(cores)
            .edge_nodes(4)
            .unconstrained_hardware()
            .seed(9)
            .build()
            .unwrap();
        let vns = runner.vn_ids();
        let mut flows = Vec::new();
        for i in 0..6 {
            flows.push(runner.add_bulk_flow(vns[i], vns[i + 6], None, SimTime::ZERO));
        }
        runner.run_for(SimDuration::from_secs(8)).unwrap();
        flows
            .iter()
            .map(|&f| runner.flow_goodput_kbps(f))
            .sum::<f64>()
            / flows.len() as f64
    };
    let single = run(1);
    let quad = run(4);
    assert!(
        single > 5_000.0,
        "flows should approach the 10 Mb/s spokes: {single}"
    );
    let ratio = quad / single;
    assert!(
        (0.85..=1.15).contains(&ratio),
        "multi-core emulation diverged: single {single:.0} kbps vs quad {quad:.0} kbps"
    );
}

#[test]
fn distillation_modes_preserve_uncontended_path_quality() {
    // A single flow sees the same bandwidth and latency regardless of
    // distillation mode (differences only appear under shared congestion).
    let mut results = Vec::new();
    for mode in [
        DistillationMode::HopByHop,
        DistillationMode::LAST_MILE,
        DistillationMode::EndToEnd,
    ] {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut runner = Experiment::new(topo)
            .distillation(mode)
            .unconstrained_hardware()
            .seed(4)
            .build()
            .unwrap();
        let vns = runner.vn_ids();
        let flow = runner.add_bulk_flow(vns[0], vns[7], None, SimTime::ZERO);
        runner.run_for(SimDuration::from_secs(10)).unwrap();
        results.push(runner.flow_goodput_kbps(flow));
    }
    let min = results.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = results.iter().cloned().fold(0.0, f64::max);
    assert!(
        min > 1_500.0,
        "a lone flow should fill its 2 Mb/s access link: {results:?}"
    );
    assert!(
        max / min < 1.15,
        "distillation changed an uncontended flow: {results:?}"
    );
}

#[test]
fn link_failure_reroutes_after_matrix_rebuild() {
    // Fail every pipe on the flow's current route, rebuild routing, and check
    // traffic still flows if an alternative exists (a ring always has one).
    let topo = ring_topology(&RingParams {
        routers: 6,
        clients_per_router: 1,
        ..RingParams::default()
    });
    let (mut runner, mut distilled) = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .unconstrained_hardware()
        .seed(6)
        .build_with_distilled()
        .expect("builds");
    let vns = runner.vn_ids();
    let flow = runner.add_bulk_flow(vns[0], vns[3], None, SimTime::ZERO);
    runner.run_for(SimDuration::from_secs(3)).unwrap();
    let before = runner.flow_bytes_acked(flow);
    assert!(before > 0);

    // Fail one ring link on the shortest arc by zeroing its bandwidth in both
    // the emulator and the distilled graph, then recompute routes.
    let src_loc = runner.binding().location(vns[0]).unwrap();
    let dst_loc = runner.binding().location(vns[3]).unwrap();
    let route = runner
        .emulator()
        .routing()
        .lookup(src_loc, dst_loc)
        .unwrap()
        .clone();
    let failed_pipe = route.pipes[1];
    let mut failed_attrs = distilled.pipe(failed_pipe).attrs;
    failed_attrs.bandwidth = DataRate::ZERO;
    distilled.pipe_attrs_mut(failed_pipe).unwrap().bandwidth = DataRate::ZERO;
    // Also fail the reverse pipe so ACKs cannot sneak through.
    let rev = distilled
        .find_pipe(
            distilled.pipe(failed_pipe).dst,
            distilled.pipe(failed_pipe).src,
        )
        .unwrap();
    distilled.pipe_attrs_mut(rev).unwrap().bandwidth = DataRate::ZERO;
    runner
        .emulator_mut()
        .update_pipe_attrs(failed_pipe, failed_attrs);
    runner.emulator_mut().update_pipe_attrs(rev, failed_attrs);
    // "Perfect routing protocol": recompute all-pairs routes immediately.
    let new_matrix = mn_routing::RoutingMatrix::build(&distilled);
    runner.emulator_mut().set_routing(new_matrix);

    runner.run_for(SimDuration::from_secs(6)).unwrap();
    let after = runner.flow_bytes_acked(flow);
    assert!(
        after > before + 200_000,
        "flow should keep making progress around the other arc of the ring \
         (before {before}, after {after})"
    );
}

#[test]
fn emulation_error_stays_within_per_hop_tick_bound() {
    let topo = ring_topology(&RingParams {
        routers: 8,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let mut runner = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .hardware(HardwareProfile::paper_core())
        .seed(12)
        .build()
        .unwrap();
    let vns = runner.vn_ids();
    for i in 0..4 {
        runner.add_bulk_flow(vns[i], vns[i + 8], None, SimTime::ZERO);
    }
    runner.run_for(SimDuration::from_secs(5)).unwrap();
    let core = &runner.emulator().cores()[0];
    assert!(core.accuracy().delivered() > 1_000);
    assert!(
        core.accuracy().within_bound(SimDuration::from_micros(100)),
        "per-hop error {} us exceeds the tick",
        core.accuracy().max_per_hop_error().as_micros_f64()
    );
}

#[test]
fn packet_debt_correction_reduces_end_to_end_error() {
    let run = |debt: bool| -> f64 {
        let (topo, pairs) = mn_topology::generators::path_pairs_topology(
            &mn_topology::generators::PathPairsParams {
                pairs: 2,
                hops: 8,
                ..Default::default()
            },
        );
        let profile = if debt {
            HardwareProfile::paper_core().with_debt_correction()
        } else {
            HardwareProfile::paper_core()
        };
        let mut runner = Experiment::new(topo)
            .distillation(DistillationMode::HopByHop)
            .hardware(profile)
            .seed(2)
            .allow_disconnected()
            .build()
            .unwrap();
        let binding = runner.binding().clone();
        for (s, r) in &pairs {
            runner.add_bulk_flow(
                binding.vn_at(*s).unwrap(),
                binding.vn_at(*r).unwrap(),
                None,
                SimTime::ZERO,
            );
        }
        runner.run_for(SimDuration::from_secs(3)).unwrap();
        runner.emulator().cores()[0].accuracy().mean_error_us()
    };
    let without = run(false);
    let with = run(true);
    assert!(
        with <= without,
        "debt correction should not increase mean error ({with} vs {without})"
    );
}

#[test]
fn cfs_download_completes_over_the_ron_mesh() {
    let mesh = ron_mesh(&RonMeshParams::default());
    let mut runner = Experiment::new(mesh.topology)
        .distillation(DistillationMode::HopByHop)
        .unconstrained_hardware()
        .edge_nodes(12)
        .seed(2002)
        .build()
        .unwrap();
    let vns = runner.vn_ids();
    let ring = ChordRing::new(vns.iter().copied());
    let config = CfsConfig {
        prefetch_window: 40 * 1024,
        ..CfsConfig::default()
    };
    for (i, &vn) in vns.iter().enumerate() {
        if i == 0 {
            runner.add_application(vn, Box::new(CfsClient::new(vn, ring.clone(), config)));
        } else {
            runner.add_application(vn, Box::new(CfsServer::new(vn, ring.clone())));
        }
    }
    runner.run_for(SimDuration::from_secs(120)).unwrap();
    let client = runner.app_as::<CfsClient>(vns[0]).unwrap();
    assert!(
        client.is_complete(),
        "completed {} blocks",
        client.blocks_completed()
    );
    let speed = client.download_speed_kbytes_per_sec().unwrap();
    assert!(
        speed > 20.0 && speed < 5_000.0,
        "download speed {speed} kB/s outside the plausible wide-area range"
    );
}

#[test]
fn fault_injector_and_emulator_stay_consistent() {
    let (topo, _, _) = dumbbell_topology(&DumbbellParams::default());
    let (mut runner, distilled): (Runner, DistilledTopology) = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .unconstrained_hardware()
        .build_with_distilled()
        .unwrap();
    let mut injector = FaultInjector::new(&distilled, 3);
    let events = injector.perturb(
        SimTime::from_secs(1),
        &LinkPerturbation {
            fraction: 1.0,
            kind: FaultKind::DelayIncrease { min: 0.1, max: 0.1 },
        },
    );
    assert_eq!(events.len(), distilled.pipe_count());
    for e in events {
        assert!(runner.emulator_mut().update_pipe_attrs(e.pipe, e.attrs));
    }
}
