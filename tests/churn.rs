//! Live endpoint churn differential suite.
//!
//! VN join/leave are first-class `ScheduleEvent`s: a departing VN's new
//! traffic is refused from the apply point on while in-flight descriptors
//! drain on their pre-departure routes, and a joining VN is routed
//! incrementally (its source tree and row shard are added without a full
//! rebuild). Two families of checks pin the subsystem:
//!
//! 1. **Churn differential (proptest).** Random unique-shortest-path
//!    topologies with a leave/rejoin schedule run through Sequential and
//!    Threaded backends at 1, 2 and 4 cores; per-phase probe admissions
//!    and hop counts must match `mn_refsim::ScheduledTopology` replaying
//!    the same membership changes, and the two backends must stay
//!    bit-identical through every churn event.
//! 2. **Sustained churn rate.** A larger overlay with ~10% of its VNs
//!    churning per virtual minute, driven end to end through the schedule
//!    engine: active-membership tracking, per-packet accounting and
//!    Sequential/Threaded bit-identity must all hold across the run.

mod common;

use proptest::prelude::*;

use common::arb_unique_path_topology;
use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode, DistilledTopology};
use mn_dynamics::{Schedule, ScheduleEngine};
use mn_emucore::{HardwareProfile, MultiCoreEmulator, ParallelEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
use mn_refsim::{FlowSpec, ScheduledTopology};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::NodeId;
use mn_util::{SimDuration, SimTime};
use modelnet::EmulatorBackend;

fn udp_packet(id: u64, src: VnId, dst: VnId, payload: u32, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: payload,
            seq: id,
        },
        now,
    )
}

fn build_backend(
    d: &DistilledTopology,
    cores: usize,
    threaded: bool,
    seed: u64,
) -> (EmulatorBackend, Binding) {
    let matrix = RoutingMatrix::build(d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
    let pod = greedy_k_clusters(d, cores, 7);
    let seq = MultiCoreEmulator::new(
        d,
        pod,
        matrix,
        &binding,
        HardwareProfile::unconstrained(),
        seed,
    );
    let backend = if threaded {
        EmulatorBackend::Threaded(ParallelEmulator::from_sequential(seq))
    } else {
        EmulatorBackend::Sequential(seq)
    };
    (backend, binding)
}

/// One probe observation: phase time, flow index, admission, and — when
/// admitted — the exact delivery time and hop count.
type ProbeRecord = (SimTime, usize, bool, Option<(SimTime, usize)>);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random leave/rejoin schedules against the reference simulator's
    /// membership model, on 1, 2 and 4 cores, both backends: a probe is
    /// admitted exactly when the reference routes it (both endpoints are
    /// members), admitted probes match the reference route hop for hop,
    /// and the backends agree bit for bit.
    #[test]
    fn churn_schedule_agrees_with_reference_across_backends(
        topo in arb_unique_path_topology(Just(0.0)),
        churn_seed in any::<u64>(),
    ) {
        let d = distill(&topo, DistillationMode::HopByHop);
        let clients: Vec<NodeId> = d.vns().to_vec();
        let n = clients.len();
        prop_assert!(n >= 2, "generator always binds at least two clients");
        let t = SimTime::from_millis;

        // Two distinct victims: A leaves at 100 ms and rejoins at 300 ms,
        // B leaves at 200 ms and rejoins at 400 ms — so the run passes
        // through phases with zero, one and two absentees.
        let va = (churn_seed as usize) % n;
        let vb = (va + 1 + (churn_seed >> 8) as usize % (n - 1)) % n;
        let reference = ScheduledTopology::new(topo.clone())
            .node_leave(t(100), clients[va])
            .node_leave(t(200), clients[vb])
            .node_join(t(300), clients[va])
            .node_join(t(400), clients[vb]);
        let probe_times = [t(50), t(150), t(250), t(350), t(450)];
        let payload: u32 = 800;
        let tick = SimDuration::from_micros(100);

        let run = |cores: usize, threaded: bool| -> Vec<ProbeRecord> {
            let (mut backend, binding) = build_backend(&d, cores, threaded, 5);
            let schedule = Schedule::new()
                .vn_leave(t(100), binding.vn_at(clients[va]).unwrap())
                .vn_leave(t(200), binding.vn_at(clients[vb]).unwrap())
                .vn_join(t(300), binding.vn_at(clients[va]).unwrap(), clients[va])
                .vn_join(t(400), binding.vn_at(clients[vb]).unwrap(), clients[vb]);
            let mut engine = ScheduleEngine::new(d.clone(), schedule);
            let mut records = Vec::new();
            let mut id = 0u64;
            for &probe_at in &probe_times {
                let _ = engine.apply_due(probe_at, &mut backend);
                for fi in 0..n {
                    let src = binding.vn_at(clients[fi]).unwrap();
                    let dst = binding.vn_at(clients[(fi + 1) % n]).unwrap();
                    let pkt = udp_packet(id, src, dst, payload, probe_at);
                    id += 1;
                    let outcome = backend.submit(probe_at, pkt).unwrap();
                    let mut delivered = None;
                    if outcome.is_accepted() {
                        let mut deliveries = Vec::new();
                        let mut now = probe_at;
                        for _ in 0..100_000 {
                            let Some(next) = backend.next_wakeup() else { break };
                            now = now.max(next);
                            backend.advance_into(now, &mut deliveries).unwrap();
                            if !deliveries.is_empty() {
                                break;
                            }
                        }
                        assert_eq!(deliveries.len(), 1, "probe {fi} at {probe_at}");
                        delivered = Some((deliveries[0].delivered_at, deliveries[0].hops));
                    }
                    records.push((probe_at, fi, outcome.is_accepted(), delivered));
                }
            }
            records
        };

        for cores in [1usize, 2, 4] {
            let sequential = run(cores, false);
            let threaded = run(cores, true);
            prop_assert_eq!(
                &sequential, &threaded,
                "{}-core churn probes diverge across backends", cores
            );
            for &(probe_at, fi, accepted, delivered) in &sequential {
                let flow = FlowSpec {
                    src: clients[fi],
                    dst: clients[(fi + 1) % n],
                };
                let allocation = &reference.allocations_at(probe_at, &[flow])[0];
                // Admission must mirror the reference's membership: the
                // emulation refuses exactly the flows the reference zeroes.
                prop_assert_eq!(
                    accepted,
                    allocation.hops > 0,
                    "probe {}@{}: admission disagrees with reference membership",
                    fi, probe_at
                );
                if let Some((delivered_at, hops)) = delivered {
                    prop_assert_eq!(hops, allocation.hops, "probe {}@{}", fi, probe_at);
                    let size = udp_packet(0, VnId(0), VnId(1), payload, SimTime::ZERO).size;
                    let tx = allocation.rate.transmission_time(size);
                    let delay = delivered_at - probe_at;
                    let lower = allocation.latency + tx;
                    let upper = allocation.latency
                        + tx * hops as u64
                        + tick * (hops as u64 + 1);
                    prop_assert!(
                        delay >= lower && delay <= upper,
                        "probe {}@{}: delay {} outside [{}, {}]",
                        fi, probe_at, delay, lower, upper
                    );
                }
            }
        }
    }
}

/// Sustained churn at the satellite's target rate: ~10% of the overlay
/// churns per virtual minute for five minutes, driven end to end through
/// first-class schedule events. Tracks active membership minute by minute,
/// checks the per-packet ledger (every admitted packet is delivered — the
/// loss-free overlay has no other sink), and pins Sequential against
/// Threaded at 2 and 4 cores bit for bit.
#[test]
fn sustained_ten_percent_churn_per_virtual_minute() {
    let topo = ring_topology(&RingParams {
        routers: 6,
        clients_per_router: 10,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let clients: Vec<NodeId> = d.vns().to_vec();
    let n = clients.len();
    assert_eq!(n, 60);
    let churn_per_minute = n / 10;
    let minute = |m: u64| SimTime::from_secs(m * 60);

    type RunLog = (Vec<(u64, SimTime, usize)>, Vec<usize>, u64, u64);
    let run = |cores: usize, threaded: bool| -> RunLog {
        let (mut backend, binding) = build_backend(&d, cores, threaded, 11);
        // Minute m: client batch [m*6, m*6+6) leaves; the previous
        // minute's leavers rejoin. Five minutes cover half the overlay.
        let mut schedule = Schedule::new();
        for m in 0..5u64 {
            for k in 0..churn_per_minute {
                let leaver = (m as usize * churn_per_minute + k) % n;
                schedule =
                    schedule.vn_leave(minute(m + 1), binding.vn_at(clients[leaver]).unwrap());
                if m > 0 {
                    let rejoiner = ((m as usize - 1) * churn_per_minute + k) % n;
                    schedule = schedule.vn_join(
                        minute(m + 1),
                        binding.vn_at(clients[rejoiner]).unwrap(),
                        clients[rejoiner],
                    );
                }
            }
        }
        let mut engine = ScheduleEngine::new(d.clone(), schedule);
        let mut deliveries_log = Vec::new();
        let mut active_log = Vec::new();
        let mut offered = 0u64;
        let mut accepted = 0u64;
        let mut id = 0u64;
        for m in 0..6u64 {
            let now = minute(m);
            let _ = engine.apply_due(now, &mut backend);
            active_log.push(backend.active_vn_count());
            // A full round of neighbor traffic every minute, staggered
            // 1 ms apart so the loss-free overlay stays drop-free;
            // departed VNs are refused, the rest flow.
            for fi in 0..n {
                let at = now + SimDuration::from_millis(fi as u64);
                let src = binding.vn_at(clients[fi]).unwrap();
                let dst = binding.vn_at(clients[(fi + 7) % n]).unwrap();
                let outcome = backend
                    .submit(at, udp_packet(id, src, dst, 600, at))
                    .unwrap();
                id += 1;
                offered += 1;
                if outcome.is_accepted() {
                    accepted += 1;
                }
            }
            // Drain the minute's traffic to idle.
            let mut drained = Vec::new();
            let mut t = now;
            for _ in 0..100_000 {
                let Some(next) = backend.next_wakeup() else {
                    break;
                };
                t = t.max(next);
                backend.advance_into(t, &mut drained).unwrap();
            }
            for delivery in &drained {
                deliveries_log.push((delivery.packet.id.0, delivery.delivered_at, delivery.hops));
            }
        }
        let stats = backend.total_stats();
        assert_eq!(stats.packets_admitted, stats.packets_delivered);
        assert_eq!(stats.dropped_unreachable, 0);
        (deliveries_log, active_log, offered, accepted)
    };

    let sequential = run(2, false);
    assert_eq!(sequential, run(2, true), "2-core churn run diverges");
    let four = run(4, false);
    assert_eq!(four, run(4, true), "4-core churn run diverges");

    let (deliveries, active, offered, accepted) = sequential;
    // Minute 0 has everyone; each later minute is 10% short (the rejoin
    // backfills the previous minute's leavers as the next batch departs).
    assert_eq!(active[0], n);
    for &a in &active[1..] {
        assert_eq!(a, n - churn_per_minute);
    }
    // Departed endpoints are refused, everything admitted is delivered.
    assert!(offered > accepted, "churn must refuse some traffic");
    assert_eq!(deliveries.len() as u64, accepted);
}
