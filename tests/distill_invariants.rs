//! Distillation invariants (§4.1 of the paper), pinned across all four
//! modes on generated topologies: pipe counts, the collapse arithmetic
//! (minimum bandwidth, summed latency, multiplied reliability), route
//! length bounds, and the paper's "last-mile" configuration.

mod common;

use proptest::prelude::*;

use common::{arb_tied_path_topology, arb_unique_path_topology};

use mn_distill::{distill, frontier_sets, DistillationMode};
use mn_routing::route_between;
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::paths::{shortest_path, PathMetric};
use mn_topology::{LinkAttrs, NodeId, NodeKind, Topology};
use mn_util::{DataRate, SimDuration};

/// Undirected pipe count the paper's last-mile distillation must produce:
/// every client access link preserved, plus a full mesh over the reachable
/// non-client interior.
fn expected_last_mile_pipes(topo: &Topology) -> usize {
    let levels = frontier_sets(topo);
    let is_client = |n: NodeId| -> bool { matches!(levels[n.index()], Some(1)) };
    let preserved = topo
        .links()
        .filter(|(_, l)| is_client(l.a) || is_client(l.b))
        .count();
    let interior = topo
        .node_ids()
        .filter(|&n| matches!(levels[n.index()], Some(l) if l > 1))
        .count();
    preserved + interior * (interior - 1) / 2
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Hop-by-hop distillation is isomorphic to the target: two directed
    /// pipes per link, each carrying its link's exact attributes.
    #[test]
    fn hop_by_hop_pipe_count_and_attrs(topo in arb_unique_path_topology(0.0f64..0.05)) {
        let d = distill(&topo, DistillationMode::HopByHop);
        prop_assert_eq!(d.pipe_count(), 2 * topo.link_count());
        prop_assert_eq!(d.undirected_pipe_count(), topo.link_count());
        for (_, pipe) in d.pipes() {
            // The source link is the unique link joining the pipe's ends.
            let link = topo
                .links()
                .find(|(_, l)| {
                    (l.a == pipe.src && l.b == pipe.dst) || (l.a == pipe.dst && l.b == pipe.src)
                })
                .map(|(_, l)| l)
                .expect("every pipe mirrors a target link");
            prop_assert_eq!(pipe.attrs.bandwidth, link.attrs.bandwidth);
            prop_assert_eq!(pipe.attrs.latency, link.attrs.latency);
            prop_assert!((pipe.attrs.reliability() - link.attrs.reliability()).abs() < 1e-12);
        }
    }

    /// End-to-end distillation is a full mesh over the VNs whose collapsed
    /// pipes carry exactly (min bandwidth, sum latency, product
    /// reliability) of the unique shortest path.
    #[test]
    fn end_to_end_collapse_arithmetic(topo in arb_unique_path_topology(0.0f64..0.05)) {
        let d = distill(&topo, DistillationMode::EndToEnd);
        let vns: Vec<NodeId> = topo.client_nodes().collect();
        let n = vns.len();
        prop_assert_eq!(d.undirected_pipe_count(), n * (n - 1) / 2);
        prop_assert_eq!(d.max_route_pipes(), 1);
        for (i, &a) in vns.iter().enumerate() {
            for &b in vns.iter().skip(i + 1) {
                let path = shortest_path(&topo, a, b, PathMetric::Latency)
                    .expect("connected topology");
                let pipe = d.pipe(d.find_pipe(a, b).expect("mesh pipe exists"));
                prop_assert_eq!(pipe.attrs.bandwidth, path.bottleneck_bandwidth(&topo),
                    "collapsed bandwidth is the path minimum");
                prop_assert_eq!(pipe.attrs.latency, path.total_latency(&topo),
                    "collapsed latency is the path sum");
                prop_assert!(
                    (pipe.attrs.reliability() - path.reliability(&topo)).abs() < 1e-9,
                    "collapsed reliability is the path product"
                );
            }
        }
    }

    /// Walk-in 1 produces the paper's last-mile pipe count — preserved
    /// access links plus a full interior mesh — and its mesh pipes carry
    /// the same collapse arithmetic as end-to-end pipes.
    #[test]
    fn walk_in_one_is_the_last_mile_distillation(topo in arb_unique_path_topology(0.0f64..0.05)) {
        let d = distill(&topo, DistillationMode::WalkIn { walk_in: 1 });
        prop_assert_eq!(d.undirected_pipe_count(), expected_last_mile_pipes(&topo));
        // WalkIn{1} and the LAST_MILE alias are the same configuration.
        let alias = distill(&topo, DistillationMode::LAST_MILE);
        prop_assert_eq!(alias.undirected_pipe_count(), d.undirected_pipe_count());
        // Mesh pipes (both endpoints interior) collapse their unique
        // shortest path.
        let levels = frontier_sets(&topo);
        let interior = |n: NodeId| matches!(levels[n.index()], Some(l) if l > 1);
        let mut mesh_pipes = 0usize;
        for (_, pipe) in d.pipes() {
            if interior(pipe.src) && interior(pipe.dst) {
                mesh_pipes += 1;
                let path = shortest_path(&topo, pipe.src, pipe.dst, PathMetric::Latency)
                    .expect("connected topology");
                prop_assert_eq!(pipe.attrs.latency, path.total_latency(&topo));
                prop_assert_eq!(pipe.attrs.bandwidth, path.bottleneck_bandwidth(&topo));
                prop_assert!(
                    (pipe.attrs.reliability() - path.reliability(&topo)).abs() < 1e-9
                );
            }
        }
        let interior_count = topo
            .node_ids()
            .filter(|&n| interior(n))
            .count();
        prop_assert_eq!(mesh_pipes, interior_count * (interior_count - 1),
            "directed mesh covers every interior pair");
    }

    /// Route-length invariants per mode. End-to-end and the last-mile walk
    /// guarantee a hard per-route pipe bound (1 and `2*walk_in + 1`); the
    /// deeper walks guarantee that collapsing never *lengthens* a route —
    /// every distilled route takes at most as many pipes as the target
    /// network's own shortest path takes links.
    #[test]
    fn route_lengths_respect_the_mode_bound(topo in arb_unique_path_topology(0.0f64..0.05)) {
        let hard_bound = [
            DistillationMode::EndToEnd,
            DistillationMode::WalkIn { walk_in: 1 },
        ];
        let never_longer = [
            DistillationMode::WalkIn { walk_in: 2 },
            DistillationMode::WalkInOut { walk_in: 1, walk_out: 1 },
        ];
        let vns: Vec<NodeId> = topo.client_nodes().collect();
        for mode in hard_bound {
            let d = distill(&topo, mode);
            let bound = d.max_route_pipes();
            for &a in &vns {
                for &b in &vns {
                    if a == b {
                        continue;
                    }
                    let route = route_between(&d, a, b)
                        .unwrap_or_else(|| panic!("{mode:?}: no route {a} -> {b}"));
                    prop_assert!(
                        route.hop_count() <= bound,
                        "{:?}: route {} -> {} takes {} pipes, bound {}",
                        mode, a, b, route.hop_count(), bound
                    );
                }
            }
        }
        for mode in never_longer {
            let d = distill(&topo, mode);
            for &a in &vns {
                for &b in &vns {
                    if a == b {
                        continue;
                    }
                    let route = route_between(&d, a, b)
                        .unwrap_or_else(|| panic!("{mode:?}: no route {a} -> {b}"));
                    let real = shortest_path(&topo, a, b, PathMetric::Latency)
                        .expect("connected topology");
                    prop_assert!(
                        route.hop_count() <= real.hop_count(),
                        "{:?}: distilled route {} -> {} takes {} pipes but the \
                         target path is only {} links",
                        mode, a, b, route.hop_count(), real.hop_count()
                    );
                }
            }
        }
    }

    /// Equal-latency tie-breaking: on topologies where *every* link has the
    /// same latency, shortest paths tie constantly, and the distiller's
    /// collapse must still agree with `shortest_path` — both pin ties to the
    /// lowest `(predecessor, link)` pair, so the collapsed bandwidth (the
    /// attribute that differs between tied paths) must match exactly. The
    /// unique-path generator can never catch a divergence here because its
    /// power-of-two latencies make every shortest path unique.
    #[test]
    fn tied_shortest_paths_collapse_deterministically(topo in arb_tied_path_topology()) {
        let d = distill(&topo, DistillationMode::EndToEnd);
        let vns: Vec<NodeId> = topo.client_nodes().collect();
        for (i, &a) in vns.iter().enumerate() {
            for &b in vns.iter().skip(i + 1) {
                let path = shortest_path(&topo, a, b, PathMetric::Latency)
                    .expect("connected topology");
                let pipe = d.pipe(d.find_pipe(a, b).expect("mesh pipe exists"));
                prop_assert_eq!(pipe.attrs.latency, path.total_latency(&topo),
                    "tied paths must still agree on (latency, hop) cost");
                prop_assert_eq!(pipe.attrs.bandwidth, path.bottleneck_bandwidth(&topo),
                    "collapse and shortest_path picked different tied paths \
                     between {} and {}", a, b);
                prop_assert!(
                    (pipe.attrs.reliability() - path.reliability(&topo)).abs() < 1e-9
                );
            }
        }
    }
}

/// The last-mile count on the paper's ring family, parametrised:
/// `routers * clients` access pipes plus `C(routers, 2)` mesh pipes.
#[test]
fn last_mile_counts_on_the_paper_ring_family() {
    for (routers, clients) in [(4usize, 2usize), (8, 3), (20, 20)] {
        let topo = ring_topology(&RingParams {
            routers,
            clients_per_router: clients,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::LAST_MILE);
        let expected = routers * clients + routers * (routers - 1) / 2;
        assert_eq!(
            d.undirected_pipe_count(),
            expected,
            "ring({routers},{clients}): access + interior mesh"
        );
        assert_eq!(d.undirected_pipe_count(), expected_last_mile_pipes(&topo));
        assert_eq!(d.max_route_pipes(), 3, "client-mesh-client");
    }
}

/// Walk-in/walk-out on a chain: the under-provisioned core is preserved
/// link-for-link, the remaining interior meshes around it, and collapsed
/// pipes sum the chain latencies they replace.
#[test]
fn walk_in_out_preserves_the_core_and_collapses_around_it() {
    // client - s1 - s2 - s3 - s4 - s5 - client, 1 ms per link.
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Client);
    let stubs: Vec<NodeId> = (0..5).map(|_| topo.add_node(NodeKind::Stub)).collect();
    let b = topo.add_node(NodeKind::Client);
    let attrs = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
    topo.add_link(a, stubs[0], attrs).unwrap();
    for w in stubs.windows(2) {
        topo.add_link(w[0], w[1], attrs).unwrap();
    }
    topo.add_link(stubs[4], b, attrs).unwrap();

    let d = distill(
        &topo,
        DistillationMode::WalkInOut {
            walk_in: 1,
            walk_out: 1,
        },
    );
    // Frontiers: {a,b}=1, {s1,s5}=2, {s2,s4}=3, {s3}=4; core = {s2,s3,s4}.
    // Preserved: 2 access links + 2 core-internal links (s2-s3, s3-s4).
    // Mesh nodes: interior {s1, s5} plus core boundary {s2, s4}; all pairs
    // except the core-core pair (s2,s4) get collapsed pipes: C(4,2)-1 = 5.
    assert_eq!(d.undirected_pipe_count(), 2 + 2 + 5);
    // The collapsed s1 -> s5 pipe replaces the four-link chain.
    let collapsed = d.pipe(d.find_pipe(stubs[0], stubs[4]).expect("mesh pipe"));
    assert_eq!(collapsed.attrs.latency, SimDuration::from_millis(4));
    assert_eq!(collapsed.attrs.bandwidth, DataRate::from_mbps(10));
    // Preserved core links keep their original single-hop attributes.
    let core_link = d.pipe(d.find_pipe(stubs[1], stubs[2]).expect("core link"));
    assert_eq!(core_link.attrs.latency, SimDuration::from_millis(1));
    // Routes fit the advertised bound: 2*walk_in preserved edge links, one
    // mesh pipe into the core boundary, up to |core| preserved core links,
    // and a second mesh pipe back out of the core.
    assert_eq!(d.max_route_pipes(), 2 + 2 + 3);
}

/// Regression for the walk-in/out route bound: a route crossing the
/// preserved core traverses *two* mesh pipes (interior→boundary and
/// boundary→interior), so the bound must budget `2*walk_in + 2 + |core|` —
/// the pre-fix `2*walk_in + 1 + |core|` assumed a single mesh crossing.
/// Every distilled route must fit the advertised bound.
#[test]
fn walk_in_out_routes_fit_the_two_mesh_crossing_bound() {
    // Two clients per end so the edge region is non-trivial, joined by a
    // seven-stub chain: core {s3,s4,s5}, interior {s1,s2,s6,s7}.
    let mut topo = Topology::new();
    let a1 = topo.add_node(NodeKind::Client);
    let a2 = topo.add_node(NodeKind::Client);
    let stubs: Vec<NodeId> = (0..7).map(|_| topo.add_node(NodeKind::Stub)).collect();
    let b1 = topo.add_node(NodeKind::Client);
    let b2 = topo.add_node(NodeKind::Client);
    let attrs = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
    topo.add_link(a1, stubs[0], attrs).unwrap();
    topo.add_link(a2, stubs[0], attrs).unwrap();
    for w in stubs.windows(2) {
        topo.add_link(w[0], w[1], attrs).unwrap();
    }
    topo.add_link(stubs[6], b1, attrs).unwrap();
    topo.add_link(stubs[6], b2, attrs).unwrap();

    let d = distill(
        &topo,
        DistillationMode::WalkInOut {
            walk_in: 1,
            walk_out: 1,
        },
    );
    // Frontiers: clients=1, {s1,s7}=2, {s2,s6}=3, {s3,s5}=4, {s4}=5; with
    // walk_out=1 the core is frontiers 4..=5 = {s3,s4,s5}: the bound is
    // 2*walk_in + 2 mesh/frontier pipes + 3 core links.
    assert_eq!(d.max_route_pipes(), 7);
    let vns: Vec<NodeId> = topo.client_nodes().collect();
    for &x in &vns {
        for &y in &vns {
            if x == y {
                continue;
            }
            let route = route_between(&d, x, y).expect("route exists");
            assert!(
                route.hop_count() <= d.max_route_pipes(),
                "route {x} -> {y} takes {} pipes, bound {}",
                route.hop_count(),
                d.max_route_pipes()
            );
        }
    }
    // The bound leaves room for a route entering and leaving the core on
    // separate mesh pipes (access + mesh + s3-s4 + s4-s5 + mesh + access =
    // six pipes), which the pre-fix bound of 2*walk_in + 1 + |core| = 6
    // only met with zero slack by double-counting a core link as the
    // second mesh crossing.
    let route = route_between(&d, a1, b1).expect("cross-chain route");
    assert!(route.hop_count() <= d.max_route_pipes());
}

/// Regression for mesh-collapse double-counting: a mesh pipe whose shortest
/// path detours through a preserved edge link would bake that link's
/// contention into its own attributes while routes also cross the link
/// natively. The collapse is restricted to non-edge-region nodes, so the
/// multihomed client's 2 ms shortcut must be ignored in favour of the 20 ms
/// interior path.
#[test]
fn mesh_collapse_ignores_preserved_edge_shortcuts() {
    let mut topo = Topology::new();
    let c1 = topo.add_node(NodeKind::Client);
    let c2 = topo.add_node(NodeKind::Client);
    let s1 = topo.add_node(NodeKind::Stub);
    let s2 = topo.add_node(NodeKind::Stub);
    let s3 = topo.add_node(NodeKind::Stub);
    let access = LinkAttrs::new(DataRate::from_mbps(100), SimDuration::from_millis(1));
    let interior = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(10));
    topo.add_link(c1, s1, access).unwrap();
    topo.add_link(c1, s2, access).unwrap();
    topo.add_link(c2, s3, access).unwrap();
    topo.add_link(s1, s3, interior).unwrap();
    topo.add_link(s3, s2, interior).unwrap();
    let d = distill(&topo, DistillationMode::LAST_MILE);
    let pipe = d.pipe(d.find_pipe(s1, s2).expect("interior mesh pipe"));
    assert_eq!(pipe.attrs.latency, SimDuration::from_millis(20));
    assert_eq!(pipe.attrs.bandwidth, DataRate::from_mbps(10));
}
