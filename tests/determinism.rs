//! Determinism guarantees of the emulation core.
//!
//! Reproducibility from a single seed is what makes regression comparisons
//! between PRs meaningful, so it is pinned by tests: re-running the same
//! workload yields byte-identical `CoreStats`, and splitting the same
//! emulation across cores changes only the tunnelling book-keeping: the same
//! packets are delivered over the same routes, shifted by at most the
//! tick-quantisation cost of the core crossings (the unconstrained profile
//! has zero tunnel latency, so nothing else may leak into emulated
//! behaviour).

use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{CoreStats, HardwareProfile, MultiCoreEmulator, ParallelEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{ring_topology, RingParams};
use mn_util::{SimDuration, SimTime};
use modelnet::EmulatorBackend;

fn tcp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            payload_len: 1000,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

/// One delivered packet, reduced to the fields determinism must pin.
type DeliveryRecord = (u64, SimTime, usize);

/// Runs a fixed all-pairs burst workload over a ring and returns the
/// aggregate counters plus every delivery (packet id, delivered at, hops).
fn run_workload(cores: usize, seed: u64) -> (CoreStats, Vec<DeliveryRecord>) {
    let topo = ring_topology(&RingParams {
        routers: 6,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, cores));
    let pod = greedy_k_clusters(&d, cores, 7);
    let mut emu = MultiCoreEmulator::new(
        &d,
        pod,
        matrix,
        &binding,
        HardwareProfile::unconstrained(),
        seed,
    );
    let vns: Vec<VnId> = binding.vns().collect();
    let mut id = 0u64;
    for round in 0..5u64 {
        let now = SimTime::from_micros(round * 700);
        for (i, &src) in vns.iter().enumerate() {
            let dst = vns[(i + 3) % vns.len()];
            emu.submit(now, tcp_packet(id, src, dst, now));
            id += 1;
        }
    }
    let mut deliveries: Vec<DeliveryRecord> = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..1_000_000 {
        let Some(t) = emu.next_wakeup() else {
            break;
        };
        now = now.max(t);
        deliveries.extend(
            emu.advance(now)
                .into_iter()
                .map(|del| (del.packet.id.0, del.delivered_at, del.hops)),
        );
    }
    deliveries.sort_unstable();
    (emu.total_stats(), deliveries)
}

/// Builds the same emulation [`run_workload`] uses, without driving it.
fn build_emulator(cores: usize, seed: u64) -> (MultiCoreEmulator, Binding) {
    let topo = ring_topology(&RingParams {
        routers: 6,
        clients_per_router: 2,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, cores));
    let pod = greedy_k_clusters(&d, cores, 7);
    let emu = MultiCoreEmulator::new(
        &d,
        pod,
        matrix,
        &binding,
        HardwareProfile::unconstrained(),
        seed,
    );
    (emu, binding)
}

/// The full-fidelity delivery record for bit-identity checks: packet id,
/// delivery and entry times, hop count, accumulated scheduling error —
/// kept in raw arrival order (NOT sorted), so stream order is pinned too.
type StrictRecord = (u64, SimTime, SimTime, usize, SimDuration);

/// Drives the standard burst workload on either backend (dispatch through
/// the same [`EmulatorBackend`] the Runner uses — one driver, one schedule,
/// no per-backend copies to drift apart).
fn drive_strict(binding: &Binding, emu: &mut EmulatorBackend) -> Vec<StrictRecord> {
    let vns: Vec<VnId> = binding.vns().collect();
    let mut id = 0u64;
    for round in 0..5u64 {
        let now = SimTime::from_micros(round * 700);
        for (i, &src) in vns.iter().enumerate() {
            let dst = vns[(i + 3) % vns.len()];
            let _ = emu.submit(now, tcp_packet(id, src, dst, now));
            id += 1;
        }
    }
    let mut log = Vec::new();
    let mut deliveries = Vec::new();
    let mut now = SimTime::ZERO;
    for _ in 0..1_000_000 {
        let Some(t) = emu.next_wakeup() else { break };
        now = now.max(t);
        deliveries.clear();
        emu.advance_into(now, &mut deliveries).unwrap();
        log.extend(deliveries.iter().map(|d| {
            (
                d.packet.id.0,
                d.delivered_at,
                d.entered_at,
                d.hops,
                d.emulation_error,
            )
        }));
    }
    log
}

#[test]
fn parallel_backend_is_bit_identical_to_sequential() {
    // The headline contract of the threaded backend: same deliveries, in
    // the same stream order, at the same times, with the same accumulated
    // error and the same counters — at every core count.
    for cores in [1usize, 2, 4] {
        let (seq, binding) = build_emulator(cores, 42);
        let mut seq = EmulatorBackend::Sequential(seq);
        let seq_log = drive_strict(&binding, &mut seq);
        let (seq2, binding2) = build_emulator(cores, 42);
        let mut par = EmulatorBackend::Threaded(ParallelEmulator::from_sequential(seq2));
        let par_log = drive_strict(&binding2, &mut par);
        assert!(!seq_log.is_empty());
        assert_eq!(
            seq_log, par_log,
            "{cores}-core parallel delivery stream must be bit-identical"
        );
        assert_eq!(
            seq.total_stats(),
            par.total_stats(),
            "{cores}-core parallel counters must be bit-identical"
        );
        for c in 0..cores {
            let core = mn_assign::CoreId(c);
            assert_eq!(
                seq.core_stats(core),
                par.core_stats(core),
                "core {c} counters must match per-thread"
            );
        }
    }
}

#[test]
fn parallel_backend_reruns_are_byte_identical() {
    // The threaded backend is itself deterministic across reruns, despite
    // OS scheduling: thread interleaving must never leak into results.
    let run = || {
        let (seq, binding) = build_emulator(4, 42);
        let mut par = EmulatorBackend::Threaded(ParallelEmulator::from_sequential(seq));
        let log = drive_strict(&binding, &mut par);
        (log, par.total_stats())
    };
    let (log_a, stats_a) = run();
    let (log_b, stats_b) = run();
    assert_eq!(log_a, log_b);
    assert_eq!(stats_a, stats_b);
}

#[test]
fn same_seed_reruns_are_byte_identical() {
    for cores in [1, 4] {
        let (stats_a, deliveries_a) = run_workload(cores, 42);
        let (stats_b, deliveries_b) = run_workload(cores, 42);
        assert_eq!(
            format!("{stats_a:?}"),
            format!("{stats_b:?}"),
            "{cores}-core reruns must produce byte-identical CoreStats"
        );
        assert_eq!(deliveries_a, deliveries_b);
    }
}

#[test]
fn core_count_does_not_change_emulated_behaviour() {
    let (stats_1, deliveries_1) = run_workload(1, 42);
    let (stats_4, deliveries_4) = run_workload(4, 42);
    // Equivalent emulated outcomes: the same packets are delivered over the
    // same routes. Delivery times may shift by a bounded number of scheduler
    // ticks — a descriptor crossing cores is enqueued at the owning core's
    // next tick (the cost Table 1 of the paper quantifies), once per hop at
    // worst, plus the final tick-quantised delivery — but never by more.
    assert!(!deliveries_1.is_empty());
    assert_eq!(deliveries_1.len(), deliveries_4.len());
    let tick = SimDuration::from_micros(100);
    for (a, b) in deliveries_1.iter().zip(&deliveries_4) {
        assert_eq!(a.0, b.0, "same packets delivered");
        assert_eq!(a.2, b.2, "same route length for packet {}", a.0);
        let skew = if a.1 >= b.1 { a.1 - b.1 } else { b.1 - a.1 };
        assert!(
            skew <= tick * (a.2 as u64 + 1),
            "packet {} delivery skew {skew} exceeds one tick per hop plus delivery",
            a.0
        );
    }
    // Identical admission counters; only the tunnelling book-keeping (and
    // the wire bytes it adds) may differ between core counts.
    assert_eq!(stats_1.packets_offered, stats_4.packets_offered);
    assert_eq!(stats_1.packets_admitted, stats_4.packets_admitted);
    assert_eq!(stats_1.packets_delivered, stats_4.packets_delivered);
    assert_eq!(stats_1.physical_drops(), 0);
    assert_eq!(stats_4.physical_drops(), 0);
    assert_eq!(stats_1.tunnels_out, 0, "a single core never tunnels");
    assert!(
        stats_4.tunnels_out > 0,
        "a 4-way split of a ring must tunnel some descriptors"
    );
    assert_eq!(stats_4.tunnels_out, stats_4.tunnels_in);
}

#[test]
fn seed_changes_the_random_stream_but_not_conservation() {
    // Different seeds may reorder random decisions, but packets are conserved
    // and the deterministic parts (offered counts) stay fixed.
    let (stats_a, _) = run_workload(1, 1);
    let (stats_b, _) = run_workload(1, 2);
    assert_eq!(stats_a.packets_offered, stats_b.packets_offered);
    assert_eq!(stats_a.packets_delivered, stats_b.packets_delivered);
}
