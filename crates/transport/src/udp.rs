//! UDP datagram sources.
//!
//! UDP traffic in the paper appears in two roles: the VN-multiplexing
//! experiment exchanges 1500-byte UDP packets between netperf/netserver
//! pairs, and §2.3 discusses how unresponsive UDP senders interact with the
//! emulated first-hop pipes. [`UdpStream`] models a constant-bit-rate (or
//! paced) datagram source with per-datagram sequence numbers so receivers can
//! account for loss.

use serde::{Deserialize, Serialize};

use mn_util::{ByteReader, ByteSize, ByteWriter, CodecError, DataRate, SimDuration, SimTime};

/// Configuration of a UDP sending stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct UdpStreamConfig {
    /// Payload bytes per datagram.
    pub payload: u32,
    /// Target sending rate (payload bits per second).
    pub rate: DataRate,
    /// Optional hard limit on the number of datagrams to send.
    pub max_datagrams: Option<u64>,
}

impl Default for UdpStreamConfig {
    fn default() -> Self {
        UdpStreamConfig {
            payload: 1472,
            rate: DataRate::from_mbps(10),
            max_datagrams: None,
        }
    }
}

/// A paced, unreliable datagram source.
#[derive(Debug, Clone)]
pub struct UdpStream {
    config: UdpStreamConfig,
    next_seq: u64,
    next_send: SimTime,
    interval: SimDuration,
}

impl UdpStream {
    /// Creates a stream that starts sending at `start`.
    pub fn new(config: UdpStreamConfig, start: SimTime) -> Self {
        let interval = if config.rate.is_zero() {
            SimDuration::MAX
        } else {
            config
                .rate
                .transmission_time(ByteSize::from_bytes(config.payload as u64))
        };
        UdpStream {
            config,
            next_seq: 0,
            next_send: start,
            interval,
        }
    }

    /// The configured payload size.
    pub fn payload(&self) -> u32 {
        self.config.payload
    }

    /// Sequence number of the next datagram.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Datagrams emitted so far.
    pub fn sent(&self) -> u64 {
        self.next_seq
    }

    /// Returns `true` once the configured datagram budget is exhausted.
    pub fn is_finished(&self) -> bool {
        match self.config.max_datagrams {
            Some(max) => self.next_seq >= max,
            None => false,
        }
    }

    /// The time of the next transmission, or `None` when finished.
    pub fn next_send_time(&self) -> Option<SimTime> {
        if self.is_finished() {
            None
        } else {
            Some(self.next_send)
        }
    }

    /// Emits every datagram due at or before `now`. Each entry is the
    /// datagram's sequence number; the caller builds the packet.
    pub fn poll(&mut self, now: SimTime) -> Vec<u64> {
        let mut out = Vec::new();
        while !self.is_finished() && self.next_send <= now {
            out.push(self.next_seq);
            self.next_seq += 1;
            self.next_send += self.interval;
        }
        out
    }

    /// Serializes the stream (configuration and pacing position) for the
    /// runner's snapshot.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_u32(self.config.payload);
        w.put_rate(self.config.rate);
        w.put_opt_u64(self.config.max_datagrams);
        w.put_u64(self.next_seq);
        w.put_time(self.next_send);
        w.put_duration(self.interval);
    }

    /// Rebuilds a stream from [`UdpStream::encode_state`] bytes.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(UdpStream {
            config: UdpStreamConfig {
                payload: r.get_u32()?,
                rate: r.get_rate()?,
                max_datagrams: r.get_opt_u64()?,
            },
            next_seq: r.get_u64()?,
            next_send: r.get_time()?,
            interval: r.get_duration()?,
        })
    }
}

/// Receiver-side loss accounting for a UDP stream.
#[derive(Debug, Clone, Default)]
pub struct UdpReceiver {
    received: u64,
    bytes: u64,
    highest_seq: Option<u64>,
    duplicates: u64,
    seen_mask_base: u64,
}

impl UdpReceiver {
    /// Creates an empty receiver.
    pub fn new() -> Self {
        UdpReceiver::default()
    }

    /// Records a received datagram.
    pub fn on_datagram(&mut self, seq: u64, payload: u32) {
        // Duplicate detection is approximate (window-free): a datagram with a
        // sequence number at or below the highest seen and already counted is
        // treated as a duplicate only if it equals the highest. This suffices
        // for the experiments, which never re-order more than a window.
        if Some(seq) == self.highest_seq {
            self.duplicates += 1;
            return;
        }
        self.received += 1;
        self.bytes += payload as u64;
        self.highest_seq = Some(self.highest_seq.map_or(seq, |h| h.max(seq)));
        let _ = self.seen_mask_base;
    }

    /// Datagrams received.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Payload bytes received.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Datagrams lost, inferred from the highest sequence number seen.
    pub fn lost(&self) -> u64 {
        match self.highest_seq {
            Some(h) => (h + 1).saturating_sub(self.received),
            None => 0,
        }
    }

    /// Duplicate datagrams observed.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_pacing_matches_rate() {
        // 1472-byte payloads at 10 Mb/s ≈ 849 datagrams/second.
        let mut s = UdpStream::new(UdpStreamConfig::default(), SimTime::ZERO);
        let sent = s.poll(SimTime::from_secs(1));
        assert!(
            (845..=855).contains(&sent.len()),
            "sent {} datagrams in 1 s",
            sent.len()
        );
        // Sequence numbers are consecutive from zero.
        assert_eq!(sent[0], 0);
        assert_eq!(*sent.last().unwrap(), sent.len() as u64 - 1);
    }

    #[test]
    fn max_datagrams_bounds_the_stream() {
        let mut s = UdpStream::new(
            UdpStreamConfig {
                max_datagrams: Some(10),
                ..UdpStreamConfig::default()
            },
            SimTime::ZERO,
        );
        let sent = s.poll(SimTime::from_secs(10));
        assert_eq!(sent.len(), 10);
        assert!(s.is_finished());
        assert_eq!(s.next_send_time(), None);
        assert!(s.poll(SimTime::from_secs(20)).is_empty());
    }

    #[test]
    fn zero_rate_never_sends() {
        let mut s = UdpStream::new(
            UdpStreamConfig {
                rate: DataRate::ZERO,
                ..UdpStreamConfig::default()
            },
            SimTime::ZERO,
        );
        assert!(s.poll(SimTime::from_secs(100)).len() <= 1);
    }

    #[test]
    fn poll_is_incremental() {
        let mut s = UdpStream::new(UdpStreamConfig::default(), SimTime::ZERO);
        let first = s.poll(SimTime::from_millis(500)).len();
        let second = s.poll(SimTime::from_secs(1)).len();
        assert!(first > 0 && second > 0);
        let total = first + second;
        assert!((845..=855).contains(&total));
    }

    #[test]
    fn receiver_counts_loss() {
        let mut r = UdpReceiver::new();
        for seq in [0u64, 1, 2, 4, 5, 9] {
            r.on_datagram(seq, 1000);
        }
        assert_eq!(r.received(), 6);
        assert_eq!(r.bytes(), 6000);
        assert_eq!(r.lost(), 4);
        r.on_datagram(9, 1000);
        assert_eq!(r.duplicates(), 1);
    }

    #[test]
    fn stream_snapshot_round_trip_resumes_pacing_exactly() {
        let mut s = UdpStream::new(UdpStreamConfig::default(), SimTime::ZERO);
        s.poll(SimTime::from_millis(500));
        let mut w = ByteWriter::new();
        s.encode_state(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let mut restored = UdpStream::decode_state(&mut r).expect("decodes");
        assert_eq!(r.remaining(), 0, "every byte consumed");
        assert_eq!(restored.next_seq(), s.next_seq());
        assert_eq!(restored.next_send_time(), s.next_send_time());
        assert_eq!(
            restored.poll(SimTime::from_secs(1)),
            s.poll(SimTime::from_secs(1))
        );
    }

    #[test]
    fn receiver_empty_state() {
        let r = UdpReceiver::new();
        assert_eq!(r.received(), 0);
        assert_eq!(r.lost(), 0);
    }
}
