//! netperf-style load generators.
//!
//! The capacity and scaling experiments (Figure 4, Table 1) drive ModelNet
//! with dozens to hundreds of netperf senders transmitting TCP streams to
//! netserver receivers. [`BulkSender`] is that workload: an endless (or
//! size-bounded) source that keeps the TCP connection's send buffer full.
//! [`RequestResponse`] is the request/response variant used by application
//! case studies (a client sends a request of one size and the server answers
//! with a response of another).

use serde::{Deserialize, Serialize};

use mn_util::{ByteReader, ByteSize, ByteWriter, CodecError, SimTime};

use crate::tcp::TcpConnection;

/// A bulk-transfer source that keeps a TCP connection's buffer topped up.
#[derive(Debug, Clone)]
pub struct BulkSender {
    total: Option<u64>,
    written: u64,
    chunk: u64,
    started_at: Option<SimTime>,
}

impl BulkSender {
    /// Creates an unbounded sender (classic `netperf -t TCP_STREAM`).
    pub fn unbounded() -> Self {
        BulkSender {
            total: None,
            written: 0,
            chunk: 256 * 1024,
            started_at: None,
        }
    }

    /// Creates a sender that transfers exactly `size` bytes and then stops
    /// (used for the fixed-size file transfers of Figure 9).
    pub fn fixed(size: ByteSize) -> Self {
        BulkSender {
            total: Some(size.as_bytes()),
            written: 0,
            chunk: 256 * 1024,
            started_at: None,
        }
    }

    /// Bytes handed to the connection so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Returns `true` once the whole fixed transfer has been handed to TCP.
    pub fn is_write_complete(&self) -> bool {
        match self.total {
            Some(t) => self.written >= t,
            None => false,
        }
    }

    /// Returns `true` once the whole fixed transfer has been acknowledged.
    pub fn is_acked(&self, conn: &TcpConnection) -> bool {
        match self.total {
            Some(t) => conn.bytes_acked() >= t,
            None => false,
        }
    }

    /// Time the first byte was offered, if any.
    pub fn started_at(&self) -> Option<SimTime> {
        self.started_at
    }

    /// Tops up the connection's send buffer so it always has at least one
    /// chunk outstanding (or the remaining fixed size). Returns the bytes
    /// written in this call.
    pub fn pump(&mut self, now: SimTime, conn: &mut TcpConnection) -> u64 {
        if self.started_at.is_none() {
            self.started_at = Some(now);
        }
        let outstanding = conn.unacked_backlog();
        if outstanding >= self.chunk {
            return 0;
        }
        let want = self.chunk - outstanding;
        let write = match self.total {
            Some(t) => want.min(t.saturating_sub(self.written)),
            None => want,
        };
        if write > 0 {
            conn.write(write);
            self.written += write;
        }
        write
    }

    /// Serializes the sender's progress for the runner's snapshot.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        w.put_opt_u64(self.total);
        w.put_u64(self.written);
        w.put_u64(self.chunk);
        w.put_opt_time(self.started_at);
    }

    /// Rebuilds a sender from [`BulkSender::encode_state`] bytes.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        Ok(BulkSender {
            total: r.get_opt_u64()?,
            written: r.get_u64()?,
            chunk: r.get_u64()?,
            started_at: r.get_opt_time()?,
        })
    }

    /// Measured goodput of the transfer so far, in kilobytes/second
    /// (the unit the CFS figures use), based on acknowledged bytes.
    pub fn goodput_kbytes_per_sec(&self, now: SimTime, conn: &TcpConnection) -> f64 {
        let Some(start) = self.started_at else {
            return 0.0;
        };
        let elapsed = now.duration_since(start).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            conn.bytes_acked() as f64 / 1024.0 / elapsed
        }
    }
}

/// Request/response exchange sizes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RequestResponse {
    /// Bytes in each request.
    pub request: u32,
    /// Bytes in each response.
    pub response: u32,
}

impl RequestResponse {
    /// An HTTP-like exchange: small request, configurable response.
    pub fn http(response: u32) -> Self {
        RequestResponse {
            request: 350,
            response,
        }
    }

    /// Total bytes on the wire (both directions, payload only).
    pub fn total_payload(&self) -> u64 {
        self.request as u64 + self.response as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::{TcpConfig, TcpConnection};
    use mn_packet::TcpFlags;
    use mn_util::SimDuration;

    fn establish() -> (TcpConnection, TcpConnection) {
        let mut c = TcpConnection::client(TcpConfig::default());
        let mut s = TcpConnection::server(TcpConfig::default());
        let mut now = SimTime::ZERO;
        for _ in 0..4 {
            let a = c.poll_send(now);
            let b = s.poll_send(now);
            now += SimDuration::from_millis(1);
            for seg in a {
                s.on_segment(
                    now,
                    seg.seq,
                    seg.payload_len,
                    seg.ack,
                    seg.flags,
                    seg.window,
                );
            }
            for seg in b {
                c.on_segment(
                    now,
                    seg.seq,
                    seg.payload_len,
                    seg.ack,
                    seg.flags,
                    seg.window,
                );
            }
        }
        assert!(c.is_established() && s.is_established());
        (c, s)
    }

    #[test]
    fn unbounded_sender_keeps_buffer_full() {
        let (mut conn, _) = establish();
        let mut sender = BulkSender::unbounded();
        let w1 = sender.pump(SimTime::ZERO, &mut conn);
        assert_eq!(w1, 256 * 1024);
        // Nothing acknowledged yet, so a second pump adds nothing.
        assert_eq!(sender.pump(SimTime::from_millis(1), &mut conn), 0);
        assert!(!sender.is_write_complete());
    }

    #[test]
    fn fixed_sender_stops_at_size() {
        let (mut conn, _) = establish();
        let mut sender = BulkSender::fixed(ByteSize::from_kb(8));
        let w = sender.pump(SimTime::ZERO, &mut conn);
        assert_eq!(w, 8 * 1024);
        assert!(sender.is_write_complete());
        assert_eq!(sender.pump(SimTime::from_millis(1), &mut conn), 0);
        assert!(!sender.is_acked(&conn));
    }

    #[test]
    fn fixed_transfer_completes_over_a_perfect_link() {
        let (mut c, mut s) = establish();
        let mut sender = BulkSender::fixed(ByteSize::from_kb(64));
        let mut now = SimTime::from_millis(10);
        for _ in 0..1000 {
            sender.pump(now, &mut c);
            let segs = c.poll_send(now);
            now += SimDuration::from_millis(2);
            for seg in &segs {
                s.on_segment(
                    now,
                    seg.seq,
                    seg.payload_len,
                    seg.ack,
                    seg.flags,
                    seg.window,
                );
            }
            // Service delayed-ACK (and any other) timers that have expired.
            if s.next_timer().is_some_and(|t| t <= now) {
                s.on_timer(now);
            }
            if c.next_timer().is_some_and(|t| t <= now) {
                c.on_timer(now);
            }
            for seg in s.poll_send(now) {
                c.on_segment(
                    now,
                    seg.seq,
                    seg.payload_len,
                    seg.ack,
                    seg.flags,
                    seg.window,
                );
            }
            if sender.is_acked(&c) {
                break;
            }
        }
        assert!(sender.is_acked(&c));
        assert_eq!(s.bytes_received(), 64 * 1024);
        let goodput = sender.goodput_kbytes_per_sec(now, &c);
        assert!(goodput > 0.0);
    }

    #[test]
    fn request_response_sizes() {
        let rr = RequestResponse::http(12_000);
        assert_eq!(rr.request, 350);
        assert_eq!(rr.total_payload(), 12_350);
    }

    #[test]
    fn handshake_helper_sanity() {
        // The establish() helper used above genuinely produces two
        // established endpoints exchanging no data.
        let (c, s) = establish();
        assert_eq!(c.bytes_acked(), 0);
        assert_eq!(s.bytes_received(), 0);
        // A pure ACK has the ACK flag set and no SYN.
        let ack = TcpFlags::ACK;
        assert!(ack.ack && !ack.syn);
    }
}
