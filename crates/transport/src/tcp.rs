//! A Reno-style TCP state machine.
//!
//! The experiments in the paper measure how stock TCP stacks on the edge
//! nodes respond to the bandwidth, delay and loss the core imposes; this
//! module provides that behaviour for the reproduction: slow start,
//! congestion avoidance, fast retransmit/recovery, retransmission timeout
//! with exponential backoff and Karn's rule, delayed ACKs (one ACK per two
//! segments, as assumed by the paper's 1 KB average-packet-size argument) and
//! a simplified three-way handshake.
//!
//! Simplifications relative to a production stack (documented here so the
//! benches can be interpreted): initial sequence numbers are zero, SYN/FIN do
//! not consume sequence space, there is no explicit FIN teardown (experiments
//! simply stop offering data), and selective acknowledgements are not
//! implemented (the paper's era predates widespread SACK deployment).

use serde::{Deserialize, Serialize};

use mn_packet::{TcpFlags, MSS_BYTES};
use mn_util::{ByteReader, ByteWriter, CodecError, SimDuration, SimTime};

/// Configuration of one TCP endpoint.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TcpConfig {
    /// Maximum segment size in bytes.
    pub mss: u32,
    /// Initial congestion window in segments.
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold in bytes.
    pub initial_ssthresh: u64,
    /// Receive window advertised to the peer, in bytes.
    pub receive_window: u64,
    /// Lower bound on the retransmission timeout.
    pub min_rto: SimDuration,
    /// Upper bound on the retransmission timeout.
    pub max_rto: SimDuration,
    /// RTO used before the first RTT measurement.
    pub initial_rto: SimDuration,
    /// Delay before a lone unacknowledged segment is acknowledged.
    pub delayed_ack: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: MSS_BYTES,
            initial_cwnd_segments: 2,
            initial_ssthresh: 64 * 1024,
            receive_window: 64 * 1024,
            min_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(60),
            initial_rto: SimDuration::from_secs(1),
            delayed_ack: SimDuration::from_millis(40),
        }
    }
}

/// Connection establishment state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TcpState {
    /// Passive endpoint waiting for a SYN.
    Listen,
    /// Active endpoint that has sent its SYN.
    SynSent,
    /// Passive endpoint that has answered with SYN-ACK.
    SynReceived,
    /// Data may flow.
    Established,
}

/// A segment the endpoint wants transmitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentToSend {
    /// Sequence number of the first payload byte.
    pub seq: u64,
    /// Payload length (0 for pure ACKs and SYNs).
    pub payload_len: u32,
    /// Cumulative acknowledgement number.
    pub ack: u64,
    /// Header flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u32,
    /// `true` when this is a retransmission.
    pub is_retransmission: bool,
}

/// What a received segment did to the endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcpEvent {
    /// Bytes newly acknowledged by the peer (sender-side progress).
    pub newly_acked: u64,
    /// Total in-order bytes now available to the receiving application
    /// (cumulative, i.e. the new `rcv_nxt`).
    pub delivered_upto: u64,
    /// The connection became established as a result of this segment.
    pub connected: bool,
}

/// One TCP endpoint of a (full-duplex) connection.
#[derive(Debug, Clone)]
pub struct TcpConnection {
    config: TcpConfig,
    state: TcpState,

    // --- Send side ---
    /// Oldest unacknowledged byte.
    snd_una: u64,
    /// Next byte to send.
    snd_nxt: u64,
    /// Total bytes the application has made available for sending.
    app_limit: u64,
    /// Congestion window, in bytes.
    cwnd: f64,
    /// Slow-start threshold, in bytes.
    ssthresh: f64,
    /// Peer's advertised receive window.
    peer_window: u64,
    dup_acks: u32,
    in_fast_recovery: bool,
    recovery_point: u64,
    /// Sequence to retransmit at the next poll (fast retransmit / RTO).
    pending_retransmit: Option<u64>,
    /// RTT measurement in progress: (sequence that must be acked, send time).
    rtt_probe: Option<(u64, SimTime)>,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rto: SimDuration,
    rto_deadline: Option<SimTime>,
    syn_pending: bool,

    // --- Receive side ---
    rcv_nxt: u64,
    /// Out-of-order segments received: (start, end) byte ranges.
    ooo: Vec<(u64, u64)>,
    /// Pure ACKs owed to the peer. Out-of-order arrivals each add one (these
    /// are the duplicate ACKs fast retransmit depends on); in-order arrivals
    /// add one per two segments (delayed ACK).
    pending_acks: u32,
    unacked_segments: u32,
    delayed_ack_deadline: Option<SimTime>,

    // --- Counters ---
    retransmissions: u64,
    timeouts: u64,
    segments_sent: u64,
    segments_received: u64,
}

impl TcpConnection {
    /// Creates the active (connecting) endpoint. The first
    /// [`TcpConnection::poll_send`] emits the SYN.
    pub fn client(config: TcpConfig) -> Self {
        let mut c = Self::new(config, TcpState::SynSent);
        c.syn_pending = true;
        c
    }

    /// Creates the passive (listening) endpoint.
    pub fn server(config: TcpConfig) -> Self {
        Self::new(config, TcpState::Listen)
    }

    fn new(config: TcpConfig, state: TcpState) -> Self {
        TcpConnection {
            config,
            state,
            snd_una: 0,
            snd_nxt: 0,
            app_limit: 0,
            cwnd: (config.initial_cwnd_segments * config.mss) as f64,
            ssthresh: config.initial_ssthresh as f64,
            peer_window: config.receive_window,
            dup_acks: 0,
            in_fast_recovery: false,
            recovery_point: 0,
            pending_retransmit: None,
            rtt_probe: None,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rto: config.initial_rto,
            rto_deadline: None,
            syn_pending: false,
            rcv_nxt: 0,
            ooo: Vec::new(),
            pending_acks: 0,
            unacked_segments: 0,
            delayed_ack_deadline: None,
            retransmissions: 0,
            timeouts: 0,
            segments_sent: 0,
            segments_received: 0,
        }
    }

    /// Connection state.
    pub fn state(&self) -> TcpState {
        self.state
    }

    /// Returns `true` once the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.state == TcpState::Established
    }

    /// Current congestion window in bytes.
    pub fn cwnd(&self) -> u64 {
        self.cwnd as u64
    }

    /// Current slow-start threshold in bytes.
    pub fn ssthresh(&self) -> u64 {
        self.ssthresh as u64
    }

    /// Current retransmission timeout.
    pub fn rto(&self) -> SimDuration {
        self.rto
    }

    /// Smoothed RTT estimate, if one exists.
    pub fn srtt(&self) -> Option<SimDuration> {
        self.srtt
    }

    /// Total retransmitted segments.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total retransmission timeouts.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Segments emitted (including retransmissions and pure ACKs).
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Segments received.
    pub fn segments_received(&self) -> u64 {
        self.segments_received
    }

    /// Bytes acknowledged by the peer so far.
    pub fn bytes_acked(&self) -> u64 {
        self.snd_una
    }

    /// Bytes the application has queued that are not yet acknowledged.
    pub fn unacked_backlog(&self) -> u64 {
        self.app_limit - self.snd_una
    }

    /// In-order bytes received so far.
    pub fn bytes_received(&self) -> u64 {
        self.rcv_nxt
    }

    /// Makes `bytes` more application data available for sending.
    pub fn write(&mut self, bytes: u64) {
        self.app_limit += bytes;
    }

    /// The earliest time at which [`TcpConnection::on_timer`] must be called,
    /// if any timer is armed.
    pub fn next_timer(&self) -> Option<SimTime> {
        [self.rto_deadline, self.delayed_ack_deadline]
            .into_iter()
            .flatten()
            .min()
    }

    fn flight_size(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    fn send_window(&self) -> u64 {
        (self.cwnd as u64).min(self.peer_window)
    }

    fn arm_rto(&mut self, now: SimTime) {
        self.rto_deadline = Some(now + self.rto);
    }

    /// Handles an expired timer. The caller should follow up with
    /// [`TcpConnection::poll_send`].
    pub fn on_timer(&mut self, now: SimTime) {
        if let Some(d) = self.delayed_ack_deadline {
            if now >= d {
                self.delayed_ack_deadline = None;
                if self.unacked_segments > 0 {
                    self.pending_acks = self.pending_acks.max(1);
                    self.unacked_segments = 0;
                }
            }
        }
        if let Some(d) = self.rto_deadline {
            if now >= d {
                self.rto_deadline = None;
                self.handle_rto(now);
            }
        }
    }

    fn handle_rto(&mut self, now: SimTime) {
        self.timeouts += 1;
        if self.state == TcpState::SynSent || self.state == TcpState::SynReceived {
            // Retransmit the handshake segment.
            self.syn_pending = true;
            self.rto = (self.rto * 2).min(self.config.max_rto);
            self.arm_rto(now);
            return;
        }
        if self.flight_size() == 0 {
            return;
        }
        // Classic Reno timeout response.
        let flight = self.flight_size() as f64;
        self.ssthresh = (flight / 2.0).max((2 * self.config.mss) as f64);
        self.cwnd = self.config.mss as f64;
        self.in_fast_recovery = false;
        self.dup_acks = 0;
        self.pending_retransmit = Some(self.snd_una);
        self.rtt_probe = None; // Karn: no RTT samples across retransmission.
        self.rto = (self.rto * 2).min(self.config.max_rto);
        self.arm_rto(now);
    }

    /// Processes a received segment.
    pub fn on_segment(
        &mut self,
        now: SimTime,
        seq: u64,
        payload_len: u32,
        ack: u64,
        flags: TcpFlags,
        window: u32,
    ) -> TcpEvent {
        self.segments_received += 1;
        let mut event = TcpEvent {
            delivered_upto: self.rcv_nxt,
            ..TcpEvent::default()
        };
        self.peer_window = window as u64;

        // --- Handshake transitions ---
        match self.state {
            TcpState::Listen => {
                if flags.syn && !flags.ack {
                    self.state = TcpState::SynReceived;
                    self.syn_pending = true; // emit SYN-ACK
                    self.arm_rto(now);
                }
                return event;
            }
            TcpState::SynSent => {
                if flags.syn && flags.ack {
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                    self.pending_acks = self.pending_acks.max(1);
                    event.connected = true;
                }
                // Fall through: the SYN-ACK may carry a window update.
            }
            TcpState::SynReceived => {
                if flags.ack && !flags.syn {
                    self.state = TcpState::Established;
                    self.rto_deadline = None;
                    event.connected = true;
                }
            }
            TcpState::Established => {}
        }

        // --- ACK processing (sender side) ---
        if flags.ack && self.state == TcpState::Established {
            if ack > self.snd_una {
                let newly = ack - self.snd_una;
                event.newly_acked = newly;
                self.snd_una = ack;
                self.dup_acks = 0;
                // RTT sample.
                if let Some((probe_seq, sent_at)) = self.rtt_probe {
                    if ack >= probe_seq {
                        let sample = now - sent_at;
                        self.update_rtt(sample);
                        self.rtt_probe = None;
                    }
                }
                if self.in_fast_recovery {
                    if ack >= self.recovery_point {
                        // Full recovery: deflate to ssthresh.
                        self.in_fast_recovery = false;
                        self.cwnd = self.ssthresh;
                    } else {
                        // Partial ACK (NewReno): retransmit next hole.
                        self.pending_retransmit = Some(self.snd_una);
                        self.cwnd = (self.cwnd - newly as f64 + self.config.mss as f64)
                            .max(self.config.mss as f64);
                    }
                } else if self.cwnd < self.ssthresh {
                    // Slow start: one MSS per ACK (bounded by bytes acked).
                    self.cwnd += (newly.min(self.config.mss as u64)) as f64;
                } else {
                    // Congestion avoidance: one MSS per RTT.
                    self.cwnd += (self.config.mss as f64 * self.config.mss as f64) / self.cwnd;
                }
                // Restart or disarm the RTO.
                if self.flight_size() > 0 {
                    self.arm_rto(now);
                } else {
                    self.rto_deadline = None;
                }
            } else if ack == self.snd_una && payload_len == 0 && self.flight_size() > 0 {
                self.dup_acks += 1;
                if self.dup_acks == 3 && !self.in_fast_recovery {
                    // Fast retransmit.
                    let flight = self.flight_size() as f64;
                    self.ssthresh = (flight / 2.0).max((2 * self.config.mss) as f64);
                    self.cwnd = self.ssthresh + 3.0 * self.config.mss as f64;
                    self.in_fast_recovery = true;
                    self.recovery_point = self.snd_nxt;
                    self.pending_retransmit = Some(self.snd_una);
                    self.rtt_probe = None;
                } else if self.in_fast_recovery {
                    // Window inflation for each further dup ACK.
                    self.cwnd += self.config.mss as f64;
                }
            }
        }

        // --- Data processing (receiver side) ---
        if payload_len > 0 && self.state == TcpState::Established {
            let start = seq;
            let end = seq + payload_len as u64;
            if start <= self.rcv_nxt {
                if end > self.rcv_nxt {
                    self.rcv_nxt = end;
                    self.absorb_ooo();
                }
                self.unacked_segments += 1;
                if self.unacked_segments >= 2 || !self.ooo.is_empty() {
                    self.pending_acks += 1;
                    self.unacked_segments = 0;
                    self.delayed_ack_deadline = None;
                } else {
                    self.delayed_ack_deadline = Some(now + self.config.delayed_ack);
                }
            } else {
                // Out of order: buffer and send an immediate duplicate ACK for
                // every such arrival (the dup-ACK stream fast retransmit
                // depends on).
                self.ooo.push((start, end));
                self.pending_acks += 1;
                self.delayed_ack_deadline = None;
            }
            event.delivered_upto = self.rcv_nxt;
        }
        event
    }

    fn absorb_ooo(&mut self) {
        loop {
            let mut advanced = false;
            self.ooo.retain(|&(start, end)| {
                if start <= self.rcv_nxt {
                    if end > self.rcv_nxt {
                        self.rcv_nxt = end;
                    }
                    advanced = true;
                    false
                } else {
                    true
                }
            });
            if !advanced {
                break;
            }
        }
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample / 2;
            }
            Some(srtt) => {
                let diff = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                self.rttvar =
                    SimDuration::from_nanos((3 * self.rttvar.as_nanos() + diff.as_nanos()) / 4);
                self.srtt = Some(SimDuration::from_nanos(
                    (7 * srtt.as_nanos() + sample.as_nanos()) / 8,
                ));
            }
        }
        let rto = self.srtt.expect("just set") + self.rttvar * 4;
        self.rto = rto.max(self.config.min_rto).min(self.config.max_rto);
    }

    /// Collects every segment the endpoint wants to transmit right now:
    /// handshake segments, pending retransmissions, new data allowed by the
    /// congestion and receive windows, and pure ACKs.
    pub fn poll_send(&mut self, now: SimTime) -> Vec<SegmentToSend> {
        let mut out = Vec::new();
        let window = self.config.receive_window.min(u32::MAX as u64) as u32;

        // Handshake.
        if self.syn_pending {
            self.syn_pending = false;
            let flags = match self.state {
                TcpState::SynSent => TcpFlags::SYN,
                TcpState::SynReceived => TcpFlags::SYN_ACK,
                _ => TcpFlags::SYN,
            };
            out.push(SegmentToSend {
                seq: 0,
                payload_len: 0,
                ack: self.rcv_nxt,
                flags,
                window,
                is_retransmission: false,
            });
            if self.rto_deadline.is_none() {
                self.arm_rto(now);
            }
        }

        if self.state == TcpState::Established {
            // Retransmission first.
            if let Some(seq) = self.pending_retransmit.take() {
                if seq < self.snd_nxt {
                    let len = (self.config.mss as u64).min(self.snd_nxt - seq) as u32;
                    self.retransmissions += 1;
                    out.push(SegmentToSend {
                        seq,
                        payload_len: len,
                        ack: self.rcv_nxt,
                        flags: TcpFlags::ACK,
                        window,
                        is_retransmission: true,
                    });
                    self.arm_rto(now);
                }
            }
            // New data within the window.
            loop {
                let in_flight = self.flight_size();
                let budget = self.send_window().saturating_sub(in_flight);
                let available = self.app_limit.saturating_sub(self.snd_nxt);
                let len = budget.min(available).min(self.config.mss as u64);
                if len == 0 {
                    break;
                }
                let seq = self.snd_nxt;
                self.snd_nxt += len;
                if self.rtt_probe.is_none() {
                    self.rtt_probe = Some((self.snd_nxt, now));
                }
                if self.rto_deadline.is_none() {
                    self.arm_rto(now);
                }
                // Data segments carry the cumulative ACK for free.
                self.pending_acks = 0;
                self.unacked_segments = 0;
                self.delayed_ack_deadline = None;
                out.push(SegmentToSend {
                    seq,
                    payload_len: len as u32,
                    ack: self.rcv_nxt,
                    flags: TcpFlags::ACK,
                    window,
                    is_retransmission: false,
                });
            }
        }

        // Pure ACKs if nothing else carried them. Each owed ACK is emitted
        // separately so duplicate ACKs reach the peer as distinct segments.
        if self.state == TcpState::Established {
            for _ in 0..self.pending_acks {
                out.push(SegmentToSend {
                    seq: self.snd_nxt,
                    payload_len: 0,
                    ack: self.rcv_nxt,
                    flags: TcpFlags::ACK,
                    window,
                    is_retransmission: false,
                });
            }
            self.pending_acks = 0;
        }
        self.segments_sent += out.len() as u64;
        out
    }

    /// Serializes the complete endpoint state (configuration, handshake
    /// state, both window machineries, timers and counters) for the runner's
    /// snapshot. The fields are private, so the codec lives in-crate.
    pub fn encode_state(&self, w: &mut ByteWriter) {
        let c = &self.config;
        w.put_u32(c.mss);
        w.put_u32(c.initial_cwnd_segments);
        w.put_u64(c.initial_ssthresh);
        w.put_u64(c.receive_window);
        w.put_duration(c.min_rto);
        w.put_duration(c.max_rto);
        w.put_duration(c.initial_rto);
        w.put_duration(c.delayed_ack);
        w.put_u8(match self.state {
            TcpState::Listen => 0,
            TcpState::SynSent => 1,
            TcpState::SynReceived => 2,
            TcpState::Established => 3,
        });
        w.put_u64(self.snd_una);
        w.put_u64(self.snd_nxt);
        w.put_u64(self.app_limit);
        w.put_f64(self.cwnd);
        w.put_f64(self.ssthresh);
        w.put_u64(self.peer_window);
        w.put_u32(self.dup_acks);
        w.put_bool(self.in_fast_recovery);
        w.put_u64(self.recovery_point);
        w.put_opt_u64(self.pending_retransmit);
        match self.rtt_probe {
            Some((seq, at)) => {
                w.put_bool(true);
                w.put_u64(seq);
                w.put_time(at);
            }
            None => w.put_bool(false),
        }
        match self.srtt {
            Some(d) => {
                w.put_bool(true);
                w.put_duration(d);
            }
            None => w.put_bool(false),
        }
        w.put_duration(self.rttvar);
        w.put_duration(self.rto);
        w.put_opt_time(self.rto_deadline);
        w.put_bool(self.syn_pending);
        w.put_u64(self.rcv_nxt);
        w.put_len(self.ooo.len());
        for &(start, end) in &self.ooo {
            w.put_u64(start);
            w.put_u64(end);
        }
        w.put_u32(self.pending_acks);
        w.put_u32(self.unacked_segments);
        w.put_opt_time(self.delayed_ack_deadline);
        w.put_u64(self.retransmissions);
        w.put_u64(self.timeouts);
        w.put_u64(self.segments_sent);
        w.put_u64(self.segments_received);
    }

    /// Rebuilds an endpoint from [`TcpConnection::encode_state`] bytes.
    pub fn decode_state(r: &mut ByteReader<'_>) -> Result<Self, CodecError> {
        let config = TcpConfig {
            mss: r.get_u32()?,
            initial_cwnd_segments: r.get_u32()?,
            initial_ssthresh: r.get_u64()?,
            receive_window: r.get_u64()?,
            min_rto: r.get_duration()?,
            max_rto: r.get_duration()?,
            initial_rto: r.get_duration()?,
            delayed_ack: r.get_duration()?,
        };
        let state = match r.get_u8()? {
            0 => TcpState::Listen,
            1 => TcpState::SynSent,
            2 => TcpState::SynReceived,
            3 => TcpState::Established,
            _ => return Err(CodecError::Invalid("TCP state tag")),
        };
        let snd_una = r.get_u64()?;
        let snd_nxt = r.get_u64()?;
        let app_limit = r.get_u64()?;
        let cwnd = r.get_f64()?;
        let ssthresh = r.get_f64()?;
        let peer_window = r.get_u64()?;
        let dup_acks = r.get_u32()?;
        let in_fast_recovery = r.get_bool()?;
        let recovery_point = r.get_u64()?;
        let pending_retransmit = r.get_opt_u64()?;
        let rtt_probe = if r.get_bool()? {
            Some((r.get_u64()?, r.get_time()?))
        } else {
            None
        };
        let srtt = if r.get_bool()? {
            Some(r.get_duration()?)
        } else {
            None
        };
        let rttvar = r.get_duration()?;
        let rto = r.get_duration()?;
        let rto_deadline = r.get_opt_time()?;
        let syn_pending = r.get_bool()?;
        let rcv_nxt = r.get_u64()?;
        let ooo_len = r.get_len()?;
        let mut ooo = Vec::with_capacity(ooo_len);
        for _ in 0..ooo_len {
            ooo.push((r.get_u64()?, r.get_u64()?));
        }
        Ok(TcpConnection {
            config,
            state,
            snd_una,
            snd_nxt,
            app_limit,
            cwnd,
            ssthresh,
            peer_window,
            dup_acks,
            in_fast_recovery,
            recovery_point,
            pending_retransmit,
            rtt_probe,
            srtt,
            rttvar,
            rto,
            rto_deadline,
            syn_pending,
            rcv_nxt,
            ooo,
            pending_acks: r.get_u32()?,
            unacked_segments: r.get_u32()?,
            delayed_ack_deadline: r.get_opt_time()?,
            retransmissions: r.get_u64()?,
            timeouts: r.get_u64()?,
            segments_sent: r.get_u64()?,
            segments_received: r.get_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::default()
    }

    /// Exchange segments between two endpoints over a perfect link with the
    /// given one-way delay until neither wants to send, returning the number
    /// of exchanges performed.
    fn converse(
        a: &mut TcpConnection,
        b: &mut TcpConnection,
        start: SimTime,
        one_way: SimDuration,
        max_rounds: usize,
    ) -> SimTime {
        let mut now = start;
        for _ in 0..max_rounds {
            let from_a = a.poll_send(now);
            let from_b = b.poll_send(now);
            if from_a.is_empty() && from_b.is_empty() {
                break;
            }
            now += one_way;
            for s in from_a {
                b.on_segment(now, s.seq, s.payload_len, s.ack, s.flags, s.window);
            }
            for s in from_b {
                a.on_segment(now, s.seq, s.payload_len, s.ack, s.flags, s.window);
            }
        }
        now
    }

    #[test]
    fn handshake_establishes_both_ends() {
        let mut client = TcpConnection::client(cfg());
        let mut server = TcpConnection::server(cfg());
        converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(10),
            10,
        );
        assert!(client.is_established());
        assert!(server.is_established());
    }

    #[test]
    fn syn_is_retransmitted_on_timeout() {
        let mut client = TcpConnection::client(cfg());
        let first = client.poll_send(SimTime::ZERO);
        assert_eq!(first.len(), 1);
        assert!(first[0].flags.syn);
        // No answer: the RTO fires and the SYN goes out again.
        let deadline = client.next_timer().unwrap();
        client.on_timer(deadline);
        let again = client.poll_send(deadline);
        assert_eq!(again.len(), 1);
        assert!(again[0].flags.syn);
        assert_eq!(client.timeouts(), 1);
    }

    #[test]
    fn bulk_transfer_delivers_all_bytes_in_order() {
        let mut client = TcpConnection::client(cfg());
        let mut server = TcpConnection::server(cfg());
        client.write(1_000_000);
        let end = converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(5),
            10_000,
        );
        assert_eq!(server.bytes_received(), 1_000_000);
        assert_eq!(client.bytes_acked(), 1_000_000);
        assert!(end > SimTime::ZERO);
        assert_eq!(client.retransmissions(), 0);
    }

    #[test]
    fn slow_start_doubles_cwnd_each_rtt() {
        let mut client = TcpConnection::client(cfg());
        let mut server = TcpConnection::server(cfg());
        converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(10),
            6,
        );
        let initial = client.cwnd();
        client.write(10_000_000);
        // One round trip: client sends its window, server acks.
        let mut now = SimTime::from_millis(100);
        let segs = client.poll_send(now);
        assert!(!segs.is_empty());
        now += SimDuration::from_millis(10);
        for s in &segs {
            server.on_segment(now, s.seq, s.payload_len, s.ack, s.flags, s.window);
        }
        let acks = server.poll_send(now);
        now += SimDuration::from_millis(10);
        for s in &acks {
            client.on_segment(now, s.seq, s.payload_len, s.ack, s.flags, s.window);
        }
        assert!(
            client.cwnd() >= initial + (segs.len() as u64 / 2) * 1460,
            "cwnd {} should have grown from {}",
            client.cwnd(),
            initial
        );
        assert!(client.srtt().is_some());
    }

    #[test]
    fn three_dup_acks_trigger_fast_retransmit() {
        let mut client = TcpConnection::client(TcpConfig {
            initial_cwnd_segments: 8,
            ..cfg()
        });
        let mut server = TcpConnection::server(cfg());
        converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            6,
        );
        client.write(100_000);
        let now = SimTime::from_millis(50);
        let segs = client.poll_send(now);
        assert!(
            segs.len() >= 5,
            "an 8-segment initial window should emit several segments"
        );
        // Drop the first segment; deliver the rest. Every out-of-order
        // arrival makes the server owe one duplicate ACK.
        let t = now + SimDuration::from_millis(5);
        for s in &segs[1..] {
            server.on_segment(t, s.seq, s.payload_len, s.ack, s.flags, s.window);
        }
        let acks = server.poll_send(t);
        assert!(
            acks.len() >= 3,
            "expected a duplicate ACK per out-of-order segment"
        );
        assert!(acks.iter().all(|a| a.ack == 0 && a.payload_len == 0));
        for s in &acks {
            client.on_segment(t, s.seq, s.payload_len, s.ack, s.flags, s.window);
        }
        // Three duplicate ACKs trigger fast retransmit of the missing segment.
        let retx = client.poll_send(t);
        assert!(retx.iter().any(|s| s.is_retransmission && s.seq == 0));
        assert!(client.retransmissions() >= 1);
        assert_eq!(client.timeouts(), 0, "loss recovered without an RTO");
        // Delivering the retransmission acks the whole burst cumulatively.
        let r = retx.iter().find(|s| s.is_retransmission).unwrap();
        let e = server.on_segment(t, r.seq, r.payload_len, r.ack, r.flags, r.window);
        assert_eq!(
            e.delivered_upto,
            segs.iter().map(|s| s.payload_len as u64).sum::<u64>()
        );
    }

    #[test]
    fn rto_recovers_when_every_ack_is_lost() {
        let mut client = TcpConnection::client(cfg());
        let mut server = TcpConnection::server(cfg());
        converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            6,
        );
        client.write(1460);
        let now = SimTime::from_millis(10);
        let segs = client.poll_send(now);
        assert_eq!(segs.len(), 1);
        // The segment is lost entirely. Fire the RTO.
        let cwnd_before = client.cwnd();
        let deadline = client.next_timer().unwrap();
        assert!(deadline > now);
        client.on_timer(deadline);
        assert_eq!(client.timeouts(), 1);
        assert!(client.cwnd() <= cwnd_before);
        assert_eq!(client.cwnd(), 1460, "cwnd collapses to one MSS after RTO");
        let retx = client.poll_send(deadline);
        assert_eq!(retx.len(), 1);
        assert!(retx[0].is_retransmission);
        // Deliver it; the transfer completes.
        let t = deadline + SimDuration::from_millis(1);
        server.on_segment(
            t,
            retx[0].seq,
            retx[0].payload_len,
            retx[0].ack,
            retx[0].flags,
            retx[0].window,
        );
        assert_eq!(server.bytes_received(), 1460);
    }

    #[test]
    fn out_of_order_segments_are_reassembled() {
        let mut server = TcpConnection::server(cfg());
        // Establish by hand.
        server.on_segment(SimTime::ZERO, 0, 0, 0, TcpFlags::SYN, 65535);
        let _ = server.poll_send(SimTime::ZERO);
        server.on_segment(SimTime::ZERO, 0, 0, 0, TcpFlags::ACK, 65535);
        assert!(server.is_established());
        // Deliver bytes 1460..2920 before 0..1460.
        let e1 = server.on_segment(SimTime::from_millis(1), 1460, 1460, 0, TcpFlags::ACK, 65535);
        assert_eq!(e1.delivered_upto, 0);
        let e2 = server.on_segment(SimTime::from_millis(2), 0, 1460, 0, TcpFlags::ACK, 65535);
        assert_eq!(e2.delivered_upto, 2920);
        assert_eq!(server.bytes_received(), 2920);
    }

    #[test]
    fn delayed_ack_covers_two_segments() {
        let mut server = TcpConnection::server(cfg());
        server.on_segment(SimTime::ZERO, 0, 0, 0, TcpFlags::SYN, 65535);
        let _ = server.poll_send(SimTime::ZERO);
        server.on_segment(SimTime::ZERO, 0, 0, 0, TcpFlags::ACK, 65535);
        // One segment: the ACK is delayed.
        server.on_segment(SimTime::from_millis(1), 0, 1460, 0, TcpFlags::ACK, 65535);
        assert!(server.poll_send(SimTime::from_millis(1)).is_empty());
        assert!(server.next_timer().is_some());
        // Second segment: the ACK goes out immediately.
        server.on_segment(SimTime::from_millis(2), 1460, 1460, 0, TcpFlags::ACK, 65535);
        let acks = server.poll_send(SimTime::from_millis(2));
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 2920);
        assert_eq!(acks[0].payload_len, 0);
    }

    #[test]
    fn delayed_ack_timer_eventually_acks_a_lone_segment() {
        let mut server = TcpConnection::server(cfg());
        server.on_segment(SimTime::ZERO, 0, 0, 0, TcpFlags::SYN, 65535);
        let _ = server.poll_send(SimTime::ZERO);
        server.on_segment(SimTime::ZERO, 0, 0, 0, TcpFlags::ACK, 65535);
        server.on_segment(SimTime::from_millis(1), 0, 1460, 0, TcpFlags::ACK, 65535);
        let deadline = server.next_timer().unwrap();
        server.on_timer(deadline);
        let acks = server.poll_send(deadline);
        assert_eq!(acks.len(), 1);
        assert_eq!(acks[0].ack, 1460);
    }

    #[test]
    fn congestion_window_respects_peer_window() {
        let mut client = TcpConnection::client(cfg());
        let mut server = TcpConnection::server(TcpConfig {
            receive_window: 4096,
            ..cfg()
        });
        converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(1),
            6,
        );
        client.write(1_000_000);
        let segs = client.poll_send(SimTime::from_millis(20));
        let outstanding: u64 = segs.iter().map(|s| s.payload_len as u64).sum();
        assert!(
            outstanding <= 4096,
            "flight {outstanding} exceeds the peer window"
        );
    }

    #[test]
    fn snapshot_round_trip_is_byte_stable_mid_flight() {
        let mut client = TcpConnection::client(cfg());
        let mut server = TcpConnection::server(cfg());
        converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(5),
            6,
        );
        client.write(100_000);
        let now = SimTime::from_millis(50);
        let segs = client.poll_send(now);
        // Drop the first segment so the server holds out-of-order state and
        // owes duplicate ACKs — the messiest snapshot point available.
        let t = now + SimDuration::from_millis(5);
        for s in &segs[1..] {
            server.on_segment(t, s.seq, s.payload_len, s.ack, s.flags, s.window);
        }
        for conn in [&client, &server] {
            let mut w = ByteWriter::new();
            conn.encode_state(&mut w);
            let bytes = w.into_bytes();
            let mut r = ByteReader::new(&bytes);
            let restored = TcpConnection::decode_state(&mut r).expect("decodes");
            assert_eq!(r.remaining(), 0, "every byte consumed");
            let mut again = ByteWriter::new();
            restored.encode_state(&mut again);
            assert_eq!(bytes, again.into_bytes());
        }
        // The restored sender continues exactly like the original.
        let mut restored = {
            let mut w = ByteWriter::new();
            client.encode_state(&mut w);
            let bytes = w.into_bytes();
            TcpConnection::decode_state(&mut ByteReader::new(&bytes)).expect("decodes")
        };
        let next = SimTime::from_millis(80);
        assert_eq!(client.next_timer(), restored.next_timer());
        assert_eq!(client.poll_send(next), restored.poll_send(next));
    }

    #[test]
    fn cwnd_growth_switches_to_congestion_avoidance() {
        let mut client = TcpConnection::client(TcpConfig {
            initial_ssthresh: 8 * 1460,
            ..cfg()
        });
        let mut server = TcpConnection::server(cfg());
        client.write(50_000_000);
        converse(
            &mut client,
            &mut server,
            SimTime::ZERO,
            SimDuration::from_millis(5),
            400,
        );
        // After many RTTs cwnd should be far above ssthresh but growth is now
        // linear; just confirm it exceeded the threshold without loss.
        assert!(client.cwnd() > 8 * 1460);
        assert_eq!(client.retransmissions(), 0);
    }
}
