//! Edge-node transport stacks.
//!
//! ModelNet's edge nodes run unmodified operating systems, so the TCP
//! behaviour the paper's experiments measure is that of a stock late-1990s
//! Reno/NewReno stack reacting to the drops and delays the core imposes.
//! This crate provides the equivalent for the virtual-time reproduction:
//!
//! * [`TcpConnection`] — a Reno-style congestion-controlled byte stream
//!   (slow start, congestion avoidance, fast retransmit/recovery, RTO with
//!   exponential backoff, delayed ACKs, a simplified three-way handshake),
//! * [`UdpStream`] — constant-bit-rate and on/off datagram sources,
//! * [`netperf`] — the bulk-transfer and request/response load generators the
//!   capacity experiments use.
//!
//! Everything here is a **pure state machine**: methods take the current
//! virtual time and return the segments to transmit and the timers to arm;
//! the simulation driver (`modelnet::Runner`) owns the clock and the network.

pub mod netperf;
pub mod tcp;
pub mod udp;

pub use netperf::{BulkSender, RequestResponse};
pub use tcp::{SegmentToSend, TcpConfig, TcpConnection, TcpEvent, TcpState};
pub use udp::{UdpStream, UdpStreamConfig};
