//! The VN-multiplexing host model (§4.2, Figure 6).
//!
//! Mapping several VNs onto one physical edge node raises the question of
//! when the host itself — not the emulated network — becomes the bottleneck.
//! The paper quantifies this with netperf/netserver pairs exchanging
//! 1500-byte UDP packets while burning a configurable number of instructions
//! per byte after each transmission, for multiplexing degrees from 1 to 100:
//! with one process the full link rate is sustained up to ~76 instructions
//! per byte (the theoretical maximum being 80 on a 1 GHz CPU feeding a
//! 100 Mb/s link); with 100 processes the budget falls to ~65 because context
//! switches consume a growing share of the CPU.
//!
//! [`EdgeHostModel`] reproduces that experiment with a small round-robin
//! process scheduler simulation: each sender process alternates between
//! computing (its per-packet instruction budget) and handing a packet to the
//! shared link; switching between runnable processes costs a fixed number of
//! cycles.

use serde::{Deserialize, Serialize};

use mn_util::{ByteSize, DataRate, SimDuration, SimTime};

/// Parameters of the edge host and the multiplexing workload.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EdgeHostParams {
    /// CPU clock rate in cycles per second (instructions retire at one per
    /// cycle, the paper's CPI = 1.0 assumption).
    pub cpu_hz: f64,
    /// Physical link rate shared by every VN on the host.
    pub link_rate: DataRate,
    /// UDP payload per packet.
    pub packet_bytes: u32,
    /// Fixed per-packet kernel/syscall overhead, in CPU cycles.
    pub per_packet_overhead_cycles: f64,
    /// Cost of one context switch, in CPU cycles.
    pub context_switch_cycles: f64,
}

impl Default for EdgeHostParams {
    fn default() -> Self {
        EdgeHostParams {
            cpu_hz: 1e9,
            link_rate: DataRate::from_mbps(100),
            packet_bytes: 1500,
            per_packet_overhead_cycles: 6_000.0,
            context_switch_cycles: 8_000.0,
        }
    }
}

/// One measured point of the multiplexing experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultiplexObservation {
    /// Number of netperf/netserver process pairs sharing the host.
    pub processes: usize,
    /// Instructions of application work per transmitted byte.
    pub instructions_per_byte: f64,
    /// Aggregate goodput across all processes, in kilobits per second.
    pub aggregate_kbps: f64,
    /// Fraction of CPU time spent context switching.
    pub switch_overhead_fraction: f64,
}

/// The edge host simulation.
#[derive(Debug, Clone)]
pub struct EdgeHostModel {
    params: EdgeHostParams,
}

impl EdgeHostModel {
    /// Creates a model with the given parameters.
    pub fn new(params: EdgeHostParams) -> Self {
        EdgeHostModel { params }
    }

    /// The theoretical instructions-per-byte budget at which the CPU exactly
    /// keeps up with the link: `cpu_hz * 8 / link_rate` (80 for the paper's
    /// 1 GHz / 100 Mb/s configuration).
    pub fn theoretical_budget(&self) -> f64 {
        self.params.cpu_hz * 8.0 / self.params.link_rate.as_bps() as f64
    }

    /// Simulates `processes` sender processes, each computing
    /// `instructions_per_byte` per transmitted byte, for `duration` of
    /// virtual time, and returns the aggregate throughput observed.
    ///
    /// The simulation alternates CPU bursts (compute + per-packet overhead,
    /// plus a context switch whenever a different process is scheduled) with
    /// transmissions serialised on the shared link; the CPU and the link
    /// operate concurrently, as they do in the real host.
    pub fn run(
        &self,
        processes: usize,
        instructions_per_byte: f64,
        duration: SimDuration,
    ) -> MultiplexObservation {
        let p = &self.params;
        let processes = processes.max(1);
        let packet = ByteSize::from_bytes(p.packet_bytes as u64);
        let tx_time = p.link_rate.transmission_time(packet);
        let compute_cycles =
            instructions_per_byte * p.packet_bytes as f64 + p.per_packet_overhead_cycles;
        let compute_time = SimDuration::from_secs_f64(compute_cycles / p.cpu_hz);
        let switch_time = SimDuration::from_secs_f64(p.context_switch_cycles / p.cpu_hz);

        // Round-robin over processes: the CPU prepares packets one at a time
        // (switching costs apply when the next runnable process differs from
        // the one that just ran), the link drains them in FIFO order.
        let end = SimTime::ZERO + duration;
        let mut cpu_free = SimTime::ZERO;
        let mut link_free = SimTime::ZERO;
        let mut current_process = 0usize;
        let mut packets_sent: u64 = 0;
        let mut switch_busy = SimDuration::ZERO;

        while cpu_free < end {
            // Context switch when more than one process shares the CPU.
            if processes > 1 {
                cpu_free += switch_time;
                switch_busy += switch_time;
            }
            cpu_free += compute_time;
            // The prepared packet queues for the link.
            let start_tx = cpu_free.max(link_free);
            link_free = start_tx + tx_time;
            if link_free <= end {
                packets_sent += 1;
            }
            // If the link is the bottleneck the sending process blocks until
            // the socket buffer drains; the CPU idles (or would run other,
            // unrelated work). Model: the CPU may run ahead by at most one
            // packet per process.
            let max_ahead = tx_time * processes as u64;
            if link_free > cpu_free + max_ahead {
                cpu_free = link_free - max_ahead;
            }
            current_process = (current_process + 1) % processes;
        }

        let secs = duration.as_secs_f64();
        let bits = packets_sent as f64 * p.packet_bytes as f64 * 8.0;
        MultiplexObservation {
            processes,
            instructions_per_byte,
            aggregate_kbps: bits / secs / 1e3,
            switch_overhead_fraction: (switch_busy.as_secs_f64() / secs).min(1.0),
        }
    }

    /// Sweeps instructions-per-byte for a fixed multiplexing degree,
    /// producing one curve of Figure 6.
    pub fn sweep(
        &self,
        processes: usize,
        instructions_per_byte: &[f64],
        duration: SimDuration,
    ) -> Vec<MultiplexObservation> {
        instructions_per_byte
            .iter()
            .map(|&ipb| self.run(processes, ipb, duration))
            .collect()
    }

    /// The largest instructions-per-byte budget (searched over `candidates`)
    /// at which the host still sustains at least `threshold_fraction` of its
    /// zero-work throughput — the "knee" the paper quotes per multiplexing
    /// degree.
    pub fn knee(
        &self,
        processes: usize,
        candidates: &[f64],
        duration: SimDuration,
        threshold_fraction: f64,
    ) -> f64 {
        let baseline = self.run(processes, 0.0, duration).aggregate_kbps;
        let mut best = 0.0;
        for &ipb in candidates {
            let obs = self.run(processes, ipb, duration);
            if obs.aggregate_kbps >= baseline * threshold_fraction && ipb > best {
                best = ipb;
            }
        }
        best
    }
}

impl Default for EdgeHostModel {
    fn default() -> Self {
        Self::new(EdgeHostParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EdgeHostModel {
        EdgeHostModel::default()
    }

    #[test]
    fn theoretical_budget_is_eighty() {
        assert!((model().theoretical_budget() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn zero_work_saturates_the_link() {
        let obs = model().run(1, 0.0, SimDuration::from_secs(2));
        // ~95 Mb/s of 1500-byte payloads on a 100 Mb/s link.
        assert!(
            obs.aggregate_kbps > 90_000.0 && obs.aggregate_kbps <= 100_000.0,
            "aggregate {} kbps",
            obs.aggregate_kbps
        );
    }

    #[test]
    fn single_process_knee_is_near_the_paper_value() {
        let candidates: Vec<f64> = (50..=90).map(|x| x as f64).collect();
        let knee = model().knee(1, &candidates, SimDuration::from_secs(1), 0.97);
        assert!(
            (70.0..=80.0).contains(&knee),
            "single-process knee {knee} should be close to the paper's 76"
        );
    }

    #[test]
    fn high_multiplexing_lowers_the_knee() {
        let candidates: Vec<f64> = (40..=90).map(|x| x as f64).collect();
        let d = SimDuration::from_secs(1);
        let knee_1 = model().knee(1, &candidates, d, 0.97);
        let knee_8 = model().knee(8, &candidates, d, 0.97);
        let knee_100 = model().knee(100, &candidates, d, 0.97);
        assert!(knee_8 <= knee_1);
        assert!(knee_100 < knee_1);
        assert!(
            knee_1 - knee_100 >= 5.0,
            "knee should drop by ~10 instructions/byte from 1 to 100 processes \
             (got {knee_1} -> {knee_100})"
        );
    }

    #[test]
    fn throughput_decreases_monotonically_with_work_beyond_knee() {
        let m = model();
        let d = SimDuration::from_secs(1);
        let t80 = m.run(4, 80.0, d).aggregate_kbps;
        let t90 = m.run(4, 90.0, d).aggregate_kbps;
        let t100 = m.run(4, 100.0, d).aggregate_kbps;
        assert!(t80 >= t90 && t90 >= t100);
        assert!(t100 < 95_000.0);
    }

    #[test]
    fn switch_overhead_grows_with_processes() {
        let m = model();
        let d = SimDuration::from_secs(1);
        let one = m.run(1, 60.0, d).switch_overhead_fraction;
        let many = m.run(60, 60.0, d).switch_overhead_fraction;
        assert_eq!(one, 0.0, "a single process never context switches");
        assert!(many > 0.0);
    }

    #[test]
    fn sweep_produces_one_point_per_candidate() {
        let pts = model().sweep(2, &[50.0, 70.0, 90.0], SimDuration::from_millis(500));
        assert_eq!(pts.len(), 3);
        assert!(pts[0].aggregate_kbps >= pts[2].aggregate_kbps);
    }
}
