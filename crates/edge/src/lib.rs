//! Edge-node abstractions.
//!
//! Edge nodes host the virtual nodes (VNs) that run unmodified application
//! code. Two concerns from the paper live here:
//!
//! * the **application API** ([`Application`], [`AppCtx`], [`Message`]) — the
//!   analogue of the socket-interposition library: applications address each
//!   other by VN identity, send framed messages over emulated TCP
//!   connections, and set timers; the simulation driver in the `modelnet`
//!   crate provides the plumbing underneath;
//! * the **host model** ([`hostmodel`]) — the VN-multiplexing cost model of
//!   §4.2: how many application instances can share one physical edge node
//!   before context-switch overhead and CPU contention distort results
//!   (Figure 6).

pub mod api;
pub mod hostmodel;

pub use api::{AppAction, AppCtx, Application, Message};
pub use hostmodel::{EdgeHostModel, EdgeHostParams, MultiplexObservation};
