//! The application programming interface for code running on VNs.
//!
//! The paper runs *unmodified* binaries on edge nodes and interposes on their
//! socket calls so that every endpoint binds to the VN's emulated 10/8
//! address. A Rust reproduction cannot run arbitrary binaries, so the
//! equivalent surface is a small callback trait: an [`Application`] instance
//! is bound to a VN, exchanges framed [`Message`]s with applications on other
//! VNs over emulated TCP connections, and sets timers. All side effects are
//! expressed as [`AppAction`]s collected by the [`AppCtx`]; the simulation
//! driver executes them, which keeps applications deterministic and free of
//! any knowledge of the emulation machinery.

use std::any::Any;

use mn_packet::VnId;
use mn_util::{SimDuration, SimTime};

/// A framed application message.
///
/// The body is an arbitrary Rust value moved by reference from sender to
/// receiver (exactly as ModelNet moves packet payloads by reference); the
/// `wire_size` is what the emulated network charges for it.
pub struct Message {
    /// Bytes the message occupies on the emulated TCP stream.
    pub wire_size: u32,
    /// Application-defined content.
    pub body: Box<dyn Any + Send>,
}

impl Message {
    /// Creates a message with an explicit wire size.
    pub fn new<T: Any + Send>(wire_size: u32, body: T) -> Self {
        Message {
            wire_size,
            body: Box::new(body),
        }
    }

    /// Attempts to view the body as a `T`.
    pub fn body_as<T: Any>(&self) -> Option<&T> {
        self.body.downcast_ref::<T>()
    }

    /// Attempts to take the body as a `T`, returning the message on failure.
    pub fn into_body<T: Any>(self) -> Result<Box<T>, Message> {
        let wire_size = self.wire_size;
        self.body
            .downcast::<T>()
            .map_err(|body| Message { wire_size, body })
    }
}

impl std::fmt::Debug for Message {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Message")
            .field("wire_size", &self.wire_size)
            .finish_non_exhaustive()
    }
}

/// A side effect requested by an application callback.
#[derive(Debug)]
pub enum AppAction {
    /// Send a message to the application on another VN.
    Send {
        /// Destination VN.
        to: VnId,
        /// The message.
        message: Message,
    },
    /// Arm a one-shot timer; `on_timer` fires with the given token.
    SetTimer {
        /// Delay from now.
        delay: SimDuration,
        /// Token passed back to `on_timer`.
        token: u64,
    },
    /// Record a named scalar measurement (collected by the experiment
    /// harness).
    Record {
        /// Metric name.
        metric: &'static str,
        /// Sample value.
        value: f64,
    },
}

/// The context handed to every application callback.
pub struct AppCtx {
    vn: VnId,
    now: SimTime,
    actions: Vec<AppAction>,
}

impl AppCtx {
    /// Creates a context for a callback delivered at `now` to `vn`.
    pub fn new(vn: VnId, now: SimTime) -> Self {
        AppCtx {
            vn,
            now,
            actions: Vec::new(),
        }
    }

    /// The VN this application instance is bound to.
    pub fn my_id(&self) -> VnId {
        self.vn
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sends a message to the application bound to `to`.
    pub fn send(&mut self, to: VnId, message: Message) {
        self.actions.push(AppAction::Send { to, message });
    }

    /// Arms a one-shot timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(AppAction::SetTimer { delay, token });
    }

    /// Records a measurement sample.
    pub fn record(&mut self, metric: &'static str, value: f64) {
        self.actions.push(AppAction::Record { metric, value });
    }

    /// Consumes the context, yielding the collected actions.
    pub fn into_actions(self) -> Vec<AppAction> {
        self.actions
    }

    /// Number of actions collected so far.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }
}

/// An application instance bound to one VN.
///
/// Implementations must be deterministic given the callback sequence: all
/// randomness should be derived from seeds passed at construction.
pub trait Application {
    /// Called once when the emulation starts.
    fn on_start(&mut self, ctx: &mut AppCtx);

    /// Called when a framed message from another VN has been fully delivered
    /// by the emulated transport.
    fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message);

    /// Called when a timer armed with [`AppCtx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut AppCtx, token: u64);

    /// Downcasting hook so experiment harnesses can extract results after the
    /// run.
    fn as_any(&self) -> &dyn Any;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Ping(u32);

    struct Echo {
        received: Vec<u32>,
    }

    impl Application for Echo {
        fn on_start(&mut self, ctx: &mut AppCtx) {
            ctx.set_timer(SimDuration::from_secs(1), 7);
        }
        fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message) {
            if let Some(Ping(v)) = message.body_as::<Ping>() {
                self.received.push(*v);
                ctx.send(from, Message::new(8, Ping(*v + 1)));
            }
        }
        fn on_timer(&mut self, ctx: &mut AppCtx, token: u64) {
            ctx.record("timer", token as f64);
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn message_roundtrips_typed_bodies() {
        let m = Message::new(100, Ping(42));
        assert_eq!(m.wire_size, 100);
        assert_eq!(m.body_as::<Ping>(), Some(&Ping(42)));
        assert!(m.body_as::<String>().is_none());
        let body = m.into_body::<Ping>().unwrap();
        assert_eq!(*body, Ping(42));
    }

    #[test]
    fn into_body_returns_message_on_type_mismatch() {
        let m = Message::new(10, Ping(1));
        let back = m.into_body::<String>().unwrap_err();
        assert_eq!(back.wire_size, 10);
        assert_eq!(back.body_as::<Ping>(), Some(&Ping(1)));
    }

    #[test]
    fn ctx_collects_actions_in_order() {
        let mut ctx = AppCtx::new(VnId(3), SimTime::from_secs(5));
        assert_eq!(ctx.my_id(), VnId(3));
        assert_eq!(ctx.now(), SimTime::from_secs(5));
        ctx.send(VnId(4), Message::new(16, Ping(1)));
        ctx.set_timer(SimDuration::from_millis(10), 99);
        ctx.record("latency_ms", 12.5);
        assert_eq!(ctx.action_count(), 3);
        let actions = ctx.into_actions();
        assert!(matches!(actions[0], AppAction::Send { to: VnId(4), .. }));
        assert!(matches!(actions[1], AppAction::SetTimer { token: 99, .. }));
        assert!(matches!(
            actions[2],
            AppAction::Record {
                metric: "latency_ms",
                ..
            }
        ));
    }

    #[test]
    fn application_callbacks_drive_actions() {
        let mut app = Echo { received: vec![] };
        let mut ctx = AppCtx::new(VnId(0), SimTime::ZERO);
        app.on_start(&mut ctx);
        assert_eq!(ctx.action_count(), 1);

        let mut ctx = AppCtx::new(VnId(0), SimTime::from_millis(1));
        app.on_message(&mut ctx, VnId(9), Message::new(8, Ping(5)));
        assert_eq!(app.received, vec![5]);
        let actions = ctx.into_actions();
        match &actions[0] {
            AppAction::Send { to, message } => {
                assert_eq!(*to, VnId(9));
                assert_eq!(message.body_as::<Ping>(), Some(&Ping(6)));
            }
            other => panic!("unexpected action {other:?}"),
        }
        // Downcast hook.
        assert!(app.as_any().downcast_ref::<Echo>().is_some());
    }
}
