//! Generated per-node configuration — the analogue of the paper's
//! "configuration scripts".
//!
//! The Binding phase automatically generates a set of configuration scripts
//! for every node hosting the emulation: core routers receive the set of
//! pipes they own plus routing tables; edge nodes receive the VN addresses
//! they must host. These structures capture the same information in a
//! serialisable form, plus a plain-text rendering for inspection.

use serde::{Deserialize, Serialize};

use mn_distill::{DistilledTopology, PipeId};
use mn_packet::VnId;
use mn_routing::RoutingMatrix;
use mn_topology::NodeId;

use crate::binding::{Binding, EdgeNodeId};
use crate::partition::{CoreId, PipeOwnershipDirectory};

/// Configuration installed on one core node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CoreConfig {
    /// The core this configuration is for.
    pub core: CoreId,
    /// Pipes the core owns and must emulate.
    pub pipes: Vec<PipeId>,
    /// Number of VN pairs whose routes *enter* the emulation at this core
    /// (i.e. whose source VN is bound to an edge node attached to this core).
    pub entry_route_count: usize,
    /// Peer cores this core may need to tunnel descriptors to.
    pub peer_cores: Vec<CoreId>,
}

/// Configuration installed on one edge node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeConfig {
    /// The edge node this configuration is for.
    pub edge: EdgeNodeId,
    /// The core this edge node routes all its traffic through.
    pub core: CoreId,
    /// VNs hosted on this edge node, with their topology locations.
    pub vns: Vec<(VnId, NodeId)>,
}

/// Builds the per-core configuration for every core referenced by the POD.
pub fn core_configs(
    topo: &DistilledTopology,
    pod: &PipeOwnershipDirectory,
    matrix: &RoutingMatrix,
    binding: &Binding,
) -> Vec<CoreConfig> {
    let cores = pod.core_count();
    let mut configs: Vec<CoreConfig> = (0..cores)
        .map(|c| CoreConfig {
            core: CoreId(c),
            pipes: pod.pipes_of(CoreId(c)),
            entry_route_count: 0,
            peer_cores: Vec::new(),
        })
        .collect();

    // Count routes entering at each core and discover peer relationships.
    let mut peers = vec![vec![false; cores]; cores];
    for vn in binding.vns() {
        let Some(entry) = binding.entry_core(vn) else {
            continue;
        };
        let Some(src_loc) = binding.location(vn) else {
            continue;
        };
        configs[entry.index()].entry_route_count += matrix
            .vns()
            .iter()
            .filter(|&&dst| dst != src_loc && matrix.lookup(src_loc, dst).is_some())
            .count();
        // Which cores do this VN's routes touch?
        for &dst in matrix.vns() {
            if dst == src_loc {
                continue;
            }
            if let Some(route) = matrix.lookup(src_loc, dst) {
                let mut prev = entry;
                for &p in &route.pipes {
                    let owner = pod.owner(p);
                    if owner != prev {
                        peers[prev.index()][owner.index()] = true;
                        prev = owner;
                    }
                }
            }
        }
    }
    for (c, config) in configs.iter_mut().enumerate() {
        config.peer_cores = (0..cores)
            .filter(|&o| o != c && peers[c][o])
            .map(CoreId)
            .collect();
    }
    let _ = topo;
    configs
}

/// Builds the per-edge configuration for every edge node in the binding.
pub fn edge_configs(binding: &Binding) -> Vec<EdgeConfig> {
    (0..binding.edge_count())
        .map(|e| {
            let edge = EdgeNodeId(e);
            EdgeConfig {
                edge,
                core: binding.core_of_edge(edge).expect("edge is bound to a core"),
                vns: binding
                    .vns_on_edge(edge)
                    .into_iter()
                    .map(|vn| (vn, binding.location(vn).expect("bound VN has a location")))
                    .collect(),
            }
        })
        .collect()
}

/// Renders a core configuration as the plain text a human would review.
pub fn render_core_config(config: &CoreConfig, topo: &DistilledTopology) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} configuration: {} pipes, {} entry routes\n",
        config.core,
        config.pipes.len(),
        config.entry_route_count
    ));
    for &p in &config.pipes {
        let pipe = topo.pipe(p);
        out.push_str(&format!(
            "pipe {} {} -> {} bw {} delay {} loss {} queue {}\n",
            p,
            pipe.src,
            pipe.dst,
            pipe.attrs.bandwidth,
            pipe.attrs.latency,
            pipe.attrs.loss_rate,
            pipe.attrs.queue_len
        ));
    }
    if !config.peer_cores.is_empty() {
        let peers: Vec<String> = config.peer_cores.iter().map(|c| c.to_string()).collect();
        out.push_str(&format!("peers {}\n", peers.join(" ")));
    }
    out
}

/// Renders an edge configuration as plain text.
pub fn render_edge_config(config: &EdgeConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} configuration: {} VNs via {}\n",
        config.edge,
        config.vns.len(),
        config.core
    ));
    for (vn, loc) in &config.vns {
        out.push_str(&format!("vn {} addr {} at {}\n", vn, vn.addr(), loc));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::BindingParams;
    use crate::partition::greedy_k_clusters;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, RingParams};

    fn setup() -> (
        DistilledTopology,
        PipeOwnershipDirectory,
        RoutingMatrix,
        Binding,
    ) {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let pod = greedy_k_clusters(&d, 2, 1);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 2));
        (d, pod, matrix, binding)
    }

    #[test]
    fn core_configs_cover_all_pipes_once() {
        let (d, pod, matrix, binding) = setup();
        let configs = core_configs(&d, &pod, &matrix, &binding);
        assert_eq!(configs.len(), 2);
        let total: usize = configs.iter().map(|c| c.pipes.len()).sum();
        assert_eq!(total, d.pipe_count());
        assert!(configs.iter().any(|c| c.entry_route_count > 0));
    }

    #[test]
    fn peer_cores_are_symmetric_for_a_split_ring() {
        let (d, pod, matrix, binding) = setup();
        let configs = core_configs(&d, &pod, &matrix, &binding);
        let c0_peers = &configs[0].peer_cores;
        let c1_peers = &configs[1].peer_cores;
        // A two-way split of a ring must tunnel in both directions.
        assert!(c0_peers.contains(&CoreId(1)) || c1_peers.contains(&CoreId(0)));
    }

    #[test]
    fn edge_configs_list_every_vn_exactly_once() {
        let (_, _, _, binding) = setup();
        let configs = edge_configs(&binding);
        assert_eq!(configs.len(), 2);
        let total: usize = configs.iter().map(|c| c.vns.len()).sum();
        assert_eq!(total, binding.vn_count());
    }

    #[test]
    fn rendered_configs_mention_pipes_and_addresses() {
        let (d, pod, matrix, binding) = setup();
        let core_text = render_core_config(&core_configs(&d, &pod, &matrix, &binding)[0], &d);
        assert!(core_text.contains("pipe p"));
        assert!(core_text.contains("bw"));
        let edge_text = render_edge_config(&edge_configs(&binding)[0]);
        assert!(edge_text.contains("10.0.0.1"));
        assert!(edge_text.contains("vn0"));
    }
}
