//! VN-to-edge binding.
//!
//! The Binding phase assigns VNs to physical edge nodes — multiplexing
//! multiple VNs onto each machine — and binds each physical edge node to a
//! single core. Application instances must use their VN's emulated address
//! (see `mn-packet::VnAddr`), which the paper achieves with a preloaded
//! socket-interposition library; in this reproduction the `mn-edge` socket
//! layer performs the same binding.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use mn_packet::VnId;
use mn_topology::NodeId;

use crate::partition::CoreId;

/// Identifier of a physical edge node (a machine hosting VNs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EdgeNodeId(pub usize);

impl EdgeNodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for EdgeNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge{}", self.0)
    }
}

/// Parameters of the binding phase.
#[derive(Debug, Clone)]
pub struct BindingParams {
    /// Number of physical edge nodes available.
    pub edge_nodes: usize,
    /// Number of core nodes available.
    pub cores: usize,
    /// First host CPU to suggest for core execution threads, if the run
    /// phase executes cores on dedicated threads (see
    /// [`Binding::thread_affinity`]). `None` leaves placement to the OS.
    pub affinity_base: Option<usize>,
}

impl BindingParams {
    /// Convenience constructor.
    pub fn new(edge_nodes: usize, cores: usize) -> Self {
        BindingParams {
            edge_nodes,
            cores,
            affinity_base: None,
        }
    }

    /// Suggests pinning core `i`'s execution thread to host CPU
    /// `base + i`. The hint is advisory: backends that cannot pin threads
    /// record it (thread naming, logs) without enforcing it.
    pub fn with_affinity_base(mut self, base: usize) -> Self {
        self.affinity_base = Some(base);
        self
    }
}

/// The complete binding: VN ↔ topology location, VN → edge node and
/// edge node → core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Binding {
    /// Topology client node hosting each VN, indexed by `VnId`.
    vn_location: Vec<NodeId>,
    /// Edge node hosting each VN, indexed by `VnId`.
    vn_edge: Vec<EdgeNodeId>,
    /// Core each edge node routes its traffic through.
    edge_core: Vec<CoreId>,
    /// Reverse map: topology node → VN (at most one VN per client node).
    location_vn: HashMap<NodeId, VnId>,
    /// Host CPU suggested for each core's execution thread, indexed by
    /// `CoreId` (empty when no affinity was requested).
    core_affinity: Vec<Option<usize>>,
}

impl Binding {
    /// Binds one VN to every client node in `vn_locations`, spreading VNs
    /// across `params.edge_nodes` edge machines round-robin in contiguous
    /// blocks (VNs that share a stub domain land on the same edge node when
    /// possible, matching how the paper's experiments group them), and binds
    /// edge nodes to cores round-robin.
    ///
    /// # Panics
    ///
    /// Panics if `params.edge_nodes` or `params.cores` is zero.
    pub fn bind(vn_locations: &[NodeId], params: &BindingParams) -> Self {
        assert!(params.edge_nodes > 0, "need at least one edge node");
        assert!(params.cores > 0, "need at least one core");
        let n = vn_locations.len();
        let per_edge = n.div_ceil(params.edge_nodes.max(1)).max(1);
        let mut vn_location = Vec::with_capacity(n);
        let mut vn_edge = Vec::with_capacity(n);
        let mut location_vn = HashMap::with_capacity(n);
        for (i, &loc) in vn_locations.iter().enumerate() {
            let vn = VnId(i as u32);
            vn_location.push(loc);
            vn_edge.push(EdgeNodeId((i / per_edge).min(params.edge_nodes - 1)));
            location_vn.insert(loc, vn);
        }
        let edge_core = (0..params.edge_nodes)
            .map(|e| CoreId(e % params.cores))
            .collect();
        let core_affinity = (0..params.cores)
            .map(|c| params.affinity_base.map(|base| base + c))
            .collect();
        Binding {
            vn_location,
            vn_edge,
            edge_core,
            location_vn,
            core_affinity,
        }
    }

    /// Number of VNs bound.
    pub fn vn_count(&self) -> usize {
        self.vn_location.len()
    }

    /// Number of edge nodes.
    pub fn edge_count(&self) -> usize {
        self.edge_core.len()
    }

    /// Number of cores referenced.
    pub fn core_count(&self) -> usize {
        self.edge_core
            .iter()
            .map(|c| c.index() + 1)
            .max()
            .unwrap_or(1)
    }

    /// All VN identifiers.
    pub fn vns(&self) -> impl Iterator<Item = VnId> + '_ {
        (0..self.vn_location.len()).map(|i| VnId(i as u32))
    }

    /// The topology client node a VN is bound to.
    pub fn location(&self, vn: VnId) -> Option<NodeId> {
        self.vn_location.get(vn.index()).copied()
    }

    /// The VN bound at a topology client node, if any.
    pub fn vn_at(&self, node: NodeId) -> Option<VnId> {
        self.location_vn.get(&node).copied()
    }

    /// The edge machine hosting a VN.
    pub fn edge_of(&self, vn: VnId) -> Option<EdgeNodeId> {
        self.vn_edge.get(vn.index()).copied()
    }

    /// The core an edge machine routes through.
    pub fn core_of_edge(&self, edge: EdgeNodeId) -> Option<CoreId> {
        self.edge_core.get(edge.index()).copied()
    }

    /// The core a VN's traffic enters the emulation through.
    pub fn entry_core(&self, vn: VnId) -> Option<CoreId> {
        self.core_of_edge(self.edge_of(vn)?)
    }

    /// All VNs hosted on an edge machine.
    pub fn vns_on_edge(&self, edge: EdgeNodeId) -> Vec<VnId> {
        self.vn_edge
            .iter()
            .enumerate()
            .filter(|(_, &e)| e == edge)
            .map(|(i, _)| VnId(i as u32))
            .collect()
    }

    /// The host CPU suggested for `core`'s execution thread, if the binding
    /// was built with [`BindingParams::with_affinity_base`]. Purely a hint:
    /// the parallel backend surfaces it (thread names, diagnostics) but does
    /// not enforce placement.
    pub fn thread_affinity(&self, core: CoreId) -> Option<usize> {
        self.core_affinity.get(core.index()).copied().flatten()
    }

    /// The multiplexing degree: the largest number of VNs on any edge node.
    pub fn max_multiplexing(&self) -> usize {
        let mut counts = vec![0usize; self.edge_core.len()];
        for e in &self.vn_edge {
            counts[e.index()] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

/// Entry-core choice for a VN joining a running emulation: the least-loaded
/// core, lowest index breaking ties. Deterministic in the load vector alone,
/// so both execution backends assign identical entry cores from identical
/// churn histories.
///
/// # Panics
///
/// Panics if `loads` is empty.
pub fn least_loaded(loads: &[u32]) -> usize {
    assert!(!loads.is_empty(), "need at least one core");
    let mut best = 0;
    for (i, &load) in loads.iter().enumerate().skip(1) {
        if load < loads[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn locations(n: usize) -> Vec<NodeId> {
        (0..n).map(|i| NodeId(i + 100)).collect()
    }

    #[test]
    fn bind_spreads_vns_in_blocks() {
        let locs = locations(10);
        let b = Binding::bind(&locs, &BindingParams::new(5, 2));
        assert_eq!(b.vn_count(), 10);
        assert_eq!(b.edge_count(), 5);
        assert_eq!(b.max_multiplexing(), 2);
        // First two VNs share edge 0.
        assert_eq!(b.edge_of(VnId(0)), Some(EdgeNodeId(0)));
        assert_eq!(b.edge_of(VnId(1)), Some(EdgeNodeId(0)));
        assert_eq!(b.edge_of(VnId(2)), Some(EdgeNodeId(1)));
        assert_eq!(b.vns_on_edge(EdgeNodeId(0)), vec![VnId(0), VnId(1)]);
    }

    #[test]
    fn locations_roundtrip() {
        let locs = locations(6);
        let b = Binding::bind(&locs, &BindingParams::new(3, 1));
        for (i, &loc) in locs.iter().enumerate() {
            let vn = VnId(i as u32);
            assert_eq!(b.location(vn), Some(loc));
            assert_eq!(b.vn_at(loc), Some(vn));
        }
        assert_eq!(b.location(VnId(99)), None);
        assert_eq!(b.vn_at(NodeId(0)), None);
    }

    #[test]
    fn edges_bound_to_cores_round_robin() {
        let b = Binding::bind(&locations(8), &BindingParams::new(4, 2));
        assert_eq!(b.core_of_edge(EdgeNodeId(0)), Some(CoreId(0)));
        assert_eq!(b.core_of_edge(EdgeNodeId(1)), Some(CoreId(1)));
        assert_eq!(b.core_of_edge(EdgeNodeId(2)), Some(CoreId(0)));
        assert_eq!(b.core_of_edge(EdgeNodeId(3)), Some(CoreId(1)));
        assert_eq!(b.core_count(), 2);
        assert_eq!(b.entry_core(VnId(2)), Some(CoreId(1)));
    }

    #[test]
    fn more_edges_than_vns_is_fine() {
        let b = Binding::bind(&locations(2), &BindingParams::new(10, 3));
        assert_eq!(b.max_multiplexing(), 1);
        assert_eq!(b.edge_of(VnId(1)), Some(EdgeNodeId(1)));
    }

    #[test]
    fn single_edge_hosts_everything() {
        let b = Binding::bind(&locations(12), &BindingParams::new(1, 1));
        assert_eq!(b.max_multiplexing(), 12);
        assert!(b.vns().all(|vn| b.edge_of(vn) == Some(EdgeNodeId(0))));
    }

    #[test]
    fn affinity_hints_default_to_none() {
        let b = Binding::bind(&locations(4), &BindingParams::new(2, 2));
        assert_eq!(b.thread_affinity(CoreId(0)), None);
        assert_eq!(b.thread_affinity(CoreId(1)), None);
    }

    #[test]
    fn affinity_hints_count_up_from_the_base() {
        let params = BindingParams::new(2, 3).with_affinity_base(4);
        let b = Binding::bind(&locations(6), &params);
        assert_eq!(b.thread_affinity(CoreId(0)), Some(4));
        assert_eq!(b.thread_affinity(CoreId(1)), Some(5));
        assert_eq!(b.thread_affinity(CoreId(2)), Some(6));
        // Out-of-range cores have no hint.
        assert_eq!(b.thread_affinity(CoreId(3)), None);
    }

    #[test]
    fn least_loaded_breaks_ties_toward_the_lowest_index() {
        assert_eq!(least_loaded(&[3, 1, 2, 1]), 1);
        assert_eq!(least_loaded(&[0, 0, 0]), 0);
        assert_eq!(least_loaded(&[5]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one edge node")]
    fn zero_edges_rejected() {
        let _ = Binding::bind(&locations(1), &BindingParams::new(0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let _ = Binding::bind(&locations(1), &BindingParams::new(1, 0));
    }
}
