//! The *Assign* and *Bind* phases of ModelNet.
//!
//! Assignment maps pieces of the distilled pipe topology onto ModelNet core
//! nodes, partitioning the pipe graph to spread emulation load. The ideal
//! assignment depends on routing, link properties and offered traffic — an
//! NP-complete problem — so the paper uses a simple **greedy k-clusters**
//! heuristic: pick k random seed nodes in the distilled topology and grow a
//! connected region around each in round-robin fashion, claiming pipes as
//! they are reached. The result is recorded in a **pipe ownership directory
//! (POD)** that multi-core emulation consults when a route crosses from one
//! core's pipes to another's.
//!
//! Binding assigns VNs to physical edge nodes (multiplexing several VNs per
//! node), binds each edge node to a single core, and emits the per-node
//! configuration the Run phase installs: pipes and routes for cores, VN
//! addresses for edges.

pub mod binding;
pub mod config;
pub mod partition;

pub use binding::{least_loaded, Binding, BindingParams, EdgeNodeId};
pub use config::{
    core_configs, edge_configs, render_core_config, render_edge_config, CoreConfig, EdgeConfig,
};
pub use partition::{greedy_k_clusters, CoreId, PipeOwnershipDirectory};
