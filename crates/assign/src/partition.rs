//! Greedy k-clusters pipe-to-core partitioning and the pipe ownership
//! directory (POD).

use std::collections::BTreeSet;
use std::fmt;

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mn_distill::{DistilledTopology, PipeId};
use mn_routing::Route;
use mn_topology::NodeId;
use mn_util::rngs::derived_rng;

/// Identifier of a core (emulation) node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

impl CoreId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// The pipe ownership directory: which core emulates each pipe.
///
/// Created during the Binding phase and consulted by multi-core emulation to
/// decide when a packet descriptor must be tunnelled to another core.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipeOwnershipDirectory {
    owner: Vec<CoreId>,
    cores: usize,
}

impl PipeOwnershipDirectory {
    /// Creates a directory assigning every pipe to `CoreId(0)` (single-core
    /// operation).
    pub fn single_core(pipe_count: usize) -> Self {
        PipeOwnershipDirectory {
            owner: vec![CoreId(0); pipe_count],
            cores: 1,
        }
    }

    /// Creates a directory from an explicit owner vector.
    ///
    /// # Panics
    ///
    /// Panics if `cores == 0` or any owner index is out of range.
    pub fn from_owners(owner: Vec<CoreId>, cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        assert!(
            owner.iter().all(|c| c.index() < cores),
            "pipe owner out of range"
        );
        PipeOwnershipDirectory { owner, cores }
    }

    /// Number of cores participating in the emulation.
    pub fn core_count(&self) -> usize {
        self.cores
    }

    /// Number of pipes covered.
    pub fn pipe_count(&self) -> usize {
        self.owner.len()
    }

    /// The core that owns `pipe`.
    ///
    /// # Panics
    ///
    /// Panics if the pipe is not covered by the directory.
    pub fn owner(&self, pipe: PipeId) -> CoreId {
        self.owner[pipe.index()]
    }

    /// The core that owns `pipe`, or `None` if out of range.
    pub fn get_owner(&self, pipe: PipeId) -> Option<CoreId> {
        self.owner.get(pipe.index()).copied()
    }

    /// Pipes owned by `core`.
    pub fn pipes_of(&self, core: CoreId) -> Vec<PipeId> {
        self.owner
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == core)
            .map(|(i, _)| PipeId(i))
            .collect()
    }

    /// Number of pipes owned by each core.
    pub fn load_per_core(&self) -> Vec<usize> {
        let mut load = vec![0usize; self.cores];
        for c in &self.owner {
            load[c.index()] += 1;
        }
        load
    }

    /// Number of core-to-core transitions a packet following `route` incurs:
    /// each time two consecutive pipes are owned by different cores the
    /// descriptor must be tunnelled. A route entirely on one core crosses
    /// zero times.
    pub fn crossings(&self, route: &Route) -> usize {
        route
            .pipes
            .windows(2)
            .filter(|w| self.owner(w[0]) != self.owner(w[1]))
            .count()
    }
}

/// Greedy k-clusters assignment of pipes to `cores` core nodes (the paper's
/// heuristic): pick `cores` random seed nodes of the distilled topology and
/// grow each core's connected region in round-robin fashion, claiming the
/// pipes incident to the region as it grows. Pipes left unreached (disjoint
/// components) are dealt out round-robin at the end.
pub fn greedy_k_clusters(
    topo: &DistilledTopology,
    cores: usize,
    seed: u64,
) -> PipeOwnershipDirectory {
    assert!(cores > 0, "need at least one core");
    let pipe_count = topo.pipe_count();
    if cores == 1 || pipe_count == 0 {
        return PipeOwnershipDirectory::single_core(pipe_count);
    }
    let mut rng = derived_rng(seed, 0xA551);

    // Candidate seed nodes: prefer nodes that actually have pipes.
    let mut nodes_with_pipes: Vec<NodeId> = (0..topo.node_count())
        .map(NodeId)
        .filter(|&n| !topo.out_pipes(n).is_empty())
        .collect();
    nodes_with_pipes.shuffle(&mut rng);

    let mut owner: Vec<Option<CoreId>> = vec![None; pipe_count];
    // Each core's frontier: the set of nodes it has reached.
    let mut regions: Vec<BTreeSet<NodeId>> = Vec::with_capacity(cores);
    for i in 0..cores {
        let seed_node = nodes_with_pipes
            .get(i)
            .copied()
            .unwrap_or_else(|| nodes_with_pipes[rng.gen_range(0..nodes_with_pipes.len().max(1))]);
        let mut set = BTreeSet::new();
        set.insert(seed_node);
        regions.push(set);
    }

    let mut assigned = 0usize;
    let mut stalled_rounds = 0usize;
    while assigned < pipe_count && stalled_rounds < 2 {
        let mut progressed = false;
        #[allow(clippy::needless_range_loop)]
        for core in 0..cores {
            // Claim the first unassigned pipe leaving the core's region.
            let mut claim: Option<PipeId> = None;
            'search: for &node in &regions[core] {
                for &p in topo.out_pipes(node) {
                    if owner[p.index()].is_none() {
                        claim = Some(p);
                        break 'search;
                    }
                }
            }
            if let Some(p) = claim {
                owner[p.index()] = Some(CoreId(core));
                assigned += 1;
                progressed = true;
                let pipe = topo.pipe(p);
                regions[core].insert(pipe.dst);
                regions[core].insert(pipe.src);
                // Claim the reverse pipe too so a bidirectional link lives on
                // one core (halves tunnelling for request/response flows).
                if let Some(rev) = topo.find_pipe(pipe.dst, pipe.src) {
                    if owner[rev.index()].is_none() {
                        owner[rev.index()] = Some(CoreId(core));
                        assigned += 1;
                    }
                }
            }
        }
        if !progressed {
            // All regions exhausted: re-seed each core at a node incident to
            // an unassigned pipe (handles disconnected pipe graphs).
            let mut reseeded = false;
            for (i, region) in regions.iter_mut().enumerate() {
                if let Some((pid, _)) = owner
                    .iter()
                    .enumerate()
                    .find(|(_, o)| o.is_none())
                    .map(|(i, _)| (PipeId(i), ()))
                {
                    region.insert(topo.pipe(pid).src);
                    reseeded = true;
                    let _ = i;
                }
            }
            if reseeded {
                stalled_rounds += 1;
            } else {
                break;
            }
        } else {
            stalled_rounds = 0;
        }
    }

    // Anything still unassigned is dealt round-robin.
    let mut next = 0usize;
    let owner: Vec<CoreId> = owner
        .into_iter()
        .map(|o| {
            o.unwrap_or_else(|| {
                let c = CoreId(next % cores);
                next += 1;
                c
            })
        })
        .collect();

    PipeOwnershipDirectory::from_owners(owner, cores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_routing::{route_between, RoutingMatrix};
    use mn_topology::generators::{ring_topology, star_topology, RingParams, StarParams};

    fn ring_graph() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 8,
            clients_per_router: 4,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn single_core_owns_everything() {
        let d = ring_graph();
        let pod = greedy_k_clusters(&d, 1, 1);
        assert_eq!(pod.core_count(), 1);
        assert_eq!(pod.pipe_count(), d.pipe_count());
        assert!(pod.load_per_core()[0] == d.pipe_count());
        let r = route_between(&d, d.vns()[0], d.vns()[5]).unwrap();
        assert_eq!(pod.crossings(&r), 0);
    }

    #[test]
    fn every_pipe_gets_an_owner() {
        let d = ring_graph();
        for cores in [2, 3, 4, 7] {
            let pod = greedy_k_clusters(&d, cores, 42);
            assert_eq!(pod.pipe_count(), d.pipe_count());
            assert_eq!(pod.core_count(), cores);
            let load = pod.load_per_core();
            assert_eq!(load.iter().sum::<usize>(), d.pipe_count());
        }
    }

    #[test]
    fn load_is_roughly_balanced() {
        let d = ring_graph();
        let pod = greedy_k_clusters(&d, 4, 7);
        let load = pod.load_per_core();
        let max = *load.iter().max().unwrap();
        let min = *load.iter().min().unwrap();
        // The greedy heuristic does not guarantee tight balance (regions that
        // collide early stop growing), but every core must carry real load and
        // no core may own the overwhelming majority of pipes.
        assert!(min > 0, "a core was left with no pipes");
        assert!(
            max <= d.pipe_count() / 2,
            "one core owns more than half the pipes: min {min}, max {max}"
        );
    }

    #[test]
    fn reverse_pipes_stay_on_the_same_core() {
        let d = ring_graph();
        let pod = greedy_k_clusters(&d, 4, 3);
        let mut colocated = 0;
        let mut total = 0;
        for (id, pipe) in d.pipes() {
            if let Some(rev) = d.find_pipe(pipe.dst, pipe.src) {
                total += 1;
                if pod.owner(id) == pod.owner(rev) {
                    colocated += 1;
                }
            }
        }
        assert!(
            colocated * 10 >= total * 9,
            "{colocated}/{total} duplex pairs colocated"
        );
    }

    #[test]
    fn crossings_counted_along_routes() {
        let d = ring_graph();
        let pod = greedy_k_clusters(&d, 4, 11);
        let matrix = RoutingMatrix::build(&d);
        let vns = matrix.vns().to_vec();
        let mut any_crossing = false;
        for &a in &vns {
            for &b in &vns {
                if a == b {
                    continue;
                }
                let r = matrix.lookup(a, b).unwrap();
                let c = pod.crossings(&r);
                assert!(c < r.hop_count().max(1));
                if c > 0 {
                    any_crossing = true;
                }
            }
        }
        assert!(
            any_crossing,
            "a 4-way partition of a ring must split some route"
        );
    }

    #[test]
    fn star_partition_keeps_spoke_pairs_together() {
        let topo = star_topology(&StarParams {
            clients: 64,
            ..StarParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let pod = greedy_k_clusters(&d, 4, 5);
        // With a star, a flow crosses cores only when source and destination
        // spokes land on different cores; each route has 2 pipes so at most
        // one crossing.
        let matrix = RoutingMatrix::build(&d);
        let vns = matrix.vns().to_vec();
        for &a in vns.iter().take(8) {
            for &b in vns.iter().take(8) {
                if a == b {
                    continue;
                }
                assert!(pod.crossings(&matrix.lookup(a, b).unwrap()) <= 1);
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let d = ring_graph();
        let a = greedy_k_clusters(&d, 4, 99);
        let b = greedy_k_clusters(&d, 4, 99);
        for id in d.pipe_ids() {
            assert_eq!(a.owner(id), b.owner(id));
        }
    }

    #[test]
    fn from_owners_validates() {
        let pod = PipeOwnershipDirectory::from_owners(vec![CoreId(0), CoreId(1)], 2);
        assert_eq!(pod.owner(PipeId(1)), CoreId(1));
        assert_eq!(pod.get_owner(PipeId(5)), None);
        assert_eq!(pod.pipes_of(CoreId(0)), vec![PipeId(0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_owners_rejects_bad_core() {
        let _ = PipeOwnershipDirectory::from_owners(vec![CoreId(3)], 2);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        let d = ring_graph();
        let _ = greedy_k_clusters(&d, 0, 1);
    }
}
