//! The §5 scale demonstration: connectivity of a large gnutella network.
//!
//! The paper's largest run mapped 10,000 unmodified gnutella clients onto 100
//! edge machines and evaluated the evolution and connectivity of the overlay.
//! This regenerator runs the same workload on the flooding overlay of
//! `mn_apps::gnutella` over a transit–stub topology and reports how much of
//! the network each node discovers. At `Scale::Quick` the run uses a few
//! hundred VNs; `Scale::Paper` raises the count (bounded by memory for the
//! all-pairs routing matrix — see EXPERIMENTS.md).

use mn_apps::{GnutellaConfig, GnutellaNode};
use mn_distill::DistillationMode;
use mn_packet::VnId;
use mn_topology::generators::{transit_stub_topology, TransitStubParams};
use mn_util::rngs::derived_rng;
use modelnet::{Experiment, SimDuration};
use rand::seq::SliceRandom;

use crate::Scale;

/// Summary of the connectivity run.
#[derive(Debug, Clone)]
pub struct GnutellaSummary {
    /// Participating VNs.
    pub nodes: usize,
    /// Mean fraction of the network each node discovered.
    pub mean_discovery_fraction: f64,
    /// Minimum discovery fraction across nodes.
    pub min_discovery_fraction: f64,
    /// Total PONGs received across all nodes.
    pub total_pongs: u64,
}

/// Runs the connectivity experiment.
pub fn run(scale: Scale) -> GnutellaSummary {
    let (vn_count, secs) = match scale {
        Scale::Quick => (120, 60u64),
        Scale::Paper => (2_000, 120u64),
    };
    let ts = transit_stub_topology(&TransitStubParams::sized_for(vn_count * 3 / 2, 31));
    let mut runner = Experiment::new(ts.topology.clone())
        .distillation(DistillationMode::LAST_MILE)
        .cores(2)
        .edge_nodes(10)
        .unconstrained_hardware()
        .seed(31)
        .build()
        .expect("gnutella experiment builds");
    let binding = runner.binding().clone();
    let mut vns: Vec<VnId> = runner.vn_ids();
    vns.truncate(vn_count);

    // Random bootstrap graph: each node knows ~4 random earlier peers, which
    // keeps the overlay connected with high probability.
    let mut rng = derived_rng(31, 77);
    for (i, &vn) in vns.iter().enumerate() {
        let mut neighbours: Vec<VnId> = if i == 0 {
            Vec::new()
        } else {
            let mut earlier: Vec<VnId> = vns[..i].to_vec();
            earlier.shuffle(&mut rng);
            earlier.truncate(4.min(i));
            earlier
        };
        if i > 0 && neighbours.is_empty() {
            neighbours.push(vns[0]);
        }
        runner.add_application(
            vn,
            Box::new(GnutellaNode::new(
                vn,
                GnutellaConfig {
                    neighbours,
                    ttl: 7,
                    ping_period: SimDuration::from_secs(10),
                    max_neighbours: 8,
                },
            )),
        );
    }
    let _ = binding;
    runner.run_for(SimDuration::from_secs(secs)).unwrap();

    let mut total_fraction = 0.0;
    let mut min_fraction = 1.0f64;
    let mut total_pongs = 0;
    for &vn in &vns {
        let node = runner.app_as::<GnutellaNode>(vn).expect("app installed");
        let fraction = node.known_peers() as f64 / (vns.len() - 1).max(1) as f64;
        total_fraction += fraction;
        min_fraction = min_fraction.min(fraction);
        total_pongs += node.pongs_received();
    }
    GnutellaSummary {
        nodes: vns.len(),
        mean_discovery_fraction: total_fraction / vns.len() as f64,
        min_discovery_fraction: min_fraction,
        total_pongs,
    }
}

/// Renders the summary.
pub fn render(s: &GnutellaSummary) -> String {
    format!(
        "# Gnutella connectivity\nnodes\t{}\nmean_discovery\t{:.3}\nmin_discovery\t{:.3}\ntotal_pongs\t{}\n",
        s.nodes, s.mean_discovery_fraction, s.min_discovery_fraction, s.total_pongs
    )
}

/// Shape check: the overlay is well connected — nodes discover a substantial
/// fraction of the network within the run.
pub fn shape_holds(s: &GnutellaSummary) -> bool {
    s.mean_discovery_fraction > 0.3 && s.total_pongs > 0
}
