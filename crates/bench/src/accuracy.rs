//! §3.1 baseline accuracy: per-hop emulation error stays within the scheduler
//! tick (100 µs) up to and including full load, with overload appearing as
//! physical drops rather than as late packets.

use mn_distill::DistillationMode;
use mn_topology::generators::{path_pairs_topology, PathPairsParams};
use mn_transport::UdpStreamConfig;
use modelnet::{DataRate, Experiment, HardwareProfile, SimDuration, SimTime};

use crate::Scale;

/// One row: accuracy statistics at a given offered load.
#[derive(Debug, Clone, Copy)]
pub struct AccuracyPoint {
    /// Offered load, packets/second.
    pub offered_pps: f64,
    /// Mean end-to-end emulation error, microseconds.
    pub mean_error_us: f64,
    /// Worst per-hop error, microseconds.
    pub max_per_hop_error_us: f64,
    /// Worst end-to-end error, microseconds.
    pub max_error_us: f64,
    /// Physical drops (the overload escape valve).
    pub physical_drops: u64,
    /// Whether the paper's bound (per-hop error ≤ tick) held.
    pub within_bound: bool,
}

/// Runs the accuracy experiment: a 10-hop path offered increasing UDP load.
pub fn run(scale: Scale) -> Vec<AccuracyPoint> {
    let rates_mbps: Vec<u64> = match scale {
        Scale::Quick => vec![10, 50, 200],
        Scale::Paper => vec![10, 50, 100, 200, 400, 800],
    };
    rates_mbps.iter().map(|&r| run_point(r)).collect()
}

fn run_point(rate_mbps: u64) -> AccuracyPoint {
    let hops = 10;
    let (topo, pairs) = path_pairs_topology(&PathPairsParams {
        pairs: 4,
        hops,
        bandwidth: DataRate::from_gbps(1),
        end_to_end_latency: SimDuration::from_millis(20),
    });
    let mut runner = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(2)
        .hardware(HardwareProfile::paper_core())
        .seed(3)
        .allow_disconnected()
        .build()
        .expect("accuracy experiment builds");
    let binding = runner.binding().clone();
    for (s, r) in &pairs {
        let src = binding.vn_at(*s).unwrap();
        let dst = binding.vn_at(*r).unwrap();
        runner.add_udp_flow(
            src,
            dst,
            UdpStreamConfig {
                payload: 1472,
                rate: DataRate::from_mbps(rate_mbps / 4),
                max_datagrams: None,
            },
            SimTime::ZERO,
        );
    }
    runner.run_for(SimDuration::from_secs(2)).unwrap();
    let core = &runner.emulator().cores()[0];
    let log = core.accuracy();
    let offered = rate_mbps as f64 * 1e6 / (1500.0 * 8.0);
    AccuracyPoint {
        offered_pps: offered,
        mean_error_us: log.mean_error_us(),
        max_per_hop_error_us: log.max_per_hop_error().as_micros_f64(),
        max_error_us: log.max_error().as_micros_f64(),
        physical_drops: core.stats().physical_drops(),
        within_bound: log.within_bound(SimDuration::from_micros(100)),
    }
}

/// Renders the table.
pub fn render(points: &[AccuracyPoint]) -> String {
    let mut out = String::from(
        "# Baseline accuracy (10-hop path)\noffered_pps\tmean_err_us\tmax_hop_err_us\tmax_err_us\tphys_drops\twithin_bound\n",
    );
    for p in points {
        out.push_str(&format!(
            "{:.0}\t{:.1}\t{:.1}\t{:.1}\t{}\t{}\n",
            p.offered_pps,
            p.mean_error_us,
            p.max_per_hop_error_us,
            p.max_error_us,
            p.physical_drops,
            p.within_bound
        ));
    }
    out
}

/// The paper's claim: every load level keeps per-hop error within the tick.
pub fn shape_holds(points: &[AccuracyPoint]) -> bool {
    !points.is_empty() && points.iter().all(|p| p.within_bound)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_bound_holds_at_moderate_load() {
        let p = run_point(20);
        assert!(p.within_bound, "per-hop error {}us", p.max_per_hop_error_us);
        assert!(p.max_error_us <= 10.0 * 100.0 + 1.0);
    }
}
