//! Table 1: scalability as a function of communication pattern for the
//! four-core configuration.
//!
//! A star topology of 10 Mb/s, 5 ms spokes is partitioned across four cores;
//! every path is two hops. Senders transmit TCP streams to unique receivers,
//! and the experiment controls what fraction of the sender/receiver pairs
//! have their two pipes owned by *different* cores — those descriptors must
//! be tunnelled. The paper's row: 0 % → 462.5 kpkt/s falling monotonically to
//! 155.8 kpkt/s at 100 % cross-core traffic.

use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{star_topology, StarParams};
use mn_transport::TcpConfig;
use modelnet::{Runner, SimDuration, SimTime};

use crate::Scale;

/// One row of the table.
#[derive(Debug, Clone, Copy)]
pub struct MulticoreRow {
    /// Fraction of flows that cross cores (0.0–1.0).
    pub cross_core_fraction: f64,
    /// Aggregate delivered packets/second.
    pub packets_per_sec: f64,
    /// Descriptors tunnelled between cores.
    pub tunnels: u64,
}

/// Runs the cross-core sweep on 4 cores.
pub fn run(scale: Scale) -> Vec<MulticoreRow> {
    let (vns, measure_secs) = match scale {
        Scale::Quick => (160, 2u64),
        Scale::Paper => (1120, 4u64),
    };
    [0.0, 0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|&f| run_point(vns, f, measure_secs))
        .collect()
}

fn run_point(vn_count: usize, cross_fraction: f64, measure_secs: u64) -> MulticoreRow {
    let cores = 4;
    let topo = star_topology(&StarParams {
        clients: vn_count,
        ..StarParams::default()
    });
    let distilled = distill(&topo, DistillationMode::HopByHop);
    let pod = greedy_k_clusters(&distilled, cores, 7);
    let matrix = RoutingMatrix::build(&distilled);
    let binding = Binding::bind(distilled.vns(), &BindingParams::new(20, cores));

    // Classify candidate sender/receiver pairs by whether their route crosses
    // cores, then pick pairs so the requested fraction crosses.
    let locations: Vec<_> = distilled.vns().to_vec();
    let half = locations.len() / 2;
    let senders = &locations[..half];
    let receivers = &locations[half..];
    let mut same_core = Vec::new();
    let mut cross_core = Vec::new();
    let mut used_receivers = vec![false; receivers.len()];
    for &s in senders {
        // Find an unused receiver in each class for this sender.
        let mut found_same = None;
        let mut found_cross = None;
        for (ri, &r) in receivers.iter().enumerate() {
            if used_receivers[ri] {
                continue;
            }
            let route = matrix.lookup(s, r).expect("star is connected");
            let crossings = pod.crossings(&route);
            if crossings == 0 && found_same.is_none() {
                found_same = Some(ri);
            } else if crossings > 0 && found_cross.is_none() {
                found_cross = Some(ri);
            }
            if found_same.is_some() && found_cross.is_some() {
                break;
            }
        }
        // Decide which class this sender should contribute to, preferring to
        // keep the two pools balanced with the requested fraction.
        let want_cross = (cross_core.len() as f64)
            < cross_fraction * (cross_core.len() + same_core.len() + 1) as f64;
        let pick = if want_cross {
            found_cross
                .map(|ri| (ri, true))
                .or(found_same.map(|ri| (ri, false)))
        } else {
            found_same
                .map(|ri| (ri, false))
                .or(found_cross.map(|ri| (ri, true)))
        };
        if let Some((ri, is_cross)) = pick {
            used_receivers[ri] = true;
            if is_cross {
                cross_core.push((s, receivers[ri]));
            } else {
                same_core.push((s, receivers[ri]));
            }
        }
    }
    let total_flows = same_core.len() + cross_core.len();
    let target_cross = (cross_fraction * total_flows as f64).round() as usize;
    let mut pairs: Vec<(mn_topology::NodeId, mn_topology::NodeId)> = Vec::new();
    pairs.extend(cross_core.iter().take(target_cross));
    pairs.extend(
        same_core
            .iter()
            .take(total_flows - pairs.len().min(total_flows)),
    );
    if pairs.len() < total_flows {
        pairs.extend(
            cross_core
                .iter()
                .skip(target_cross)
                .take(total_flows - pairs.len()),
        );
    }

    // The Table 1 run gives each edge node a gigabit link; cores keep the
    // paper profile.
    let emulator = MultiCoreEmulator::new(
        &distilled,
        pod,
        matrix,
        &binding,
        HardwareProfile::paper_core(),
        11,
    );
    let mut runner = Runner::new(emulator, binding.clone(), TcpConfig::default());
    for (s, r) in &pairs {
        let src = binding.vn_at(*s).expect("sender bound");
        let dst = binding.vn_at(*r).expect("receiver bound");
        runner.add_bulk_flow(src, dst, None, SimTime::ZERO);
    }
    runner.run_for(SimDuration::from_secs(1)).unwrap();
    let before = runner.emulator().total_stats();
    runner
        .run_for(SimDuration::from_secs(measure_secs))
        .unwrap();
    let after = runner.emulator().total_stats();
    MulticoreRow {
        cross_core_fraction: cross_fraction,
        packets_per_sec: (after.packets_delivered - before.packets_delivered) as f64
            / measure_secs as f64,
        tunnels: after.tunnels_out,
    }
}

/// Renders the table.
pub fn render(rows: &[MulticoreRow]) -> String {
    let mut out = String::from(
        "# Table 1: 4-core throughput vs cross-core traffic\ncross%\tkpkt/sec\ttunnels\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:.0}%\t{:.1}\t{}\n",
            r.cross_core_fraction * 100.0,
            r.packets_per_sec / 1e3,
            r.tunnels
        ));
    }
    out
}

/// The shape the paper reports: throughput degrades monotonically (within a
/// tolerance) as cross-core traffic grows, and 100 % cross traffic delivers
/// well under the 0 % rate.
pub fn shape_holds(rows: &[MulticoreRow]) -> bool {
    if rows.len() < 2 {
        return false;
    }
    let first = rows.first().unwrap().packets_per_sec;
    let last = rows.last().unwrap().packets_per_sec;
    first > 0.0 && last < first * 0.85
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_core_traffic_reduces_throughput() {
        let rows = [run_point(80, 0.0, 1), run_point(80, 1.0, 1)];
        assert!(rows[0].packets_per_sec > 0.0);
        assert!(rows[1].tunnels > rows[0].tunnels);
        assert!(
            rows[1].packets_per_sec <= rows[0].packets_per_sec * 1.05,
            "100% cross-core ({:.0}) should not beat 0% ({:.0})",
            rows[1].packets_per_sec,
            rows[0].packets_per_sec
        );
    }
}
