//! Figure 6: effects of multiplexing processes on an edge node.
//!
//! netperf/netserver pairs exchange 1500-byte UDP packets while burning a
//! configurable number of instructions per transmitted byte; the figure plots
//! aggregate throughput against that per-byte work for multiplexing degrees
//! from 1 to 100. Expected shape: full link rate up to a knee near the
//! 80 instructions/byte theoretical budget, with the knee moving left (to
//! ~65) as context-switch overhead grows with the process count.

use mn_edge::{EdgeHostModel, EdgeHostParams, MultiplexObservation};
use mn_util::SimDuration;

use crate::Scale;

/// One curve of the figure.
#[derive(Debug, Clone)]
pub struct MultiplexCurve {
    /// Multiplexing degree (process pairs on the host).
    pub processes: usize,
    /// Observations across the instructions-per-byte sweep.
    pub points: Vec<MultiplexObservation>,
}

/// Runs the sweep.
pub fn run(scale: Scale) -> Vec<MultiplexCurve> {
    let (process_counts, ipb_values, secs): (Vec<usize>, Vec<f64>, u64) = match scale {
        Scale::Quick => (
            vec![1, 8, 32, 100],
            (50..=100).step_by(10).map(|x| x as f64).collect(),
            1,
        ),
        Scale::Paper => (
            vec![1, 4, 8, 16, 32, 60, 80, 100],
            (50..=100).step_by(5).map(|x| x as f64).collect(),
            2,
        ),
    };
    let model = EdgeHostModel::new(EdgeHostParams::default());
    process_counts
        .iter()
        .map(|&p| MultiplexCurve {
            processes: p,
            points: model.sweep(p, &ipb_values, SimDuration::from_secs(secs)),
        })
        .collect()
}

/// Renders the curves.
pub fn render(curves: &[MultiplexCurve]) -> String {
    let mut out = String::from(
        "# Figure 6: aggregate throughput vs instructions/byte per multiplexing degree\nprocesses\tinstr/byte\tkbit/s\tswitch_overhead\n",
    );
    for c in curves {
        for p in &c.points {
            out.push_str(&format!(
                "{}\t{:.0}\t{:.0}\t{:.4}\n",
                c.processes, p.instructions_per_byte, p.aggregate_kbps, p.switch_overhead_fraction
            ));
        }
    }
    out
}

/// Shape check: at low per-byte work every curve is near the link rate, and
/// the budget at which throughput starts to fall is lower for 100 processes
/// than for 1.
pub fn shape_holds(curves: &[MultiplexCurve]) -> bool {
    let knee = |c: &MultiplexCurve| -> f64 {
        let baseline = c
            .points
            .iter()
            .map(|p| p.aggregate_kbps)
            .fold(0.0, f64::max);
        c.points
            .iter()
            .filter(|p| p.aggregate_kbps >= baseline * 0.97)
            .map(|p| p.instructions_per_byte)
            .fold(0.0, f64::max)
    };
    let single = curves.iter().find(|c| c.processes == 1);
    let many = curves.iter().find(|c| c.processes == 100);
    match (single, many) {
        (Some(s), Some(m)) => {
            let peak = s
                .points
                .iter()
                .map(|p| p.aggregate_kbps)
                .fold(0.0, f64::max);
            peak > 90_000.0 && knee(m) <= knee(s)
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_shape() {
        let curves = run(Scale::Quick);
        assert_eq!(curves.len(), 4);
        assert!(shape_holds(&curves));
    }
}
