//! The accuracy–scalability continuum, measured.
//!
//! The paper presents distillation as a dial between fidelity and scale but
//! never quantifies the dial. This harness does: the same foreground
//! workload — bounded TCP transfers between random VN pairs on the paper's
//! ring — runs under hop-by-hop emulation (the ground truth) and under each
//! distilled configuration, and the **per-flow delivery-time error** against
//! the hop-by-hop run is reported per `(mode, compensation load)` point
//! together with each configuration's pipe count.
//!
//! On top of the measured table, [`mn_distill::autodistill`] picks the
//! cheapest configuration fitting a ≤5% error budget. The workload-pruned
//! end-to-end mesh (one pipe per communicating pair) is the configuration
//! that undercuts hop-by-hop's pipe count — the full continuum in one JSON:
//! `BENCH_accuracy.json`.

use mn_distill::{
    autodistill, CandidateConfig, DistillBudget, DistillChoice, DistillationMode, WorkloadSketch,
};
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::NodeId;
use mn_util::ByteSize;
use modelnet::{Experiment, SimDuration, SimTime};

use crate::fig5_distillation::random_pairs;
use crate::Scale;

/// The error budget handed to the auto-distiller (5% delivery-time error).
pub const ERROR_BUDGET: f64 = 0.05;
/// Compensation loads swept for configurations that collapse hops.
pub const LOADS: [f64; 4] = [0.0, 0.25, 0.5, 0.75];

/// One measured point of the continuum.
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Configuration label ("last-mile", "end-to-end" …).
    pub label: String,
    /// Compensation load installed for this run.
    pub load: f64,
    /// Undirected pipes in this configuration's graph (its memory cost).
    pub undirected_pipes: usize,
    /// Mean per-flow delivery-time error vs hop-by-hop, as a fraction.
    pub mean_error: f64,
    /// Worst single flow's delivery-time error, as a fraction.
    pub max_error: f64,
}

/// The full sweep plus the auto-distiller's verdict on it.
#[derive(Debug, Clone)]
pub struct AccuracySweep {
    /// All measured `(mode, load)` points.
    pub points: Vec<AccuracyPoint>,
    /// Undirected pipes under hop-by-hop (the cost baseline).
    pub hop_pipes: usize,
    /// Number of foreground flows (= pairs in the workload sketch).
    pub flows: usize,
    /// The auto-distiller's choice over the measured table.
    pub choice: DistillChoice,
    /// Extra measurement runs `autodistill` needed beyond the table (0 when
    /// every candidate it probed was already swept).
    pub extra_runs: usize,
}

/// Quick keeps CI honest in seconds; Paper is the full 20×20 ring. The
/// paper-default 20 Mb/s ring leaves the interior lightly loaded — the
/// regime end-to-end distillation is built for (and where the correct
/// compensation load is 0; the sweep's higher loads chart the cost of
/// over-compensating). The heavily congested regime, where compensation
/// strictly improves accuracy, is pinned in `tests/accuracy_continuum.rs`.
fn workload(scale: Scale) -> (RingParams, usize, ByteSize, u64) {
    match scale {
        Scale::Quick => (
            RingParams {
                routers: 10,
                clients_per_router: 10,
                ..RingParams::default()
            },
            16,
            ByteSize::from_kb(192),
            60,
        ),
        Scale::Paper => (RingParams::default(), 64, ByteSize::from_kb(384), 120),
    }
}

/// Runs the workload under one configuration and returns per-flow delivery
/// times in virtual seconds (flows still unfinished at the horizon are
/// censored to it).
fn delivery_times(
    params: &RingParams,
    pairs: &[(NodeId, NodeId)],
    config: &CandidateConfig,
    size: ByteSize,
    horizon_secs: u64,
) -> Vec<f64> {
    let topo = ring_topology(params);
    let mut exp = Experiment::new(topo)
        .distillation(config.mode)
        .cores(1)
        .edge_nodes(4)
        .unconstrained_hardware()
        .seed(23);
    if config.pruned_to_workload {
        exp = exp.workload_pairs(pairs.to_vec());
    }
    if config.compensation_load > 0.0 {
        exp = exp.compensation(config.compensation_load);
    }
    let mut runner = exp.build().expect("ring experiment builds");
    let binding = runner.binding().clone();
    let mut flows = Vec::new();
    for (s, r) in pairs {
        let src = binding.vn_at(*s).expect("generator bound");
        let dst = binding.vn_at(*r).expect("receiver bound");
        flows.push(runner.add_bulk_flow(src, dst, Some(size), SimTime::ZERO));
    }
    // Advance in one-second slices and stop as soon as every transfer has
    // completed; the horizon only censors pathological configurations.
    for _ in 0..horizon_secs {
        runner.run_for(SimDuration::from_secs(1)).unwrap();
        if flows.iter().all(|&f| runner.flow_completed_at(f).is_some()) {
            break;
        }
    }
    let horizon = SimTime::from_secs(horizon_secs).as_secs_f64();
    flows
        .into_iter()
        .map(|f| {
            runner
                .flow_completed_at(f)
                .map_or(horizon, |t| t.as_secs_f64())
        })
        .collect()
}

fn errors_against(reference: &[f64], times: &[f64]) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max = 0.0f64;
    for (&r, &t) in reference.iter().zip(times) {
        let e = if r > 0.0 { (t - r).abs() / r } else { 0.0 };
        sum += e;
        max = max.max(e);
    }
    (sum / reference.len().max(1) as f64, max)
}

fn mode_label(config: &CandidateConfig) -> &'static str {
    match config.mode {
        DistillationMode::HopByHop => "hop-by-hop",
        DistillationMode::EndToEnd => {
            if config.pruned_to_workload {
                "end-to-end"
            } else {
                "end-to-end-full"
            }
        }
        DistillationMode::WalkIn { walk_in: 1 } => "last-mile",
        DistillationMode::WalkIn { .. } => "walk-in-2",
        DistillationMode::WalkInOut { .. } => "walk-in-out",
    }
}

/// Runs the full sweep: ground truth, the error table over
/// `{last-mile, walk-in 2, pruned end-to-end} × LOADS`, and the
/// auto-distiller over the measured table.
pub fn run(scale: Scale) -> AccuracySweep {
    let (params, flow_count, size, horizon) = workload(scale);
    let topo = ring_topology(&params);
    let pairs = random_pairs(&topo, flow_count, 99);

    let candidate = |mode: DistillationMode, pruned: bool, load: f64| {
        let d = if pruned {
            mn_distill::distill_end_to_end_pairs(&topo, &pairs)
        } else {
            mn_distill::distill(&topo, mode)
        };
        CandidateConfig {
            mode,
            pruned_to_workload: pruned,
            compensation_load: load,
            undirected_pipes: d.undirected_pipe_count(),
            route_pipe_bound: d.max_route_pipes(),
        }
    };

    let hop = candidate(DistillationMode::HopByHop, false, 0.0);
    let reference = delivery_times(&params, &pairs, &hop, size, horizon);

    let mut points = Vec::new();
    let mut table: Vec<(CandidateConfig, f64)> = Vec::new();
    for (mode, pruned, loads) in [
        (DistillationMode::LAST_MILE, false, &LOADS[..]),
        (DistillationMode::WalkIn { walk_in: 2 }, false, &LOADS[..1]),
        (DistillationMode::EndToEnd, true, &LOADS[..]),
    ] {
        for &load in loads {
            let config = candidate(mode, pruned, load);
            let times = delivery_times(&params, &pairs, &config, size, horizon);
            let (mean_error, max_error) = errors_against(&reference, &times);
            points.push(AccuracyPoint {
                label: mode_label(&config).to_string(),
                load,
                undirected_pipes: config.undirected_pipes,
                mean_error,
                max_error,
            });
            table.push((config, mean_error));
        }
    }

    // The auto-distiller re-walks the continuum cheapest-first over the
    // measured table; anything it probes beyond the table is measured live.
    let mut extra_runs = 0;
    let sketch = WorkloadSketch { pairs: &pairs };
    let budget = DistillBudget {
        max_error: ERROR_BUDGET,
        candidate_loads: LOADS.to_vec(),
        max_walk_in: 2,
    };
    let choice = autodistill(&topo, &sketch, &budget, |config| {
        if let Some((_, err)) = table.iter().find(|(c, _)| {
            c.mode == config.mode
                && c.pruned_to_workload == config.pruned_to_workload
                && (c.compensation_load - config.compensation_load).abs() < 1e-9
        }) {
            *err
        } else {
            extra_runs += 1;
            let times = delivery_times(&params, &pairs, config, size, horizon);
            errors_against(&reference, &times).0
        }
    });

    AccuracySweep {
        points,
        hop_pipes: hop.undirected_pipes,
        flows: pairs.len(),
        choice,
        extra_runs,
    }
}

/// Human-readable error-curve table.
pub fn render(sweep: &AccuracySweep) -> String {
    let mut out = String::from(
        "# Accuracy continuum: per-flow delivery-time error vs hop-by-hop\n\
         # config            load   pipes   mean_err%   max_err%\n",
    );
    for p in &sweep.points {
        out.push_str(&format!(
            "{:<18} {:>5.2} {:>7} {:>10.2} {:>10.2}\n",
            p.label,
            p.load,
            p.undirected_pipes,
            p.mean_error * 100.0,
            p.max_error * 100.0,
        ));
    }
    let c = &sweep.choice;
    out.push_str(&format!(
        "autodistill (≤{:.0}% budget): {} at load {:.2} — {} pipes vs {} hop-by-hop \
         ({:.1}× fewer), measured error {:.2}%, {} table probes + {} extra runs\n",
        ERROR_BUDGET * 100.0,
        mode_label(&c.config),
        c.config.compensation_load,
        c.config.undirected_pipes,
        sweep.hop_pipes,
        sweep.hop_pipes as f64 / c.config.undirected_pipes.max(1) as f64,
        c.measured_error * 100.0,
        c.measurements,
        sweep.extra_runs,
    ));
    out
}

/// The CI gate. Holds when:
/// 1. walk-in 2 covers the whole (depth-2) ring, so its run *is* the
///    hop-by-hop run and its error is exactly zero — the ground-truth
///    self-check;
/// 2. the error table is complete and finite;
/// 3. the auto-distiller's choice fits the ≤5% budget with ≥5× fewer pipes
///    than hop-by-hop (the acceptance criterion).
pub fn shape_holds(sweep: &AccuracySweep) -> bool {
    let expected_points = LOADS.len() + 1 + LOADS.len();
    let complete = sweep.points.len() == expected_points
        && sweep.points.iter().all(|p| p.mean_error.is_finite());
    let self_check = sweep
        .points
        .iter()
        .find(|p| p.label == "walk-in-2")
        .is_some_and(|p| p.mean_error < 0.005);
    let c = &sweep.choice;
    let within_budget = c.measured_error <= ERROR_BUDGET;
    let cheap_enough = c.config.undirected_pipes * 5 <= sweep.hop_pipes;
    complete && self_check && within_budget && cheap_enough
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_pairs_leave_headroom_for_the_five_x_pipe_bar() {
        for scale in [Scale::Quick, Scale::Paper] {
            let (params, flows, _, _) = workload(scale);
            let topo = ring_topology(&params);
            let pairs = random_pairs(&topo, flows, 99);
            let hop = mn_distill::distill(&topo, DistillationMode::HopByHop);
            let pruned = mn_distill::distill_end_to_end_pairs(&topo, &pairs);
            assert_eq!(pairs.len(), flows);
            assert!(
                pruned.undirected_pipe_count() * 5 <= hop.undirected_pipe_count(),
                "{scale:?}: {} pruned pipes vs {} hop-by-hop",
                pruned.undirected_pipe_count(),
                hop.undirected_pipe_count()
            );
        }
    }

    #[test]
    fn error_helper_is_exact_on_identical_times() {
        let r = [1.0, 2.0, 4.0];
        assert_eq!(errors_against(&r, &r), (0.0, 0.0));
        let (mean, max) = errors_against(&r, &[1.1, 2.0, 4.0]);
        assert!((mean - 0.1 / 3.0).abs() < 1e-12);
        assert!((max - 0.1).abs() < 1e-9);
    }
}
