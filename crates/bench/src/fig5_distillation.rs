//! Figure 5: effect of distillation on the distribution of flow bandwidth in
//! a ring topology.
//!
//! 20 routers interconnected at 20 Mb/s carry 20 VNs each on 2 Mb/s access
//! links; 200 random VN pairs run TCP streams. Hop-by-hop emulation shows a
//! broad spread of flow bandwidths (ring contention); last-mile distillation
//! models only receiver-side contention; end-to-end distillation lets every
//! flow reach its full 2 Mb/s. The independent reference simulator
//! (max-min fair share, standing in for the paper's ns-2 runs) provides the
//! 20 Mb/s and 80 Mb/s ring comparison curves.

use mn_distill::DistillationMode;
use mn_refsim::{max_min_fair_share, FlowSpec};
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::{NodeId, Topology};
use mn_util::rngs::derived_rng;
use mn_util::{Cdf, DataRate};
use modelnet::{Experiment, SimDuration, SimTime};
use rand::seq::SliceRandom;

use crate::Scale;

/// One curve of the figure: a labelled CDF of per-flow bandwidth in kbit/s.
#[derive(Debug, Clone)]
pub struct DistillationCurve {
    /// Curve label.
    pub label: String,
    /// Per-flow bandwidth samples (kbit/s).
    pub cdf: Cdf,
}

fn ring(scale: Scale) -> (RingParams, usize, u64) {
    match scale {
        Scale::Quick => (
            RingParams {
                routers: 10,
                clients_per_router: 10,
                ..RingParams::default()
            },
            50,
            8,
        ),
        Scale::Paper => (RingParams::default(), 200, 15),
    }
}

/// Random generator→receiver pairs over the topology's clients (shared with
/// the accuracy sweep so both harnesses stress the same workload shape).
pub(crate) fn random_pairs(topo: &Topology, count: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut rng = derived_rng(seed, 5);
    let mut clients: Vec<NodeId> = topo.client_nodes().collect();
    clients.shuffle(&mut rng);
    let mut pairs = Vec::new();
    // Generators and receivers are disjoint halves, receivers chosen randomly
    // (several flows may share a receiver, as in the paper).
    let (generators, receivers) = clients.split_at(clients.len() / 2);
    for (i, &g) in generators.iter().take(count).enumerate() {
        let r = receivers[(i * 7 + 3) % receivers.len()];
        pairs.push((g, r));
    }
    pairs
}

/// Runs one emulated curve.
fn run_emulated(
    params: &RingParams,
    pairs: &[(NodeId, NodeId)],
    mode: DistillationMode,
    secs: u64,
    label: &str,
) -> DistillationCurve {
    let topo = ring_topology(params);
    let mut runner = Experiment::new(topo)
        .distillation(mode)
        .cores(1)
        .edge_nodes(4)
        .unconstrained_hardware()
        .seed(23)
        .build()
        .expect("ring experiment builds");
    let binding = runner.binding().clone();
    let mut flows = Vec::new();
    for (s, r) in pairs {
        let src = binding.vn_at(*s).expect("generator bound");
        let dst = binding.vn_at(*r).expect("receiver bound");
        flows.push(runner.add_bulk_flow(src, dst, None, SimTime::ZERO));
    }
    runner.run_for(SimDuration::from_secs(secs)).unwrap();
    let mut cdf = Cdf::new();
    for f in flows {
        cdf.add(runner.flow_goodput_kbps(f));
    }
    DistillationCurve {
        label: label.to_string(),
        cdf,
    }
}

/// Runs the reference (flow-level) curve for a ring of the given transit
/// bandwidth.
fn run_reference(
    params: &RingParams,
    pairs: &[(NodeId, NodeId)],
    transit: DataRate,
    label: &str,
) -> DistillationCurve {
    let topo = ring_topology(&RingParams {
        ring_bandwidth: transit,
        ..params.clone()
    });
    let specs: Vec<FlowSpec> = pairs
        .iter()
        .map(|&(src, dst)| FlowSpec { src, dst })
        .collect();
    let alloc = max_min_fair_share(&topo, &specs);
    let mut cdf = Cdf::new();
    for a in alloc {
        cdf.add(a.rate.as_kbps_f64());
    }
    DistillationCurve {
        label: label.to_string(),
        cdf,
    }
}

/// Runs all five curves of the figure.
pub fn run(scale: Scale) -> Vec<DistillationCurve> {
    let (params, flow_count, secs) = ring(scale);
    let topo = ring_topology(&params);
    let pairs = random_pairs(&topo, flow_count, 99);
    vec![
        run_emulated(
            &params,
            &pairs,
            DistillationMode::HopByHop,
            secs,
            "hop-by-hop",
        ),
        run_emulated(
            &params,
            &pairs,
            DistillationMode::LAST_MILE,
            secs,
            "last-mile",
        ),
        run_emulated(
            &params,
            &pairs,
            DistillationMode::EndToEnd,
            secs,
            "end-to-end",
        ),
        run_reference(&params, &pairs, params.ring_bandwidth, "refsim 20Mb ring"),
        run_reference(&params, &pairs, DataRate::from_mbps(80), "refsim 80Mb ring"),
    ]
}

/// Renders every curve as CDF rows.
pub fn render(curves: &mut [DistillationCurve]) -> String {
    let mut out = String::from("# Figure 5: flow bandwidth CDFs under distillation (kbit/s)\n");
    for c in curves {
        out.push_str(&crate::format_cdf(&c.label, &c.cdf.points_downsampled(20)));
    }
    out
}

/// Shape check: end-to-end flows reach (close to) their full access rate,
/// hop-by-hop flows are constrained below it on average, and the hop-by-hop
/// median sits at or below the last-mile median.
pub fn shape_holds(curves: &mut [DistillationCurve]) -> bool {
    let median = |curves: &mut [DistillationCurve], label: &str| -> f64 {
        curves
            .iter_mut()
            .find(|c| c.label == label)
            .and_then(|c| c.cdf.median())
            .unwrap_or(0.0)
    };
    let hop = median(curves, "hop-by-hop");
    let e2e = median(curves, "end-to-end");
    let last_mile = median(curves, "last-mile");
    hop > 0.0 && e2e > hop && e2e > 1_500.0 && hop <= last_mile + 200.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_curves_match_fair_share_expectations() {
        let (params, flows, _) = ring(Scale::Quick);
        let topo = ring_topology(&params);
        let pairs = random_pairs(&topo, flows, 99);
        let narrow = run_reference(&params, &pairs, DataRate::from_mbps(20), "20");
        let wide = run_reference(&params, &pairs, DataRate::from_mbps(80), "80");
        let mut narrow_cdf = narrow.cdf;
        let mut wide_cdf = wide.cdf;
        // With an 80 Mb/s ring, access links dominate: everyone gets 2 Mb/s.
        assert!(wide_cdf.median().unwrap() >= 1_900.0);
        // With a 20 Mb/s ring some flows are constrained below 2 Mb/s.
        assert!(narrow_cdf.min().unwrap() < 1_900.0);
    }

    #[test]
    fn random_pairs_are_client_to_client_and_unique_senders() {
        let (params, flows, _) = ring(Scale::Quick);
        let topo = ring_topology(&params);
        let pairs = random_pairs(&topo, flows, 1);
        assert_eq!(pairs.len(), flows);
        let senders: std::collections::HashSet<_> = pairs.iter().map(|p| p.0).collect();
        assert_eq!(senders.len(), flows, "each generator sends one stream");
    }
}
