//! Figure 4: capacity of a single ModelNet core.
//!
//! Netperf TCP senders transmit through a single core over paths of 1–12
//! emulated 10 Mb/s hops; the figure plots delivered packets/second against
//! the number of simultaneous flows, one curve per hop count. The expected
//! shape: throughput rises linearly with offered load, saturating near
//! 120 kpkt/s (the gigabit NIC) for short routes and near 90 kpkt/s (the CPU)
//! for 8-hop routes, lower still for 12 hops.

use mn_distill::DistillationMode;
use mn_topology::generators::{path_pairs_topology, PathPairsParams};
use modelnet::{DataRate, Experiment, HardwareProfile, SimDuration, SimTime};

use crate::Scale;

/// One measured point.
#[derive(Debug, Clone, Copy)]
pub struct CapacityPoint {
    /// Emulated hops per path.
    pub hops: usize,
    /// Simultaneous TCP flows.
    pub flows: usize,
    /// Packets per second delivered by the core in steady state.
    pub packets_per_sec: f64,
    /// Core CPU utilisation at the end of the run.
    pub cpu_utilisation: f64,
    /// Physical drops observed (NIC + CPU).
    pub physical_drops: u64,
}

/// Runs the capacity sweep.
pub fn run(scale: Scale) -> Vec<CapacityPoint> {
    let (hop_counts, flow_counts, measure_secs): (Vec<usize>, Vec<usize>, u64) = match scale {
        Scale::Quick => (vec![1, 4, 8], vec![24, 48, 96], 2),
        Scale::Paper => (vec![1, 2, 4, 8, 12], vec![24, 48, 72, 96, 120], 4),
    };
    let mut out = Vec::new();
    for &hops in &hop_counts {
        for &flows in &flow_counts {
            out.push(run_point(hops, flows, measure_secs));
        }
    }
    out
}

fn run_point(hops: usize, flows: usize, measure_secs: u64) -> CapacityPoint {
    let (topo, pairs) = path_pairs_topology(&PathPairsParams {
        pairs: flows,
        hops,
        bandwidth: DataRate::from_mbps(10),
        end_to_end_latency: SimDuration::from_millis(10),
    });
    let mut runner = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes((flows / 24).max(1))
        .hardware(HardwareProfile::paper_core())
        .seed(42)
        .allow_disconnected()
        .build()
        .expect("capacity experiment builds");
    let binding = runner.binding().clone();
    for (s, r) in &pairs {
        let src = binding.vn_at(*s).expect("sender bound");
        let dst = binding.vn_at(*r).expect("receiver bound");
        runner.add_bulk_flow(src, dst, None, SimTime::ZERO);
    }
    // Warm up slow start, then measure a steady-state window.
    let warmup = SimDuration::from_secs(1);
    runner.run_for(warmup).unwrap();
    let before = runner.emulator().total_stats();
    runner
        .run_for(SimDuration::from_secs(measure_secs))
        .unwrap();
    let after = runner.emulator().total_stats();
    let delivered = after.packets_delivered - before.packets_delivered;
    let pps = delivered as f64 / measure_secs as f64;
    CapacityPoint {
        hops,
        flows,
        packets_per_sec: pps,
        cpu_utilisation: runner.emulator().cores()[0].cpu_utilization(),
        physical_drops: after.physical_drops(),
    }
}

/// Renders the points as the figure's table.
pub fn render(points: &[CapacityPoint]) -> String {
    let mut out =
        String::from("# Figure 4: single-core capacity\nhops\tflows\tpkts/sec\tcpu\tphys_drops\n");
    for p in points {
        out.push_str(&format!(
            "{}\t{}\t{:.0}\t{:.2}\t{}\n",
            p.hops, p.flows, p.packets_per_sec, p.cpu_utilisation, p.physical_drops
        ));
    }
    out
}

/// The headline checks EXPERIMENTS.md records: more hops can only lower the
/// saturated rate, and at high flow counts short routes deliver substantially
/// more than 8-hop routes.
pub fn shape_holds(points: &[CapacityPoint]) -> bool {
    let max_for = |h: usize| {
        points
            .iter()
            .filter(|p| p.hops == h)
            .map(|p| p.packets_per_sec)
            .fold(0.0f64, f64::max)
    };
    let one = max_for(1);
    let eight = max_for(8);
    one > 0.0 && eight > 0.0 && one >= eight
}

/// Capacity sweep can also verify that a sweep was produced at all.
pub fn _sanity(points: &[CapacityPoint]) -> bool {
    !points.is_empty()
}

/// Smoke check used by the unit tests: a single tiny point runs end to end.
pub fn smoke_point() -> CapacityPoint {
    run_point(2, 8, 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_point_delivers_packets() {
        let p = smoke_point();
        assert_eq!(p.hops, 2);
        assert_eq!(p.flows, 8);
        // 8 flows at up to 10 Mb/s each ≈ 80 Mb/s ≈ 7–10 kpkt/s of data+ACKs.
        assert!(
            p.packets_per_sec > 2_000.0,
            "saturated 8-flow point should exceed 2 kpkt/s, got {}",
            p.packets_per_sec
        );
    }
}
