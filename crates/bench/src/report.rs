//! Machine-readable experiment reports.
//!
//! Every regenerator prints human-readable rows; this module additionally
//! serialises results as JSON so EXPERIMENTS.md comparisons and external
//! plotting scripts can consume them without re-parsing the text tables.

use serde::Serialize;

/// A single labelled series of (x, y) points — one curve of a figure or one
/// column of a table.
#[derive(Debug, Clone, Serialize)]
pub struct Series {
    /// Curve/row label.
    pub label: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

/// A complete experiment report.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Experiment identifier (e.g. "fig4_capacity").
    pub experiment: String,
    /// Whether the paper's qualitative shape held for this run.
    pub shape_holds: bool,
    /// The measured series.
    pub series: Vec<Series>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(experiment: impl Into<String>, shape_holds: bool) -> Self {
        Report {
            experiment: experiment.into(),
            shape_holds,
            series: Vec::new(),
        }
    }

    /// Adds one series.
    pub fn with_series(
        mut self,
        label: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        self.series.push(Series {
            label: label.into(),
            points: points.into_iter().collect(),
        });
        self
    }

    /// Serialises the report as pretty-printed JSON.
    ///
    /// Rendered by hand: the report shape is small and fixed, and the
    /// vendored serde stand-in provides no serialiser (see `vendor/serde`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"experiment\": {},\n",
            json_string(&self.experiment)
        ));
        out.push_str(&format!("  \"shape_holds\": {},\n", self.shape_holds));
        out.push_str("  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"label\": {},\n", json_string(&s.label)));
            out.push_str("      \"points\": [");
            for (j, (x, y)) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("[{}, {}]", json_number(*x), json_number(*y)));
            }
            out.push_str("]\n    }");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}");
        out
    }

    /// Writes the report next to the given path stem (`<stem>.json`),
    /// returning the path written.
    pub fn write_json(&self, stem: &str) -> std::io::Result<String> {
        let path = format!("{stem}.json");
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One benchmark measurement destined for a `BENCH_<name>.json` artifact:
/// `(benchmark id, mean ns/iter, iterations measured)`.
pub type BenchMeasurement = (String, f64, u64);

/// One memory measurement destined for a `BENCH_<name>.json` artifact:
/// `(measurement id, bytes)`. Emitted as a `mem/`-prefixed series so
/// artifact consumers can tell byte columns from ns/iter columns.
pub type MemoryMeasurement = (String, u64);

/// Serialises a benchmark run as a `BENCH_<name>.json` report next to the
/// current working directory (one series per benchmark, point =
/// `(iterations, mean ns/iter)`), returning the path written.
///
/// This is the machine-readable perf trajectory: CI uploads the artifact on
/// every run so PR-over-PR regressions are diffable without re-parsing
/// human-oriented bench output.
pub fn write_bench_json(name: &str, results: &[BenchMeasurement]) -> std::io::Result<String> {
    write_bench_json_with_memory(name, results, &[])
}

/// Like [`write_bench_json`], additionally recording memory measurements
/// (peak/resident bytes, bytes copied per operation — anything the bench's
/// counting allocator or a structure's own accounting observed) as
/// `mem/<id>` series with a single `(1, bytes)` point. Memory claims ride
/// the same CI artifact as timing claims, so regressions in either are
/// diffable PR over PR.
pub fn write_bench_json_with_memory(
    name: &str,
    results: &[BenchMeasurement],
    memory: &[MemoryMeasurement],
) -> std::io::Result<String> {
    let mut report = Report::new(name, true);
    for (bench, mean_ns, iters) in results {
        report = report.with_series(bench.clone(), vec![(*iters as f64, *mean_ns)]);
    }
    for (label, bytes) in memory {
        report = report.with_series(format!("mem/{label}"), vec![(1.0, *bytes as f64)]);
    }
    report.write_json(&format!("BENCH_{name}"))
}

/// Escapes a string into a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number. JSON has no NaN/Infinity: NaN (no
/// meaningful value) becomes `null`, while infinities keep their sign as
/// extreme finite sentinels.
fn json_number(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else if v.is_nan() {
        "null".to_string()
    } else if v > 0.0 {
        "1e308".to_string()
    } else {
        "-1e308".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serialises_to_json() {
        let report = Report::new("fig4_capacity", true)
            .with_series("1-hop", vec![(24.0, 30_000.0), (96.0, 120_000.0)])
            .with_series("8-hop", vec![(24.0, 30_000.0), (96.0, 90_000.0)]);
        let json = report.to_json();
        assert!(json.contains("\"experiment\": \"fig4_capacity\""));
        assert!(json.contains("\"shape_holds\": true"));
        assert!(json.contains("8-hop"));
        // It parses back as valid JSON.
        let value: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(value["series"].as_array().unwrap().len(), 2);
        assert_eq!(value["series"][0]["points"][1][1], 120_000.0);
    }

    #[test]
    fn memory_rows_serialise_alongside_bench_rows() {
        let rows = vec![("flap".to_string(), 123.0, 10)];
        let mems = vec![("route_state_resident_bytes".to_string(), 4096)];
        let path = write_bench_json_with_memory("report_memory_test", &rows, &mems).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let value: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(value["series"][0]["label"].as_str().unwrap(), "flap");
        assert_eq!(
            value["series"][1]["label"].as_str().unwrap(),
            "mem/route_state_resident_bytes"
        );
        assert_eq!(value["series"][1]["points"][0][1], 4096.0);
    }

    #[test]
    fn write_json_creates_a_file() {
        let dir = std::env::temp_dir().join("mn_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let stem = dir.join("report").to_string_lossy().into_owned();
        let report = Report::new("table1", false).with_series("row", vec![(0.0, 1.0)]);
        let path = report.write_json(&stem).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("table1"));
        std::fs::remove_file(path).ok();
    }
}
