//! Experiment harness: regenerators for every table and figure of the paper.
//!
//! Each submodule corresponds to one experiment in the evaluation; its `run`
//! function executes the workload at a configurable scale and returns the
//! rows/series the paper reports, and its binary (`src/bin/…`) prints them.
//! `Scale::Quick` keeps default invocations to seconds of wall time;
//! `Scale::Paper` uses the paper's dimensions. EXPERIMENTS.md records the
//! expected shape for each and how the measured output compares.

pub mod accuracy;
pub mod accuracy_sweep;
pub mod cfs_experiments;
pub mod fig11_web;
pub mod fig12_acdc;
pub mod fig4_capacity;
pub mod fig5_distillation;
pub mod fig6_multiplexing;
pub mod gnutella_scale;
pub mod report;
pub mod table1_multicore;

/// How large to run an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced dimensions so the binary finishes in seconds.
    Quick,
    /// The paper's dimensions.
    Paper,
}

impl Scale {
    /// Parses `--full` style command-line arguments.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--full" || a == "--paper") {
            Scale::Paper
        } else {
            Scale::Quick
        }
    }
}

/// Formats a `(value, cumulative fraction)` CDF as plain-text rows.
pub fn format_cdf(label: &str, points: &[(f64, f64)]) -> String {
    let mut out = String::new();
    for (value, frac) in points {
        out.push_str(&format!("{label}\t{value:.3}\t{frac:.4}\n"));
    }
    out
}
