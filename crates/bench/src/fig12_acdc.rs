//! Figure 12: ACDC overlay cost and delay over time under injected network
//! changes.
//!
//! 120 of the clients of a transit–stub topology participate in the ACDC
//! overlay with a 1500 ms delay target. After the overlay stabilises, the
//! experiment increases the delay of 25 % of randomly chosen links by 0–25 %
//! every 25 seconds for a period, then lets conditions subside. The figure
//! plots, against time, the overlay's cost relative to an off-line minimum
//! spanning tree and the worst-case delay from the root, together with the
//! off-line shortest-path-tree delay.

use mn_apps::acdc::summary;
use mn_apps::{AcdcConfig, AcdcNode};
use mn_distill::DistillationMode;
use mn_dynamics::{FaultInjector, FaultKind, LinkPerturbation};
use mn_packet::VnId;
use mn_refsim::path_latency;
use mn_topology::generators::{transit_stub_topology, TransitStubParams, TransitStubTopology};
use mn_topology::{NodeId, Topology};
use modelnet::{Experiment, SimDuration, SimTime};

use crate::Scale;

/// One time sample of the overlay's state.
#[derive(Debug, Clone, Copy)]
pub struct AcdcSample {
    /// Virtual time of the sample, seconds.
    pub time_s: f64,
    /// Overlay tree cost divided by the off-line MST cost.
    pub cost_vs_mst: f64,
    /// Worst delay from the root among attached nodes, seconds.
    pub max_delay_s: f64,
    /// Number of attached overlay members.
    pub attached: usize,
    /// Off-line shortest-path-tree worst delay (the "SPT delay" curve),
    /// seconds.
    pub spt_delay_s: f64,
}

/// Experiment dimensions per scale.
struct Dims {
    target_nodes: usize,
    members: usize,
    total_s: u64,
    perturb_start_s: u64,
    perturb_end_s: u64,
    sample_every_s: u64,
}

fn dims(scale: Scale) -> Dims {
    match scale {
        Scale::Quick => Dims {
            target_nodes: 150,
            members: 24,
            total_s: 300,
            perturb_start_s: 100,
            perturb_end_s: 200,
            sample_every_s: 25,
        },
        Scale::Paper => Dims {
            target_nodes: 600,
            members: 120,
            total_s: 3000,
            perturb_start_s: 500,
            perturb_end_s: 1500,
            sample_every_s: 25,
        },
    }
}

/// Assigns the paper's per-class link costs to a transit–stub topology:
/// transit–transit 20–40, transit–stub 10–20, stub–stub 1–5 (client links 1).
fn link_cost(topo: &Topology, link: mn_topology::LinkId) -> f64 {
    use mn_topology::NodeKind::*;
    let l = topo.link(link).expect("link exists");
    let ka = topo.node(l.a).expect("node").kind;
    let kb = topo.node(l.b).expect("node").kind;
    match (ka, kb) {
        (Transit, Transit) => 30.0,
        (Transit, _) | (_, Transit) => 15.0,
        (Stub, Stub) => 3.0,
        _ => 1.0,
    }
}

/// IP-path cost between two client nodes: the sum of per-link costs along the
/// latency-shortest path.
fn path_cost(topo: &Topology, a: NodeId, b: NodeId) -> f64 {
    match mn_topology::paths::shortest_path(topo, a, b, mn_topology::paths::PathMetric::Latency) {
        Some(p) => p.links.iter().map(|&l| link_cost(topo, l)).sum(),
        None => f64::INFINITY,
    }
}

/// Cost of the minimum spanning tree over the member set (complete graph of
/// IP-path costs), by Prim's algorithm.
fn mst_cost(costs: &[Vec<f64>]) -> f64 {
    let n = costs.len();
    if n <= 1 {
        return 0.0;
    }
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    best[0] = 0.0;
    let mut total = 0.0;
    for _ in 0..n {
        let u = (0..n)
            .filter(|&i| !in_tree[i])
            .min_by(|&a, &b| best[a].partial_cmp(&best[b]).unwrap())
            .unwrap();
        in_tree[u] = true;
        total += best[u];
        for v in 0..n {
            if !in_tree[v] && costs[u][v] < best[v] {
                best[v] = costs[u][v];
            }
        }
    }
    total
}

fn pick_members(ts: &TransitStubTopology, count: usize) -> Vec<NodeId> {
    // Spread the members across stub domains round-robin.
    let mut members = Vec::new();
    let mut idx = 0;
    while members.len() < count {
        let domain = &ts.clients_by_domain[idx % ts.clients_by_domain.len()];
        if let Some(&c) = domain.get(idx / ts.clients_by_domain.len()) {
            members.push(c);
        }
        idx += 1;
        if idx > count * 10 {
            break;
        }
    }
    members
}

/// Runs the experiment and returns the time series.
pub fn run(scale: Scale) -> Vec<AcdcSample> {
    let d = dims(scale);
    let ts = transit_stub_topology(&TransitStubParams::sized_for(d.target_nodes, 29));
    let member_nodes = pick_members(&ts, d.members);

    let (mut runner, distilled) = Experiment::new(ts.topology.clone())
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(10)
        .unconstrained_hardware()
        .seed(29)
        .build_with_distilled()
        .expect("ACDC experiment builds");
    let binding = runner.binding().clone();
    let member_vns: Vec<VnId> = member_nodes
        .iter()
        .filter_map(|&n| binding.vn_at(n))
        .collect();

    // Off-line cost matrix and MST over the member set.
    let costs: Vec<Vec<f64>> = member_nodes
        .iter()
        .map(|&a| {
            member_nodes
                .iter()
                .map(|&b| path_cost(&ts.topology, a, b))
                .collect()
        })
        .collect();
    let mst = mst_cost(&costs);
    // Off-line SPT delay from the root over the (unperturbed) IP topology.
    let root_node = member_nodes[0];
    let spt_delay_s = member_nodes
        .iter()
        .filter_map(|&m| path_latency(&ts.topology, root_node, m))
        .map(|d| d.as_secs_f64())
        .fold(0.0, f64::max);

    let config = AcdcConfig {
        members: member_vns.clone(),
        root: member_vns[0],
        delay_target_s: 1.5,
        probe_period: SimDuration::from_secs(5),
        probe_fanout: (member_vns.len() as f64).log2().ceil() as usize,
        cost: costs,
        seed: 29,
    };
    for &vn in &member_vns {
        runner.add_application(vn, Box::new(AcdcNode::new(vn, config.clone())));
    }

    let mut injector = FaultInjector::new(&distilled, 29);
    let perturbation = LinkPerturbation {
        fraction: 0.25,
        kind: FaultKind::DelayIncrease {
            min: 0.0,
            max: 0.25,
        },
    };

    let mut samples = Vec::new();
    let mut t = 0u64;
    while t < d.total_s {
        let next = (t + d.sample_every_s).min(d.total_s);
        runner.run_until(SimTime::from_secs(next)).unwrap();
        t = next;
        // Perturb (or restore) the emulated pipes on schedule.
        if t >= d.perturb_start_s && t < d.perturb_end_s {
            for event in injector.perturb(SimTime::from_secs(t), &perturbation) {
                runner
                    .emulator_mut()
                    .update_pipe_attrs(event.pipe, event.attrs);
            }
        } else if t == d.perturb_end_s {
            for event in injector.restore_all(SimTime::from_secs(t)) {
                runner
                    .emulator_mut()
                    .update_pipe_attrs(event.pipe, event.attrs);
            }
        }
        // Sample the overlay state.
        let nodes: Vec<&AcdcNode> = member_vns
            .iter()
            .filter_map(|&vn| runner.app_as::<AcdcNode>(vn))
            .collect();
        let cost = summary::tree_cost(nodes.iter().copied());
        let (max_delay, attached) = summary::max_delay(nodes.iter().copied());
        samples.push(AcdcSample {
            time_s: t as f64,
            cost_vs_mst: if mst > 0.0 { cost / mst } else { 0.0 },
            max_delay_s: max_delay,
            attached,
            spt_delay_s,
        });
    }
    samples
}

/// Renders the time series.
pub fn render(samples: &[AcdcSample]) -> String {
    let mut out = String::from(
        "# Figure 12: ACDC cost (vs MST) and worst-case delay over time\ntime_s\tcost/mst\tmax_delay_s\tattached\tspt_delay_s\n",
    );
    for s in samples {
        out.push_str(&format!(
            "{:.0}\t{:.3}\t{:.3}\t{}\t{:.3}\n",
            s.time_s, s.cost_vs_mst, s.max_delay_s, s.attached, s.spt_delay_s
        ));
    }
    out
}

/// Shape check: the overlay eventually attaches every member, its delay stays
/// within the same order as the target, and its cost sits above the MST
/// bound (ratio ≥ 1).
pub fn shape_holds(samples: &[AcdcSample]) -> bool {
    let Some(last) = samples.last() else {
        return false;
    };
    let members = samples.iter().map(|s| s.attached).max().unwrap_or(0);
    last.attached + 2 >= members && last.cost_vs_mst >= 0.9 && last.max_delay_s < 10.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mst_cost_of_a_triangle() {
        let costs = vec![
            vec![0.0, 1.0, 4.0],
            vec![1.0, 0.0, 2.0],
            vec![4.0, 2.0, 0.0],
        ];
        assert_eq!(mst_cost(&costs), 3.0);
        assert_eq!(mst_cost(&[]), 0.0);
    }

    #[test]
    fn member_selection_spreads_over_domains() {
        let ts = transit_stub_topology(&TransitStubParams::sized_for(150, 29));
        let members = pick_members(&ts, 24);
        assert_eq!(members.len(), 24);
        let unique: std::collections::HashSet<_> = members.iter().collect();
        assert_eq!(unique.len(), 24);
    }
}
