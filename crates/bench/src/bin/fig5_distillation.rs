//! Regenerates Figure 5 (distillation vs flow-bandwidth CDFs). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let mut curves = mn_bench::fig5_distillation::run(scale);
    print!("{}", mn_bench::fig5_distillation::render(&mut curves));
    println!(
        "# shape_holds: {}",
        mn_bench::fig5_distillation::shape_holds(&mut curves)
    );
}
