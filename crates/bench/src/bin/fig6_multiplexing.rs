//! Regenerates Figure 6 (VN multiplexing on an edge host). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let curves = mn_bench::fig6_multiplexing::run(scale);
    print!("{}", mn_bench::fig6_multiplexing::render(&curves));
    println!(
        "# shape_holds: {}",
        mn_bench::fig6_multiplexing::shape_holds(&curves)
    );
}
