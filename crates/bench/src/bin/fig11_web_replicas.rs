//! Regenerates Figure 11 (client latency CDF vs number of web replicas). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let mut curves = mn_bench::fig11_web::run(scale);
    print!("{}", mn_bench::fig11_web::render(&mut curves));
    println!(
        "# shape_holds: {}",
        mn_bench::fig11_web::shape_holds(&mut curves)
    );
}
