//! Regenerates Figure 9 (TCP transfer speed CDFs on the RON-like mesh). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let mut curves = mn_bench::cfs_experiments::run_fig9(scale);
    print!(
        "{}",
        mn_bench::cfs_experiments::render_cdfs(
            "Figure 9: TCP transfer speed CDFs",
            "kB/s",
            &mut curves
        )
    );
    println!(
        "# shape_holds: {}",
        mn_bench::cfs_experiments::fig9_shape_holds(&mut curves)
    );
}
