//! Regenerates Figure 4 (single-core capacity). Pass `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let points = mn_bench::fig4_capacity::run(scale);
    print!("{}", mn_bench::fig4_capacity::render(&points));
    println!(
        "# shape_holds: {}",
        mn_bench::fig4_capacity::shape_holds(&points)
    );
}
