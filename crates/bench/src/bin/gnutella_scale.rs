//! Regenerates the §5 gnutella connectivity run. `--full` for larger scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let summary = mn_bench::gnutella_scale::run(scale);
    print!("{}", mn_bench::gnutella_scale::render(&summary));
    println!(
        "# shape_holds: {}",
        mn_bench::gnutella_scale::shape_holds(&summary)
    );
}
