//! Regenerates Table 1 (4-core scaling vs cross-core traffic). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let rows = mn_bench::table1_multicore::run(scale);
    print!("{}", mn_bench::table1_multicore::render(&rows));
    println!(
        "# shape_holds: {}",
        mn_bench::table1_multicore::shape_holds(&rows)
    );
}
