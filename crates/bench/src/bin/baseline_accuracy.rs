//! Regenerates the §3.1 baseline-accuracy table. `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let points = mn_bench::accuracy::run(scale);
    print!("{}", mn_bench::accuracy::render(&points));
    println!(
        "# shape_holds: {}",
        mn_bench::accuracy::shape_holds(&points)
    );
}
