//! Regenerates Figure 12 (ACDC cost and delay over time). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let samples = mn_bench::fig12_acdc::run(scale);
    print!("{}", mn_bench::fig12_acdc::render(&samples));
    println!(
        "# shape_holds: {}",
        mn_bench::fig12_acdc::shape_holds(&samples)
    );
}
