//! Regenerates Figure 7 (CFS download speed vs prefetch window). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let points = mn_bench::cfs_experiments::run_fig7(scale);
    print!("{}", mn_bench::cfs_experiments::render_fig7(&points));
    println!(
        "# shape_holds: {}",
        mn_bench::cfs_experiments::fig7_shape_holds(&points)
    );
}
