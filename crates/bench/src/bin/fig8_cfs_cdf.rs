//! Regenerates Figure 8 (CDF of CFS download speed per prefetch window). `--full` for paper scale.
fn main() {
    let scale = mn_bench::Scale::from_args();
    let mut curves = mn_bench::cfs_experiments::run_fig8(scale);
    print!(
        "{}",
        mn_bench::cfs_experiments::render_cdfs(
            "Figure 8: CFS download speed CDFs",
            "kB/s",
            &mut curves
        )
    );
}
