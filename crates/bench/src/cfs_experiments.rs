//! Figures 7, 8 and 9: the CFS/RON reproduction.
//!
//! * Figure 7 — download speed of a 1 MB file striped over Chord as a
//!   function of the prefetch window.
//! * Figure 8 — the per-download CDF of the same experiment for 8, 24 and
//!   40 KB windows.
//! * Figure 9 — the CDF of plain TCP transfer speeds between the mesh nodes
//!   for 8 KB, 64 KB and 1164 KB files.
//!
//! The RON testbed's published pairwise characteristics are replaced by the
//! synthetic RON-like mesh (`mn_topology::ron`); see DESIGN.md for the
//! substitution rationale. Expected shapes: download speed grows with the
//! prefetch window and saturates in the low hundreds of KB/s; small TCP
//! transfers are RTT/slow-start bound while large transfers approach the
//! per-path available bandwidth.

use mn_apps::{CfsClient, CfsConfig, CfsServer, ChordRing};
use mn_distill::DistillationMode;
use mn_packet::VnId;
use mn_topology::ron::{ron_mesh, RonMeshParams};
use mn_util::{ByteSize, Cdf};
use modelnet::{Experiment, Runner, SimDuration, SimTime};

use crate::Scale;

/// One point of Figure 7.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchPoint {
    /// Prefetch window in kilobytes.
    pub window_kb: u64,
    /// Download speed in kilobytes/second.
    pub speed_kbytes_per_sec: f64,
}

fn build_runner(seed: u64) -> (Runner, Vec<VnId>) {
    let mesh = ron_mesh(&RonMeshParams {
        seed,
        ..RonMeshParams::default()
    });
    let runner = Experiment::new(mesh.topology)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(12)
        .unconstrained_hardware()
        .seed(seed)
        .build()
        .expect("RON mesh experiment builds");
    let vns = runner.vn_ids();
    (runner, vns)
}

/// Runs one CFS download with the given prefetch window from `client_index`.
fn run_download(window_kb: u64, client_index: usize, seed: u64) -> f64 {
    let (mut runner, vns) = build_runner(seed);
    let ring = ChordRing::new(vns.iter().copied());
    let config = CfsConfig {
        prefetch_window: window_kb * 1024,
        ..CfsConfig::default()
    };
    for (i, &vn) in vns.iter().enumerate() {
        if i == client_index {
            runner.add_application(vn, Box::new(CfsClient::new(vn, ring.clone(), config)));
        } else {
            runner.add_application(vn, Box::new(CfsServer::new(vn, ring.clone())));
        }
    }
    runner.run_for(SimDuration::from_secs(120)).unwrap();
    let client = runner
        .app_as::<CfsClient>(vns[client_index])
        .expect("client app installed");
    client.download_speed_kbytes_per_sec().unwrap_or(0.0)
}

/// Figure 7: download speed vs prefetch window.
pub fn run_fig7(scale: Scale) -> Vec<PrefetchPoint> {
    let windows: Vec<u64> = match scale {
        Scale::Quick => vec![8, 24, 40, 96],
        Scale::Paper => vec![8, 16, 24, 32, 40, 56, 72, 96, 128, 192],
    };
    windows
        .iter()
        .map(|&w| PrefetchPoint {
            window_kb: w,
            speed_kbytes_per_sec: run_download(w, 0, 2002),
        })
        .collect()
}

/// Figure 8: CDF of download speeds across client sites for selected windows.
pub fn run_fig8(scale: Scale) -> Vec<(u64, Cdf)> {
    let clients: Vec<usize> = match scale {
        Scale::Quick => vec![0, 3, 6, 9],
        Scale::Paper => (0..12).collect(),
    };
    [8u64, 24, 40]
        .iter()
        .map(|&w| {
            let mut cdf = Cdf::new();
            for &c in &clients {
                cdf.add(run_download(w, c, 2002));
            }
            (w, cdf)
        })
        .collect()
}

/// Figure 9: CDF of raw TCP transfer speeds for three file sizes.
pub fn run_fig9(scale: Scale) -> Vec<(u64, Cdf)> {
    let pair_count = match scale {
        Scale::Quick => 12,
        Scale::Paper => 40,
    };
    [8u64, 64, 1164]
        .iter()
        .map(|&size_kb| {
            let mut cdf = Cdf::new();
            for p in 0..pair_count {
                let (mut runner, vns) = build_runner(2002);
                let src = vns[p % vns.len()];
                let dst = vns[(p * 5 + 1) % vns.len()];
                if src == dst {
                    continue;
                }
                let flow =
                    runner.add_bulk_flow(src, dst, Some(ByteSize::from_kb(size_kb)), SimTime::ZERO);
                runner.run_for(SimDuration::from_secs(90)).unwrap();
                if let Some(done) = runner.flow_completed_at(flow) {
                    let secs = done.as_secs_f64();
                    if secs > 0.0 {
                        cdf.add(size_kb as f64 / secs);
                    }
                }
            }
            (size_kb, cdf)
        })
        .collect()
}

/// Renders Figure 7.
pub fn render_fig7(points: &[PrefetchPoint]) -> String {
    let mut out =
        String::from("# Figure 7: CFS download speed vs prefetch window\nwindow_kb\tspeed_kB/s\n");
    for p in points {
        out.push_str(&format!("{}\t{:.1}\n", p.window_kb, p.speed_kbytes_per_sec));
    }
    out
}

/// Renders a set of labelled CDFs (Figures 8 and 9).
pub fn render_cdfs(title: &str, unit: &str, curves: &mut [(u64, Cdf)]) -> String {
    let mut out = format!("# {title} ({unit})\n");
    for (label, cdf) in curves {
        out.push_str(&crate::format_cdf(
            &format!("{label}KB"),
            &cdf.points_downsampled(16),
        ));
    }
    out
}

/// Figure 7 shape: a larger prefetch window never makes the download
/// dramatically slower, and the largest window beats the smallest.
pub fn fig7_shape_holds(points: &[PrefetchPoint]) -> bool {
    if points.len() < 2 {
        return false;
    }
    let first = points.first().unwrap().speed_kbytes_per_sec;
    let best = points
        .iter()
        .map(|p| p.speed_kbytes_per_sec)
        .fold(0.0, f64::max);
    first > 0.0 && best > first
}

/// Figure 9 shape: larger transfers achieve higher median speed (slow start
/// amortised), and every 8 KB transfer completes.
pub fn fig9_shape_holds(curves: &mut [(u64, Cdf)]) -> bool {
    let median = |curves: &mut [(u64, Cdf)], size: u64| -> f64 {
        curves
            .iter_mut()
            .find(|(s, _)| *s == size)
            .and_then(|(_, c)| c.median())
            .unwrap_or(0.0)
    };
    let small = median(curves, 8);
    let large = median(curves, 1164);
    small > 0.0 && large > small
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_download_completes_and_reports_speed() {
        let speed = run_download(24, 0, 7);
        assert!(
            speed > 20.0 && speed < 5_000.0,
            "download speed {speed} kB/s out of plausible range"
        );
    }

    #[test]
    fn bigger_windows_do_not_slow_the_download() {
        let small = run_download(8, 0, 7);
        let large = run_download(96, 0, 7);
        assert!(
            large >= small * 0.9,
            "96KB window ({large}) should not be slower than 8KB ({small})"
        );
    }
}
