//! Figure 11: CDF of client-perceived latency as a function of the number of
//! web replicas.
//!
//! Clients in four stub domains of a transit–stub topology play back a trace
//! at 60–100 requests/second against one, two or three server replicas. With
//! a single replica the transit links congest and the latency tail stretches
//! past several seconds; a second replica removes most of that contention; a
//! third helps only marginally.

use mn_apps::{WebClient, WebServer, WorkloadTrace};
use mn_distill::DistillationMode;
use mn_packet::VnId;
use mn_topology::generators::{transit_stub_topology, TransitStubParams};
use mn_util::Cdf;
use modelnet::{Experiment, SimDuration};

use crate::Scale;

/// The latency CDF measured for one replica count.
#[derive(Debug, Clone)]
pub struct ReplicaCurve {
    /// Number of server replicas receiving traffic.
    pub replicas: usize,
    /// Client-perceived latency samples, seconds.
    pub cdf: Cdf,
    /// Requests completed.
    pub completed: u64,
}

/// Runs the experiment for 1, 2 and 3 replicas.
pub fn run(scale: Scale) -> Vec<ReplicaCurve> {
    let (target_nodes, clients_per_site, duration_s, rate) = match scale {
        Scale::Quick => (160, 6, 40u64, 40.0),
        Scale::Paper => (320, 30, 150u64, 80.0),
    };
    (1..=3)
        .map(|replicas| run_point(replicas, target_nodes, clients_per_site, duration_s, rate))
        .collect()
}

fn run_point(
    replicas: usize,
    target_nodes: usize,
    clients_per_site: usize,
    duration_s: u64,
    rate: f64,
) -> ReplicaCurve {
    let ts = transit_stub_topology(&TransitStubParams::sized_for(target_nodes, 17));
    let mut runner = Experiment::new(ts.topology.clone())
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(8)
        .unconstrained_hardware()
        .seed(17)
        .build()
        .expect("transit-stub experiment builds");
    let binding = runner.binding().clone();

    // Pick 4 client stub domains and up to 3 widely separated server domains.
    let domains = &ts.clients_by_domain;
    let n_domains = domains.len();
    let client_domains = [0, n_domains / 4, n_domains / 2, 3 * n_domains / 4];
    let server_domains = [n_domains / 8, 3 * n_domains / 8, 7 * n_domains / 8];

    let server_vns: Vec<VnId> = server_domains
        .iter()
        .take(replicas)
        .filter_map(|&d| domains[d].first())
        .filter_map(|&node| binding.vn_at(node))
        .collect();
    for &server in &server_vns {
        runner.add_application(server, Box::new(WebServer::new()));
    }

    // Clients: split the aggregate trace across every client VN; each client
    // site is statically assigned to one replica (round-robin), as in the
    // paper's manual request-routing configuration.
    let trace = WorkloadTrace::synthetic(SimDuration::from_secs(duration_s), rate, 12_000.0, 17);
    let mut client_vns: Vec<(VnId, usize)> = Vec::new();
    for (site_idx, &d) in client_domains.iter().enumerate() {
        for &node in domains[d].iter().take(clients_per_site) {
            if let Some(vn) = binding.vn_at(node) {
                if !server_vns.contains(&vn) {
                    client_vns.push((vn, site_idx));
                }
            }
        }
    }
    let parts = trace.split(client_vns.len().max(1));
    for (i, &(vn, site_idx)) in client_vns.iter().enumerate() {
        let server = server_vns[site_idx % server_vns.len()];
        runner.add_application(vn, Box::new(WebClient::new(server, parts[i].clone())));
    }

    runner
        .run_for(SimDuration::from_secs(duration_s + 20))
        .unwrap();

    let mut cdf = Cdf::new();
    let mut completed = 0;
    for &(vn, _) in &client_vns {
        if let Some(client) = runner.app_as::<WebClient>(vn) {
            completed += client.completed();
            for &l in client.latencies() {
                cdf.add(l);
            }
        }
    }
    ReplicaCurve {
        replicas,
        cdf,
        completed,
    }
}

/// Renders the three CDFs.
pub fn render(curves: &mut [ReplicaCurve]) -> String {
    let mut out = String::from("# Figure 11: client latency CDF vs number of replicas (seconds)\n");
    for c in curves {
        out.push_str(&format!(
            "# replicas={} completed={}\n",
            c.replicas, c.completed
        ));
        out.push_str(&crate::format_cdf(
            &format!("{}-replica", c.replicas),
            &c.cdf.points_downsampled(20),
        ));
    }
    out
}

/// Shape check: adding the second replica improves tail latency, and the
/// third replica's gain is smaller than the second's.
pub fn shape_holds(curves: &mut [ReplicaCurve]) -> bool {
    if curves.len() < 3 {
        return false;
    }
    let q90: Vec<f64> = curves
        .iter_mut()
        .map(|c| c.cdf.quantile(0.9).unwrap_or(f64::INFINITY))
        .collect();
    let gain_second = q90[0] - q90[1];
    let gain_third = q90[1] - q90[2];
    q90[1] <= q90[0] && gain_third <= gain_second + 0.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replica_point_completes_requests() {
        let curve = run_point(1, 120, 3, 20, 20.0);
        assert!(
            curve.completed > 50,
            "completed only {} requests",
            curve.completed
        );
        assert!(curve.cdf.len() as u64 == curve.completed);
    }
}
