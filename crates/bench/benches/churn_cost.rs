//! Live-churn cost: VN join/leave latency and route-state residency.
//!
//! PR 8's acceptance target: a join or leave completes **without a full
//! rebuild** — O(affected rows/trees) work, flat in the total VN count.
//! Three measurements against overlays of 4096/8192/16384 endpoints
//! multiplexed over a 512-location ring (64 routers × 8 clients):
//!
//! * `churn_cycle_shared_<n>_vns` — one full leave + rejoin cycle of an
//!   endpoint that shares its location with other endpoints: the departing
//!   row shard is unbound and rebound in a copy-on-write route-table
//!   generation, while the location's source tree stays resident. This is
//!   the common case at high multiplexing and must stay flat as the total
//!   VN count quadruples.
//! * `churn_cycle_singleton_<n>_vns` — the same cycle for the only
//!   endpoint at its location: the leave retires the source tree, the
//!   rejoin recomputes it (one Dijkstra over the component, O(component
//!   log component)). Costlier than the shared cycle, but still
//!   independent of the total VN count.
//! * `full_rebuild_<n>_vns` — `RoutingMatrix::build` + `RouteTable::build`
//!   from scratch at the same size: the baseline a naive implementation
//!   would pay per churn event. The shared cycle must beat it by >= 20x.
//!
//! Residency under churn is measured with the counting global allocator
//! (bytes measured, not estimated): the allocator delta across 256
//! leave/rejoin cycles, divided out per cycle. Copy-on-write generations
//! retire as soon as no descriptor pins them, so per-cycle growth must be
//! bounded by the affected rows — flat in the total VN count — not by the
//! route state as a whole.
//!
//! `shape_holds` in `BENCH_churn.json` asserts: both cycle flavours at
//! 16384 VNs within 3x of their 4096-VN cost (flat in VN count), the
//! shared cycle at least 20x cheaper than the full rebuild it replaces,
//! and per-cycle allocator growth at 16384 VNs within 3x of (or within
//! 4 KiB of) the 4096-VN growth.

use std::time::Instant;

use mn_assign::{Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::VnId;
use mn_routing::{RouteTable, RoutingMatrix};
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::NodeId;
use mn_util::SimTime;

#[global_allocator]
static ALLOC: mn_util::alloc::CountingAlloc = mn_util::alloc::CountingAlloc;

/// Total-VN sizes the cycle cost is swept over (flat-in-N acceptance).
const SIZES: [usize; 3] = [4096, 8192, 16384];
/// Leave/rejoin cycles in the residency measurement.
const RESIDENCY_CYCLES: u64 = 256;
/// The shared cycle must be at least this much cheaper than a rebuild.
const REBUILD_ADVANTAGE: f64 = 20.0;

struct SizeRow {
    n: usize,
    shared_ns: f64,
    singleton_ns: f64,
    rebuild_ns: f64,
    growth_per_cycle: f64,
}

fn measure_size(n: usize) -> SizeRow {
    let topo = ring_topology(&RingParams {
        routers: 64,
        clients_per_router: 8,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let base: Vec<NodeId> = d.vns().to_vec();
    // All but the last endpoint multiplex over 511 locations; the last is
    // alone at the 512th, so its churn exercises tree retire/recompute.
    let mut locations: Vec<NodeId> = (0..n - 1).map(|i| base[i % (base.len() - 1)]).collect();
    locations.push(base[base.len() - 1]);
    let binding = Binding::bind(&locations, &BindingParams::new(4, 1));
    let matrix = RoutingMatrix::build(&d);
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);

    let shared_vn = VnId(0);
    let shared_loc = locations[0];
    let singleton_vn = VnId((n - 1) as u32);
    let singleton_loc = locations[n - 1];
    let mut clock = 0u64;
    let mut cycle = |emu: &mut MultiCoreEmulator, vn: VnId, loc: NodeId| {
        clock += 2;
        assert!(emu.vn_leave(vn, SimTime::from_nanos(clock - 1)));
        assert!(emu.vn_join(&d, vn, loc, SimTime::from_nanos(clock)));
    };

    let mut time_cycles = |emu: &mut MultiCoreEmulator, vn: VnId, loc: NodeId, iters: u64| -> f64 {
        for _ in 0..64 {
            cycle(emu, vn, loc);
        }
        let start = Instant::now();
        for _ in 0..iters {
            cycle(emu, vn, loc);
        }
        start.elapsed().as_nanos() as f64 / iters as f64
    };
    let shared_ns = time_cycles(&mut emu, shared_vn, shared_loc, 2048);
    let singleton_ns = time_cycles(&mut emu, singleton_vn, singleton_loc, 512);

    // Residency under sustained churn: allocator delta per shared cycle.
    let before = mn_util::alloc::bytes_in_use();
    for _ in 0..RESIDENCY_CYCLES {
        cycle(&mut emu, shared_vn, shared_loc);
    }
    let growth = mn_util::alloc::bytes_in_use().saturating_sub(before);
    let growth_per_cycle = growth as f64 / RESIDENCY_CYCLES as f64;

    // The naive alternative: rebuild the matrix and table from scratch.
    let rebuild_iters = 8u64;
    let start = Instant::now();
    for _ in 0..rebuild_iters {
        let matrix = RoutingMatrix::build(&d);
        let table = RouteTable::build(&matrix, &locations);
        std::hint::black_box((&matrix, &table));
    }
    let rebuild_ns = start.elapsed().as_nanos() as f64 / rebuild_iters as f64;

    SizeRow {
        n,
        shared_ns,
        singleton_ns,
        rebuild_ns,
        growth_per_cycle,
    }
}

fn main() {
    if criterion::invoked_as_test() {
        return;
    }
    let rows: Vec<SizeRow> = SIZES.iter().map(|&n| measure_size(n)).collect();
    for row in &rows {
        println!(
            "{:>6} vns: shared cycle {:>9.0} ns, singleton cycle {:>9.0} ns, \
             full rebuild {:>11.0} ns ({:.0}x the shared cycle), \
             {:>6.0} B/cycle resident growth",
            row.n,
            row.shared_ns,
            row.singleton_ns,
            row.rebuild_ns,
            row.rebuild_ns / row.shared_ns,
            row.growth_per_cycle,
        );
    }

    let first = &rows[0];
    let last = &rows[rows.len() - 1];
    let shared_flat = last.shared_ns <= 3.0 * first.shared_ns;
    let singleton_flat = last.singleton_ns <= 3.0 * first.singleton_ns;
    let beats_rebuild = last.shared_ns * REBUILD_ADVANTAGE <= last.rebuild_ns;
    let growth_flat = last.growth_per_cycle
        <= (3.0 * first.growth_per_cycle).max(first.growth_per_cycle + 4096.0);
    println!(
        "shared cycle grows {:.2}x and singleton {:.2}x across a 4x VN increase \
         (flat wants <= 3); shared cycle is {:.0}x cheaper than a rebuild \
         (wants >= {REBUILD_ADVANTAGE:.0}); per-cycle growth {:.0} -> {:.0} B",
        last.shared_ns / first.shared_ns,
        last.singleton_ns / first.singleton_ns,
        last.rebuild_ns / last.shared_ns,
        first.growth_per_cycle,
        last.growth_per_cycle,
    );

    let shape_holds = shared_flat && singleton_flat && beats_rebuild && growth_flat;
    let mut report = mn_bench::report::Report::new("churn", shape_holds);
    for row in &rows {
        report = report
            .with_series(
                format!("churn_cycle_shared_{}_vns", row.n),
                vec![(2048.0, row.shared_ns)],
            )
            .with_series(
                format!("churn_cycle_singleton_{}_vns", row.n),
                vec![(512.0, row.singleton_ns)],
            )
            .with_series(
                format!("full_rebuild_{}_vns", row.n),
                vec![(8.0, row.rebuild_ns)],
            )
            .with_series(
                format!("mem/churn_growth_bytes_per_cycle_{}_vns", row.n),
                vec![(RESIDENCY_CYCLES as f64, row.growth_per_cycle)],
            );
    }
    match report.write_json("BENCH_churn") {
        Ok(path) => println!("bench report written to {path} (shape_holds: {shape_holds})"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
