//! Criterion micro-benchmarks for the mechanisms §2.2 of the paper analyses:
//! route lookup across the three lookup structures, pipe scheduling
//! (enqueue/dequeue through the bandwidth queue and delay line), distillation
//! cost, and greedy pipe-to-core assignment.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_pipe::EmuPipe;
use mn_routing::{RouteCache, RouteProvider, RoutingMatrix};
use mn_topology::generators::{
    ring_topology, star_topology, transit_stub_topology, RingParams, StarParams, TransitStubParams,
};
use mn_util::rngs::seeded_rng;
use mn_util::{ByteSize, SimTime};

fn bench_routing(c: &mut Criterion) {
    let topo = ring_topology(&RingParams::default());
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let vns = matrix.vns().to_vec();
    let mut group = c.benchmark_group("route_lookup");
    group.bench_function("matrix", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = vns[i % vns.len()];
            let z = vns[(i * 7 + 3) % vns.len()];
            i += 1;
            std::hint::black_box(matrix.lookup(a, z));
        })
    });
    group.bench_function("cache_warm", |b| {
        let mut cache = RouteCache::with_default_capacity(d.clone());
        // Warm a handful of routes.
        for k in 0..32 {
            let _ = cache.route(vns[k % vns.len()], vns[(k * 7 + 3) % vns.len()]);
        }
        let mut i = 0usize;
        b.iter(|| {
            let a = vns[i % 32 % vns.len()];
            let z = vns[(i % 32 * 7 + 3) % vns.len()];
            i += 1;
            std::hint::black_box(cache.route(a, z));
        })
    });
    group.finish();

    c.bench_function("routing_matrix_build_ring420", |b| {
        b.iter(|| std::hint::black_box(RoutingMatrix::build(&d)))
    });
}

fn bench_pipe(c: &mut Criterion) {
    let topo = ring_topology(&RingParams::default());
    let d = distill(&topo, DistillationMode::HopByHop);
    let attrs = d.pipe(mn_distill::PipeId(0)).attrs;
    c.bench_function("pipe_enqueue_dequeue", |b| {
        b.iter_batched(
            || (EmuPipe::<u64>::new(attrs), seeded_rng(1)),
            |(mut pipe, mut rng)| {
                for i in 0..64u64 {
                    let t = SimTime::from_micros(i * 50);
                    let _ = pipe.enqueue(t, ByteSize::from_bytes(1500), i, &mut rng);
                    std::hint::black_box(pipe.dequeue_ready(t));
                }
                std::hint::black_box(pipe.drain_all())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_distillation(c: &mut Criterion) {
    let ring = ring_topology(&RingParams::default());
    let ts = transit_stub_topology(&TransitStubParams::sized_for(320, 3)).topology;
    let mut group = c.benchmark_group("distillation");
    group.sample_size(10);
    group.bench_function("hop_by_hop_ring420", |b| {
        b.iter(|| std::hint::black_box(distill(&ring, DistillationMode::HopByHop)))
    });
    group.bench_function("last_mile_ring420", |b| {
        b.iter(|| std::hint::black_box(distill(&ring, DistillationMode::LAST_MILE)))
    });
    group.bench_function("end_to_end_ring420", |b| {
        b.iter(|| std::hint::black_box(distill(&ring, DistillationMode::EndToEnd)))
    });
    group.bench_function("last_mile_transit_stub320", |b| {
        b.iter(|| std::hint::black_box(distill(&ts, DistillationMode::LAST_MILE)))
    });
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let topo = ring_topology(&RingParams::default());
    let d = distill(&topo, DistillationMode::HopByHop);
    c.bench_function("greedy_k_clusters_4cores", |b| {
        b.iter(|| std::hint::black_box(greedy_k_clusters(&d, 4, 7)))
    });
}

fn tcp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            payload_len: 1460,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

/// The fig4-capacity hot loop: per-packet route lookup + ingress + scheduler
/// advance on a single unconstrained core. This is the path the dense
/// ID-indexed tables optimise; track it PR over PR.
fn bench_submit_path(c: &mut Criterion) {
    let topo = star_topology(&StarParams {
        clients: 64,
        ..StarParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let vns: Vec<VnId> = binding.vns().collect();
    let mut i = 0u64;
    c.bench_function("core_submit_advance", |b| {
        b.iter(|| {
            let now = SimTime::from_micros(i * 20);
            let src = vns[i as usize % vns.len()];
            let dst = vns[(i as usize + 7) % vns.len()];
            std::hint::black_box(emu.submit(now, tcp_packet(i, src, dst, now)));
            if i.is_multiple_of(32) {
                std::hint::black_box(emu.advance(now));
            }
            i += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_routing,
    bench_pipe,
    bench_distillation,
    bench_assignment,
    bench_submit_path
);
criterion_main!(benches);
