//! Criterion micro-benchmarks for the mechanisms §2.2 of the paper analyses:
//! route lookup across the three lookup structures, pipe scheduling
//! (enqueue/dequeue through the bandwidth queue and delay line), scheduler
//! data structures (timing wheel vs. binary heap at many-pipe scale),
//! distillation cost, and greedy pipe-to-core assignment.
//!
//! Besides the human-readable table, a `cargo bench` run writes the
//! measurements to `BENCH_core_microbench.json` (via `mn_bench::report`) so
//! CI can archive the perf trajectory PR over PR.

use criterion::{criterion_group, BatchSize, Criterion};

use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_pipe::EmuPipe;
use mn_routing::{RouteCache, RouteProvider, RoutingMatrix};
use mn_topology::generators::{
    path_pairs_topology, ring_topology, star_topology, transit_stub_topology, PathPairsParams,
    RingParams, StarParams, TransitStubParams,
};
use mn_util::rngs::seeded_rng;
use mn_util::{ByteSize, EventHeap, SimTime, TimerWheel};

fn bench_routing(c: &mut Criterion) {
    let topo = ring_topology(&RingParams::default());
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let vns = matrix.vns().to_vec();
    let mut group = c.benchmark_group("route_lookup");
    group.bench_function("matrix", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let a = vns[i % vns.len()];
            let z = vns[(i * 7 + 3) % vns.len()];
            i += 1;
            std::hint::black_box(matrix.lookup(a, z));
        })
    });
    group.bench_function("cache_warm", |b| {
        let mut cache = RouteCache::with_default_capacity(d.clone());
        // Warm a handful of routes.
        for k in 0..32 {
            let _ = cache.route(vns[k % vns.len()], vns[(k * 7 + 3) % vns.len()]);
        }
        let mut i = 0usize;
        b.iter(|| {
            let a = vns[i % 32 % vns.len()];
            let z = vns[(i % 32 * 7 + 3) % vns.len()];
            i += 1;
            std::hint::black_box(cache.route(a, z));
        })
    });
    group.finish();

    c.bench_function("routing_matrix_build_ring420", |b| {
        b.iter(|| std::hint::black_box(RoutingMatrix::build(&d)))
    });
}

fn bench_pipe(c: &mut Criterion) {
    let topo = ring_topology(&RingParams::default());
    let d = distill(&topo, DistillationMode::HopByHop);
    let attrs = d.pipe(mn_distill::PipeId(0)).attrs;
    c.bench_function("pipe_enqueue_dequeue", |b| {
        b.iter_batched(
            || (EmuPipe::<u64>::new(attrs), seeded_rng(1)),
            |(mut pipe, mut rng)| {
                for i in 0..64u64 {
                    let t = SimTime::from_micros(i * 50);
                    let _ = pipe.enqueue(t, ByteSize::from_bytes(1500), i, &mut rng);
                    std::hint::black_box(pipe.dequeue_ready(t));
                }
                std::hint::black_box(pipe.drain_all())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_distillation(c: &mut Criterion) {
    let ring = ring_topology(&RingParams::default());
    let ts = transit_stub_topology(&TransitStubParams::sized_for(320, 3)).topology;
    let mut group = c.benchmark_group("distillation");
    group.sample_size(10);
    group.bench_function("hop_by_hop_ring420", |b| {
        b.iter(|| std::hint::black_box(distill(&ring, DistillationMode::HopByHop)))
    });
    group.bench_function("last_mile_ring420", |b| {
        b.iter(|| std::hint::black_box(distill(&ring, DistillationMode::LAST_MILE)))
    });
    group.bench_function("end_to_end_ring420", |b| {
        b.iter(|| std::hint::black_box(distill(&ring, DistillationMode::EndToEnd)))
    });
    group.bench_function("last_mile_transit_stub320", |b| {
        b.iter(|| std::hint::black_box(distill(&ts, DistillationMode::LAST_MILE)))
    });
    group.finish();
}

fn bench_assignment(c: &mut Criterion) {
    let topo = ring_topology(&RingParams::default());
    let d = distill(&topo, DistillationMode::HopByHop);
    c.bench_function("greedy_k_clusters_4cores", |b| {
        b.iter(|| std::hint::black_box(greedy_k_clusters(&d, 4, 7)))
    });
}

fn tcp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            payload_len: 1460,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

/// The fig4-capacity hot loop: per-packet route lookup + ingress + scheduler
/// advance on a single unconstrained core. This is the path the dense
/// ID-indexed tables optimise; track it PR over PR.
fn bench_submit_path(c: &mut Criterion) {
    let topo = star_topology(&StarParams {
        clients: 64,
        ..StarParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let vns: Vec<VnId> = binding.vns().collect();
    let mut i = 0u64;
    c.bench_function("core_submit_advance", |b| {
        b.iter(|| {
            let now = SimTime::from_micros(i * 20);
            let src = vns[i as usize % vns.len()];
            let dst = vns[(i as usize + 7) % vns.len()];
            std::hint::black_box(emu.submit(now, tcp_packet(i, src, dst, now)));
            if i.is_multiple_of(32) {
                std::hint::black_box(emu.advance(now));
            }
            i += 1;
        })
    });
}

/// Deterministic pseudo-random pipe delay in `[1 ms, 16 ms)` — the spread of
/// queueing + transmission + propagation deadlines a loaded core juggles.
fn pipe_delay_ns(i: u64) -> u64 {
    1_000_000 + i.wrapping_mul(2_654_435_761) % 15_000_000
}

/// The scheduler data structures at many-pipe scale: 4096 pipes each with a
/// pending exit deadline, serviced in 100 µs ticks. Every pop reschedules
/// the pipe, so the pending count stays at 4096 — the steady state of a
/// fully loaded core. This is the O(log n) → O(1) gap the timing wheel
/// exists for: the heap pays a 12-level sift per operation at this scale,
/// the wheel a constant slot access.
fn bench_steady_state_many_pipes(c: &mut Criterion) {
    const PIPES: u64 = 4096;
    const TICK_NS: u64 = 100_000;
    let mut group = c.benchmark_group("steady_state_many_pipes");

    group.bench_function("wheel_4096_pipes", |b| {
        let mut wheel: TimerWheel<u64> = TimerWheel::new();
        for i in 0..PIPES {
            wheel.push(SimTime::from_nanos(pipe_delay_ns(i)), i);
        }
        let mut now_ns = 0u64;
        let mut reschedules = PIPES;
        b.iter(|| {
            now_ns += TICK_NS;
            let now = SimTime::from_nanos(now_ns);
            while let Some((_, pipe)) = wheel.pop_due(now) {
                wheel.push(
                    SimTime::from_nanos(now_ns + pipe_delay_ns(pipe ^ reschedules)),
                    pipe,
                );
                reschedules += 1;
            }
            std::hint::black_box(wheel.len())
        })
    });

    group.bench_function("heap_4096_pipes", |b| {
        let mut heap: EventHeap<u64> = EventHeap::new();
        for i in 0..PIPES {
            heap.push(SimTime::from_nanos(pipe_delay_ns(i)), i);
        }
        let mut now_ns = 0u64;
        let mut reschedules = PIPES;
        b.iter(|| {
            now_ns += TICK_NS;
            let now = SimTime::from_nanos(now_ns);
            while let Some((_, pipe)) = heap.pop_due(now) {
                heap.push(
                    SimTime::from_nanos(now_ns + pipe_delay_ns(pipe ^ reschedules)),
                    pipe,
                );
                reschedules += 1;
            }
            std::hint::black_box(heap.len())
        })
    });

    group.finish();

    // The same steady state end to end: a single unconstrained core with
    // 4096 installed pipes (256 sender/receiver pairs over 8-hop paths,
    // hop-by-hop distillation), per-packet submit + periodic advance. Each
    // packet traverses 8 pipes, so the scheduler wheel carries deadlines
    // across the whole pipe table at all times.
    let (topo, pairs) = path_pairs_topology(&PathPairsParams {
        pairs: 256,
        hops: 8,
        ..PathPairsParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    assert!(d.pipe_count() >= 4096, "paths must install ≥ 4k pipes");
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let mut emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let endpoints: Vec<(VnId, VnId)> = pairs
        .iter()
        .map(|&(a, b)| {
            (
                binding.vn_at(a).expect("pair source is bound"),
                binding.vn_at(b).expect("pair sink is bound"),
            )
        })
        .collect();
    let mut deliveries = Vec::new();
    let mut i = 0u64;
    c.bench_function("steady_state_emulator_4096_pipes", |b| {
        b.iter(|| {
            let now = SimTime::from_micros(i * 20);
            let (src, dst) = endpoints[i as usize % endpoints.len()];
            std::hint::black_box(emu.submit(now, tcp_packet(i, src, dst, now)));
            if i.is_multiple_of(32) {
                deliveries.clear();
                emu.advance_into(now, &mut deliveries);
                std::hint::black_box(deliveries.len());
            }
            i += 1;
        })
    });
}

criterion_group!(
    benches,
    bench_routing,
    bench_pipe,
    bench_distillation,
    bench_assignment,
    bench_submit_path,
    bench_steady_state_many_pipes
);

fn main() {
    // Skip measurements when driven by the test harness (`cargo test`).
    if criterion::invoked_as_test() {
        return;
    }
    let results: Vec<(String, f64, u64)> = benches()
        .into_iter()
        .map(|r| (r.name, r.mean_ns, r.iters))
        .collect();
    match mn_bench::report::write_bench_json("core_microbench", &results) {
        Ok(path) => println!("bench report written to {path}"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
