//! Large-N route-state residency and flap cost for the tree-only matrix.
//!
//! The ROADMAP's acceptance target for the tree-only routing layer: route
//! state (matrix trees + sharded table) for **100k endpoints over ≤1k
//! locations resident in under 1 GB**, and a single-link flap whose wall
//! time is proportional to the affected source trees — flat in total
//! endpoint count and within 3× of the 15 µs the loaded-emulator flap cost
//! at 4096 pipes before this change.
//!
//! Two measurements, both against the counting global allocator (bytes
//! measured, not estimated):
//!
//! * `residency` — a 512-location ring (64 routers × 8 clients), 100 000
//!   endpoints multiplexed over it: the allocator delta across
//!   `RoutingMatrix::build` + `RouteTable::build` is the resident route
//!   state. The matrix contributes one predecessor + distance row pair per
//!   location (O(locations × nodes)); the table one deduped row shard per
//!   location (O(locations × endpoints)); nothing is O(endpoints²).
//! * `flap_<n>_vns` — the reconfiguration path on disjoint 2-hop duplex
//!   path pairs at 1024/2048/4096 pairs (4096/8192/16384 pipes, one
//!   endpoint per VN): one full flap (fail both directions of a used link,
//!   `update_pipes` + `rewire_in_place`, restore, again). The per-pipe
//!   reverse index bounds the recompute to the trees that crossed the
//!   pipe, so the cost must stay flat as the total VN count quadruples.
//! * `flap_multiplexed_<n>_endpoints` — the same 1024-pair flap with 16×
//!   endpoints multiplexed onto the 2048 locations. Tree recomputation
//!   stays constant, and because row shards are indexed by destination
//!   location column (co-located endpoints share a column and a row
//!   allocation), the patch cost is one column write per changed location
//!   pair — not O(row length). Asserted, no longer informational: the
//!   multiplexed flap must stay within the same 45 µs acceptance bound
//!   as the unmultiplexed flap (it measured ~96 µs before column-indexed
//!   rows).
//!
//! `shape_holds` in `BENCH_matrix.json` asserts: resident bytes under
//! 1 GiB, the 8192-VN flap within 3× of the 2048-VN flap (flat in VN
//! count), the 2048-VN (4096-pipe) flap itself within the 45 µs
//! (3 × 15 µs) acceptance bound, and the 16×-multiplexed flap within
//! that same absolute bound.

use std::time::Instant;

use mn_distill::{distill, DistillationMode, DistilledTopology, PipeId};
use mn_routing::{RouteTable, RoutingMatrix};
use mn_topology::generators::{path_pairs_topology, ring_topology, PathPairsParams, RingParams};
use mn_topology::NodeId;
use mn_util::{DataRate, SimDuration};

#[global_allocator]
static ALLOC: mn_util::alloc::CountingAlloc = mn_util::alloc::CountingAlloc;

/// Endpoints resident in the residency measurement.
const RESIDENCY_ENDPOINTS: usize = 100_000;
/// The 1 GiB residency acceptance bound.
const RESIDENCY_BOUND: u64 = 1 << 30;
/// Acceptance bound on the 4096-pipe flap (3 × the pre-change 15 µs).
const FLAP_BOUND_NS: f64 = 45_000.0;

/// One full flap of both directions of a link: fail, update + rewire,
/// restore, update + rewire.
fn flap_once(
    matrix: &mut RoutingMatrix,
    table: &mut RouteTable,
    d: &mut DistilledTopology,
    locations: &[NodeId],
    victims: &[PipeId; 2],
    original: &[mn_distill::PipeAttrs; 2],
) -> usize {
    let mut recomputed = 0;
    for &p in victims {
        d.pipe_attrs_mut(p).unwrap().bandwidth = DataRate::ZERO;
    }
    let down = matrix.update_pipes(d, victims);
    recomputed += down.recomputed_sources;
    if !down.is_empty() {
        table.rewire_in_place(matrix, locations, &down.changed_pairs);
    }
    for (&p, &attrs) in victims.iter().zip(original) {
        *d.pipe_attrs_mut(p).unwrap() = attrs;
    }
    let up = matrix.update_pipes(d, victims);
    recomputed += up.recomputed_sources;
    if !up.is_empty() {
        table.rewire_in_place(matrix, locations, &up.changed_pairs);
    }
    recomputed
}

fn main() {
    if criterion::invoked_as_test() {
        return;
    }
    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    let mut mem_rows: Vec<(String, u64)> = Vec::new();

    // ---- Residency: 100k endpoints over 512 ring locations. ----
    let topo = ring_topology(&RingParams {
        routers: 64,
        clients_per_router: 8,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let before = mn_util::alloc::bytes_in_use();
    let matrix = RoutingMatrix::build(&d);
    let matrix_bytes = mn_util::alloc::bytes_in_use() - before;
    let base = d.vns().to_vec();
    let locations: Vec<NodeId> = (0..RESIDENCY_ENDPOINTS)
        .map(|i| base[i % base.len()])
        .collect();
    let table = RouteTable::build(&matrix, &locations);
    let route_state = mn_util::alloc::bytes_in_use() - before;
    let accounting = table.memory();
    mem_rows.push((
        format!("matrix_tree_bytes_{}_locations", base.len()),
        matrix_bytes as u64,
    ));
    mem_rows.push((
        format!("route_state_alloc_bytes_{RESIDENCY_ENDPOINTS}_endpoints"),
        route_state as u64,
    ));
    mem_rows.push((
        format!("table_resident_bytes_{RESIDENCY_ENDPOINTS}_endpoints"),
        accounting.resident_bytes as u64,
    ));
    mem_rows.push((
        format!("table_dense_bytes_{RESIDENCY_ENDPOINTS}_endpoints"),
        accounting.dense_equivalent_bytes as u64,
    ));
    let residency_ok = (route_state as u64) < RESIDENCY_BOUND;
    println!(
        "route state: {} endpoints over {} locations resident in {:.1} MiB \
         (matrix trees {:.1} MiB, bound {} MiB) — {}",
        RESIDENCY_ENDPOINTS,
        base.len(),
        route_state as f64 / (1 << 20) as f64,
        matrix_bytes as f64 / (1 << 20) as f64,
        RESIDENCY_BOUND >> 20,
        if residency_ok { "ok" } else { "OVER BUDGET" }
    );
    drop(table);
    drop(matrix);

    // ---- Flap cost, flat in total VN count. ----
    let mut flap_means: Vec<(usize, f64)> = Vec::new();
    let mut mult_mean = f64::INFINITY;
    for (pairs, mult, label) in [
        (1024usize, 1usize, "vns"),
        (2048, 1, "vns"),
        (4096, 1, "vns"),
        (1024, 16, "multiplexed endpoints"),
    ] {
        let (topo, endpoints) = path_pairs_topology(&PathPairsParams {
            pairs,
            hops: 2,
            bandwidth: DataRate::from_mbps(100),
            end_to_end_latency: SimDuration::from_millis(8),
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut matrix = RoutingMatrix::build(&d);
        let base = d.vns().to_vec();
        let n = base.len() * mult;
        let locations: Vec<NodeId> = (0..n).map(|i| base[i % base.len()]).collect();
        let mut table = RouteTable::build(&matrix, &locations);
        let victims = {
            let first = matrix
                .lookup(endpoints[0].0, endpoints[0].1)
                .expect("pair 0 routes")
                .pipes[0];
            let reverse = {
                let p = d.pipe(first);
                d.find_pipe(p.dst, p.src).expect("duplex link")
            };
            [first, reverse]
        };
        let original = [d.pipe(victims[0]).attrs, d.pipe(victims[1]).attrs];
        let mut recomputed = 0;
        for _ in 0..16 {
            recomputed = flap_once(
                &mut matrix,
                &mut table,
                &mut d,
                &locations,
                &victims,
                &original,
            );
        }
        let iters = 512u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(flap_once(
                &mut matrix,
                &mut table,
                &mut d,
                &locations,
                &victims,
                &original,
            ));
        }
        let mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
        let series = if mult == 1 {
            format!("flap_{n}_vns")
        } else {
            format!("flap_multiplexed_{n}_endpoints")
        };
        println!(
            "{series}: {mean_ns:>10.0} ns/flap at {} pipes \
             ({recomputed} trees recomputed per flap, {n} {label})",
            d.pipe_count()
        );
        rows.push((series, mean_ns, iters));
        if mult == 1 {
            flap_means.push((n, mean_ns));
        } else {
            mult_mean = mean_ns;
        }
    }
    let flat_ok = flap_means.last().unwrap().1 <= 3.0 * flap_means[0].1;
    let bound_ok = flap_means[0].1 <= FLAP_BOUND_NS;
    // The multiplexed flap is held to the same absolute acceptance bound
    // as the unmultiplexed one: with column-indexed rows it costs a few
    // column writes more (measured 1–3× a ~1.5 µs flap, too noisy a ratio
    // to gate on), while the O(row length) patching it replaced measured
    // ~96 µs — far past the bound, so a regression still trips the gate.
    let mult_ok = mult_mean <= FLAP_BOUND_NS;
    println!(
        "flap cost grows {:.2}x across a 4x VN increase (flat wants <= 3), \
         4096-pipe flap {:.1} us (bound {:.0} us), \
         16x-multiplexed flap {:.1} us (same bound; {:.2}x the unmultiplexed)",
        flap_means.last().unwrap().1 / flap_means[0].1,
        flap_means[0].1 / 1000.0,
        FLAP_BOUND_NS / 1000.0,
        mult_mean / 1000.0,
        mult_mean / flap_means[0].1
    );

    let shape_holds = residency_ok && flat_ok && bound_ok && mult_ok;
    let mut report = mn_bench::report::Report::new("matrix", shape_holds);
    for (bench, mean_ns, iters) in &rows {
        report = report.with_series(bench.clone(), vec![(*iters as f64, *mean_ns)]);
    }
    for (label, bytes) in &mem_rows {
        report = report.with_series(format!("mem/{label}"), vec![(1.0, *bytes as f64)]);
    }
    match report.write_json("BENCH_matrix") {
        Ok(path) => println!("bench report written to {path} (shape_holds: {shape_holds})"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
