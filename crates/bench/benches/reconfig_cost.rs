//! Reconfiguration cost: what a 1-link flap costs while the emulation is
//! loaded (the dynamics tentpole's figure of merit).
//!
//! The workload is 1024 disjoint 2-hop duplex paths — 4096 directed pipes —
//! warmed so (nearly) every pipe holds an in-flight descriptor. Three
//! operations are measured against that state:
//!
//! * `flap_incremental` — fail one link (both directions) and restore it,
//!   each step through [`MultiCoreEmulator::reroute`]: only the affected
//!   source trees are recomputed and only the changed pairs re-wired, with
//!   every untouched `RouteId` (and in-flight descriptor) preserved.
//! * `flap_scratch` — the same flap through the pre-dynamics path: a full
//!   `RoutingMatrix::build` (one Dijkstra per VN) plus
//!   [`MultiCoreEmulator::set_routing`]'s total route-table rebuild, per
//!   step. This is what every reconfiguration used to cost.
//! * `renegotiate_in_place` — a pure bandwidth renegotiation (no routing
//!   impact): two `update_pipe_attrs` calls, the dynamics engine's hot
//!   operation.
//!
//! A run writes `BENCH_reconfig.json` via `mn_bench::report`; CI uploads it
//! with the other bench artifacts.

use criterion::{criterion_group, Criterion};

use mn_assign::{Binding, BindingParams, PipeOwnershipDirectory};
use mn_distill::{distill, DistillationMode, DistilledTopology, PipeAttrs};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{path_pairs_topology, PathPairsParams};
use mn_topology::NodeId;
use mn_util::{DataRate, SimDuration, SimTime};

const PAIRS: usize = 1024; // 2 hops duplex => 4096 directed pipes

fn udp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: 1000,
            seq: id,
        },
        now,
    )
}

/// Builds the loaded emulator: 4096 pipes with an in-flight descriptor in
/// (nearly) every one, plus the mutable pipe graph and the flap victim.
fn loaded_emulator() -> (
    MultiCoreEmulator,
    DistilledTopology,
    [mn_distill::PipeId; 2],
    usize,
) {
    let (topo, pairs) = path_pairs_topology(&PathPairsParams {
        pairs: PAIRS,
        hops: 2,
        bandwidth: DataRate::from_mbps(100),
        end_to_end_latency: SimDuration::from_millis(8),
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
    let pod = PipeOwnershipDirectory::single_core(d.pipe_count());
    let mut emu = MultiCoreEmulator::new(
        &d,
        pod,
        matrix,
        &binding,
        HardwareProfile::unconstrained(),
        7,
    );
    let endpoint = |node: NodeId| binding.vn_at(node).expect("endpoint bound");
    // Two waves: wave A advances onto the second hop of every path, wave B
    // then occupies the first hops — every pipe ends up with an in-flight
    // descriptor parked in it.
    let mut id = 0u64;
    for &(a, b) in &pairs {
        for (src, dst) in [(a, b), (b, a)] {
            let _ = emu.submit(
                SimTime::ZERO,
                udp_packet(id, endpoint(src), endpoint(dst), SimTime::ZERO),
            );
            id += 1;
        }
    }
    let mid = SimTime::from_millis(5); // first hop exits at ~4 ms + tx
    let _ = emu.advance(mid);
    for &(a, b) in &pairs {
        for (src, dst) in [(a, b), (b, a)] {
            let _ = emu.submit(mid, udp_packet(id, endpoint(src), endpoint(dst), mid));
            id += 1;
        }
    }
    let pending: usize = emu.cores().iter().map(|c| c.in_flight()).sum();
    // The flap victim: both directions of pair 0's first link.
    let route = emu
        .route_table()
        .route_id(endpoint(pairs[0].0).index(), endpoint(pairs[0].1).index())
        .expect("pair 0 routes");
    let first = emu.route_table().pipes(route)[0];
    let reverse = {
        let p = d.pipe(first);
        d.find_pipe(p.dst, p.src).expect("duplex link")
    };
    (emu, d, [first, reverse], pending)
}

fn bench_reconfig(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig_cost");
    {
        let (mut emu, mut d, victims, pending) = loaded_emulator();
        assert!(pending >= PAIRS * 3, "warm state holds {pending} in flight");
        let original = [d.pipe(victims[0]).attrs, d.pipe(victims[1]).attrs];
        group.bench_function("flap_incremental_4096_pipes", |b| {
            b.iter(|| {
                for &p in &victims {
                    d.pipe_attrs_mut(p).unwrap().bandwidth = DataRate::ZERO;
                }
                let down = emu.reroute(&d, &victims);
                for (&p, &attrs) in victims.iter().zip(&original) {
                    *d.pipe_attrs_mut(p).unwrap() = attrs;
                }
                let up = emu.reroute(&d, &victims);
                std::hint::black_box((down, up));
            })
        });
    }
    {
        let (mut emu, mut d, victims, _) = loaded_emulator();
        let original = [d.pipe(victims[0]).attrs, d.pipe(victims[1]).attrs];
        group.bench_function("flap_scratch_4096_pipes", |b| {
            b.iter(|| {
                for &p in &victims {
                    d.pipe_attrs_mut(p).unwrap().bandwidth = DataRate::ZERO;
                }
                emu.set_routing(RoutingMatrix::build(&d));
                for (&p, &attrs) in victims.iter().zip(&original) {
                    *d.pipe_attrs_mut(p).unwrap() = attrs;
                }
                emu.set_routing(RoutingMatrix::build(&d));
            })
        });
    }
    {
        let (mut emu, d, victims, _) = loaded_emulator();
        let base = d.pipe(victims[0]).attrs;
        let slow = PipeAttrs {
            bandwidth: base.bandwidth.mul_f64(0.5),
            ..base
        };
        group.bench_function("renegotiate_in_place_4096_pipes", |b| {
            b.iter(|| {
                std::hint::black_box(emu.update_pipe_attrs(victims[0], slow));
                std::hint::black_box(emu.update_pipe_attrs(victims[0], base));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconfig);

fn main() {
    if criterion::invoked_as_test() {
        return;
    }
    let results = benches();
    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    let mut by_name = std::collections::HashMap::new();
    for r in &results {
        by_name.insert(r.name.clone(), r.mean_ns);
        rows.push((r.name.clone(), r.mean_ns, r.iters));
        println!("{:<44} {:>14.0} ns/iter", r.name, r.mean_ns);
    }
    if let (Some(&incremental), Some(&scratch)) = (
        by_name.get("reconfig_cost/flap_incremental_4096_pipes"),
        by_name.get("reconfig_cost/flap_scratch_4096_pipes"),
    ) {
        println!(
            "incremental flap is {:.1}x cheaper than a from-scratch rebuild",
            scratch / incremental
        );
    }
    match mn_bench::report::write_bench_json("reconfig", &rows) {
        Ok(path) => println!("bench report written to {path}"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
