//! Reconfiguration cost: what a 1-link flap costs while the emulation is
//! loaded (the dynamics tentpole's figure of merit), across endpoint
//! scales, plus the route-state memory footprint of the sharded
//! copy-on-write table.
//!
//! The workload is N disjoint 2-hop duplex paths — 4N directed pipes —
//! warmed so (nearly) every pipe holds an in-flight descriptor. Against
//! that state we measure, at 4096 / 8192 / 16384 pipes:
//!
//! * `flap_incremental_<pipes>_pipes` — fail one link (both directions) and
//!   restore it, each step through [`MultiCoreEmulator::reroute`]: only the
//!   affected source trees are recomputed, only the changed row shards are
//!   re-published (copy-on-write), and every untouched `RouteId` (and
//!   in-flight descriptor) is preserved. With the sharded table the cost of
//!   a fixed-fanout change should grow (well) sub-linearly in endpoints.
//! * `flap_scratch_4096_pipes` — the same flap through the pre-dynamics
//!   path: a full `RoutingMatrix::build` (one Dijkstra per VN) plus
//!   [`MultiCoreEmulator::set_routing`]'s total rebuild, per step.
//! * `renegotiate_in_place_4096_pipes` — a pure bandwidth renegotiation (no
//!   routing impact): two `update_pipe_attrs` calls, the dynamics engine's
//!   hot operation.
//!
//! The bench binary installs `mn_util::alloc::CountingAlloc`, so memory is
//! measured, not estimated: each scale records the route-state resident
//! bytes (vs the dense `endpoints² × 4` pair table it replaced) and the
//! bytes allocated by one warm flap (the "bytes copied per flap" column —
//! formerly a ~16 MB memcpy at 2048 endpoints). A separate 16384-endpoint
//! row multiplexes 128 locations to pin the ≥10× memory claim at the
//! paper's tens-of-thousands-of-VNs scale. A run writes
//! `BENCH_reconfig.json` via `mn_bench::report`; CI uploads it with the
//! other bench artifacts.

use std::sync::Mutex;

use criterion::{criterion_group, Criterion};

use mn_assign::{Binding, BindingParams, PipeOwnershipDirectory};
use mn_distill::{distill, DistillationMode, DistilledTopology, PipeAttrs};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
use mn_routing::{RouteTable, RoutingMatrix};
use mn_topology::generators::{path_pairs_topology, ring_topology, PathPairsParams, RingParams};
use mn_topology::NodeId;
use mn_util::{DataRate, SimDuration, SimTime};

#[global_allocator]
static ALLOC: mn_util::alloc::CountingAlloc = mn_util::alloc::CountingAlloc;

/// Path-pair scales measured: 1024/2048/4096 pairs = 4096/8192/16384
/// directed pipes = 2048/4096/8192 endpoints.
const FLAP_PAIRS: [usize; 3] = [1024, 2048, 4096];

/// Memory rows collected while the benches run, drained by `main` into the
/// JSON artifact.
static MEM_ROWS: Mutex<Vec<(String, u64)>> = Mutex::new(Vec::new());

fn record_mem(label: impl Into<String>, bytes: u64) {
    MEM_ROWS.lock().unwrap().push((label.into(), bytes));
}

fn udp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: 1000,
            seq: id,
        },
        now,
    )
}

/// Builds the loaded emulator: `pairs` disjoint 2-hop duplex paths
/// (4×`pairs` directed pipes) with an in-flight descriptor in (nearly)
/// every pipe, plus the mutable pipe graph and the flap victim.
fn loaded_emulator(
    pairs: usize,
) -> (
    MultiCoreEmulator,
    DistilledTopology,
    [mn_distill::PipeId; 2],
    usize,
) {
    let (topo, endpoints) = path_pairs_topology(&PathPairsParams {
        pairs,
        hops: 2,
        bandwidth: DataRate::from_mbps(100),
        end_to_end_latency: SimDuration::from_millis(8),
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
    let pod = PipeOwnershipDirectory::single_core(d.pipe_count());
    let mut emu = MultiCoreEmulator::new(
        &d,
        pod,
        matrix,
        &binding,
        HardwareProfile::unconstrained(),
        7,
    );
    let endpoint = |node: NodeId| binding.vn_at(node).expect("endpoint bound");
    // Two waves: wave A advances onto the second hop of every path, wave B
    // then occupies the first hops — every pipe ends up with an in-flight
    // descriptor parked in it.
    let mut id = 0u64;
    for &(a, b) in &endpoints {
        for (src, dst) in [(a, b), (b, a)] {
            let _ = emu.submit(
                SimTime::ZERO,
                udp_packet(id, endpoint(src), endpoint(dst), SimTime::ZERO),
            );
            id += 1;
        }
    }
    let mid = SimTime::from_millis(5); // first hop exits at ~4 ms + tx
    let _ = emu.advance(mid);
    for &(a, b) in &endpoints {
        for (src, dst) in [(a, b), (b, a)] {
            let _ = emu.submit(mid, udp_packet(id, endpoint(src), endpoint(dst), mid));
            id += 1;
        }
    }
    let pending: usize = emu.cores().iter().map(|c| c.in_flight()).sum();
    // The flap victim: both directions of pair 0's first link.
    let route = emu
        .route_table()
        .route_id(
            endpoint(endpoints[0].0).index(),
            endpoint(endpoints[0].1).index(),
        )
        .expect("pair 0 routes");
    let first = emu.route_table().pipes(route)[0];
    let reverse = {
        let p = d.pipe(first);
        d.find_pipe(p.dst, p.src).expect("duplex link")
    };
    (emu, d, [first, reverse], pending)
}

/// One full flap: fail both victim directions, reroute, restore, reroute.
fn flap_once(
    emu: &mut MultiCoreEmulator,
    d: &mut DistilledTopology,
    victims: &[mn_distill::PipeId; 2],
    original: &[PipeAttrs; 2],
) {
    for &p in victims {
        d.pipe_attrs_mut(p).unwrap().bandwidth = DataRate::ZERO;
    }
    let down = emu.reroute(d, victims);
    for (&p, &attrs) in victims.iter().zip(original) {
        *d.pipe_attrs_mut(p).unwrap() = attrs;
    }
    let up = emu.reroute(d, victims);
    std::hint::black_box((down, up));
}

fn bench_reconfig(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconfig_cost");
    for pairs in FLAP_PAIRS {
        let pipes = pairs * 4;
        let (mut emu, mut d, victims, pending) = loaded_emulator(pairs);
        assert!(pending >= pairs * 3, "warm state holds {pending} in flight");
        let original = [d.pipe(victims[0]).attrs, d.pipe(victims[1]).attrs];
        group.bench_function(&format!("flap_incremental_{pipes}_pipes"), |b| {
            b.iter(|| flap_once(&mut emu, &mut d, &victims, &original))
        });
        // Warm memory columns: resident route state vs the dense pair table
        // it replaced, and the bytes one flap allocates (the copy-on-write
        // publish plus the incremental matrix update) — measured by the
        // counting allocator after the timed loop warmed every buffer.
        let n = emu.route_table().endpoint_count();
        let mem = emu.route_table().memory();
        record_mem(
            format!("route_state_resident_bytes_{n}_endpoints"),
            mem.resident_bytes as u64,
        );
        record_mem(
            format!("route_state_dense_bytes_{n}_endpoints"),
            mem.dense_equivalent_bytes as u64,
        );
        let before = mn_util::alloc::total_allocated_bytes();
        flap_once(&mut emu, &mut d, &victims, &original);
        record_mem(
            format!("flap_alloc_bytes_{pipes}_pipes"),
            mn_util::alloc::total_allocated_bytes() - before,
        );
    }
    {
        let (mut emu, mut d, victims, _) = loaded_emulator(FLAP_PAIRS[0]);
        let original = [d.pipe(victims[0]).attrs, d.pipe(victims[1]).attrs];
        group.bench_function("flap_scratch_4096_pipes", |b| {
            b.iter(|| {
                for &p in &victims {
                    d.pipe_attrs_mut(p).unwrap().bandwidth = DataRate::ZERO;
                }
                emu.set_routing(RoutingMatrix::build(&d));
                for (&p, &attrs) in victims.iter().zip(&original) {
                    *d.pipe_attrs_mut(p).unwrap() = attrs;
                }
                emu.set_routing(RoutingMatrix::build(&d));
            })
        });
    }
    {
        let (mut emu, d, victims, _) = loaded_emulator(FLAP_PAIRS[0]);
        let base = d.pipe(victims[0]).attrs;
        let slow = PipeAttrs {
            bandwidth: base.bandwidth.mul_f64(0.5),
            ..base
        };
        group.bench_function("renegotiate_in_place_4096_pipes", |b| {
            b.iter(|| {
                std::hint::black_box(emu.update_pipe_attrs(victims[0], slow));
                std::hint::black_box(emu.update_pipe_attrs(victims[0], base));
            })
        });
    }
    group.finish();

    // Route-state memory trajectory at the paper's scale and beyond:
    // 16384 / 32768 / 65536 endpoints multiplexed over 128 ring locations
    // (the tens-of-thousands-of-VNs configuration). Co-located endpoints
    // share one row shard, so the resident footprint is
    // O(locations × endpoints) — measured both by the allocator (bytes the
    // build actually took) and by the table's own accounting — against the
    // dense endpoint² pair table (1 GiB already at 16384). The tree-only
    // matrix rides along: one predecessor + distance row pair per location
    // VN, flat in endpoint count, recorded per scale so the sub-quadratic
    // claim is a trajectory rather than a one-off number.
    let topo = ring_topology(&RingParams {
        routers: 128,
        clients_per_router: 1,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let base = d.vns().to_vec();
    for endpoints in [16384usize, 32768, 65536] {
        let locations: Vec<NodeId> = (0..endpoints).map(|i| base[i % base.len()]).collect();
        let before = mn_util::alloc::bytes_in_use();
        let table = RouteTable::build(&matrix, &locations);
        let built = mn_util::alloc::bytes_in_use() - before;
        let mem = table.memory();
        record_mem(
            format!("route_state_alloc_bytes_{endpoints}_endpoints"),
            built as u64,
        );
        record_mem(
            format!("route_state_resident_bytes_{endpoints}_endpoints"),
            mem.resident_bytes as u64,
        );
        record_mem(
            format!("route_state_dense_bytes_{endpoints}_endpoints"),
            mem.dense_equivalent_bytes as u64,
        );
        record_mem(
            format!("matrix_tree_bytes_{endpoints}_endpoints"),
            matrix.memory_bytes() as u64,
        );
        assert_eq!(mem.distinct_row_allocations, 128, "one shard per location");
        std::hint::black_box(table);
    }
}

criterion_group!(benches, bench_reconfig);

fn main() {
    if criterion::invoked_as_test() {
        return;
    }
    let results = benches();
    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    let mut by_name = std::collections::HashMap::new();
    for r in &results {
        by_name.insert(r.name.clone(), r.mean_ns);
        rows.push((r.name.clone(), r.mean_ns, r.iters));
        println!("{:<44} {:>14.0} ns/iter", r.name, r.mean_ns);
    }
    let mem_rows = std::mem::take(&mut *MEM_ROWS.lock().unwrap());
    let mem = |label: &str| {
        mem_rows
            .iter()
            .find(|(l, _)| l == label)
            .map(|&(_, bytes)| bytes)
    };
    for (label, bytes) in &mem_rows {
        println!("{label:<44} {bytes:>14} bytes");
    }
    if let (Some(&incremental), Some(&scratch)) = (
        by_name.get("reconfig_cost/flap_incremental_4096_pipes"),
        by_name.get("reconfig_cost/flap_scratch_4096_pipes"),
    ) {
        println!(
            "incremental flap is {:.1}x cheaper than a from-scratch rebuild",
            scratch / incremental
        );
    }
    if let (Some(&small), Some(&large)) = (
        by_name.get("reconfig_cost/flap_incremental_4096_pipes"),
        by_name.get("reconfig_cost/flap_incremental_16384_pipes"),
    ) {
        println!(
            "flap cost grows {:.2}x across a 4x endpoint-count increase \
             (sub-linear wants < 4)",
            large / small
        );
    }
    if let (Some(resident), Some(dense)) = (
        mem("route_state_alloc_bytes_16384_endpoints"),
        mem("route_state_dense_bytes_16384_endpoints"),
    ) {
        println!(
            "route state at 16384 endpoints: {:.1} MiB resident vs {:.1} MiB dense ({:.0}x smaller)",
            resident as f64 / (1 << 20) as f64,
            dense as f64 / (1 << 20) as f64,
            dense as f64 / resident.max(1) as f64
        );
    }
    match mn_bench::report::write_bench_json_with_memory("reconfig", &rows, &mem_rows) {
        Ok(path) => println!("bench report written to {path}"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
