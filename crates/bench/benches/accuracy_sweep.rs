//! The accuracy–scalability continuum, measured end to end.
//!
//! Runs the same foreground workload (bounded TCP transfers between random
//! VN pairs on the paper's ring) under hop-by-hop emulation — the ground
//! truth — and under each distilled configuration across compensation
//! loads, then lets `mn_distill::autodistill` pick the cheapest
//! configuration fitting a ≤5% per-flow delivery-time error budget.
//!
//! `shape_holds` in `BENCH_accuracy.json` gates the acceptance criteria:
//! the walk-in-2 self-check reproduces the ground truth exactly, the error
//! table is complete, and the auto-distiller's choice fits the budget with
//! ≥5× fewer pipes than hop-by-hop (the workload-pruned end-to-end mesh).

use mn_bench::accuracy_sweep::{render, run, shape_holds};
use mn_bench::Scale;

fn main() {
    if criterion::invoked_as_test() {
        return;
    }

    let scale = Scale::from_args();
    let sweep = run(scale);
    print!("{}", render(&sweep));

    let holds = shape_holds(&sweep);
    let mut report = mn_bench::report::Report::new("accuracy", holds);
    // One error curve per configuration: x = compensation load, y = mean
    // per-flow delivery-time error (%).
    let mut labels: Vec<&str> = sweep.points.iter().map(|p| p.label.as_str()).collect();
    labels.dedup();
    for label in labels {
        let series: Vec<(f64, f64)> = sweep
            .points
            .iter()
            .filter(|p| p.label == label)
            .map(|p| (p.load, p.mean_error * 100.0))
            .collect();
        report = report.with_series(format!("error_pct/{label}"), series);
        let pipes = sweep
            .points
            .iter()
            .find(|p| p.label == label)
            .map(|p| p.undirected_pipes as f64)
            .unwrap_or(0.0);
        report = report.with_series(format!("pipes/{label}"), vec![(0.0, pipes)]);
    }
    let choice = &sweep.choice;
    report = report
        .with_series("pipes/hop-by-hop", vec![(0.0, sweep.hop_pipes as f64)])
        .with_series(
            "autodistill_pipes_vs_error_pct",
            vec![(
                choice.config.undirected_pipes as f64,
                choice.measured_error * 100.0,
            )],
        )
        .with_series(
            "autodistill_pipe_reduction_x",
            vec![(
                0.0,
                sweep.hop_pipes as f64 / choice.config.undirected_pipes.max(1) as f64,
            )],
        );
    match report.write_json("BENCH_accuracy") {
        Ok(path) => println!("bench report written to {path} (shape_holds: {holds})"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
