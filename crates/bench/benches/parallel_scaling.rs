//! Parallel-backend scaling: sequential vs. 1/2/4-thread execution of the
//! same cross-core-light workload (the axis of the paper's Table 1).
//!
//! The workload is `PAIRS` disjoint `HOPS`-hop paths whose pipes are partitioned so
//! every path lives entirely on one core: zero tunnelled descriptors, the
//! best case for parallel speed-up (the paper's "0% cross-core traffic"
//! row). Each measured iteration pumps a fixed packet batch through the
//! emulation and drains it; the figure of merit is aggregate wall-clock
//! throughput (packets per second of host time).
//!
//! Besides the human-readable table, a run writes
//! `BENCH_parallel_scaling.json` via `mn_bench::report` so CI archives the
//! scaling trajectory PR over PR. Interpret the numbers against the host:
//! on a single-CPU runner the worker threads time-share one core and the
//! threaded backend can only add coordination overhead; the ≥1.5× step at
//! 4 threads appears on hosts with ≥4 free CPUs.

use criterion::{criterion_group, Criterion};

use mn_assign::{Binding, BindingParams, CoreId, PipeOwnershipDirectory};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator, ParallelEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{path_pairs_topology, PathPairsParams};
use mn_util::{DataRate, SimDuration, SimTime};
use modelnet::EmulatorBackend;

const PAIRS: usize = 128;
const HOPS: usize = 8;
/// Packets pumped per measured iteration.
const PACKETS_PER_ITER: u64 = 8192;
/// Submissions between scheduler advances while pumping. Larger batches
/// raise the compute-to-coordination ratio, which is the steady state the
/// threaded backend targets (many pipes due per 100 µs tick).
const SUBMITS_PER_ADVANCE: u64 = 256;

struct Workload {
    distilled: mn_distill::DistilledTopology,
    matrix: RoutingMatrix,
    binding: Binding,
    endpoints: Vec<(VnId, VnId)>,
    owners: Vec<CoreId>,
}

/// Builds the shared workload plus a crossing-free pipe partition: every
/// pair's forward and reverse pipes are owned by core `pair % cores`.
fn build_workload(cores: usize) -> Workload {
    let (topo, pairs) = path_pairs_topology(&PathPairsParams {
        pairs: PAIRS,
        hops: HOPS,
        bandwidth: DataRate::from_mbps(100),
        end_to_end_latency: SimDuration::from_millis(8),
    });
    let distilled = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&distilled);
    let binding = Binding::bind(distilled.vns(), &BindingParams::new(4, cores));
    let endpoints: Vec<(VnId, VnId)> = pairs
        .iter()
        .map(|&(a, b)| {
            (
                binding.vn_at(a).expect("sender bound"),
                binding.vn_at(b).expect("receiver bound"),
            )
        })
        .collect();
    // Assign each disjoint path's pipes (both directions) to one core.
    let mut owners = vec![CoreId(0); distilled.pipe_count()];
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let core = CoreId(i % cores);
        for (src, dst) in [(a, b), (b, a)] {
            let route = matrix.lookup(src, dst).expect("disjoint path routes");
            for &pipe in &route.pipes {
                owners[pipe.index()] = core;
            }
        }
    }
    Workload {
        distilled,
        matrix,
        binding,
        endpoints,
        owners,
    }
}

fn udp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: 1000,
            seq: id,
        },
        now,
    )
}

/// One measured iteration: pump `PACKETS_PER_ITER` packets round-robin over
/// the pairs, advancing every `SUBMITS_PER_ADVANCE` submits, then drain to
/// idle. Dispatch goes through [`EmulatorBackend`] — the same abstraction
/// the Runner uses, so there is one pump loop rather than one per backend —
/// and submission uses the batch API (the bulk-driver fast path: pipelined
/// ring round trips instead of one blocking round trip per packet).
/// Virtual time is monotonic across measured iterations (a fresh batch must
/// never land "in the past" of a warm emulator's pipes), so `pump` starts
/// at `start` and returns the drained end time for the next iteration.
fn pump(
    emu: &mut EmulatorBackend,
    scratch: &mut Vec<mn_emucore::Delivery>,
    endpoints: &[(VnId, VnId)],
    start: SimTime,
) -> (u64, SimTime) {
    fn drain_step(
        emu: &mut EmulatorBackend,
        scratch: &mut Vec<mn_emucore::Delivery>,
        now: SimTime,
    ) -> u64 {
        scratch.clear();
        emu.advance_into(now, scratch).unwrap();
        scratch.len() as u64
    }
    let mut delivered = 0u64;
    let mut batch = Vec::with_capacity(SUBMITS_PER_ADVANCE as usize);
    let mut outcomes = Vec::with_capacity(SUBMITS_PER_ADVANCE as usize);
    for i in 0..PACKETS_PER_ITER {
        let now = start + SimDuration::from_micros(i * 2);
        let (src, dst) = endpoints[i as usize % endpoints.len()];
        batch.push((now, udp_packet(i, src, dst, now)));
        if i % SUBMITS_PER_ADVANCE == SUBMITS_PER_ADVANCE - 1 {
            outcomes.clear();
            emu.submit_batch(std::mem::take(&mut batch), &mut outcomes)
                .unwrap();
            batch.reserve(SUBMITS_PER_ADVANCE as usize);
            delivered += drain_step(emu, scratch, now);
        }
    }
    let mut now = start + SimDuration::from_micros(PACKETS_PER_ITER * 2);
    for _ in 0..1_000_000 {
        let Some(t) = emu.next_wakeup() else { break };
        now = now.max(t);
        delivered += drain_step(emu, scratch, now);
    }
    (delivered, now)
}

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    // Sequential reference at 4 cooperating cores (same partition the
    // 4-thread backend uses).
    {
        let w = build_workload(4);
        let pod = PipeOwnershipDirectory::from_owners(w.owners.clone(), 4);
        let mut emu = EmulatorBackend::Sequential(MultiCoreEmulator::new(
            &w.distilled,
            pod,
            w.matrix.clone(),
            &w.binding,
            HardwareProfile::unconstrained(),
            7,
        ));
        let endpoints = w.endpoints.clone();
        let mut scratch = Vec::new();
        let mut clock = SimTime::ZERO;
        group.bench_function("sequential_4core", |b| {
            b.iter(|| {
                let (delivered, end) = pump(&mut emu, &mut scratch, &endpoints, clock);
                clock = end;
                assert_eq!(delivered, PACKETS_PER_ITER, "no packet may vanish");
            })
        });
    }
    for threads in [1usize, 2, 4] {
        let w = build_workload(threads);
        let pod = PipeOwnershipDirectory::from_owners(w.owners.clone(), threads);
        let mut emu = EmulatorBackend::Threaded(ParallelEmulator::new(
            &w.distilled,
            pod,
            w.matrix.clone(),
            &w.binding,
            HardwareProfile::unconstrained(),
            7,
        ));
        let endpoints = w.endpoints.clone();
        let mut scratch = Vec::new();
        let mut clock = SimTime::ZERO;
        group.bench_function(&format!("threaded_{threads}"), |b| {
            b.iter(|| {
                let (delivered, end) = pump(&mut emu, &mut scratch, &endpoints, clock);
                clock = end;
                assert_eq!(delivered, PACKETS_PER_ITER, "no packet may vanish");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);

fn main() {
    if criterion::invoked_as_test() {
        return;
    }
    let results = benches();
    // Aggregate throughput per configuration, plus the scaling ratios the
    // acceptance gate reads (threaded_N vs threaded_1, and vs the
    // sequential 4-core reference).
    let throughput = |mean_ns: f64| PACKETS_PER_ITER as f64 * 1e9 / mean_ns;
    let mut rows: Vec<(String, f64, u64)> = Vec::new();
    let mut by_name = std::collections::HashMap::new();
    for r in &results {
        by_name.insert(r.name.clone(), r.mean_ns);
        rows.push((r.name.clone(), r.mean_ns, r.iters));
        println!(
            "{:<40} {:>12.0} ns/iter {:>12.0} pkts/s",
            r.name,
            r.mean_ns,
            throughput(r.mean_ns)
        );
    }
    if let (Some(&t1), Some(&t4)) = (
        by_name.get("parallel_scaling/threaded_1"),
        by_name.get("parallel_scaling/threaded_4"),
    ) {
        println!("threaded 4-vs-1 speedup: {:.2}x", t1 / t4);
        rows.push((
            "parallel_scaling/speedup_4v1_x1000".to_string(),
            t1 / t4 * 1000.0,
            1,
        ));
    }
    let mut speedup_vs_sequential = None;
    if let (Some(&seq), Some(&t4)) = (
        by_name.get("parallel_scaling/sequential_4core"),
        by_name.get("parallel_scaling/threaded_4"),
    ) {
        println!("threaded-4 vs sequential speedup: {:.2}x", seq / t4);
        speedup_vs_sequential = Some(seq / t4);
        rows.push((
            "parallel_scaling/speedup_4vseq_x1000".to_string(),
            seq / t4 * 1000.0,
            1,
        ));
    }
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    println!("host parallelism: {cpus} CPUs available");
    // The acceptance criterion for the threaded backend — ≥1.5× aggregate
    // throughput at 4 threads on a cross-core-light workload — is only
    // evaluable on a host with ≥4 CPUs; `shape_holds` records it
    // machine-readably so a multi-core CI run that regresses is visible in
    // the artifact (on smaller hosts the criterion is marked as holding
    // vacuously, with a note on stdout).
    let shape_holds = if cpus >= 4 {
        let met = speedup_vs_sequential.is_some_and(|s| s >= 1.5);
        if !met {
            println!(
                "WARNING: threaded_4 did not reach the 1.5x target on a \
                 {cpus}-CPU host (got {:.2}x)",
                speedup_vs_sequential.unwrap_or(0.0)
            );
        }
        met
    } else {
        println!(
            "note: the 1.5x @ 4-thread scaling target needs >=4 CPUs; \
             this {cpus}-CPU host only measures coordination overhead"
        );
        true
    };
    let mut report = mn_bench::report::Report::new("parallel_scaling", shape_holds);
    for (bench, mean_ns, iters) in &rows {
        report = report.with_series(bench.clone(), vec![(*iters as f64, *mean_ns)]);
    }
    match report.write_json("BENCH_parallel_scaling") {
        Ok(path) => println!("bench report written to {path}"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
