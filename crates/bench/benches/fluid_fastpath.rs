//! Hybrid fluid/packet fast path: flash-crowd throughput vs. pure packet.
//!
//! The hybrid model's reason to exist is scale: a flash crowd of a million
//! bulk clients is far beyond what per-packet emulation can schedule, but
//! as fluid flows it costs one fair-share solve per rate epoch regardless
//! of how many packets the modelled traffic stands for. This bench pins
//! that claim with two measured runs on the same 10 Gb/s star:
//!
//! * `packet_events_per_sec` — a pure-packet run: UDP foreground pumped
//!   through the warmed single-core emulator, drained to idle. Events are
//!   pipe transits (each delivered packet crosses two spokes); the rate is
//!   events per second of *host* time — the hardware-limited ceiling the
//!   paper's Figure 4 measures.
//! * `hybrid_events_per_sec` — the same emulator with 64 fluid flows
//!   standing in for 1 048 576 bulk clients (16 384 each) saturating
//!   disjoint spoke pairs, plus the same style of packet foreground on
//!   VNs the crowd does not touch. Events are the foreground's pipe
//!   transits plus the *equivalent* transits of the modelled traffic:
//!   `fluid_modelled_bytes` (already integrated per pipe crossed) divided
//!   by an MTU-sized packet — the packets a pure-packet run would have had
//!   to schedule to carry the same bytes.
//!
//! `shape_holds` in `BENCH_fluid.json` asserts the ISSUE's acceptance
//! criteria: the hybrid run models **≥ 1M clients** and sustains an
//! equivalent event rate **≥ 50×** the pure-packet rate. The bit-identity
//! and zero-allocation halves of the acceptance bar live in
//! `tests/differential.rs` and `tests/steady_state_alloc.rs`.

use std::time::Instant;

use mn_assign::{Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{star_topology, StarParams};
use mn_util::{DataRate, SimDuration, SimTime};

/// Star clients: 64 disjoint crowd pairs plus a packet-only foreground set.
const CLIENTS: usize = 160;
/// VNs `[0, 64)` send to `[64, 128)` as the crowd; `[128, 160)` carry the
/// packet foreground in both runs.
const CROWD_PAIRS: usize = 64;
/// Modelled clients behind each fluid flow (64 × 16 384 = 1 048 576 total).
const CLIENTS_PER_FLOW: u32 = 16_384;
/// Aggregate demand per crowd flow: 9 of the spoke's 10 Gb/s, leaving the
/// packet path a measurable residual even where a crowd flow is present.
const FLOW_DEMAND_GBPS: u64 = 9;
/// Foreground submissions per measured run.
const FOREGROUND_PACKETS: u64 = 100_000;
/// Foreground submit cadence (one packet per 20 µs of virtual time).
const CADENCE_NS: u64 = 20_000;
/// Pipe transits per delivered packet on the star (two spokes).
const HOPS: u64 = 2;
/// The pure-packet equivalent of one modelled MTU of fluid bytes.
const MTU_BYTES: u64 = 1_500;
/// Acceptance: hybrid equivalent event rate vs. pure packet.
const SPEEDUP_BOUND: f64 = 50.0;
/// Acceptance: modelled flash-crowd size.
const CLIENT_BOUND: u64 = 1_000_000;

fn udp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Udp,
        },
        TransportHeader::Udp {
            payload_len: 1000,
            seq: id,
        },
        now,
    )
}

fn build_emulator() -> (MultiCoreEmulator, Vec<VnId>) {
    let topo = star_topology(&StarParams {
        clients: CLIENTS,
        spoke_bandwidth: DataRate::from_gbps(10),
        ..StarParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let matrix = RoutingMatrix::build(&d);
    let binding = Binding::bind(d.vns(), &BindingParams::new(4, 1));
    let vns: Vec<VnId> = d
        .vns()
        .iter()
        .map(|&n| binding.vn_at(n).expect("client bound"))
        .collect();
    let emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    (emu, vns)
}

/// Pumps the packet foreground over VNs `[128, 160)` — `FOREGROUND_PACKETS`
/// submissions on the virtual cadence from `from`, advancing every 8 — then
/// drains to quiescence in fixed 10 ms virtual steps (a wakeup chase would
/// never terminate while fluid epochs recur). Virtual time is monotonic
/// across runs on a warm emulator, so the drained end time is returned for
/// the next run along with delivered packets and wall seconds.
fn run_foreground(emu: &mut MultiCoreEmulator, vns: &[VnId], from: SimTime) -> (u64, f64, SimTime) {
    let fg = &vns[CROWD_PAIRS * 2..];
    let mut deliveries = Vec::new();
    let mut delivered = 0u64;
    let start = Instant::now();
    let mut now = from;
    for i in 0..FOREGROUND_PACKETS {
        now = from + SimDuration::from_nanos(i * CADENCE_NS);
        let src = fg[i as usize % fg.len()];
        let dst = fg[(i as usize + 7) % fg.len()];
        let _ = emu.submit(now, udp_packet(i, src, dst, now));
        if i % 8 == 7 {
            deliveries.clear();
            emu.advance_into(now, &mut deliveries);
            delivered += deliveries.len() as u64;
        }
    }
    for _ in 0..1_000 {
        if delivered == FOREGROUND_PACKETS {
            break;
        }
        now += SimDuration::from_millis(10);
        deliveries.clear();
        emu.advance_into(now, &mut deliveries);
        delivered += deliveries.len() as u64;
    }
    (delivered, start.elapsed().as_secs_f64(), now)
}

fn main() {
    if criterion::invoked_as_test() {
        return;
    }

    // ---- Pure packet: the hardware-limited event-rate ceiling. ----
    let (mut emu, vns) = build_emulator();
    // Warm buffers outside the measured window, as the alloc guard does.
    let (warm, _, clock) = run_foreground(&mut emu, &vns, SimTime::ZERO);
    assert_eq!(warm, FOREGROUND_PACKETS, "warm-up must drain");
    let (delivered, packet_secs, _) = run_foreground(&mut emu, &vns, clock);
    assert_eq!(delivered, FOREGROUND_PACKETS, "no packet may vanish");
    let packet_events = delivered * HOPS;
    let packet_rate = packet_events as f64 / packet_secs;

    // ---- Hybrid: the same foreground over a million-client crowd. ----
    let (mut emu, vns) = build_emulator();
    for i in 0..CROWD_PAIRS {
        assert!(emu.add_fluid_flow(
            i as u64,
            vns[i],
            vns[CROWD_PAIRS + i],
            DataRate::from_gbps(FLOW_DEMAND_GBPS),
            CLIENTS_PER_FLOW,
            SimTime::ZERO,
        ));
    }
    let modelled_clients = emu.fluid().modelled_clients();
    let (warm, _, clock) = run_foreground(&mut emu, &vns, SimTime::ZERO);
    assert_eq!(warm, FOREGROUND_PACKETS, "warm-up must drain");
    let fluid_bytes_before = emu.total_stats().fluid_modelled_bytes;
    let (delivered, hybrid_secs, _) = run_foreground(&mut emu, &vns, clock);
    assert_eq!(
        delivered, FOREGROUND_PACKETS,
        "residual must carry the foreground"
    );
    let fluid_bytes = emu.total_stats().fluid_modelled_bytes - fluid_bytes_before;
    let hybrid_events = delivered * HOPS + fluid_bytes / MTU_BYTES;
    let hybrid_rate = hybrid_events as f64 / hybrid_secs;

    let speedup = hybrid_rate / packet_rate;
    let clients_ok = modelled_clients >= CLIENT_BOUND;
    let speedup_ok = speedup >= SPEEDUP_BOUND;
    println!(
        "pure packet: {packet_events} pipe transits in {packet_secs:.3} s \
         ({packet_rate:.3e} events/s)"
    );
    println!(
        "hybrid: {} foreground transits + {:.1} GiB fluid-modelled \
         ({} equivalent transits) in {hybrid_secs:.3} s ({hybrid_rate:.3e} events/s)",
        delivered * HOPS,
        fluid_bytes as f64 / (1u64 << 30) as f64,
        fluid_bytes / MTU_BYTES,
    );
    println!(
        "hybrid models {modelled_clients} bulk clients (wants >= {CLIENT_BOUND}) at \
         {speedup:.0}x the pure-packet event rate (wants >= {SPEEDUP_BOUND:.0}) — {}",
        if clients_ok && speedup_ok {
            "ok"
        } else {
            "UNDER TARGET"
        }
    );

    let shape_holds = clients_ok && speedup_ok;
    let report = mn_bench::report::Report::new("fluid", shape_holds)
        .with_series("packet_events_per_sec", vec![(1.0, packet_rate)])
        .with_series("hybrid_events_per_sec", vec![(1.0, hybrid_rate)])
        .with_series("speedup_x", vec![(1.0, speedup)])
        .with_series("modelled_clients", vec![(1.0, modelled_clients as f64)]);
    match report.write_json("BENCH_fluid") {
        Ok(path) => println!("bench report written to {path} (shape_holds: {shape_holds})"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
