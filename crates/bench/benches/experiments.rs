//! Criterion wrappers around reduced-scale versions of the paper's
//! experiments, so `cargo bench` exercises every table/figure regenerator and
//! tracks the wall-clock cost of the emulation itself. The full regenerators
//! (with `--full` for paper dimensions) live in `src/bin/`.

use criterion::{criterion_group, criterion_main, Criterion};

use mn_bench::{accuracy, fig4_capacity, fig6_multiplexing, Scale};

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig4_capacity_point", |b| {
        b.iter(|| std::hint::black_box(fig4_capacity::smoke_point()))
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig6_multiplexing_quick", |b| {
        b.iter(|| std::hint::black_box(fig6_multiplexing::run(Scale::Quick)))
    });
    group.finish();
}

fn bench_accuracy(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("baseline_accuracy_quick", |b| {
        b.iter(|| std::hint::black_box(accuracy::run(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4, bench_fig6, bench_accuracy);
criterion_main!(benches);
