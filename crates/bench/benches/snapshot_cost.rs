//! Checkpoint/restore cost at scale: serialization time, snapshot size,
//! restore time, and the zero-alloc steady state surviving a restore.
//!
//! A checkpoint is only a viable crash-recovery policy if taking one is
//! cheap relative to the emulation it protects and restoring one does not
//! degrade the emulator it rebuilds. This bench pins both halves on warmed
//! single-core emulators of 4 096 and 16 384 VNs carrying live traffic:
//!
//! * `checkpoint_ms` / `snapshot_bytes` — wall time (best of 5) to
//!   serialize the complete emulator state and the framed size of the
//!   result, per VN count.
//! * `restore_ms` — wall time to rebuild a fresh emulator from the framed
//!   bytes (parse + checksum + full state reconstruction).
//! * `steady_allocs_after_restore` — allocator calls in a 20 000-iteration
//!   submit/advance window on the *restored* emulator after re-warm-up.
//!
//! `shape_holds` in `BENCH_snapshot.json` asserts the ISSUE's acceptance
//! criteria: the restored emulator re-serializes to the exact original
//! bytes at every size (restore loses nothing), and the steady-state window
//! after a restore performs **zero** allocations (the rebuilt emulator is
//! as warm-capable as the original — restore does not trade away the
//! steady-state guarantee pinned by `tests/steady_state_alloc.rs`).

use std::time::Instant;

use mn_assign::{Binding, BindingParams};
use mn_distill::{distill, DistillationMode};
use mn_emucore::{EmulatorSnapshot, HardwareProfile, MultiCoreEmulator};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_routing::RoutingMatrix;
use mn_topology::generators::{ring_topology, RingParams};
use mn_topology::NodeId;
use mn_util::alloc::thread_alloc_calls;
use mn_util::SimTime;

#[global_allocator]
static ALLOC: mn_util::alloc::CountingAlloc = mn_util::alloc::CountingAlloc;

/// Emulated VN counts to measure (the ISSUE's two scale points).
const SIZES: [usize; 2] = [4_096, 16_384];
/// Submit/advance iterations to warm an emulator before any measurement.
const WARM_ITERS: u64 = 20_000;
/// Iterations in the post-restore steady-state allocation window.
const MEASURE_ITERS: u64 = 20_000;
/// Snapshot repetitions; the best (minimum) wall time is reported.
const SNAP_REPS: usize = 5;

fn tcp_packet(id: u64, src: VnId, dst: VnId, now: SimTime) -> Packet {
    Packet::new(
        PacketId(id),
        FlowKey {
            src,
            dst,
            src_port: 1000,
            dst_port: 2000,
            protocol: Protocol::Tcp,
        },
        TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            // Small payloads keep pipes below line rate so queue depths (and
            // their backing buffers) settle during warm-up.
            payload_len: 200,
            flags: TcpFlags::ACK,
            window: 65535,
        },
        now,
    )
}

/// Builds a single-core emulator with `vns_total` VNs multiplexed over the
/// 512 client locations of a 64-router ring (the same shape the churn and
/// residency benches sweep): VN count is the scaling axis, the physical
/// topology — and hence the route state — stays fixed.
fn build(vns_total: usize) -> (MultiCoreEmulator, Vec<VnId>) {
    let topo = ring_topology(&RingParams {
        routers: 64,
        clients_per_router: 8,
        ..RingParams::default()
    });
    let d = distill(&topo, DistillationMode::HopByHop);
    let base: Vec<NodeId> = d.vns().to_vec();
    let locations: Vec<NodeId> = (0..vns_total).map(|i| base[i % base.len()]).collect();
    let binding = Binding::bind(&locations, &BindingParams::new(4, 1));
    let matrix = RoutingMatrix::build(&d);
    let emu =
        MultiCoreEmulator::single_core(&d, matrix, &binding, HardwareProfile::unconstrained(), 7);
    let vns: Vec<VnId> = binding.vns().collect();
    (emu, vns)
}

/// Drives `iters` submit/advance cycles from index `start` on a
/// wheel-aligned cadence (16.384 µs, an exact divisor of the 2^17 ns slot
/// width) so buffer high-water marks saturate during warm-up — the same
/// cadence `tests/steady_state_alloc.rs` uses to pin the zero-alloc
/// guarantee this bench re-checks across a restore.
fn drive(
    emu: &mut MultiCoreEmulator,
    vns: &[VnId],
    deliveries: &mut Vec<mn_emucore::Delivery>,
    start: u64,
    iters: u64,
) -> u64 {
    const CADENCE_NS: u64 = 1 << 14;
    let mut delivered = 0;
    for i in start..start + iters {
        let now = SimTime::from_nanos(i * CADENCE_NS);
        let src = vns[i as usize % vns.len()];
        let dst = vns[(i as usize + 7) % vns.len()];
        let _ = emu.submit(now, tcp_packet(i, src, dst, now));
        if i % 8 == 0 {
            deliveries.clear();
            emu.advance_into(now, deliveries);
            delivered += deliveries.len() as u64;
        }
    }
    delivered
}

fn main() {
    if criterion::invoked_as_test() {
        return;
    }

    let mut checkpoint_ms = Vec::new();
    let mut snapshot_bytes = Vec::new();
    let mut restore_ms = Vec::new();
    let mut steady_allocs = Vec::new();
    let mut shape_holds = true;

    for &clients in &SIZES {
        let (mut emu, vns) = build(clients);
        let mut deliveries: Vec<mn_emucore::Delivery> = Vec::new();
        let delivered = drive(&mut emu, &vns, &mut deliveries, 0, WARM_ITERS);
        assert!(delivered > 0, "warm-up must move traffic");

        // Checkpoint: serialize the live emulator, best of SNAP_REPS.
        let mut snap_secs = f64::MAX;
        let mut bytes = Vec::new();
        for _ in 0..SNAP_REPS {
            let t = Instant::now();
            let snap = emu.snapshot();
            let framed = snap.to_bytes();
            snap_secs = snap_secs.min(t.elapsed().as_secs_f64());
            bytes = framed;
        }

        // Restore: parse + checksum + rebuild, best of SNAP_REPS.
        let mut rest_secs = f64::MAX;
        let mut restored = None;
        for _ in 0..SNAP_REPS {
            let t = Instant::now();
            let snap = EmulatorSnapshot::from_bytes(&bytes).expect("framing parses");
            let emu = MultiCoreEmulator::restore(&snap).expect("state reconstructs");
            rest_secs = rest_secs.min(t.elapsed().as_secs_f64());
            restored = Some(emu);
        }
        let mut restored = restored.expect("at least one restore ran");

        // Fidelity: the restored emulator re-serializes to the exact bytes.
        let identical = restored.snapshot().to_bytes() == bytes;

        // Steady state across the restore: re-warm (restore drops scratch
        // buffers by design — they hold no state), then a measured window
        // must allocate nothing.
        drive(&mut restored, &vns, &mut deliveries, WARM_ITERS, WARM_ITERS);
        let before = thread_alloc_calls();
        drive(
            &mut restored,
            &vns,
            &mut deliveries,
            2 * WARM_ITERS,
            MEASURE_ITERS,
        );
        let allocs = thread_alloc_calls() - before;

        println!(
            "{clients} VNs: checkpoint {:.2} ms ({} bytes), restore {:.2} ms, \
             re-snapshot identical: {identical}, steady-state allocs after \
             restore: {allocs}",
            snap_secs * 1e3,
            bytes.len(),
            rest_secs * 1e3,
        );
        shape_holds &= identical && allocs == 0;
        checkpoint_ms.push((clients as f64, snap_secs * 1e3));
        snapshot_bytes.push((clients as f64, bytes.len() as f64));
        restore_ms.push((clients as f64, rest_secs * 1e3));
        steady_allocs.push((clients as f64, allocs as f64));
    }

    println!("shape {}", if shape_holds { "ok" } else { "VIOLATED" });
    let report = mn_bench::report::Report::new("snapshot", shape_holds)
        .with_series("checkpoint_ms", checkpoint_ms)
        .with_series("snapshot_bytes", snapshot_bytes)
        .with_series("restore_ms", restore_ms)
        .with_series("steady_allocs_after_restore", steady_allocs);
    match report.write_json("BENCH_snapshot") {
        Ok(path) => println!("bench report written to {path} (shape_holds: {shape_holds})"),
        Err(err) => eprintln!("could not write bench report: {err}"),
    }
}
