//! The experiment builder: Create → Distill → Assign → Bind in one call.
//!
//! [`Experiment`] takes the target topology produced by the Create phase and
//! walks the remaining pipeline with sensible defaults, yielding a
//! [`Runner`] ready for the Run phase. Every knob the paper exposes is a
//! builder method: the distillation mode, the number of core and edge nodes,
//! the hardware profile of the cores, and the TCP configuration of the edge
//! stacks.

use std::fmt;

use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode, DistilledTopology};
use mn_emucore::{HardwareProfile, MultiCoreEmulator, ParallelEmulator};
use mn_routing::RoutingMatrix;
use mn_topology::Topology;
use mn_transport::TcpConfig;

use crate::runner::{EmulatorBackend, ExecutionBackend, Runner};

/// Errors raised while building an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The target topology has no client nodes to bind VNs to.
    NoClients,
    /// The target topology is not connected, so some VN pairs have no route.
    Disconnected,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::NoClients => {
                write!(f, "target topology has no client nodes to host VNs")
            }
            ExperimentError::Disconnected => {
                write!(f, "target topology is not connected")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Builder for a complete emulation.
#[derive(Debug, Clone)]
pub struct Experiment {
    topology: Topology,
    distillation: DistillationMode,
    cores: usize,
    edge_nodes: usize,
    profile: HardwareProfile,
    tcp: TcpConfig,
    seed: u64,
    require_connected: bool,
    backend: ExecutionBackend,
    affinity_base: Option<usize>,
    schedule: Option<mn_dynamics::Schedule>,
    fluid_epoch: Option<mn_util::SimDuration>,
    compensation: Option<f64>,
    workload_pairs: Option<Vec<(mn_topology::NodeId, mn_topology::NodeId)>>,
}

impl Experiment {
    /// Starts an experiment from a Create-phase topology.
    pub fn new(topology: Topology) -> Self {
        Experiment {
            topology,
            distillation: DistillationMode::HopByHop,
            cores: 1,
            edge_nodes: 1,
            profile: HardwareProfile::paper_core(),
            tcp: TcpConfig::default(),
            seed: 1,
            require_connected: true,
            backend: ExecutionBackend::Sequential,
            affinity_base: None,
            schedule: None,
            fluid_epoch: None,
            compensation: None,
            workload_pairs: None,
        }
    }

    /// Declares the VN pairs the foreground workload will use. Only
    /// [`DistillationMode::EndToEnd`] consumes this today: the all-pairs
    /// mesh is pruned to exactly these pairs
    /// ([`mn_distill::distill_end_to_end_pairs`]), which is what lets
    /// end-to-end distillation undercut even hop-by-hop's pipe count. Flows
    /// between undeclared pairs have no route in the pruned graph.
    pub fn workload_pairs(
        mut self,
        pairs: Vec<(mn_topology::NodeId, mn_topology::NodeId)>,
    ) -> Self {
        self.workload_pairs = Some(pairs);
        self
    }

    /// Installs distillation compensation (§4.1 of the paper: "background
    /// CBR cross traffic on distilled pipes"): every pipe standing in for
    /// `k > 1` target links gets a fixed background demand of
    /// `bandwidth × load × (k − 1) / k`, restoring the interior contention
    /// the collapsed hops would have imposed at the assumed utilisation
    /// `load ∈ [0, 1]`.
    ///
    /// The rates are derived with [`mn_distill::compensation_rates`] at build
    /// time and installed in pipe-id order through the fluid (flow-level)
    /// background-demand slot of each pipe — no packets are synthesised, so
    /// the compensation path allocates nothing at steady state and both
    /// execution backends stay bit-identical. A hop-by-hop distillation has
    /// no collapsed pipes, making this a no-op there.
    pub fn compensation(mut self, load: f64) -> Self {
        self.compensation = Some(load);
        self
    }

    /// Sets the cadence at which fluid (flow-level) fair shares are
    /// re-solved while bulk flows are live (default: 2^23 ns ≈ 8.4 ms, a
    /// whole number of timer-wheel slots). The cadence is rounded down to
    /// wheel-slot granularity so epoch deadlines stay on the slot grid.
    /// Shorter epochs track transients more closely; longer epochs cost
    /// less.
    pub fn fluid_epoch(mut self, epoch: mn_util::SimDuration) -> Self {
        self.fluid_epoch = Some(epoch);
        self
    }

    /// Installs a runtime reconfiguration schedule: link failures and
    /// recoveries, bandwidth/latency renegotiation, node churn and CBR
    /// cross-traffic changes are applied mid-run at their scheduled virtual
    /// times, without restarting the experiment. Both execution backends
    /// apply the same schedule identically (bit-for-bit deliveries).
    pub fn with_schedule(mut self, schedule: mn_dynamics::Schedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Chooses the execution backend (default: sequential). Both backends
    /// produce bit-identical emulation results; [`ExecutionBackend::Threaded`]
    /// runs every core on its own OS thread.
    pub fn backend(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for `backend(ExecutionBackend::Threaded)`.
    pub fn threaded(self) -> Self {
        self.backend(ExecutionBackend::Threaded)
    }

    /// Suggests pinning core `i`'s execution thread to host CPU `base + i`
    /// (advisory; recorded in the binding and in worker thread names).
    pub fn affinity_base(mut self, base: usize) -> Self {
        self.affinity_base = Some(base);
        self
    }

    /// Chooses the distillation mode (default: hop-by-hop).
    pub fn distillation(mut self, mode: DistillationMode) -> Self {
        self.distillation = mode;
        self
    }

    /// Number of emulation core nodes (default: 1).
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Number of physical edge nodes hosting VNs (default: 1).
    pub fn edge_nodes(mut self, edges: usize) -> Self {
        self.edge_nodes = edges.max(1);
        self
    }

    /// Hardware profile of the core nodes (default: the paper's testbed).
    pub fn hardware(mut self, profile: HardwareProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Removes every hardware ceiling — useful when an experiment studies the
    /// emulated network rather than core capacity.
    pub fn unconstrained_hardware(mut self) -> Self {
        self.profile = HardwareProfile::unconstrained();
        self
    }

    /// TCP configuration used by every edge stack (default: Reno with a
    /// 1460-byte MSS and 64 KB windows).
    pub fn tcp_config(mut self, tcp: TcpConfig) -> Self {
        self.tcp = tcp;
        self
    }

    /// Seed for every random decision in the experiment.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Allows disconnected target topologies (by default they are rejected,
    /// since most experiments expect all-pairs reachability).
    pub fn allow_disconnected(mut self) -> Self {
        self.require_connected = false;
        self
    }

    /// The target topology (Create-phase output) this experiment will use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs Distill + Assign + Bind, returning the Runner for the Run phase.
    pub fn build(self) -> Result<Runner, ExperimentError> {
        let (runner, _) = self.build_with_distilled()?;
        Ok(runner)
    }

    /// Like [`Experiment::build`], but also hands back the distilled pipe
    /// graph for callers that want to inspect or perturb it (the dynamic
    /// network-change machinery needs it).
    pub fn build_with_distilled(mut self) -> Result<(Runner, DistilledTopology), ExperimentError> {
        if self.topology.client_count() == 0 {
            return Err(ExperimentError::NoClients);
        }
        let schedule = self.schedule.take();
        if self.require_connected && !self.topology.is_connected() {
            return Err(ExperimentError::Disconnected);
        }
        // Distill.
        let distilled = match (&self.workload_pairs, self.distillation) {
            (Some(pairs), DistillationMode::EndToEnd) => {
                mn_distill::distill_end_to_end_pairs(&self.topology, pairs)
            }
            _ => distill(&self.topology, self.distillation),
        };
        // Assign.
        let pod = greedy_k_clusters(&distilled, self.cores, self.seed);
        // Bind.
        let matrix = RoutingMatrix::build(&distilled);
        let mut params = BindingParams::new(self.edge_nodes, self.cores);
        if let Some(base) = self.affinity_base {
            params = params.with_affinity_base(base);
        }
        let binding = Binding::bind(distilled.vns(), &params);
        // Run-phase driver on the selected execution backend.
        let mut backend = match self.backend {
            ExecutionBackend::Sequential => EmulatorBackend::Sequential(MultiCoreEmulator::new(
                &distilled,
                pod,
                matrix,
                &binding,
                self.profile,
                self.seed,
            )),
            ExecutionBackend::Threaded => EmulatorBackend::Threaded(ParallelEmulator::new(
                &distilled,
                pod,
                matrix,
                &binding,
                self.profile,
                self.seed,
            )),
        };
        if let Some(epoch) = self.fluid_epoch {
            backend.set_fluid_epoch(epoch);
        }
        if let Some(load) = self.compensation {
            // Pipe-id order on both backends: the fluid solver allocates
            // fixed-rate background demands in installation order, so the
            // order is part of the deterministic contract.
            for (pipe, rate) in mn_distill::compensation_rates(&distilled, load) {
                backend.set_pipe_compensation(pipe, Some(rate), mn_util::SimTime::ZERO);
            }
        }
        let mut runner = Runner::with_backend(backend, binding, self.tcp);
        if let Some(schedule) = schedule {
            runner.install_schedule(mn_dynamics::ScheduleEngine::new(
                distilled.clone(),
                schedule,
            ));
        }
        Ok((runner, distilled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topology::generators::{ring_topology, RingParams};
    use mn_topology::NodeKind;

    fn small_ring() -> Topology {
        ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        })
    }

    #[test]
    fn build_walks_all_phases() {
        let runner = Experiment::new(small_ring())
            .distillation(DistillationMode::LAST_MILE)
            .cores(2)
            .edge_nodes(4)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(runner.vn_ids().len(), 8);
        assert_eq!(runner.emulator().core_count(), 2);
        assert_eq!(runner.binding().edge_count(), 4);
    }

    #[test]
    fn build_with_distilled_exposes_the_pipe_graph() {
        let (_, distilled) = Experiment::new(small_ring())
            .distillation(DistillationMode::EndToEnd)
            .build_with_distilled()
            .unwrap();
        assert_eq!(distilled.undirected_pipe_count(), 8 * 7 / 2);
    }

    #[test]
    fn workload_pairs_prune_the_end_to_end_mesh_and_still_run() {
        use mn_util::{ByteSize, SimDuration, SimTime};
        let topo = small_ring();
        let clients: Vec<mn_topology::NodeId> = topo.client_nodes().collect();
        let pairs = vec![(clients[0], clients[4]), (clients[2], clients[6])];
        let (mut runner, distilled) = Experiment::new(topo)
            .distillation(DistillationMode::EndToEnd)
            .workload_pairs(pairs.clone())
            .edge_nodes(2)
            .seed(5)
            .build_with_distilled()
            .unwrap();
        assert_eq!(distilled.undirected_pipe_count(), pairs.len());
        let src = runner.binding().vn_at(pairs[0].0).unwrap();
        let dst = runner.binding().vn_at(pairs[0].1).unwrap();
        let f = runner.add_bulk_flow(src, dst, Some(ByteSize::from_kb(64)), SimTime::ZERO);
        runner.run_for(SimDuration::from_secs(4)).unwrap();
        assert!(
            runner.flow_completed_at(f).is_some(),
            "a declared pair's flow runs over its pruned pipe"
        );
    }

    #[test]
    fn compensation_load_shapes_goodput_on_collapsed_pipes() {
        use mn_util::{ByteSize, SimDuration, SimTime};
        // The same bounded transfer over an end-to-end collapsed pipe takes
        // strictly longer once compensation claims part of the pipe, and
        // compensation on a hop-by-hop graph (nothing collapsed) is a no-op.
        let complete = |mode: DistillationMode, load: Option<f64>| {
            let mut exp = Experiment::new(small_ring())
                .distillation(mode)
                .edge_nodes(2)
                .unconstrained_hardware()
                .seed(11);
            if let Some(load) = load {
                exp = exp.compensation(load);
            }
            let mut runner = exp.build().unwrap();
            let vns = runner.vn_ids();
            let f =
                runner.add_bulk_flow(vns[0], vns[4], Some(ByteSize::from_kb(256)), SimTime::ZERO);
            runner.run_for(SimDuration::from_secs(30)).unwrap();
            runner.flow_completed_at(f).expect("transfer completes")
        };
        let free = complete(DistillationMode::EndToEnd, None);
        let zero = complete(DistillationMode::EndToEnd, Some(0.0));
        let loaded = complete(DistillationMode::EndToEnd, Some(0.6));
        assert_eq!(free, zero, "zero load installs nothing");
        assert!(loaded > free, "compensation slows the collapsed pipe");
        let hop_free = complete(DistillationMode::HopByHop, None);
        let hop_loaded = complete(DistillationMode::HopByHop, Some(0.6));
        assert_eq!(hop_free, hop_loaded, "nothing collapsed, nothing to do");
    }

    #[test]
    fn threaded_backend_matches_sequential_end_to_end() {
        use mn_util::{ByteSize, SimDuration, SimTime};
        // The whole run phase — TCP dynamics included — must be
        // bit-identical across backends: any divergence in delivery order
        // or timing would cascade through congestion control and change
        // the flow results.
        let run = |backend: ExecutionBackend| {
            let mut runner = Experiment::new(small_ring())
                .distillation(DistillationMode::HopByHop)
                .cores(2)
                .edge_nodes(4)
                .seed(9)
                .backend(backend)
                .build()
                .unwrap();
            let vns = runner.vn_ids();
            let f1 =
                runner.add_bulk_flow(vns[0], vns[4], Some(ByteSize::from_kb(96)), SimTime::ZERO);
            let f2 = runner.add_bulk_flow(vns[2], vns[6], None, SimTime::from_millis(50));
            runner.run_for(SimDuration::from_secs(4)).unwrap();
            (
                runner.flow_completed_at(f1),
                runner.flow_bytes_acked(f1),
                runner.flow_bytes_acked(f2),
                runner.packets_delivered(),
                runner.backend().total_stats(),
            )
        };
        let sequential = run(ExecutionBackend::Sequential);
        let threaded = run(ExecutionBackend::Threaded);
        assert!(sequential.0.is_some(), "the bounded flow completes");
        assert_eq!(sequential, threaded);
    }

    #[test]
    fn scheduled_dynamics_are_bit_identical_across_backends_and_core_counts() {
        // The acceptance bar for runtime reconfiguration: a schedule with
        // three link failures/recoveries plus a CBR cross-traffic episode,
        // driven through the full Runner (TCP dynamics included), produces
        // bit-identical results on the sequential and threaded backends at
        // 1, 2 and 4 cores.
        use mn_util::{ByteSize, DataRate, SimDuration, SimTime};
        let topo = small_ring();
        // Identify the ring (router-to-router) duplex pipes from an
        // identical distillation to the one the experiment will run.
        let d = distill(&topo, DistillationMode::HopByHop);
        let ring_pipes: Vec<(mn_distill::PipeId, mn_distill::PipeId)> = d
            .pipes()
            .filter(|(_, p)| {
                !d.vns().contains(&p.src) && !d.vns().contains(&p.dst) && p.src < p.dst
            })
            .map(|(id, p)| (id, d.find_pipe(p.dst, p.src).expect("duplex")))
            .collect();
        assert!(ring_pipes.len() >= 3, "a 4-router ring has 4 ring links");
        let t = SimTime::from_millis;
        let schedule = || {
            let cbr =
                mn_pipe::CbrConfig::new(DataRate::from_mbps(1), mn_util::ByteSize::from_bytes(700));
            mn_dynamics::Schedule::new()
                .duplex_down(t(500), ring_pipes[0].0, ring_pipes[0].1)
                .duplex_up(t(1500), ring_pipes[0].0, ring_pipes[0].1)
                .duplex_down(t(2000), ring_pipes[1].0, ring_pipes[1].1)
                .duplex_up(t(3000), ring_pipes[1].0, ring_pipes[1].1)
                .duplex_down(t(3500), ring_pipes[2].0, ring_pipes[2].1)
                .duplex_up(t(4500), ring_pipes[2].0, ring_pipes[2].1)
                .cbr_start(t(1000), ring_pipes[3].0, cbr)
                .cbr_stop(t(4000), ring_pipes[3].0)
        };
        let run = |backend: ExecutionBackend, cores: usize| {
            let mut runner = Experiment::new(small_ring())
                .distillation(DistillationMode::HopByHop)
                .cores(cores)
                .edge_nodes(4)
                .unconstrained_hardware()
                .seed(13)
                .backend(backend)
                .with_schedule(schedule())
                .build()
                .unwrap();
            let vns = runner.vn_ids();
            let f1 =
                runner.add_bulk_flow(vns[0], vns[4], Some(ByteSize::from_kb(128)), SimTime::ZERO);
            let f2 = runner.add_bulk_flow(vns[2], vns[6], None, SimTime::from_millis(100));
            let udp = runner.add_udp_flow(
                vns[1],
                vns[5],
                mn_transport::UdpStreamConfig {
                    payload: 500,
                    rate: DataRate::from_kbps(400),
                    max_datagrams: Some(2000),
                },
                SimTime::ZERO,
            );
            runner.run_for(SimDuration::from_secs(6)).unwrap();
            let engine = runner.dynamics().expect("schedule installed");
            assert!(engine.finished(), "all events applied by t=6s");
            (
                runner.flow_completed_at(f1),
                runner.flow_bytes_acked(f1),
                runner.flow_bytes_acked(f2),
                runner.flow_retransmissions(f2),
                runner.udp_flow_received(udp),
                runner.packets_delivered(),
                runner.backend().total_stats(),
            )
        };
        for cores in [1usize, 2, 4] {
            let sequential = run(ExecutionBackend::Sequential, cores);
            let threaded = run(ExecutionBackend::Threaded, cores);
            assert_eq!(sequential, threaded, "{cores}-core runs diverge");
            assert!(sequential.6.cbr_injected > 0, "CBR episode ran");
            assert!(sequential.1 > 0, "traffic flowed through the dynamics");
        }
    }

    #[test]
    fn schedule_survives_link_loss_and_recovers_throughput() {
        // Behavioural check on top of bit-identity: a failover schedule on
        // a dumbbell with two parallel bottlenecks degrades a flow while
        // its path is down and recovers it afterwards.
        use mn_util::{DataRate, SimDuration, SimTime};
        // a - r1 - b  (fast) and a - r2 - b (slow detour).
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        let r1 = topo.add_node(NodeKind::Stub);
        let r2 = topo.add_node(NodeKind::Stub);
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let slow = mn_topology::LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(4));
        topo.add_link(a, r1, fast).unwrap();
        topo.add_link(
            r1,
            b,
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(2)),
        )
        .unwrap();
        topo.add_link(a, r2, slow).unwrap();
        topo.add_link(
            r2,
            b,
            mn_topology::LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(8)),
        )
        .unwrap();
        let d = distill(&topo, DistillationMode::HopByHop);
        let fwd = d.find_pipe(a, r1).unwrap();
        let rev = d.find_pipe(r1, a).unwrap();
        let schedule = mn_dynamics::Schedule::new()
            .duplex_down(SimTime::from_secs(4), fwd, rev)
            .duplex_up(SimTime::from_secs(8), fwd, rev);
        let mut runner = Experiment::new(topo)
            .distillation(DistillationMode::HopByHop)
            .cores(1)
            .edge_nodes(2)
            .unconstrained_hardware()
            .seed(3)
            .with_schedule(schedule)
            .build()
            .unwrap();
        let binding = runner.binding().clone();
        let src = binding.vn_at(a).unwrap();
        let dst = binding.vn_at(b).unwrap();
        let flow = runner.add_bulk_flow(src, dst, None, SimTime::ZERO);
        let mut acked_at = Vec::new();
        for step in 1..=12u64 {
            runner.run_until(SimTime::from_secs(step)).unwrap();
            acked_at.push(runner.flow_bytes_acked(flow));
        }
        let rate = |from: usize, to: usize| {
            (acked_at[to] - acked_at[from]) as f64 * 8.0 / (to - from) as f64 / 1e6
        };
        let before = rate(1, 3); // t=2..4s on the 10 Mb/s path
        let during = rate(5, 7); // t=6..8s on the 2 Mb/s detour
        let after = rate(9, 11); // t=10..12s back on the fast path
        assert!(before > 6.0, "fast path before failure: {before} Mb/s");
        assert!(
            during > 0.4 && during < 2.4,
            "detour throughput while down: {during} Mb/s"
        );
        assert!(
            after > 6.0,
            "throughput recovers after restore: {after} Mb/s"
        );
    }

    #[test]
    #[should_panic(expected = "sequential backend")]
    fn direct_emulator_access_panics_on_the_threaded_backend() {
        let runner = Experiment::new(small_ring()).threaded().build().unwrap();
        let _ = runner.emulator();
    }

    #[test]
    fn topology_without_clients_is_rejected() {
        let mut topo = Topology::new();
        topo.add_node(NodeKind::Stub);
        let err = match Experiment::new(topo).build() {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert_eq!(err, ExperimentError::NoClients);
    }

    #[test]
    fn disconnected_topology_is_rejected_unless_allowed() {
        let mut topo = small_ring();
        topo.add_node(NodeKind::Client);
        let err = match Experiment::new(topo.clone()).build() {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert_eq!(err, ExperimentError::Disconnected);
        assert!(Experiment::new(topo).allow_disconnected().build().is_ok());
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(ExperimentError::NoClients.to_string().contains("client"));
        assert!(ExperimentError::Disconnected
            .to_string()
            .contains("connected"));
    }
}
