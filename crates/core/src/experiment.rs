//! The experiment builder: Create → Distill → Assign → Bind in one call.
//!
//! [`Experiment`] takes the target topology produced by the Create phase and
//! walks the remaining pipeline with sensible defaults, yielding a
//! [`Runner`] ready for the Run phase. Every knob the paper exposes is a
//! builder method: the distillation mode, the number of core and edge nodes,
//! the hardware profile of the cores, and the TCP configuration of the edge
//! stacks.

use std::fmt;

use mn_assign::{greedy_k_clusters, Binding, BindingParams};
use mn_distill::{distill, DistillationMode, DistilledTopology};
use mn_emucore::{HardwareProfile, MultiCoreEmulator, ParallelEmulator};
use mn_routing::RoutingMatrix;
use mn_topology::Topology;
use mn_transport::TcpConfig;

use crate::runner::{EmulatorBackend, ExecutionBackend, Runner};

/// Errors raised while building an experiment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The target topology has no client nodes to bind VNs to.
    NoClients,
    /// The target topology is not connected, so some VN pairs have no route.
    Disconnected,
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::NoClients => {
                write!(f, "target topology has no client nodes to host VNs")
            }
            ExperimentError::Disconnected => {
                write!(f, "target topology is not connected")
            }
        }
    }
}

impl std::error::Error for ExperimentError {}

/// Builder for a complete emulation.
#[derive(Debug, Clone)]
pub struct Experiment {
    topology: Topology,
    distillation: DistillationMode,
    cores: usize,
    edge_nodes: usize,
    profile: HardwareProfile,
    tcp: TcpConfig,
    seed: u64,
    require_connected: bool,
    backend: ExecutionBackend,
    affinity_base: Option<usize>,
}

impl Experiment {
    /// Starts an experiment from a Create-phase topology.
    pub fn new(topology: Topology) -> Self {
        Experiment {
            topology,
            distillation: DistillationMode::HopByHop,
            cores: 1,
            edge_nodes: 1,
            profile: HardwareProfile::paper_core(),
            tcp: TcpConfig::default(),
            seed: 1,
            require_connected: true,
            backend: ExecutionBackend::Sequential,
            affinity_base: None,
        }
    }

    /// Chooses the execution backend (default: sequential). Both backends
    /// produce bit-identical emulation results; [`ExecutionBackend::Threaded`]
    /// runs every core on its own OS thread.
    pub fn backend(mut self, backend: ExecutionBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Shorthand for `backend(ExecutionBackend::Threaded)`.
    pub fn threaded(self) -> Self {
        self.backend(ExecutionBackend::Threaded)
    }

    /// Suggests pinning core `i`'s execution thread to host CPU `base + i`
    /// (advisory; recorded in the binding and in worker thread names).
    pub fn affinity_base(mut self, base: usize) -> Self {
        self.affinity_base = Some(base);
        self
    }

    /// Chooses the distillation mode (default: hop-by-hop).
    pub fn distillation(mut self, mode: DistillationMode) -> Self {
        self.distillation = mode;
        self
    }

    /// Number of emulation core nodes (default: 1).
    pub fn cores(mut self, cores: usize) -> Self {
        self.cores = cores.max(1);
        self
    }

    /// Number of physical edge nodes hosting VNs (default: 1).
    pub fn edge_nodes(mut self, edges: usize) -> Self {
        self.edge_nodes = edges.max(1);
        self
    }

    /// Hardware profile of the core nodes (default: the paper's testbed).
    pub fn hardware(mut self, profile: HardwareProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Removes every hardware ceiling — useful when an experiment studies the
    /// emulated network rather than core capacity.
    pub fn unconstrained_hardware(mut self) -> Self {
        self.profile = HardwareProfile::unconstrained();
        self
    }

    /// TCP configuration used by every edge stack (default: Reno with a
    /// 1460-byte MSS and 64 KB windows).
    pub fn tcp_config(mut self, tcp: TcpConfig) -> Self {
        self.tcp = tcp;
        self
    }

    /// Seed for every random decision in the experiment.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Allows disconnected target topologies (by default they are rejected,
    /// since most experiments expect all-pairs reachability).
    pub fn allow_disconnected(mut self) -> Self {
        self.require_connected = false;
        self
    }

    /// The target topology (Create-phase output) this experiment will use.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs Distill + Assign + Bind, returning the Runner for the Run phase.
    pub fn build(self) -> Result<Runner, ExperimentError> {
        let (runner, _) = self.build_with_distilled()?;
        Ok(runner)
    }

    /// Like [`Experiment::build`], but also hands back the distilled pipe
    /// graph for callers that want to inspect or perturb it (the dynamic
    /// network-change machinery needs it).
    pub fn build_with_distilled(self) -> Result<(Runner, DistilledTopology), ExperimentError> {
        if self.topology.client_count() == 0 {
            return Err(ExperimentError::NoClients);
        }
        if self.require_connected && !self.topology.is_connected() {
            return Err(ExperimentError::Disconnected);
        }
        // Distill.
        let distilled = distill(&self.topology, self.distillation);
        // Assign.
        let pod = greedy_k_clusters(&distilled, self.cores, self.seed);
        // Bind.
        let matrix = RoutingMatrix::build(&distilled);
        let mut params = BindingParams::new(self.edge_nodes, self.cores);
        if let Some(base) = self.affinity_base {
            params = params.with_affinity_base(base);
        }
        let binding = Binding::bind(distilled.vns(), &params);
        // Run-phase driver on the selected execution backend.
        let backend = match self.backend {
            ExecutionBackend::Sequential => EmulatorBackend::Sequential(MultiCoreEmulator::new(
                &distilled,
                pod,
                matrix,
                &binding,
                self.profile,
                self.seed,
            )),
            ExecutionBackend::Threaded => EmulatorBackend::Threaded(ParallelEmulator::new(
                &distilled,
                pod,
                matrix,
                &binding,
                self.profile,
                self.seed,
            )),
        };
        Ok((Runner::with_backend(backend, binding, self.tcp), distilled))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topology::generators::{ring_topology, RingParams};
    use mn_topology::NodeKind;

    fn small_ring() -> Topology {
        ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        })
    }

    #[test]
    fn build_walks_all_phases() {
        let runner = Experiment::new(small_ring())
            .distillation(DistillationMode::LAST_MILE)
            .cores(2)
            .edge_nodes(4)
            .seed(5)
            .build()
            .unwrap();
        assert_eq!(runner.vn_ids().len(), 8);
        assert_eq!(runner.emulator().core_count(), 2);
        assert_eq!(runner.binding().edge_count(), 4);
    }

    #[test]
    fn build_with_distilled_exposes_the_pipe_graph() {
        let (_, distilled) = Experiment::new(small_ring())
            .distillation(DistillationMode::EndToEnd)
            .build_with_distilled()
            .unwrap();
        assert_eq!(distilled.undirected_pipe_count(), 8 * 7 / 2);
    }

    #[test]
    fn threaded_backend_matches_sequential_end_to_end() {
        use mn_util::{ByteSize, SimDuration, SimTime};
        // The whole run phase — TCP dynamics included — must be
        // bit-identical across backends: any divergence in delivery order
        // or timing would cascade through congestion control and change
        // the flow results.
        let run = |backend: ExecutionBackend| {
            let mut runner = Experiment::new(small_ring())
                .distillation(DistillationMode::HopByHop)
                .cores(2)
                .edge_nodes(4)
                .seed(9)
                .backend(backend)
                .build()
                .unwrap();
            let vns = runner.vn_ids();
            let f1 =
                runner.add_bulk_flow(vns[0], vns[4], Some(ByteSize::from_kb(96)), SimTime::ZERO);
            let f2 = runner.add_bulk_flow(vns[2], vns[6], None, SimTime::from_millis(50));
            runner.run_for(SimDuration::from_secs(4));
            (
                runner.flow_completed_at(f1),
                runner.flow_bytes_acked(f1),
                runner.flow_bytes_acked(f2),
                runner.packets_delivered(),
                runner.backend().total_stats(),
            )
        };
        let sequential = run(ExecutionBackend::Sequential);
        let threaded = run(ExecutionBackend::Threaded);
        assert!(sequential.0.is_some(), "the bounded flow completes");
        assert_eq!(sequential, threaded);
    }

    #[test]
    #[should_panic(expected = "sequential backend")]
    fn direct_emulator_access_panics_on_the_threaded_backend() {
        let runner = Experiment::new(small_ring()).threaded().build().unwrap();
        let _ = runner.emulator();
    }

    #[test]
    fn topology_without_clients_is_rejected() {
        let mut topo = Topology::new();
        topo.add_node(NodeKind::Stub);
        let err = match Experiment::new(topo).build() {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert_eq!(err, ExperimentError::NoClients);
    }

    #[test]
    fn disconnected_topology_is_rejected_unless_allowed() {
        let mut topo = small_ring();
        topo.add_node(NodeKind::Client);
        let err = match Experiment::new(topo.clone()).build() {
            Err(e) => e,
            Ok(_) => panic!("expected an error"),
        };
        assert_eq!(err, ExperimentError::Disconnected);
        assert!(Experiment::new(topo).allow_disconnected().build().is_ok());
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(ExperimentError::NoClients.to_string().contains("client"));
        assert!(ExperimentError::Disconnected
            .to_string()
            .contains("connected"));
    }
}
