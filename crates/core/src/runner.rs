//! The Run phase: the virtual-time simulation driver.
//!
//! On the paper's testbed the "driver" is reality: edge kernels emit packets,
//! the core's clock interrupts fire, netperf measures what arrives. In the
//! reproduction those roles are played by [`Runner`]: it owns the virtual
//! clock, an event queue, the multi-core emulator, every TCP/UDP endpoint and
//! every application instance, and it moves packets between them. All
//! behaviour — congestion response, queueing, drops, application adaptation —
//! emerges from the same state machines the paper's experiments exercise.

use std::any::Any;
use std::collections::HashMap;
use std::collections::VecDeque;

/// First port handed out by the runner's allocator; ports index the dense
/// flow-dispatch table below after subtracting this base.
const PORT_BASE: u16 = 10_000;

/// What a runner-allocated port is bound to. Deliveries dispatch on the
/// packet's source port with one indexed read instead of hashing the 5-tuple.
#[derive(Debug, Clone, Copy)]
enum PortBinding {
    /// TCP channel index in `Runner::channels`.
    Tcp(usize),
    /// UDP flow index in `Runner::udp_flows`.
    Udp(usize),
}

use mn_assign::Binding;
use mn_dynamics::ScheduleRestoreError;
use mn_edge::{AppAction, AppCtx, Application, Message};
use mn_emucore::{
    Delivery, EmuError, EmulatorSnapshot, MultiCoreEmulator, ParallelEmulator, SubmitOutcome,
};
use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
use mn_transport::{
    BulkSender, SegmentToSend, TcpConfig, TcpConnection, UdpStream, UdpStreamConfig,
};
use mn_util::codec::fnv1a64;
use mn_util::{
    ByteReader, ByteSize, ByteWriter, Cdf, CodecError, DataRate, SimDuration, SimTime, TimerWheel,
};

/// Which execution backend drives the emulation core(s).
///
/// Both backends run the same emulation and produce bit-identical results
/// (pinned by the determinism and differential suites); they differ only in
/// how the work is executed on the host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionBackend {
    /// All cores advance cooperatively on the calling thread
    /// ([`MultiCoreEmulator`]). Lowest overhead for light workloads and the
    /// only backend that exposes direct core access ([`Runner::emulator`]).
    #[default]
    Sequential,
    /// Every core runs on its own OS thread ([`ParallelEmulator`]),
    /// exchanging tunnelled descriptors over bounded SPSC rings under an
    /// epoch barrier. Scales heavy emulation work across host CPUs.
    Threaded,
}

/// The emulator behind a [`Runner`]: the cooperative single-thread backend
/// or the one-thread-per-core parallel backend, behind one dispatch point.
// One long-lived value per runner, never moved on a hot path: the variant
// size gap is irrelevant and boxing would only add a pointer chase.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum EmulatorBackend {
    /// Cooperative execution on the calling thread.
    Sequential(MultiCoreEmulator),
    /// One OS thread per emulated core.
    Threaded(ParallelEmulator),
}

impl EmulatorBackend {
    /// Submits a packet at time `now`. On the threaded backend a dead or
    /// stalled worker surfaces as [`EmuError::WorkerFailure`]; the
    /// sequential backend cannot fail.
    pub fn submit(&mut self, now: SimTime, packet: Packet) -> Result<SubmitOutcome, EmuError> {
        match self {
            EmulatorBackend::Sequential(emu) => Ok(emu.submit(now, packet)),
            EmulatorBackend::Threaded(emu) => emu.submit(now, packet),
        }
    }

    /// Advances the emulation to `now`, appending deliveries.
    pub fn advance_into(
        &mut self,
        now: SimTime,
        deliveries: &mut Vec<Delivery>,
    ) -> Result<(), EmuError> {
        match self {
            EmulatorBackend::Sequential(emu) => {
                emu.advance_into(now, deliveries);
                Ok(())
            }
            EmulatorBackend::Threaded(emu) => emu.advance_into(now, deliveries),
        }
    }

    /// The earliest time at which the emulation has work due.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        match self {
            EmulatorBackend::Sequential(emu) => emu.next_wakeup(),
            EmulatorBackend::Threaded(emu) => emu.next_wakeup(),
        }
    }

    /// Submits a batch of timestamped packets, appending one outcome per
    /// packet (in input order) to `outcomes` — the bulk-driver fast path
    /// (the threaded backend pipelines it). On error, `outcomes` is left
    /// untouched.
    pub fn submit_batch<I>(
        &mut self,
        batch: I,
        outcomes: &mut Vec<SubmitOutcome>,
    ) -> Result<(), EmuError>
    where
        I: IntoIterator<Item = (SimTime, Packet)>,
    {
        match self {
            EmulatorBackend::Sequential(emu) => {
                emu.submit_batch(batch, outcomes);
                Ok(())
            }
            EmulatorBackend::Threaded(emu) => emu.submit_batch(batch, outcomes),
        }
    }

    /// Serializes the complete emulator state. The snapshot is
    /// backend-independent: it restores into either backend at any core
    /// count with bit-identical continuation.
    pub fn snapshot(&mut self) -> Result<EmulatorSnapshot, EmuError> {
        match self {
            EmulatorBackend::Sequential(emu) => Ok(emu.snapshot()),
            EmulatorBackend::Threaded(emu) => emu.snapshot(),
        }
    }

    /// Aggregated counters across cores.
    pub fn total_stats(&self) -> mn_emucore::CoreStats {
        match self {
            EmulatorBackend::Sequential(emu) => emu.total_stats(),
            EmulatorBackend::Threaded(emu) => emu.total_stats(),
        }
    }

    /// One core's counters, by value.
    pub fn core_stats(&self, core: mn_assign::CoreId) -> Option<mn_emucore::CoreStats> {
        match self {
            EmulatorBackend::Sequential(emu) => emu.core_stats(core).copied(),
            EmulatorBackend::Threaded(emu) => emu.core_stats(core),
        }
    }

    /// Number of cooperating cores.
    pub fn core_count(&self) -> usize {
        match self {
            EmulatorBackend::Sequential(emu) => emu.core_count(),
            EmulatorBackend::Threaded(emu) => emu.core_count(),
        }
    }

    /// Replaces the routing matrix (after a failure recomputation).
    pub fn set_routing(&mut self, matrix: mn_routing::RoutingMatrix) {
        match self {
            EmulatorBackend::Sequential(emu) => emu.set_routing(matrix),
            EmulatorBackend::Threaded(emu) => emu.set_routing(matrix),
        }
    }

    /// Updates a pipe's emulation parameters on whichever core owns it.
    pub fn update_pipe_attrs(
        &mut self,
        pipe: mn_distill::PipeId,
        attrs: mn_distill::PipeAttrs,
    ) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.update_pipe_attrs(pipe, attrs),
            EmulatorBackend::Threaded(emu) => emu.update_pipe_attrs(pipe, attrs),
        }
    }

    /// Installs, replaces or (with `None`) removes the CBR background
    /// injector on a pipe, on whichever core owns it.
    pub fn set_pipe_cbr(
        &mut self,
        pipe: mn_distill::PipeId,
        config: Option<mn_pipe::CbrConfig>,
        from: SimTime,
    ) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.set_pipe_cbr(pipe, config, from),
            EmulatorBackend::Threaded(emu) => emu.set_pipe_cbr(pipe, config, from),
        }
    }

    /// Installs (or clears, with `None`) a distillation-compensation rate on
    /// a pipe: a fluid-only background demand standing in for the contention
    /// of the hops the pipe collapsed. Shares the per-pipe background demand
    /// slot with [`set_pipe_cbr`](Self::set_pipe_cbr) episodes.
    pub fn set_pipe_compensation(
        &mut self,
        pipe: mn_distill::PipeId,
        rate: Option<DataRate>,
        from: SimTime,
    ) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.set_pipe_compensation(pipe, rate, from),
            EmulatorBackend::Threaded(emu) => emu.set_pipe_compensation(pipe, rate, from),
        }
    }

    /// Applies an incremental routing change after the listed pipes of
    /// `topo` were mutated in place: only affected shortest-route trees are
    /// recomputed and only changed pairs re-wired; untouched `RouteId`s
    /// (and descriptors in flight on them) are preserved.
    pub fn reroute(
        &mut self,
        topo: &mn_distill::DistilledTopology,
        changed: &[mn_distill::PipeId],
    ) -> mn_routing::RouteUpdate {
        match self {
            EmulatorBackend::Sequential(emu) => emu.reroute(topo, changed),
            EmulatorBackend::Threaded(emu) => emu.reroute(topo, changed),
        }
    }

    /// Sets the cadence at which fluid fair shares are re-solved while
    /// flows are live.
    pub fn set_fluid_epoch(&mut self, epoch: SimDuration) {
        match self {
            EmulatorBackend::Sequential(emu) => emu.set_fluid_epoch(epoch),
            EmulatorBackend::Threaded(emu) => emu.set_fluid_epoch(epoch),
        }
    }

    /// Starts a fluid bulk flow between two VNs at time `at`.
    pub fn add_fluid_flow(
        &mut self,
        tag: u64,
        src: VnId,
        dst: VnId,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => {
                emu.add_fluid_flow(tag, src, dst, demand, clients, at)
            }
            EmulatorBackend::Threaded(emu) => {
                emu.add_fluid_flow(tag, src, dst, demand, clients, at)
            }
        }
    }

    /// Changes a live fluid flow's offered demand and client count.
    pub fn resize_fluid_flow(
        &mut self,
        tag: u64,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.resize_fluid_flow(tag, demand, clients, at),
            EmulatorBackend::Threaded(emu) => emu.resize_fluid_flow(tag, demand, clients, at),
        }
    }

    /// Stops a fluid flow, returning its share to the packet path.
    pub fn remove_fluid_flow(&mut self, tag: u64, at: SimTime) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.remove_fluid_flow(tag, at),
            EmulatorBackend::Threaded(emu) => emu.remove_fluid_flow(tag, at),
        }
    }

    /// The rate the last fair-share solve allocated to a fluid flow.
    pub fn fluid_flow_rate(&self, tag: u64) -> Option<DataRate> {
        match self {
            EmulatorBackend::Sequential(emu) => emu.fluid_flow_rate(tag),
            EmulatorBackend::Threaded(emu) => emu.fluid_flow_rate(tag),
        }
    }

    /// Bytes of goodput a fluid flow has accumulated so far.
    pub fn fluid_flow_goodput_bytes(&self, tag: u64) -> Option<u64> {
        match self {
            EmulatorBackend::Sequential(emu) => emu.fluid_flow_goodput_bytes(tag),
            EmulatorBackend::Threaded(emu) => emu.fluid_flow_goodput_bytes(tag),
        }
    }

    /// Read access to the coordinator-owned fluid flow state.
    pub fn fluid(&self) -> &mn_emucore::FluidState {
        match self {
            EmulatorBackend::Sequential(emu) => emu.fluid(),
            EmulatorBackend::Threaded(emu) => emu.fluid(),
        }
    }

    /// Joins a VN at a client location of `topo` mid-run: its source tree
    /// and row shard are added incrementally — no full route rebuild — and
    /// it enters through the least-loaded core.
    pub fn vn_join(
        &mut self,
        topo: &mn_distill::DistilledTopology,
        vn: VnId,
        location: mn_topology::NodeId,
        at: SimTime,
    ) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.vn_join(topo, vn, location, at),
            EmulatorBackend::Threaded(emu) => emu.vn_join(topo, vn, location, at),
        }
    }

    /// Removes a VN mid-run. New traffic touching it is refused at once;
    /// in-flight descriptors drain on their pre-departure routes and its
    /// fluid flows are torn down.
    pub fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.vn_leave(vn, at),
            EmulatorBackend::Threaded(emu) => emu.vn_leave(vn, at),
        }
    }

    /// `true` while a VN is an active member of the emulation.
    pub fn vn_is_active(&self, vn: VnId) -> bool {
        match self {
            EmulatorBackend::Sequential(emu) => emu.vn_is_active(vn),
            EmulatorBackend::Threaded(emu) => emu.vn_is_active(vn),
        }
    }

    /// Number of currently active VNs.
    pub fn active_vn_count(&self) -> usize {
        match self {
            EmulatorBackend::Sequential(emu) => emu.active_vn_count(),
            EmulatorBackend::Threaded(emu) => emu.active_vn_count(),
        }
    }
}

/// The execution backends are what the dynamics engine reconfigures: both
/// expose in-place pipe mutation, CBR injection and incremental rerouting
/// through one dispatch point, so a [`mn_dynamics::Schedule`] applies
/// identically (bit for bit) whichever backend drives the run.
impl mn_dynamics::DynamicsTarget for EmulatorBackend {
    fn update_pipe_attrs(
        &mut self,
        pipe: mn_distill::PipeId,
        attrs: mn_distill::PipeAttrs,
    ) -> bool {
        EmulatorBackend::update_pipe_attrs(self, pipe, attrs)
    }

    fn set_pipe_cbr(
        &mut self,
        pipe: mn_distill::PipeId,
        config: Option<mn_pipe::CbrConfig>,
        from: SimTime,
    ) -> bool {
        EmulatorBackend::set_pipe_cbr(self, pipe, config, from)
    }

    fn reroute(
        &mut self,
        topo: &mn_distill::DistilledTopology,
        changed: &[mn_distill::PipeId],
    ) -> mn_routing::RouteUpdate {
        EmulatorBackend::reroute(self, topo, changed)
    }

    fn add_fluid_flow(
        &mut self,
        tag: u64,
        src: VnId,
        dst: VnId,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        EmulatorBackend::add_fluid_flow(self, tag, src, dst, demand, clients, at)
    }

    fn resize_fluid_flow(&mut self, tag: u64, demand: DataRate, clients: u32, at: SimTime) -> bool {
        EmulatorBackend::resize_fluid_flow(self, tag, demand, clients, at)
    }

    fn remove_fluid_flow(&mut self, tag: u64, at: SimTime) -> bool {
        EmulatorBackend::remove_fluid_flow(self, tag, at)
    }

    fn vn_join(
        &mut self,
        topo: &mn_distill::DistilledTopology,
        vn: VnId,
        location: mn_topology::NodeId,
        at: SimTime,
    ) -> bool {
        EmulatorBackend::vn_join(self, topo, vn, location, at)
    }

    fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool {
        EmulatorBackend::vn_leave(self, vn, at)
    }
}

/// Identifier of a TCP flow or application channel created on the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowId(pub usize);

/// Identifier of a UDP flow created on the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpFlowId(pub usize);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    A,
    B,
}

#[derive(Debug)]
enum Event {
    /// The emulator has scheduler work due.
    EmuWakeup,
    /// A TCP endpoint's timer may have expired.
    ChannelTimer { ch: usize, side: Side },
    /// An application timer fires.
    AppTimer { vn: VnId, token: u64 },
    /// A UDP source has datagrams due.
    UdpPoll { flow: usize },
    /// A bulk flow starts transmitting.
    FlowStart { ch: usize },
    /// A reconfiguration apply point: the dynamics schedule has events due.
    Reconfig,
    /// An auto-checkpoint point: serialize the run and arm the next one.
    Checkpoint,
}

/// Magic bytes identifying a runner snapshot ("MNRS"). The runner frames its
/// own payload (which nests the emulator snapshot) so the two formats
/// version independently.
const RUNNER_SNAPSHOT_MAGIC: u32 = 0x4D4E_5253;

/// Current runner snapshot format version.
const RUNNER_SNAPSHOT_VERSION: u32 = 1;

/// Why [`Runner::snapshot`] refused to serialize the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// An application instance is installed. Application state is opaque
    /// (`Box<dyn Application>` plus type-erased in-flight message bodies),
    /// so checkpointing is only supported for runs driven by raw TCP/UDP
    /// flows and the dynamics schedule.
    AppsNotSupported,
    /// An application channel holds messages written but not yet dispatched
    /// (unreachable without apps installed; checked defensively).
    PendingAppMessages,
    /// The emulator itself failed (a dead or stalled worker on the threaded
    /// backend).
    Emulator(EmuError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::AppsNotSupported => {
                write!(f, "snapshot does not support installed applications")
            }
            SnapshotError::PendingAppMessages => {
                write!(f, "snapshot with undispatched application messages")
            }
            SnapshotError::Emulator(e) => write!(f, "emulator snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Why [`Runner::recover_from`] refused to restore a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecoverError {
    /// An application instance is installed on the recovering runner.
    AppsNotSupported,
    /// The snapshot bytes are truncated, corrupted or from an incompatible
    /// format version.
    Codec(CodecError),
    /// The snapshot carries a dynamics-schedule cursor but this runner has
    /// no schedule installed (or vice versa): the runner was not built from
    /// the same experiment configuration.
    ScheduleMismatch,
    /// The schedule cursor does not reconcile with the restored virtual
    /// time (see [`ScheduleRestoreError`]).
    Schedule(ScheduleRestoreError),
}

impl From<CodecError> for RecoverError {
    fn from(e: CodecError) -> Self {
        RecoverError::Codec(e)
    }
}

impl From<ScheduleRestoreError> for RecoverError {
    fn from(e: ScheduleRestoreError) -> Self {
        RecoverError::Schedule(e)
    }
}

impl std::fmt::Display for RecoverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoverError::AppsNotSupported => {
                write!(f, "recovery does not support installed applications")
            }
            RecoverError::Codec(e) => write!(f, "snapshot decode failed: {e:?}"),
            RecoverError::ScheduleMismatch => write!(
                f,
                "snapshot and runner disagree about having a dynamics schedule"
            ),
            RecoverError::Schedule(e) => write!(f, "schedule restore failed: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {}

/// Encodes one pending driver event. Application timers are rejected: the
/// snapshot layer refuses runs with applications installed.
fn put_event(w: &mut ByteWriter, at: SimTime, event: &Event) -> Result<(), SnapshotError> {
    w.put_time(at);
    match event {
        Event::EmuWakeup => w.put_u8(0),
        Event::ChannelTimer { ch, side } => {
            w.put_u8(1);
            w.put_usize(*ch);
            w.put_u8(matches!(side, Side::B) as u8);
        }
        Event::AppTimer { .. } => return Err(SnapshotError::AppsNotSupported),
        Event::UdpPoll { flow } => {
            w.put_u8(3);
            w.put_usize(*flow);
        }
        Event::FlowStart { ch } => {
            w.put_u8(4);
            w.put_usize(*ch);
        }
        Event::Reconfig => w.put_u8(5),
        Event::Checkpoint => w.put_u8(6),
    }
    Ok(())
}

/// Decodes one pending driver event written by [`put_event`].
fn get_event(r: &mut ByteReader<'_>) -> Result<(SimTime, Event), CodecError> {
    let at = r.get_time()?;
    let event = match r.get_u8()? {
        0 => Event::EmuWakeup,
        1 => Event::ChannelTimer {
            ch: r.get_usize()?,
            side: if r.get_u8()? == 0 { Side::A } else { Side::B },
        },
        3 => Event::UdpPoll {
            flow: r.get_usize()?,
        },
        4 => Event::FlowStart { ch: r.get_usize()? },
        5 => Event::Reconfig,
        6 => Event::Checkpoint,
        _ => return Err(CodecError::Invalid("runner event tag")),
    };
    Ok((at, event))
}

/// Per-direction message framing state of an application channel.
#[derive(Default)]
struct DirState {
    /// Messages written to the stream and not yet dispatched at the receiver:
    /// (cumulative end offset in the stream, message).
    outbox: VecDeque<(u64, Message)>,
    /// Total bytes written to the stream so far.
    written: u64,
    /// Receiver-side bytes already dispatched to the application.
    dispatched: u64,
}

/// One TCP connection between two VNs (an application channel or a raw bulk
/// flow).
struct Channel {
    a: VnId,
    b: VnId,
    port: u16,
    conn_a: TcpConnection,
    conn_b: TcpConnection,
    a_to_b: DirState,
    b_to_a: DirState,
    /// Bulk generator pumping the A-side, for raw netperf-style flows.
    bulk_a: Option<BulkSender>,
    /// Size of the fixed transfer, if bounded.
    bulk_total: Option<u64>,
    started: bool,
    start_at: SimTime,
    completed_at: Option<SimTime>,
    is_app_channel: bool,
}

impl Channel {
    fn side_of(&self, vn: VnId) -> Option<Side> {
        if vn == self.a {
            Some(Side::A)
        } else if vn == self.b {
            Some(Side::B)
        } else {
            None
        }
    }
}

/// A UDP flow (paced datagram source plus receiver counters).
struct UdpFlow {
    src: VnId,
    dst: VnId,
    port: u16,
    stream: UdpStream,
    payload: u32,
    received: u64,
    bytes_received: u64,
    sent: u64,
}

/// The simulation driver.
pub struct Runner {
    now: SimTime,
    /// The driver's wakeup queue. Emulator wakeups, TCP timers and UDP pacing
    /// are dense near-term deadlines, so they ride the same O(1) timing wheel
    /// as the core scheduler; idle application timers fall through to the
    /// wheel's overflow level.
    events: TimerWheel<Event>,
    emulator: EmulatorBackend,
    binding: Binding,
    tcp_config: TcpConfig,
    channels: Vec<Channel>,
    /// Dense port-indexed dispatch table: `port_bindings[port - PORT_BASE]`.
    port_bindings: Vec<PortBinding>,
    app_channel_by_pair: HashMap<(VnId, VnId), usize>,
    udp_flows: Vec<UdpFlow>,
    /// Application instances indexed densely by `VnId`.
    apps: Vec<Option<Box<dyn Application>>>,
    metrics: HashMap<&'static str, Cdf>,
    next_packet_id: u64,
    packets_submitted: u64,
    packets_delivered: u64,
    emu_wakeup_at: Option<SimTime>,
    apps_started: bool,
    /// Reusable buffer the emulator drains deliveries into; capacity
    /// persists across wakeups so the steady state allocates nothing.
    delivery_buf: Vec<Delivery>,
    /// Runtime reconfiguration engine, when the experiment carries a
    /// dynamics schedule. Taken out of the slot while applying (the engine
    /// mutates the backend, which also lives on `self`).
    dynamics: Option<mn_dynamics::ScheduleEngine>,
    /// The worker failure that poisoned the run, if any. Once set, every
    /// `run_until`/`run_for` call returns it until the runner recovers from
    /// a snapshot.
    failure: Option<EmuError>,
    /// Auto-checkpoint cadence, when armed (see
    /// [`Runner::set_auto_checkpoint`]).
    auto_checkpoint: Option<SimDuration>,
    /// The most recent auto-checkpoint: (virtual time, framed snapshot).
    last_checkpoint: Option<(SimTime, Vec<u8>)>,
    /// Why auto-checkpointing disarmed itself, if it did.
    checkpoint_failure: Option<SnapshotError>,
}

impl Runner {
    /// Creates a runner over an already-built sequential emulator and
    /// binding. Most users construct one through [`crate::Experiment`].
    pub fn new(emulator: MultiCoreEmulator, binding: Binding, tcp_config: TcpConfig) -> Self {
        Self::with_backend(EmulatorBackend::Sequential(emulator), binding, tcp_config)
    }

    /// Creates a runner over an explicit execution backend (sequential or
    /// threaded); see [`ExecutionBackend`] and
    /// [`crate::Experiment::backend`].
    pub fn with_backend(
        emulator: EmulatorBackend,
        binding: Binding,
        tcp_config: TcpConfig,
    ) -> Self {
        Runner {
            now: SimTime::ZERO,
            events: TimerWheel::new(),
            emulator,
            binding,
            tcp_config,
            channels: Vec::new(),
            port_bindings: Vec::new(),
            app_channel_by_pair: HashMap::new(),
            udp_flows: Vec::new(),
            apps: Vec::new(),
            metrics: HashMap::new(),
            next_packet_id: 0,
            packets_submitted: 0,
            packets_delivered: 0,
            emu_wakeup_at: None,
            apps_started: false,
            delivery_buf: Vec::new(),
            dynamics: None,
            failure: None,
            auto_checkpoint: None,
            last_checkpoint: None,
            checkpoint_failure: None,
        }
    }

    /// Installs a runtime reconfiguration engine: every scheduled event
    /// time becomes an apply point in the driver's event queue, where the
    /// engine mutates pipe parameters in place, installs/removes CBR
    /// injectors and incrementally reroutes — identically on both
    /// execution backends. Usually called through
    /// [`crate::Experiment::with_schedule`].
    pub fn install_schedule(&mut self, engine: mn_dynamics::ScheduleEngine) {
        for at in engine.schedule().times() {
            self.events.push(at.max(self.now), Event::Reconfig);
        }
        self.dynamics = Some(engine);
    }

    /// The reconfiguration engine, if a schedule is installed (its
    /// topology view reflects every change applied so far).
    pub fn dynamics(&self) -> Option<&mn_dynamics::ScheduleEngine> {
        self.dynamics.as_ref()
    }

    // ------------------------------------------------------------------
    // Setup API
    // ------------------------------------------------------------------

    /// The VNs available in this emulation, in binding order.
    pub fn vn_ids(&self) -> Vec<VnId> {
        self.binding.vns().collect()
    }

    /// The binding produced by the Bind phase.
    pub fn binding(&self) -> &Binding {
        &self.binding
    }

    /// The execution backend driving the emulation.
    pub fn backend(&self) -> &EmulatorBackend {
        &self.emulator
    }

    /// Mutable access to the execution backend (routing changes, pipe
    /// updates) — works for both backends.
    pub fn backend_mut(&mut self) -> &mut EmulatorBackend {
        &mut self.emulator
    }

    /// The sequential emulator (core statistics, accuracy logs, pipe
    /// counters).
    ///
    /// # Panics
    ///
    /// Panics on the threaded backend, whose cores live on their own
    /// threads; use [`Runner::backend`] for backend-agnostic access, or
    /// [`EmulatorBackend::total_stats`] for counters.
    pub fn emulator(&self) -> &MultiCoreEmulator {
        match &self.emulator {
            EmulatorBackend::Sequential(emu) => emu,
            EmulatorBackend::Threaded(_) => panic!(
                "Runner::emulator is only available on the sequential backend; \
                 use Runner::backend for the threaded one"
            ),
        }
    }

    /// Mutable access to the sequential emulator, used by dynamic
    /// network-change drivers to adjust pipe parameters mid-run.
    ///
    /// # Panics
    ///
    /// Panics on the threaded backend; use [`Runner::backend_mut`], which
    /// supports routing and pipe updates on both backends.
    pub fn emulator_mut(&mut self) -> &mut MultiCoreEmulator {
        match &mut self.emulator {
            EmulatorBackend::Sequential(emu) => emu,
            EmulatorBackend::Threaded(_) => panic!(
                "Runner::emulator_mut is only available on the sequential backend; \
                 use Runner::backend_mut for the threaded one"
            ),
        }
    }

    /// Installs an application instance on a VN. Applications receive
    /// `on_start` when the run begins (or immediately, if it already has).
    pub fn add_application(&mut self, vn: VnId, app: Box<dyn Application>) {
        if self.apps.len() <= vn.index() {
            self.apps.resize_with(vn.index() + 1, || None);
        }
        self.apps[vn.index()] = Some(app);
        if self.apps_started {
            self.start_app(vn);
        }
    }

    /// Returns a typed view of the application bound to `vn`.
    pub fn app_as<T: Any>(&self, vn: VnId) -> Option<&T> {
        self.app(vn).and_then(|a| a.as_any().downcast_ref())
    }

    /// The application bound to `vn`, if any.
    #[inline]
    fn app(&self, vn: VnId) -> Option<&dyn Application> {
        self.apps.get(vn.index()).and_then(|a| a.as_deref())
    }

    /// Mutable access to the application bound to `vn`.
    #[inline]
    fn app_mut(&mut self, vn: VnId) -> Option<&mut Box<dyn Application>> {
        self.apps.get_mut(vn.index()).and_then(|a| a.as_mut())
    }

    /// Creates a netperf-style TCP flow from `src` to `dst`. `size = None`
    /// keeps transmitting for the whole run; `Some(size)` stops after exactly
    /// that many bytes (Figure 9's fixed file transfers).
    pub fn add_bulk_flow(
        &mut self,
        src: VnId,
        dst: VnId,
        size: Option<ByteSize>,
        start: SimTime,
    ) -> FlowId {
        let ch = self.push_channel(src, dst, false);
        let channel = &mut self.channels[ch];
        channel.bulk_a = Some(match size {
            Some(s) => BulkSender::fixed(s),
            None => BulkSender::unbounded(),
        });
        channel.bulk_total = size.map(|s| s.as_bytes());
        channel.start_at = start;
        self.events.push(start, Event::FlowStart { ch });
        FlowId(ch)
    }

    /// Creates a paced UDP flow from `src` to `dst`.
    pub fn add_udp_flow(
        &mut self,
        src: VnId,
        dst: VnId,
        config: UdpStreamConfig,
        start: SimTime,
    ) -> UdpFlowId {
        let idx = self.udp_flows.len();
        let port = self.bind_port(PortBinding::Udp(idx));
        let payload = config.payload;
        let flow = UdpFlow {
            src,
            dst,
            port,
            stream: UdpStream::new(config, start),
            payload,
            received: 0,
            bytes_received: 0,
            sent: 0,
        };
        self.udp_flows.push(flow);
        self.events.push(start, Event::UdpPoll { flow: idx });
        UdpFlowId(idx)
    }

    /// Starts a fluid (flow-level) bulk flow between two VNs at the current
    /// virtual time: `demand` offered in aggregate for `clients` modelled
    /// clients. The flow's max-min share of every pipe it crosses shows up
    /// to the packet path as consumed capacity; `tag` must be unique among
    /// live fluid flows. Returns `false` on a duplicate tag.
    pub fn add_fluid_flow(
        &mut self,
        tag: u64,
        src: VnId,
        dst: VnId,
        demand: DataRate,
        clients: u32,
    ) -> bool {
        let ok = self
            .emulator
            .add_fluid_flow(tag, src, dst, demand, clients, self.now);
        if ok {
            // The epoch grid is emulator work: make sure the driver wakes
            // for the next recompute point.
            self.schedule_emu_wakeup();
        }
        ok
    }

    /// Changes a live fluid flow's offered demand and client count.
    pub fn resize_fluid_flow(&mut self, tag: u64, demand: DataRate, clients: u32) -> bool {
        let ok = self
            .emulator
            .resize_fluid_flow(tag, demand, clients, self.now);
        if ok {
            self.schedule_emu_wakeup();
        }
        ok
    }

    /// Stops a fluid flow, returning its share to the packet path.
    pub fn remove_fluid_flow(&mut self, tag: u64) -> bool {
        self.emulator.remove_fluid_flow(tag, self.now)
    }

    /// Sets the cadence at which fluid fair shares are re-solved.
    pub fn set_fluid_epoch(&mut self, epoch: SimDuration) {
        self.emulator.set_fluid_epoch(epoch);
        self.schedule_emu_wakeup();
    }

    /// The rate the last fair-share solve allocated to a fluid flow.
    pub fn fluid_flow_rate(&self, tag: u64) -> Option<DataRate> {
        self.emulator.fluid_flow_rate(tag)
    }

    /// Bytes of goodput a fluid flow has accumulated so far.
    pub fn fluid_flow_goodput_bytes(&self, tag: u64) -> Option<u64> {
        self.emulator.fluid_flow_goodput_bytes(tag)
    }

    // ------------------------------------------------------------------
    // Results API
    // ------------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Packets submitted to the emulated network so far.
    pub fn packets_submitted(&self) -> u64 {
        self.packets_submitted
    }

    /// Packets delivered by the emulated network so far.
    pub fn packets_delivered(&self) -> u64 {
        self.packets_delivered
    }

    /// Bytes acknowledged end-to-end on a TCP flow.
    pub fn flow_bytes_acked(&self, flow: FlowId) -> u64 {
        self.channels
            .get(flow.0)
            .map_or(0, |c| c.conn_a.bytes_acked())
    }

    /// Goodput of a TCP flow in kilobits/second, measured from its start time
    /// to `now` (or to completion, for fixed transfers).
    pub fn flow_goodput_kbps(&self, flow: FlowId) -> f64 {
        let Some(c) = self.channels.get(flow.0) else {
            return 0.0;
        };
        let end = c.completed_at.unwrap_or(self.now);
        let elapsed = end.duration_since(c.start_at).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            c.conn_a.bytes_acked() as f64 * 8.0 / elapsed / 1e3
        }
    }

    /// Completion time of a fixed-size TCP flow, if it has finished.
    pub fn flow_completed_at(&self, flow: FlowId) -> Option<SimTime> {
        self.channels.get(flow.0).and_then(|c| c.completed_at)
    }

    /// Retransmissions suffered by a TCP flow's sender.
    pub fn flow_retransmissions(&self, flow: FlowId) -> u64 {
        self.channels
            .get(flow.0)
            .map_or(0, |c| c.conn_a.retransmissions())
    }

    /// Datagrams received and payload bytes received on a UDP flow.
    pub fn udp_flow_received(&self, flow: UdpFlowId) -> (u64, u64) {
        self.udp_flows
            .get(flow.0)
            .map_or((0, 0), |f| (f.received, f.bytes_received))
    }

    /// Datagrams sent on a UDP flow.
    pub fn udp_flow_sent(&self, flow: UdpFlowId) -> u64 {
        self.udp_flows.get(flow.0).map_or(0, |f| f.sent)
    }

    /// The samples recorded by applications under `metric`.
    pub fn metric(&self, metric: &str) -> Option<&Cdf> {
        self.metrics.get(metric)
    }

    /// Mutable access to a recorded metric (for quantile queries).
    pub fn metric_mut(&mut self, metric: &str) -> Option<&mut Cdf> {
        self.metrics.get_mut(metric)
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    /// Runs the emulation until virtual time `deadline`.
    ///
    /// An `Err` means a worker core of the threaded backend died or
    /// stalled; the run is poisoned (every further call returns the same
    /// error) until [`Runner::recover_from`] rebuilds it from a checkpoint.
    pub fn run_until(&mut self, deadline: SimTime) -> Result<(), EmuError> {
        if let Some(error) = &self.failure {
            return Err(error.clone());
        }
        if !self.apps_started {
            self.apps_started = true;
            let vns: Vec<VnId> = (0..self.apps.len() as u32)
                .map(VnId)
                .filter(|&vn| self.app(vn).is_some())
                .collect();
            for vn in vns {
                self.start_app(vn);
            }
        }
        // pop_due hits the wheel's amortized O(1) path; a peek-then-pop pair
        // would scan a not-yet-active slot twice.
        while let Some((t, event)) = self.events.pop_due(deadline) {
            self.now = self.now.max(t);
            self.handle_event(event);
            if let Some(error) = &self.failure {
                return Err(error.clone());
            }
        }
        self.now = self.now.max(deadline);
        Ok(())
    }

    /// Runs the emulation for `duration` of additional virtual time.
    pub fn run_for(&mut self, duration: SimDuration) -> Result<(), EmuError> {
        let deadline = self.now + duration;
        self.run_until(deadline)
    }

    /// The worker failure that stopped the run, if any.
    pub fn failure(&self) -> Option<&EmuError> {
        self.failure.as_ref()
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore
    // ------------------------------------------------------------------

    /// Serializes the complete run state — virtual clock, the emulator
    /// snapshot (pipes, wheels, RNGs, routes, fluid flows), every TCP/UDP
    /// endpoint, pending driver events, flow counters and the dynamics
    /// cursor — into a framed, versioned, checksummed byte string.
    ///
    /// Restoring via [`Runner::recover_from`] on a freshly built runner
    /// from the same experiment configuration and running forward is
    /// bit-identical to never having stopped, on either backend at any
    /// core count. Runs with applications installed are not supported
    /// (application state is type-erased).
    pub fn snapshot(&mut self) -> Result<Vec<u8>, SnapshotError> {
        if self.apps.iter().any(|a| a.is_some()) {
            return Err(SnapshotError::AppsNotSupported);
        }
        let emu_snap = self.emulator.snapshot().map_err(SnapshotError::Emulator)?;
        let emu_bytes = emu_snap.to_bytes();
        let mut w = ByteWriter::with_capacity(emu_bytes.len() + 4096);
        w.put_time(self.now);
        w.put_len(emu_bytes.len());
        w.put_bytes(&emu_bytes);
        let entries = self.events.entries_in_order();
        w.put_len(entries.len());
        for (at, event) in entries {
            put_event(&mut w, at, event)?;
        }
        w.put_len(self.channels.len());
        for ch in &self.channels {
            if !ch.a_to_b.outbox.is_empty() || !ch.b_to_a.outbox.is_empty() {
                return Err(SnapshotError::PendingAppMessages);
            }
            w.put_u32(ch.a.0);
            w.put_u32(ch.b.0);
            w.put_u16(ch.port);
            ch.conn_a.encode_state(&mut w);
            ch.conn_b.encode_state(&mut w);
            w.put_u64(ch.a_to_b.written);
            w.put_u64(ch.a_to_b.dispatched);
            w.put_u64(ch.b_to_a.written);
            w.put_u64(ch.b_to_a.dispatched);
            match &ch.bulk_a {
                Some(bulk) => {
                    w.put_bool(true);
                    bulk.encode_state(&mut w);
                }
                None => w.put_bool(false),
            }
            w.put_opt_u64(ch.bulk_total);
            w.put_bool(ch.started);
            w.put_time(ch.start_at);
            w.put_opt_time(ch.completed_at);
            w.put_bool(ch.is_app_channel);
        }
        w.put_len(self.port_bindings.len());
        for binding in &self.port_bindings {
            match binding {
                PortBinding::Tcp(idx) => {
                    w.put_u8(0);
                    w.put_usize(*idx);
                }
                PortBinding::Udp(idx) => {
                    w.put_u8(1);
                    w.put_usize(*idx);
                }
            }
        }
        w.put_len(self.udp_flows.len());
        for flow in &self.udp_flows {
            w.put_u32(flow.src.0);
            w.put_u32(flow.dst.0);
            w.put_u16(flow.port);
            flow.stream.encode_state(&mut w);
            w.put_u32(flow.payload);
            w.put_u64(flow.received);
            w.put_u64(flow.bytes_received);
            w.put_u64(flow.sent);
        }
        w.put_u64(self.next_packet_id);
        w.put_u64(self.packets_submitted);
        w.put_u64(self.packets_delivered);
        w.put_opt_time(self.emu_wakeup_at);
        w.put_bool(self.apps_started);
        match &self.dynamics {
            Some(engine) => {
                w.put_bool(true);
                w.put_usize(engine.cursor());
            }
            None => w.put_bool(false),
        }
        match self.auto_checkpoint {
            Some(every) => {
                w.put_bool(true);
                w.put_duration(every);
            }
            None => w.put_bool(false),
        }
        let payload = w.into_bytes();
        let mut framed = ByteWriter::with_capacity(payload.len() + 24);
        framed.put_u32(RUNNER_SNAPSHOT_MAGIC);
        framed.put_u32(RUNNER_SNAPSHOT_VERSION);
        framed.put_len(payload.len());
        framed.put_bytes(&payload);
        framed.put_u64(fnv1a64(&payload));
        Ok(framed.into_bytes())
    }

    /// Restores a [`Runner::snapshot`] into this runner, replacing its
    /// entire run state.
    ///
    /// The runner must have been built from the same experiment
    /// configuration as the one that took the snapshot (same topology,
    /// binding, seeds and schedule) and must not have run yet when a
    /// dynamics schedule is installed (the schedule cursor fast-forward
    /// requires a fresh engine). The emulator is restored into whichever
    /// execution backend this runner uses — on the threaded backend that
    /// rebuilds a fresh worker pool, which is how a run poisoned by a
    /// worker failure recovers.
    pub fn recover_from(&mut self, bytes: &[u8]) -> Result<(), RecoverError> {
        if self.apps.iter().any(|a| a.is_some()) {
            return Err(RecoverError::AppsNotSupported);
        }
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != RUNNER_SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic.into());
        }
        let version = r.get_u32()?;
        if version != RUNNER_SNAPSHOT_VERSION {
            return Err(CodecError::BadVersion(version).into());
        }
        let payload_len = r.get_len()?;
        let payload = r.take_bytes(payload_len)?;
        let checksum = r.get_u64()?;
        if fnv1a64(payload) != checksum {
            return Err(CodecError::BadChecksum.into());
        }
        // Decode everything into locals first: a decode error part-way
        // through must leave the runner untouched.
        let mut r = ByteReader::new(payload);
        let now = r.get_time()?;
        let emu_len = r.get_len()?;
        let emu_bytes = r.take_bytes(emu_len)?;
        let emu_snap = EmulatorSnapshot::from_bytes(emu_bytes)?;
        let event_count = r.get_len()?;
        let mut events = TimerWheel::new();
        for _ in 0..event_count {
            let (at, event) = get_event(&mut r)?;
            events.push(at, event);
        }
        let channel_count = r.get_len()?;
        let mut channels = Vec::with_capacity(channel_count);
        for _ in 0..channel_count {
            let a = VnId(r.get_u32()?);
            let b = VnId(r.get_u32()?);
            let port = r.get_u16()?;
            let conn_a = TcpConnection::decode_state(&mut r)?;
            let conn_b = TcpConnection::decode_state(&mut r)?;
            let a_to_b = DirState {
                outbox: VecDeque::new(),
                written: r.get_u64()?,
                dispatched: r.get_u64()?,
            };
            let b_to_a = DirState {
                outbox: VecDeque::new(),
                written: r.get_u64()?,
                dispatched: r.get_u64()?,
            };
            let bulk_a = if r.get_bool()? {
                Some(BulkSender::decode_state(&mut r)?)
            } else {
                None
            };
            channels.push(Channel {
                a,
                b,
                port,
                conn_a,
                conn_b,
                a_to_b,
                b_to_a,
                bulk_a,
                bulk_total: r.get_opt_u64()?,
                started: r.get_bool()?,
                start_at: r.get_time()?,
                completed_at: r.get_opt_time()?,
                is_app_channel: r.get_bool()?,
            });
        }
        let binding_count = r.get_len()?;
        let mut port_bindings = Vec::with_capacity(binding_count);
        for _ in 0..binding_count {
            port_bindings.push(match r.get_u8()? {
                0 => PortBinding::Tcp(r.get_usize()?),
                1 => PortBinding::Udp(r.get_usize()?),
                _ => return Err(CodecError::Invalid("port binding tag").into()),
            });
        }
        let udp_count = r.get_len()?;
        let mut udp_flows = Vec::with_capacity(udp_count);
        for _ in 0..udp_count {
            udp_flows.push(UdpFlow {
                src: VnId(r.get_u32()?),
                dst: VnId(r.get_u32()?),
                port: r.get_u16()?,
                stream: UdpStream::decode_state(&mut r)?,
                payload: r.get_u32()?,
                received: r.get_u64()?,
                bytes_received: r.get_u64()?,
                sent: r.get_u64()?,
            });
        }
        let next_packet_id = r.get_u64()?;
        let packets_submitted = r.get_u64()?;
        let packets_delivered = r.get_u64()?;
        let emu_wakeup_at = r.get_opt_time()?;
        let apps_started = r.get_bool()?;
        let dynamics_cursor = if r.get_bool()? {
            Some(r.get_usize()?)
        } else {
            None
        };
        let auto_checkpoint = if r.get_bool()? {
            Some(r.get_duration()?)
        } else {
            None
        };
        // Fast-forward the schedule engine (validates the cursor against
        // the restored time) before replacing any state.
        match (dynamics_cursor, self.dynamics.as_mut()) {
            (Some(cursor), Some(engine)) => engine.restore_cursor(cursor, now)?,
            (None, None) => {}
            _ => return Err(RecoverError::ScheduleMismatch),
        }
        // Restore the emulator into this runner's backend variant. On the
        // threaded backend this spawns a fresh worker pool; a previously
        // poisoned pool is torn down when the old value drops.
        self.emulator = match &self.emulator {
            EmulatorBackend::Sequential(_) => {
                EmulatorBackend::Sequential(MultiCoreEmulator::restore(&emu_snap)?)
            }
            EmulatorBackend::Threaded(_) => {
                EmulatorBackend::Threaded(ParallelEmulator::restore(&emu_snap)?)
            }
        };
        self.now = now;
        self.events = events;
        self.channels = channels;
        self.port_bindings = port_bindings;
        self.udp_flows = udp_flows;
        self.app_channel_by_pair.clear();
        for (idx, ch) in self.channels.iter().enumerate() {
            if ch.is_app_channel {
                self.app_channel_by_pair.insert((ch.a, ch.b), idx);
                self.app_channel_by_pair.insert((ch.b, ch.a), idx);
            }
        }
        self.next_packet_id = next_packet_id;
        self.packets_submitted = packets_submitted;
        self.packets_delivered = packets_delivered;
        self.emu_wakeup_at = emu_wakeup_at;
        self.apps_started = apps_started;
        self.auto_checkpoint = auto_checkpoint;
        self.failure = None;
        self.checkpoint_failure = None;
        self.delivery_buf.clear();
        self.metrics.clear();
        Ok(())
    }

    /// Arms periodic auto-checkpointing: every `every` of virtual time the
    /// runner serializes itself and keeps the most recent snapshot (see
    /// [`Runner::last_checkpoint`]). If a checkpoint fails — an application
    /// was installed mid-run, or the emulator died — checkpointing disarms
    /// and the cause is kept in [`Runner::checkpoint_failure`].
    pub fn set_auto_checkpoint(&mut self, every: SimDuration) {
        self.auto_checkpoint = Some(every);
        self.events.push(self.now + every, Event::Checkpoint);
    }

    /// The most recent auto-checkpoint: the virtual time it was taken at
    /// and the framed snapshot bytes.
    pub fn last_checkpoint(&self) -> Option<(SimTime, &[u8])> {
        self.last_checkpoint
            .as_ref()
            .map(|(at, bytes)| (*at, bytes.as_slice()))
    }

    /// Why auto-checkpointing disarmed itself, if it did.
    pub fn checkpoint_failure(&self) -> Option<&SnapshotError> {
        self.checkpoint_failure.as_ref()
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::EmuWakeup => {
                if self.emu_wakeup_at == Some(self.now) || self.emu_wakeup_at.is_none() {
                    self.emu_wakeup_at = None;
                }
                self.drain_emulator();
            }
            Event::ChannelTimer { ch, side } => self.handle_channel_timer(ch, side),
            Event::AppTimer { vn, token } => {
                let now = self.now;
                if let Some(app) = self.app_mut(vn) {
                    let mut ctx = AppCtx::new(vn, now);
                    app.on_timer(&mut ctx, token);
                    let actions = ctx.into_actions();
                    self.process_app_actions(vn, actions);
                }
            }
            Event::UdpPoll { flow } => self.handle_udp_poll(flow),
            Event::FlowStart { ch } => {
                self.channels[ch].started = true;
                self.pump_channel(ch);
            }
            Event::Reconfig => {
                // Take the engine out so it can mutate the backend (both
                // live on `self`); the slot is restored immediately after.
                if let Some(mut engine) = self.dynamics.take() {
                    let applied = engine.apply_due(self.now, &mut self.emulator);
                    self.dynamics = Some(engine);
                    if !applied.is_empty() {
                        // A reconfiguration can create emulator work (CBR
                        // injections) or retire the pending wakeup.
                        self.schedule_emu_wakeup();
                    }
                }
            }
            Event::Checkpoint => {
                if let Some(every) = self.auto_checkpoint {
                    // Arm the next point *before* serializing so the
                    // snapshot carries it: a recovered run keeps
                    // checkpointing on the same virtual-time grid.
                    self.events.push(self.now + every, Event::Checkpoint);
                    match self.snapshot() {
                        Ok(bytes) => self.last_checkpoint = Some((self.now, bytes)),
                        Err(error) => {
                            self.auto_checkpoint = None;
                            if let SnapshotError::Emulator(emu_error) = &error {
                                if self.failure.is_none() {
                                    self.failure = Some(emu_error.clone());
                                }
                            }
                            self.checkpoint_failure = Some(error);
                        }
                    }
                }
            }
        }
    }

    fn start_app(&mut self, vn: VnId) {
        let now = self.now;
        if let Some(app) = self.app_mut(vn) {
            let mut ctx = AppCtx::new(vn, now);
            app.on_start(&mut ctx);
            let actions = ctx.into_actions();
            self.process_app_actions(vn, actions);
        }
    }

    /// Allocates the next port and records what it dispatches to.
    ///
    /// Ports are never recycled, bounding a runner to `u16::MAX - PORT_BASE`
    /// flows over its lifetime (the assert below fires past that). The old
    /// allocator silently wrapped and corrupted dispatch instead; recycling
    /// completed flows' ports is future work if endurance runs ever need it.
    fn bind_port(&mut self, binding: PortBinding) -> u16 {
        let offset = self.port_bindings.len();
        assert!(
            offset < (u16::MAX - PORT_BASE) as usize,
            "port space exhausted: more than {} flows",
            u16::MAX - PORT_BASE
        );
        self.port_bindings.push(binding);
        PORT_BASE + offset as u16
    }

    /// The binding a runner-allocated port dispatches to, if any.
    #[inline]
    fn port_binding(&self, port: u16) -> Option<PortBinding> {
        let offset = port.checked_sub(PORT_BASE)? as usize;
        self.port_bindings.get(offset).copied()
    }

    fn push_channel(&mut self, a: VnId, b: VnId, is_app: bool) -> usize {
        let idx = self.channels.len();
        let port = self.bind_port(PortBinding::Tcp(idx));
        self.channels.push(Channel {
            a,
            b,
            port,
            conn_a: TcpConnection::client(self.tcp_config),
            conn_b: TcpConnection::server(self.tcp_config),
            a_to_b: DirState::default(),
            b_to_a: DirState::default(),
            bulk_a: None,
            bulk_total: None,
            started: is_app,
            start_at: self.now,
            completed_at: None,
            is_app_channel: is_app,
        });
        if is_app {
            self.app_channel_by_pair.insert((a, b), idx);
            self.app_channel_by_pair.insert((b, a), idx);
        }
        idx
    }

    /// Finds (or creates and starts) the application channel between two VNs.
    fn app_channel(&mut self, from: VnId, to: VnId) -> usize {
        if let Some(&idx) = self.app_channel_by_pair.get(&(from, to)) {
            return idx;
        }
        let idx = self.push_channel(from, to, true);
        self.pump_channel(idx);
        idx
    }

    fn schedule_emu_wakeup(&mut self) {
        if let Some(t) = self.emulator.next_wakeup() {
            let t = t.max(self.now);
            let need = match self.emu_wakeup_at {
                Some(existing) => t < existing || existing < self.now,
                None => true,
            };
            if need {
                self.emu_wakeup_at = Some(t);
                self.events.push(t, Event::EmuWakeup);
            }
        }
    }

    fn submit_packet(&mut self, packet: Packet) {
        self.packets_submitted += 1;
        match self.emulator.submit(self.now, packet) {
            Ok(
                SubmitOutcome::Accepted | SubmitOutcome::VirtualDrop | SubmitOutcome::PhysicalDrop,
            ) => {}
            Ok(SubmitOutcome::NoRoute) => {
                // Silently dropped: the destination is unreachable (e.g. a
                // partitioned topology under fault injection).
            }
            Err(error) => {
                // Poison the run; run_until surfaces the error after the
                // current event finishes.
                if self.failure.is_none() {
                    self.failure = Some(error);
                }
                return;
            }
        }
        self.schedule_emu_wakeup();
    }

    fn build_tcp_packet(&mut self, src: VnId, dst: VnId, port: u16, seg: &SegmentToSend) -> Packet {
        let id = PacketId(self.next_packet_id);
        self.next_packet_id += 1;
        Packet::new(
            id,
            FlowKey {
                src,
                dst,
                src_port: port,
                dst_port: port,
                protocol: Protocol::Tcp,
            },
            TransportHeader::Tcp {
                seq: seg.seq,
                ack: seg.ack,
                payload_len: seg.payload_len,
                flags: seg.flags,
                window: seg.window,
            },
            self.now,
        )
    }

    /// Polls both endpoints of a channel for outgoing segments, submits them,
    /// and refreshes the endpoint timers.
    fn pump_channel(&mut self, ch: usize) {
        if !self.channels[ch].started {
            return;
        }
        let now = self.now;
        // Top up the bulk generator.
        {
            let channel = &mut self.channels[ch];
            if let Some(bulk) = channel.bulk_a.as_mut() {
                bulk.pump(now, &mut channel.conn_a);
            }
        }
        for side in [Side::A, Side::B] {
            let (src, dst, port, segs) = {
                let channel = &mut self.channels[ch];
                let (conn, src, dst) = match side {
                    Side::A => (&mut channel.conn_a, channel.a, channel.b),
                    Side::B => (&mut channel.conn_b, channel.b, channel.a),
                };
                (src, dst, channel.port, conn.poll_send(now))
            };
            for seg in &segs {
                let packet = self.build_tcp_packet(src, dst, port, seg);
                self.submit_packet(packet);
            }
            self.refresh_channel_timer(ch, side);
        }
    }

    fn refresh_channel_timer(&mut self, ch: usize, side: Side) {
        let deadline = {
            let channel = &self.channels[ch];
            let conn = match side {
                Side::A => &channel.conn_a,
                Side::B => &channel.conn_b,
            };
            conn.next_timer()
        };
        if let Some(t) = deadline {
            self.events
                .push(t.max(self.now), Event::ChannelTimer { ch, side });
        }
    }

    fn handle_channel_timer(&mut self, ch: usize, side: Side) {
        let now = self.now;
        let due = {
            let channel = &self.channels[ch];
            let conn = match side {
                Side::A => &channel.conn_a,
                Side::B => &channel.conn_b,
            };
            conn.next_timer().is_some_and(|t| t <= now)
        };
        if due {
            {
                let channel = &mut self.channels[ch];
                let conn = match side {
                    Side::A => &mut channel.conn_a,
                    Side::B => &mut channel.conn_b,
                };
                conn.on_timer(now);
            }
            self.pump_channel(ch);
        } else {
            // Stale event: re-arm for the real deadline, if any.
            self.refresh_channel_timer(ch, side);
        }
    }

    fn handle_udp_poll(&mut self, flow: usize) {
        let now = self.now;
        let (src, dst, port, payload, seqs, next) = {
            let f = &mut self.udp_flows[flow];
            let seqs = f.stream.poll(now);
            f.sent += seqs.len() as u64;
            (
                f.src,
                f.dst,
                f.port,
                f.payload,
                seqs,
                f.stream.next_send_time(),
            )
        };
        for seq in seqs {
            let id = PacketId(self.next_packet_id);
            self.next_packet_id += 1;
            let packet = Packet::new(
                id,
                FlowKey {
                    src,
                    dst,
                    src_port: port,
                    dst_port: port,
                    protocol: Protocol::Udp,
                },
                TransportHeader::Udp {
                    payload_len: payload,
                    seq,
                },
                now,
            );
            self.submit_packet(packet);
        }
        if let Some(t) = next {
            self.events.push(t, Event::UdpPoll { flow });
        }
    }

    fn drain_emulator(&mut self) {
        // Reuse the delivery buffer across wakeups: take it out of `self` so
        // `handle_delivery` (which needs `&mut self`) can run while we drain.
        let mut deliveries = std::mem::take(&mut self.delivery_buf);
        if let Err(error) = self.emulator.advance_into(self.now, &mut deliveries) {
            if self.failure.is_none() {
                self.failure = Some(error);
            }
            deliveries.clear();
            self.delivery_buf = deliveries;
            return;
        }
        for delivery in deliveries.drain(..) {
            self.handle_delivery(delivery);
        }
        self.delivery_buf = deliveries;
        self.schedule_emu_wakeup();
    }

    fn handle_delivery(&mut self, delivery: Delivery) {
        self.packets_delivered += 1;
        let packet = delivery.packet;
        match packet.flow.protocol {
            Protocol::Udp => {
                if let Some(PortBinding::Udp(idx)) = self.port_binding(packet.flow.src_port) {
                    let f = &mut self.udp_flows[idx];
                    if f.src == packet.flow.src && f.dst == packet.flow.dst {
                        f.received += 1;
                        f.bytes_received += packet.header.payload_len() as u64;
                    }
                }
            }
            Protocol::Tcp => {
                let Some(PortBinding::Tcp(ch)) = self.port_binding(packet.flow.src_port) else {
                    return;
                };
                let TransportHeader::Tcp {
                    seq,
                    ack,
                    payload_len,
                    flags,
                    window,
                } = packet.header
                else {
                    return;
                };
                // The receiving endpoint is the one bound to the packet's
                // destination VN. A port can only have been allocated to this
                // channel, but verify both endpoints anyway so a stray packet
                // cannot corrupt an unrelated connection.
                let Some(receiver_side) = self.channels[ch].side_of(packet.flow.dst) else {
                    return;
                };
                if self.channels[ch].side_of(packet.flow.src).is_none() {
                    return;
                }
                let now = self.now;
                let event = {
                    let channel = &mut self.channels[ch];
                    let conn = match receiver_side {
                        Side::A => &mut channel.conn_a,
                        Side::B => &mut channel.conn_b,
                    };
                    conn.on_segment(now, seq, payload_len, ack, flags, window)
                };
                // Dispatch any application messages this delivery completed.
                if self.channels[ch].is_app_channel && event.delivered_upto > 0 {
                    self.dispatch_messages(ch, receiver_side, event.delivered_upto);
                }
                // Completion detection for fixed-size bulk transfers.
                {
                    let channel = &mut self.channels[ch];
                    if let Some(total) = channel.bulk_total {
                        if channel.completed_at.is_none() && channel.conn_a.bytes_acked() >= total {
                            channel.completed_at = Some(now);
                        }
                    }
                }
                self.pump_channel(ch);
            }
        }
    }

    /// Hands the receiver application every message whose stream frame has
    /// been fully delivered.
    fn dispatch_messages(&mut self, ch: usize, receiver_side: Side, delivered_upto: u64) {
        loop {
            let (from, to, message) = {
                let channel = &mut self.channels[ch];
                let (dir, from, to) = match receiver_side {
                    // Receiver is B: messages travel A -> B.
                    Side::B => (&mut channel.a_to_b, channel.a, channel.b),
                    Side::A => (&mut channel.b_to_a, channel.b, channel.a),
                };
                if dir
                    .outbox
                    .front()
                    .is_some_and(|(end, _)| *end <= delivered_upto)
                {
                    let (end, msg) = dir.outbox.pop_front().expect("front exists");
                    dir.dispatched = end;
                    (from, to, msg)
                } else {
                    break;
                }
            };
            let now = self.now;
            if let Some(app) = self.app_mut(to) {
                let mut ctx = AppCtx::new(to, now);
                app.on_message(&mut ctx, from, message);
                let actions = ctx.into_actions();
                self.process_app_actions(to, actions);
            }
        }
    }

    fn process_app_actions(&mut self, vn: VnId, actions: Vec<AppAction>) {
        for action in actions {
            match action {
                AppAction::Send { to, message } => {
                    let ch = self.app_channel(vn, to);
                    {
                        let channel = &mut self.channels[ch];
                        let side = channel.side_of(vn).expect("sender is an endpoint");
                        let (dir, conn) = match side {
                            Side::A => (&mut channel.a_to_b, &mut channel.conn_a),
                            Side::B => (&mut channel.b_to_a, &mut channel.conn_b),
                        };
                        let size = message.wire_size.max(1) as u64;
                        dir.written += size;
                        dir.outbox.push_back((dir.written, message));
                        conn.write(size);
                    }
                    self.pump_channel(ch);
                }
                AppAction::SetTimer { delay, token } => {
                    self.events
                        .push(self.now + delay, Event::AppTimer { vn, token });
                }
                AppAction::Record { metric, value } => {
                    self.metrics.entry(metric).or_default().add(value);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use mn_distill::DistillationMode;
    use mn_topology::generators::{dumbbell_topology, star_topology, DumbbellParams, StarParams};

    fn star_runner(clients: usize) -> Runner {
        let topo = star_topology(&StarParams {
            clients,
            ..StarParams::default()
        });
        Experiment::new(topo)
            .distillation(DistillationMode::HopByHop)
            .cores(1)
            .edge_nodes(2)
            .unconstrained_hardware()
            .seed(11)
            .build()
            .expect("experiment builds")
    }

    #[test]
    fn bulk_flow_completes_and_reports_goodput() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        let flow =
            runner.add_bulk_flow(vns[0], vns[1], Some(ByteSize::from_kb(256)), SimTime::ZERO);
        runner.run_for(SimDuration::from_secs(10)).unwrap();
        let done = runner.flow_completed_at(flow).expect("transfer finishes");
        assert!(done > SimTime::ZERO);
        assert_eq!(runner.flow_bytes_acked(flow), 256 * 1024);
        // 10 Mb/s spokes: the transfer takes at least 256KB*8/10Mb/s ≈ 0.2 s.
        assert!(done >= SimTime::from_millis(200), "done at {done}");
        let goodput = runner.flow_goodput_kbps(flow);
        assert!(
            goodput > 1_000.0 && goodput < 10_000.0,
            "goodput {goodput} kbps"
        );
    }

    #[test]
    fn unbounded_flow_saturates_its_bottleneck() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        let flow = runner.add_bulk_flow(vns[0], vns[1], None, SimTime::ZERO);
        runner.run_for(SimDuration::from_secs(5)).unwrap();
        let goodput = runner.flow_goodput_kbps(flow);
        // Two 10 Mb/s spokes in series: steady state close to 10 Mb/s minus
        // header overhead and slow-start warm-up.
        assert!(
            goodput > 7_000.0 && goodput < 10_000.0,
            "goodput {goodput} kbps should approach the 10 Mb/s spoke rate"
        );
        assert!(runner.flow_completed_at(flow).is_none());
    }

    #[test]
    fn competing_flows_share_a_bottleneck_fairly() {
        let (topo, left, right) = dumbbell_topology(&DumbbellParams {
            clients_per_side: 4,
            ..DumbbellParams::default()
        });
        let mut runner = Experiment::new(topo)
            .distillation(DistillationMode::HopByHop)
            .cores(1)
            .edge_nodes(2)
            .unconstrained_hardware()
            .seed(3)
            .build()
            .unwrap();
        let binding = runner.binding().clone();
        let mut flows = Vec::new();
        for i in 0..4 {
            let src = binding.vn_at(left[i]).unwrap();
            let dst = binding.vn_at(right[i]).unwrap();
            flows.push(runner.add_bulk_flow(src, dst, None, SimTime::ZERO));
        }
        runner.run_for(SimDuration::from_secs(12)).unwrap();
        let rates: Vec<f64> = flows.iter().map(|&f| runner.flow_goodput_kbps(f)).collect();
        let total: f64 = rates.iter().sum();
        // The 10 Mb/s bottleneck is shared: aggregate close to 10 Mb/s…
        assert!(
            total > 6_500.0 && total < 10_500.0,
            "aggregate {total} kbps across the 10 Mb/s bottleneck"
        );
        // …and no flow starves.
        for (i, r) in rates.iter().enumerate() {
            assert!(*r > 500.0, "flow {i} got only {r} kbps: {rates:?}");
        }
    }

    #[test]
    fn udp_flow_counts_sent_and_received() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        let flow = runner.add_udp_flow(
            vns[2],
            vns[3],
            UdpStreamConfig {
                payload: 1000,
                rate: mn_util::DataRate::from_mbps(2),
                max_datagrams: Some(200),
            },
            SimTime::ZERO,
        );
        runner.run_for(SimDuration::from_secs(5)).unwrap();
        assert_eq!(runner.udp_flow_sent(flow), 200);
        let (received, bytes) = runner.udp_flow_received(flow);
        // 2 Mb/s offered into 10 Mb/s spokes: nothing should be lost.
        assert_eq!(received, 200);
        assert_eq!(bytes, 200 * 1000);
    }

    #[test]
    fn udp_overload_loses_datagrams_to_the_first_hop() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        // 40 Mb/s offered into a 10 Mb/s spoke (the §2.3 scenario).
        let flow = runner.add_udp_flow(
            vns[0],
            vns[1],
            UdpStreamConfig {
                payload: 1472,
                rate: mn_util::DataRate::from_mbps(40),
                max_datagrams: Some(2000),
            },
            SimTime::ZERO,
        );
        runner.run_for(SimDuration::from_secs(5)).unwrap();
        let (received, _) = runner.udp_flow_received(flow);
        assert_eq!(runner.udp_flow_sent(flow), 2000);
        assert!(
            received < 1500,
            "most of a 4x-overload should be dropped, received {received}"
        );
        assert!(received > 300, "the 10 Mb/s share should still get through");
    }

    struct PingPong {
        peer: VnId,
        initiator: bool,
        rounds: u32,
        completed: Vec<f64>,
        outstanding_since: Option<SimTime>,
    }

    impl Application for PingPong {
        fn on_start(&mut self, ctx: &mut AppCtx) {
            if self.initiator {
                self.outstanding_since = Some(ctx.now());
                ctx.send(self.peer, Message::new(200, "ping".to_string()));
            }
        }
        fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message) {
            let text = message.body_as::<String>().cloned().unwrap_or_default();
            if text == "ping" {
                ctx.send(from, Message::new(200, "pong".to_string()));
            } else if text == "pong" {
                if let Some(t0) = self.outstanding_since.take() {
                    let rtt_ms = (ctx.now() - t0).as_millis_f64();
                    self.completed.push(rtt_ms);
                    ctx.record("rtt_ms", rtt_ms);
                }
                if (self.completed.len() as u32) < self.rounds {
                    self.outstanding_since = Some(ctx.now());
                    ctx.send(from, Message::new(200, "ping".to_string()));
                }
            }
        }
        fn on_timer(&mut self, _ctx: &mut AppCtx, _token: u64) {}
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn applications_exchange_messages_with_emulated_latency() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        runner.add_application(
            vns[0],
            Box::new(PingPong {
                peer: vns[1],
                initiator: true,
                rounds: 5,
                completed: vec![],
                outstanding_since: None,
            }),
        );
        runner.add_application(
            vns[1],
            Box::new(PingPong {
                peer: vns[0],
                initiator: false,
                rounds: 0,
                completed: vec![],
                outstanding_since: None,
            }),
        );
        runner.run_for(SimDuration::from_secs(10)).unwrap();
        let app = runner.app_as::<PingPong>(vns[0]).unwrap();
        assert_eq!(app.completed.len(), 5);
        // Star spokes are 5 ms each: a round trip crosses 4 spokes ≥ 20 ms.
        for rtt in &app.completed {
            assert!(*rtt >= 20.0, "RTT {rtt} ms below the propagation floor");
            assert!(*rtt < 200.0, "RTT {rtt} ms unreasonably high");
        }
        // The recorded metric matches the app's own view.
        let metric = runner.metric("rtt_ms").unwrap();
        assert_eq!(metric.len(), 5);
    }

    #[test]
    fn auto_checkpoint_fires_on_the_virtual_time_grid() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        runner.add_bulk_flow(vns[0], vns[1], None, SimTime::ZERO);
        runner.set_auto_checkpoint(SimDuration::from_secs(2));
        assert!(runner.last_checkpoint().is_none());
        runner.run_for(SimDuration::from_secs(3)).unwrap();
        let (at, bytes) = runner.last_checkpoint().expect("first checkpoint fired");
        assert_eq!(at, SimTime::from_secs(2));
        assert!(!bytes.is_empty());
        assert!(runner.checkpoint_failure().is_none());
        runner.run_for(SimDuration::from_secs(2)).unwrap();
        let (at, _) = runner.last_checkpoint().expect("checkpoint advanced");
        assert_eq!(at, SimTime::from_secs(4));
    }

    #[test]
    fn checkpointing_disarms_when_an_application_appears_mid_run() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        runner.set_auto_checkpoint(SimDuration::from_secs(1));
        runner.run_for(SimDuration::from_secs(2)).unwrap();
        assert!(runner.last_checkpoint().is_some());
        runner.add_application(
            vns[0],
            Box::new(PingPong {
                peer: vns[1],
                initiator: true,
                rounds: 1,
                completed: vec![],
                outstanding_since: None,
            }),
        );
        assert_eq!(
            runner.snapshot().unwrap_err(),
            SnapshotError::AppsNotSupported
        );
        assert_eq!(
            runner.recover_from(&[]).unwrap_err(),
            RecoverError::AppsNotSupported
        );
        // The next grid point hits the same refusal: checkpointing disarms
        // instead of failing the run, and keeps the cause.
        runner.run_for(SimDuration::from_secs(2)).unwrap();
        assert_eq!(
            runner.checkpoint_failure(),
            Some(&SnapshotError::AppsNotSupported)
        );
        let (at, _) = runner.last_checkpoint().expect("pre-app checkpoint kept");
        assert!(at <= SimTime::from_secs(2));
    }

    #[test]
    fn emulator_counters_match_runner_counters() {
        let mut runner = star_runner(4);
        let vns = runner.vn_ids();
        runner.add_bulk_flow(vns[0], vns[1], Some(ByteSize::from_kb(64)), SimTime::ZERO);
        runner.run_for(SimDuration::from_secs(5)).unwrap();
        let stats = runner.emulator().total_stats();
        assert!(stats.packets_delivered > 0);
        assert_eq!(stats.physical_drops(), 0);
        assert!(runner.packets_submitted() >= stats.packets_admitted);
        assert_eq!(runner.packets_delivered(), stats.packets_delivered);
    }
}
