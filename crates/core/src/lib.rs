//! # ModelNet-RS
//!
//! A Rust reproduction of **ModelNet** (Vahdat et al., OSDI 2002): a
//! large-scale network emulator in which unmodified applications on edge
//! nodes send their traffic through a cluster of core routers that subject
//! every packet, hop by hop, to the bandwidth, latency, loss and queueing of
//! a user-specified target topology. This crate is the façade: it wires the
//! substrate crates together into the paper's five-phase pipeline and
//! provides the virtual-time simulation driver that plays the role of the
//! physical cluster.
//!
//! ## The five phases
//!
//! 1. **Create** — produce an annotated target topology
//!    ([`mn_topology::Topology`]): parse GML, or use one of the synthetic
//!    generators.
//! 2. **Distill** — transform it into a pipe graph
//!    ([`mn_distill::DistilledTopology`]), choosing a point on the
//!    accuracy-versus-scalability continuum ([`DistillationMode`]).
//! 3. **Assign** — partition the pipes across core nodes
//!    ([`mn_assign::greedy_k_clusters`]), producing the pipe ownership
//!    directory.
//! 4. **Bind** — bind VNs to edge nodes and edge nodes to cores
//!    ([`mn_assign::Binding`]); pre-compute the routing matrix.
//! 5. **Run** — execute applications and traffic generators against the
//!    emulated network ([`Runner`]).
//!
//! [`Experiment`] walks these phases for you:
//!
//! ```
//! use modelnet::{Experiment, DistillationMode};
//! use mn_topology::generators::{star_topology, StarParams};
//! use mn_util::{ByteSize, SimTime, SimDuration};
//!
//! // Create.
//! let topo = star_topology(&StarParams { clients: 4, ..StarParams::default() });
//! // Distill + Assign + Bind.
//! let mut runner = Experiment::new(topo)
//!     .distillation(DistillationMode::HopByHop)
//!     .cores(1)
//!     .edge_nodes(2)
//!     .seed(7)
//!     .build()
//!     .expect("experiment builds");
//! // Run: one 64 KB transfer between two VNs.
//! let vns = runner.vn_ids();
//! let flow = runner.add_bulk_flow(vns[0], vns[1], Some(ByteSize::from_kb(64)), SimTime::ZERO);
//! runner.run_for(SimDuration::from_secs(5));
//! assert!(runner.flow_completed_at(flow).is_some());
//! ```

pub mod experiment;
pub mod runner;

pub use experiment::{Experiment, ExperimentError};
pub use runner::{
    EmulatorBackend, ExecutionBackend, FlowId, RecoverError, Runner, SnapshotError, UdpFlowId,
};

// Re-export the pieces users need to drive the pipeline by hand.
pub use mn_assign::{Binding, BindingParams, CoreId, PipeOwnershipDirectory};
pub use mn_distill::{distill, DistillationMode, DistilledTopology};
pub use mn_dynamics::{DynamicsTarget, Schedule, ScheduleEngine, ScheduleEvent};
pub use mn_edge::{AppAction, AppCtx, Application, Message};
pub use mn_emucore::{
    ChaosPlan, EmuError, FailureCause, HardwareProfile, MultiCoreEmulator, ParallelEmulator,
};
pub use mn_packet::VnId;
pub use mn_pipe::CbrConfig;
pub use mn_routing::RoutingMatrix;
pub use mn_topology::{LinkAttrs, NodeId, NodeKind, Topology};
pub use mn_transport::TcpConfig;
pub use mn_util::{ByteSize, DataRate, SimDuration, SimTime};
