//! The distillation algorithms (§4.1 of the paper).
//!
//! All modes consume an annotated [`Topology`] and produce a
//! [`DistilledTopology`]. Path collapsing always follows the latency-shortest
//! path in the original topology: the collapsed pipe's bandwidth is the
//! minimum link bandwidth along that path, its latency the sum of link
//! latencies, and its reliability the product of link reliabilities.

use std::collections::BTreeSet;

use mn_topology::{NodeId, Topology};

use crate::pipe_graph::{DistilledTopology, PipeAttrs};

/// The point on the accuracy-versus-scalability continuum to distil to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistillationMode {
    /// Emulate every link of the target network.
    HopByHop,
    /// Collapse every VN pair's path into one pipe (O(n²) pipes, single-hop
    /// routes, no interior contention).
    EndToEnd,
    /// Preserve the first `walk_in` frontier links from the edges and replace
    /// the interior with a full mesh of collapsed pipes. `walk_in = 1` is the
    /// paper's "last-mile" distillation.
    WalkIn {
        /// Number of frontier sets (counting the VNs as the first) whose
        /// incident links are preserved.
        walk_in: usize,
    },
    /// Like [`DistillationMode::WalkIn`] but additionally preserves the links
    /// of the innermost `walk_out` frontier sets around the topological
    /// centre, to model an under-provisioned core.
    WalkInOut {
        /// Frontier sets preserved from the edges.
        walk_in: usize,
        /// Frontier sets preserved around the topological centre.
        walk_out: usize,
    },
}

impl DistillationMode {
    /// The paper's "last-mile" configuration (`walk_in = 1`).
    pub const LAST_MILE: DistillationMode = DistillationMode::WalkIn { walk_in: 1 };
}

/// Computes the breadth-first frontier sets of the topology.
///
/// The first frontier set is the set of all VNs (client nodes); members of
/// the `i+1`-th set are nodes one hop from the `i`-th set that are not
/// members of any preceding set. Returns for every node its 1-based frontier
/// index, or `None` for nodes unreachable from any VN.
pub fn frontier_sets(topo: &Topology) -> Vec<Option<usize>> {
    let mut level: Vec<Option<usize>> = vec![None; topo.node_count()];
    let mut current: Vec<NodeId> = topo.client_nodes().collect();
    for &vn in &current {
        level[vn.index()] = Some(1);
    }
    let mut depth = 1;
    while !current.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &u in &current {
            for (v, _) in topo.neighbors(u) {
                if level[v.index()].is_none() {
                    level[v.index()] = Some(depth);
                    next.push(v);
                }
            }
        }
        current = next;
    }
    level
}

/// Collapses the latency-shortest paths from `source` to every other node in
/// one Dijkstra pass, accumulating bottleneck bandwidth, total latency,
/// path reliability, bottleneck queue and the number of links collapsed
/// along the way.
///
/// Returns one entry per node: `None` for unreachable nodes and for the
/// source itself.
fn collapse_from_source(topo: &Topology, source: NodeId) -> Vec<Option<(PipeAttrs, usize)>> {
    collapse_from_source_filtered(topo, source, |_| true)
}

/// [`collapse_from_source`] restricted to paths whose interior nodes satisfy
/// `allowed` (the source always is). Used by the walk distillations so mesh
/// pipes never collapse a detour through the preserved edge region — those
/// links are emulated natively on the route, and baking their attributes
/// into a mesh pipe would emulate their contention twice.
///
/// Equal-latency ties are pinned to the lowest `(predecessor, link)` pair:
/// every candidate predecessor of a node is finalised (popped) before the
/// node itself, so the choice is a pure function of the distance labels and
/// agrees with [`mn_topology::paths::shortest_path_tree`]'s tie-break
/// regardless of heap relaxation order.
fn collapse_from_source_filtered(
    topo: &Topology,
    source: NodeId,
    allowed: impl Fn(NodeId) -> bool,
) -> Vec<Option<(PipeAttrs, usize)>> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut attrs: Vec<Option<(PipeAttrs, usize)>> = vec![None; n];
    if source.index() >= n {
        return attrs;
    }
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source)));
    // Reliability is tracked separately so it can be multiplied along the
    // chosen predecessor path; `pred` pins the tie-break.
    let mut reliability = vec![1.0f64; n];
    let mut pred: Vec<Option<(NodeId, mn_topology::LinkId)>> = vec![None; n];
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for (v, link_id) in topo.neighbors(u) {
            if !allowed(v) {
                continue;
            }
            let link = topo.link(link_id).expect("link exists");
            let cost = link.attrs.latency.as_nanos() + 1;
            let nd = d.saturating_add(cost);
            let improved = nd < dist[v.index()];
            let tie_break = nd == dist[v.index()]
                && pred[v.index()].is_some_and(|(p, l)| (u, link_id) < (p, l));
            if improved || tie_break {
                dist[v.index()] = nd;
                pred[v.index()] = Some((u, link_id));
                let (base_bw, base_lat, base_queue, base_hops) = match &attrs[u.index()] {
                    Some((a, hops)) => (a.bandwidth, a.latency, a.queue_len, *hops),
                    None => (
                        mn_util::DataRate::from_bps(u64::MAX),
                        mn_util::SimDuration::ZERO,
                        usize::MAX,
                        0,
                    ),
                };
                let rel = reliability[u.index()] * link.attrs.reliability();
                reliability[v.index()] = rel;
                attrs[v.index()] = Some((
                    PipeAttrs {
                        bandwidth: base_bw.min(link.attrs.bandwidth),
                        latency: base_lat + link.attrs.latency,
                        loss_rate: 1.0 - rel,
                        queue_len: base_queue.min(link.attrs.queue_len).max(1),
                    },
                    base_hops + 1,
                ));
                if improved {
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    attrs
}

/// Derives, for every collapsed pipe, the constant-bit-rate background
/// cross-traffic that compensates for its distilled-away hops (§4.1 of the
/// paper: "background CBR cross traffic on distilled pipes").
///
/// A pipe standing in for `k` target links carries its flows without the
/// interior contention the removed `k − 1` links would have imposed. The
/// compensation model offers the pipe a background load of
/// `bandwidth × load × (k − 1) / k`: zero for preserved links (`k = 1`),
/// approaching `bandwidth × load` as the collapsed path grows — i.e. the
/// assumed interior utilisation `load ∈ [0, 1]`, discounted by the one hop
/// whose contention the pipe still emulates natively.
///
/// Returns one `(pipe, rate)` entry per collapsed pipe with a nonzero
/// compensation rate, in pipe-id order.
pub fn compensation_rates(
    topo: &DistilledTopology,
    load: f64,
) -> Vec<(crate::PipeId, mn_util::DataRate)> {
    let load = load.clamp(0.0, 1.0);
    topo.pipes()
        .filter_map(|(id, pipe)| {
            let hops = topo.collapsed_hops(id);
            if hops <= 1 {
                return None;
            }
            let fraction = load * (hops as f64 - 1.0) / hops as f64;
            let rate = pipe.attrs.bandwidth.mul_f64(fraction);
            (!rate.is_zero()).then_some((id, rate))
        })
        .collect()
}

/// Distils `topo` according to `mode`.
///
/// # Examples
///
/// ```
/// use mn_distill::{distill, DistillationMode};
/// use mn_topology::generators::{ring_topology, RingParams};
///
/// let topo = ring_topology(&RingParams::default());
/// let hop_by_hop = distill(&topo, DistillationMode::HopByHop);
/// let last_mile = distill(&topo, DistillationMode::LAST_MILE);
/// let end_to_end = distill(&topo, DistillationMode::EndToEnd);
/// // 420 links, 400 access links + 190 mesh pipes, 79,800 VN pairs.
/// assert_eq!(hop_by_hop.undirected_pipe_count(), 420);
/// assert_eq!(last_mile.undirected_pipe_count(), 590);
/// assert_eq!(end_to_end.undirected_pipe_count(), 79_800);
/// ```
pub fn distill(topo: &Topology, mode: DistillationMode) -> DistilledTopology {
    match mode {
        DistillationMode::HopByHop => distill_hop_by_hop(topo),
        DistillationMode::EndToEnd => distill_end_to_end(topo),
        DistillationMode::WalkIn { walk_in } => distill_walk(topo, walk_in, None),
        DistillationMode::WalkInOut { walk_in, walk_out } => {
            distill_walk(topo, walk_in, Some(walk_out))
        }
    }
}

fn vn_list(topo: &Topology) -> Vec<NodeId> {
    topo.client_nodes().collect()
}

fn distill_hop_by_hop(topo: &Topology) -> DistilledTopology {
    let vns = vn_list(topo);
    let mut out = DistilledTopology::new(topo.node_count(), vns, topo.hop_diameter());
    for (_, link) in topo.links() {
        out.add_duplex(link.a, link.b, link.attrs.into());
    }
    out
}

fn distill_end_to_end(topo: &Topology) -> DistilledTopology {
    let vns = vn_list(topo);
    let mut out = DistilledTopology::new(topo.node_count(), vns.clone(), 1);
    for (i, &a) in vns.iter().enumerate() {
        let collapsed = collapse_from_source(topo, a);
        for &b in vns.iter().skip(i + 1) {
            if let Some((attrs, hops)) = collapsed[b.index()] {
                out.add_duplex_collapsed(a, b, attrs, hops);
            }
        }
    }
    out
}

/// End-to-end distillation pruned to a workload: collapses one pipe per
/// *communicating* VN pair instead of the full `O(n²)` mesh.
///
/// This is how end-to-end distillation is deployed in practice — when the
/// foreground workload is known, pipes for pairs that never exchange traffic
/// are dead weight, and pruning them is what lets end-to-end distillation
/// undercut even hop-by-hop's pipe count. Pair order and duplicates are
/// ignored; pairs whose endpoints are not VNs or are unreachable are skipped.
pub fn distill_end_to_end_pairs(topo: &Topology, pairs: &[(NodeId, NodeId)]) -> DistilledTopology {
    let vns = vn_list(topo);
    let vn_set: BTreeSet<NodeId> = vns.iter().copied().collect();
    let mut wanted: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
    for &(a, b) in pairs {
        if a != b && vn_set.contains(&a) && vn_set.contains(&b) {
            wanted.insert((a.min(b), a.max(b)));
        }
    }
    let mut out = DistilledTopology::new(topo.node_count(), vns, 1);
    let mut sources: Vec<NodeId> = wanted.iter().map(|&(a, _)| a).collect();
    sources.dedup();
    for a in sources {
        let collapsed = collapse_from_source(topo, a);
        for &(src, b) in wanted.range((a, NodeId(0))..) {
            if src != a {
                break;
            }
            if let Some((attrs, hops)) = collapsed[b.index()] {
                out.add_duplex_collapsed(a, b, attrs, hops);
            }
        }
    }
    out
}

fn distill_walk(topo: &Topology, walk_in: usize, walk_out: Option<usize>) -> DistilledTopology {
    let walk_in = walk_in.max(1);
    let vns = vn_list(topo);
    let levels = frontier_sets(topo);

    // Edge region: nodes whose frontier index is within the walk-in.
    let in_edge_region =
        |n: NodeId| -> bool { matches!(levels[n.index()], Some(l) if l <= walk_in) };

    // Core region (walk-out): frontier sets c-walk_out..=c where c is the
    // deepest frontier (the paper stops at the first frontier of size <= 1,
    // which is also the deepest non-empty one for connected topologies).
    let mut core: BTreeSet<NodeId> = BTreeSet::new();
    if let Some(walk_out) = walk_out {
        let c = levels.iter().flatten().copied().max().unwrap_or(0);
        if c > walk_in {
            let lo = c.saturating_sub(walk_out).max(walk_in + 1);
            for (i, level) in levels.iter().enumerate() {
                if let Some(l) = level {
                    if *l >= lo && *l <= c {
                        core.insert(NodeId(i));
                    }
                }
            }
        }
    }

    // Interior nodes: beyond the walk-in region and not preserved as core.
    let interior: Vec<NodeId> = topo
        .node_ids()
        .filter(|&n| levels[n.index()].is_some() && !in_edge_region(n) && !core.contains(&n))
        .collect();

    // Longest distilled route: `walk_in` preserved links on each side, plus
    // either a single mesh pipe (no preserved core) or — for a route crossing
    // the preserved core — one mesh pipe *into* the core boundary, up to
    // `core.len()` core links, and a second mesh pipe back *out* of it.
    let route_bound = if core.is_empty() {
        2 * walk_in + 1
    } else {
        2 * walk_in + 2 + core.len()
    };
    let mut out = DistilledTopology::new(topo.node_count(), vns, route_bound);

    // Preserve links incident to the edge region and links internal to the
    // preserved core.
    for (_, link) in topo.links() {
        let touches_edge = in_edge_region(link.a) || in_edge_region(link.b);
        let inside_core = core.contains(&link.a) && core.contains(&link.b);
        if touches_edge || inside_core {
            out.add_duplex(link.a, link.b, link.attrs.into());
        }
    }

    // Mesh over the interior (plus, when a core is preserved, its boundary so
    // the mesh attaches to it).
    let mut mesh_nodes: Vec<NodeId> = interior;
    if !core.is_empty() {
        for &c in &core {
            let boundary = topo
                .neighbors(c)
                .any(|(v, _)| !core.contains(&v) && !in_edge_region(v));
            if boundary {
                mesh_nodes.push(c);
            }
        }
    }
    mesh_nodes.sort();
    mesh_nodes.dedup();

    for (i, &a) in mesh_nodes.iter().enumerate() {
        // Restrict the collapse to nodes outside the preserved edge region:
        // a mesh pipe that detoured through a preserved last-mile link would
        // bake that link's bandwidth into its own attributes while the route
        // still crosses the link natively, emulating its contention twice.
        let collapsed = collapse_from_source_filtered(topo, a, |n| !in_edge_region(n));
        for &b in mesh_nodes.iter().skip(i + 1) {
            // Skip pairs already joined by a preserved core link.
            if core.contains(&a) && core.contains(&b) {
                continue;
            }
            if let Some((attrs, hops)) = collapsed[b.index()] {
                out.add_duplex_collapsed(a, b, attrs, hops);
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topology::generators::{
        dumbbell_topology, ring_topology, star_topology, DumbbellParams, RingParams, StarParams,
    };
    use mn_topology::{LinkAttrs, NodeKind};
    use mn_util::{DataRate, SimDuration};

    fn small_ring() -> Topology {
        ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        })
    }

    #[test]
    fn frontier_sets_of_ring() {
        let topo = small_ring();
        let levels = frontier_sets(&topo);
        for vn in topo.client_nodes() {
            assert_eq!(levels[vn.index()], Some(1));
        }
        for (id, node) in topo.nodes() {
            if node.kind == NodeKind::Transit {
                assert_eq!(levels[id.index()], Some(2), "routers are one hop from VNs");
            }
        }
    }

    #[test]
    fn frontier_sets_mark_unreachable_nodes_none() {
        let mut topo = small_ring();
        let orphan = topo.add_node(NodeKind::Stub);
        let levels = frontier_sets(&topo);
        assert_eq!(levels[orphan.index()], None);
    }

    #[test]
    fn hop_by_hop_is_isomorphic() {
        let topo = small_ring();
        let d = distill(&topo, DistillationMode::HopByHop);
        assert_eq!(d.undirected_pipe_count(), topo.link_count());
        assert_eq!(d.pipe_count(), 2 * topo.link_count());
        assert_eq!(d.vns().len(), topo.client_count());
        // Every pipe's attributes match its source link.
        for (_, pipe) in d.pipes() {
            assert!(pipe.attrs.bandwidth >= DataRate::from_mbps(2));
        }
    }

    #[test]
    fn end_to_end_is_full_mesh_over_vns() {
        let topo = small_ring();
        let n = topo.client_count();
        let d = distill(&topo, DistillationMode::EndToEnd);
        assert_eq!(d.undirected_pipe_count(), n * (n - 1) / 2);
        assert_eq!(d.max_route_pipes(), 1);
        // All pipes connect VN pairs directly.
        for (_, pipe) in d.pipes() {
            assert!(d.vns().contains(&pipe.src));
            assert!(d.vns().contains(&pipe.dst));
        }
    }

    #[test]
    fn end_to_end_collapse_attrs() {
        // Two clients joined through one router over asymmetric-quality links.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let r = topo.add_node(NodeKind::Stub);
        let b = topo.add_node(NodeKind::Client);
        topo.add_link(
            a,
            r,
            LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(3)).with_loss(0.1),
        )
        .unwrap();
        topo.add_link(
            r,
            b,
            LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(7)).with_loss(0.2),
        )
        .unwrap();
        let d = distill(&topo, DistillationMode::EndToEnd);
        assert_eq!(d.undirected_pipe_count(), 1);
        let (_, pipe) = d.pipes().next().unwrap();
        assert_eq!(pipe.attrs.bandwidth, DataRate::from_mbps(2));
        assert_eq!(pipe.attrs.latency, SimDuration::from_millis(10));
        assert!((pipe.attrs.loss_rate - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn paper_ring_pipe_counts() {
        // The distillation experiment: 20 routers at 20 Mb/s, 20 VNs each.
        let topo = ring_topology(&RingParams::default());
        let hop = distill(&topo, DistillationMode::HopByHop);
        let last_mile = distill(&topo, DistillationMode::LAST_MILE);
        let e2e = distill(&topo, DistillationMode::EndToEnd);
        assert_eq!(hop.undirected_pipe_count(), 420);
        // 400 preserved access links + C(20,2) = 190 mesh pipes.
        assert_eq!(last_mile.undirected_pipe_count(), 590);
        // One pipe per VN pair: C(400,2) = 79,800.
        assert_eq!(e2e.undirected_pipe_count(), 79_800);
        assert_eq!(last_mile.max_route_pipes(), 3);
    }

    #[test]
    fn last_mile_mesh_collapses_ring_bandwidth() {
        let topo = ring_topology(&RingParams::default());
        let last_mile = distill(&topo, DistillationMode::LAST_MILE);
        // Mesh pipes (router-to-router) carry the ring bandwidth of 20 Mb/s;
        // access pipes carry 2 Mb/s.
        let mut mesh = 0;
        let mut access = 0;
        for (_, pipe) in last_mile.pipes() {
            if pipe.attrs.bandwidth == DataRate::from_mbps(20) {
                mesh += 1;
            } else if pipe.attrs.bandwidth == DataRate::from_mbps(2) {
                access += 1;
            } else {
                panic!("unexpected pipe bandwidth {}", pipe.attrs.bandwidth);
            }
        }
        assert_eq!(mesh, 190 * 2);
        assert_eq!(access, 400 * 2);
    }

    #[test]
    fn walk_in_2_preserves_more_than_last_mile() {
        let (topo, _, _) = dumbbell_topology(&DumbbellParams::default());
        let w1 = distill(&topo, DistillationMode::WalkIn { walk_in: 1 });
        let w2 = distill(&topo, DistillationMode::WalkIn { walk_in: 2 });
        let hop = distill(&topo, DistillationMode::HopByHop);
        // Dumbbell: interior is just the two routers, so walk-in 2 covers the
        // whole topology and equals hop-by-hop.
        assert_eq!(w2.undirected_pipe_count(), hop.undirected_pipe_count());
        assert!(w1.undirected_pipe_count() <= w2.undirected_pipe_count());
    }

    #[test]
    fn walk_in_star_preserves_everything() {
        // In a star all routers are one hop from VNs, so last-mile keeps all
        // spokes and there is no interior to mesh.
        let topo = star_topology(&StarParams {
            clients: 10,
            ..StarParams::default()
        });
        let lm = distill(&topo, DistillationMode::LAST_MILE);
        assert_eq!(lm.undirected_pipe_count(), 10);
    }

    #[test]
    fn walk_in_out_preserves_core_links() {
        // A long chain: VN - s1 - s2 - s3 - s4 - s5 - VN. The centre frontier
        // should be preserved with walk-out.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let stubs: Vec<NodeId> = (0..5).map(|_| topo.add_node(NodeKind::Stub)).collect();
        let b = topo.add_node(NodeKind::Client);
        let attrs = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        topo.add_link(a, stubs[0], attrs).unwrap();
        for w in stubs.windows(2) {
            topo.add_link(w[0], w[1], attrs).unwrap();
        }
        topo.add_link(stubs[4], b, attrs).unwrap();

        let walk_only = distill(&topo, DistillationMode::WalkIn { walk_in: 1 });
        let with_core = distill(
            &topo,
            DistillationMode::WalkInOut {
                walk_in: 1,
                walk_out: 1,
            },
        );
        // Frontiers: {a,b}=1, {s1,s5}=2, {s2,s4}=3, {s3}=4. With walk_in=1 and
        // walk_out=1 the core is {s2,s3,s4}; its internal links are preserved
        // and s3 (not a core-boundary node) stays out of the mesh. Without the
        // core, s3 is an interior mesh node and gets collapsed pipes to every
        // other interior node.
        let s1 = stubs[0];
        let s2 = stubs[1];
        let s3 = stubs[2];
        assert!(walk_only.find_pipe(s1, s3).is_some());
        assert!(with_core.find_pipe(s1, s3).is_none());
        // The preserved core link s2-s3 appears with its original one-hop
        // latency.
        let core_pipe = with_core.find_pipe(s2, s3).expect("core link preserved");
        assert_eq!(
            with_core.pipe(core_pipe).attrs.latency,
            SimDuration::from_millis(1)
        );
    }

    #[test]
    fn distilled_graphs_connect_all_vn_pairs() {
        // Reachability check: in each mode, every VN can reach every other VN
        // by following pipes.
        let topo = small_ring();
        for mode in [
            DistillationMode::HopByHop,
            DistillationMode::LAST_MILE,
            DistillationMode::WalkIn { walk_in: 2 },
            DistillationMode::EndToEnd,
        ] {
            let d = distill(&topo, mode);
            let vns = d.vns().to_vec();
            let src = vns[0];
            // BFS over pipes.
            let mut seen = vec![false; d.node_count()];
            let mut queue = std::collections::VecDeque::new();
            seen[src.index()] = true;
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                for &p in d.out_pipes(u) {
                    let v = d.pipe(p).dst;
                    if !seen[v.index()] {
                        seen[v.index()] = true;
                        queue.push_back(v);
                    }
                }
            }
            for &vn in &vns {
                assert!(seen[vn.index()], "{mode:?}: VN {vn} unreachable from {src}");
            }
        }
    }

    #[test]
    fn collapsed_hop_counts_follow_the_distillation_mode() {
        let topo = small_ring();
        let hop = distill(&topo, DistillationMode::HopByHop);
        for id in hop.pipe_ids() {
            assert_eq!(
                hop.collapsed_hops(id),
                1,
                "preserved links collapse nothing"
            );
        }
        let e2e = distill(&topo, DistillationMode::EndToEnd);
        for id in e2e.pipe_ids() {
            // Client - router - ... - router - client: at least 2 access
            // links plus any ring hops.
            assert!(
                e2e.collapsed_hops(id) >= 2,
                "end-to-end pipes collapse paths"
            );
        }
        let lm = distill(&topo, DistillationMode::LAST_MILE);
        let (mut preserved, mut collapsed) = (0, 0);
        for id in lm.pipe_ids() {
            if lm.collapsed_hops(id) == 1 {
                preserved += 1;
            } else {
                collapsed += 1;
            }
        }
        assert!(preserved > 0 && collapsed > 0, "last-mile mixes both");
    }

    #[test]
    fn compensation_rates_cover_exactly_the_collapsed_pipes() {
        let topo = small_ring();
        let hop = distill(&topo, DistillationMode::HopByHop);
        assert!(
            compensation_rates(&hop, 0.5).is_empty(),
            "nothing distilled away"
        );
        let lm = distill(&topo, DistillationMode::LAST_MILE);
        let rates = compensation_rates(&lm, 0.5);
        let collapsed = lm
            .pipe_ids()
            .filter(|&id| lm.collapsed_hops(id) > 1)
            .count();
        assert_eq!(rates.len(), collapsed);
        for (pipe, rate) in &rates {
            let bw = lm.pipe(*pipe).attrs.bandwidth;
            let hops = lm.collapsed_hops(*pipe) as f64;
            assert!(*rate < bw, "compensation stays below capacity");
            let expected = bw.mul_f64(0.5 * (hops - 1.0) / hops);
            assert_eq!(*rate, expected);
        }
        // Zero assumed load: no compensation at all.
        assert!(compensation_rates(&lm, 0.0).is_empty());
        // Load is clamped into [0, 1].
        for (pipe, rate) in compensation_rates(&lm, 7.5) {
            assert!(rate <= lm.pipe(pipe).attrs.bandwidth);
        }
    }

    #[test]
    fn walk_in_out_route_bound_counts_both_mesh_crossings() {
        // Chain a - s1..s5 - b with walk_in = walk_out = 1: core {s2,s3,s4},
        // interior {s1,s5}. A route from a to b takes the preserved access
        // link, a mesh pipe into the core boundary, preserved core links, a
        // second mesh pipe back out, and the far access link — the bound must
        // budget for two mesh pipes, not one.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let stubs: Vec<NodeId> = (0..5).map(|_| topo.add_node(NodeKind::Stub)).collect();
        let b = topo.add_node(NodeKind::Client);
        let attrs = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        topo.add_link(a, stubs[0], attrs).unwrap();
        for w in stubs.windows(2) {
            topo.add_link(w[0], w[1], attrs).unwrap();
        }
        topo.add_link(stubs[4], b, attrs).unwrap();
        let d = distill(
            &topo,
            DistillationMode::WalkInOut {
                walk_in: 1,
                walk_out: 1,
            },
        );
        // 2*walk_in + 2 mesh/frontier pipes + 3 core links.
        assert_eq!(d.max_route_pipes(), 7);
    }

    #[test]
    fn mesh_collapse_never_detours_through_the_edge_region() {
        // A multihomed client c1 offers a 2-hop, 2 ms shortcut between stubs
        // s1 and s2; the interior path via s3 takes 20 ms but avoids the
        // preserved access links. The mesh pipe must collapse the interior
        // path — collapsing the shortcut would bake the access links'
        // contention into a pipe the route then crosses natively as well.
        let mut topo = Topology::new();
        let c1 = topo.add_node(NodeKind::Client);
        let c2 = topo.add_node(NodeKind::Client);
        let s1 = topo.add_node(NodeKind::Stub);
        let s2 = topo.add_node(NodeKind::Stub);
        let s3 = topo.add_node(NodeKind::Stub);
        let access = LinkAttrs::new(DataRate::from_mbps(100), SimDuration::from_millis(1));
        let interior = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(10));
        topo.add_link(c1, s1, access).unwrap();
        topo.add_link(c1, s2, access).unwrap();
        topo.add_link(c2, s3, access).unwrap();
        topo.add_link(s1, s3, interior).unwrap();
        topo.add_link(s3, s2, interior).unwrap();
        let d = distill(&topo, DistillationMode::LAST_MILE);
        let pipe = d.find_pipe(s1, s2).expect("interior mesh pipe");
        assert_eq!(d.pipe(pipe).attrs.bandwidth, DataRate::from_mbps(10));
        assert_eq!(d.pipe(pipe).attrs.latency, SimDuration::from_millis(20));
        assert_eq!(d.collapsed_hops(pipe), 2);
    }

    #[test]
    fn tied_shortest_paths_collapse_the_lowest_predecessor() {
        // Two equal-latency paths from a to b: via r1 (added first, lower id)
        // at 5 Mb/s and via r2 at 50 Mb/s. The tie-break must pin the
        // lowest-id predecessor chain — r1 — regardless of relaxation order.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let r1 = topo.add_node(NodeKind::Stub);
        let r2 = topo.add_node(NodeKind::Stub);
        let b = topo.add_node(NodeKind::Client);
        let lat = SimDuration::from_millis(2);
        topo.add_link(a, r1, LinkAttrs::new(DataRate::from_mbps(5), lat))
            .unwrap();
        topo.add_link(a, r2, LinkAttrs::new(DataRate::from_mbps(50), lat))
            .unwrap();
        topo.add_link(r1, b, LinkAttrs::new(DataRate::from_mbps(5), lat))
            .unwrap();
        topo.add_link(r2, b, LinkAttrs::new(DataRate::from_mbps(50), lat))
            .unwrap();
        let d = distill(&topo, DistillationMode::EndToEnd);
        let pipe = d.find_pipe(a, b).expect("collapsed pair");
        assert_eq!(d.pipe(pipe).attrs.bandwidth, DataRate::from_mbps(5));
        assert_eq!(d.pipe(pipe).attrs.latency, SimDuration::from_millis(4));
    }

    #[test]
    fn end_to_end_pairs_prunes_to_the_workload() {
        let topo = small_ring();
        let vns: Vec<NodeId> = topo.client_nodes().collect();
        let pairs = [
            (vns[0], vns[5]),
            (vns[5], vns[0]), // duplicate in reverse order
            (vns[1], vns[7]),
            (vns[2], vns[2]), // self pair: skipped
        ];
        let d = distill_end_to_end_pairs(&topo, &pairs);
        assert_eq!(d.undirected_pipe_count(), 2);
        assert_eq!(d.max_route_pipes(), 1);
        // Attributes match the full end-to-end collapse for the same pair.
        let full = distill(&topo, DistillationMode::EndToEnd);
        for (x, y) in [(vns[0], vns[5]), (vns[1], vns[7])] {
            let p = d.find_pipe(x, y).expect("workload pair collapsed");
            let q = full.find_pipe(x, y).expect("full mesh pair");
            assert_eq!(d.pipe(p).attrs, full.pipe(q).attrs);
            assert_eq!(d.collapsed_hops(p), full.collapsed_hops(q));
        }
    }

    #[test]
    fn walk_in_zero_is_clamped_to_one() {
        let topo = small_ring();
        let w0 = distill(&topo, DistillationMode::WalkIn { walk_in: 0 });
        let w1 = distill(&topo, DistillationMode::WalkIn { walk_in: 1 });
        assert_eq!(w0.undirected_pipe_count(), w1.undirected_pipe_count());
    }
}
