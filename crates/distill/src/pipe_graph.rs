//! The distilled pipe graph consumed by routing, assignment and the
//! emulation core.
//!
//! Pipes are **directed**: an undirected target link becomes two pipes, one
//! per direction, each with its own queue — exactly as dummynet configures a
//! pair of pipes for bidirectional traffic. The paper quotes pipe counts per
//! unordered pair (e.g. 79,800 pipes for the end-to-end distillation of 400
//! VNs); [`DistilledTopology::undirected_pipe_count`] reports that
//! convention, while [`DistilledTopology::pipe_count`] counts directed pipes.

use std::fmt;

use serde::{Deserialize, Serialize};

use mn_topology::{LinkAttrs, NodeId};
use mn_util::{DataRate, SimDuration};

/// Identifier of a pipe within a [`DistilledTopology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PipeId(pub usize);

impl PipeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for PipeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Emulation parameters of one pipe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipeAttrs {
    /// Drain rate of the bandwidth queue.
    pub bandwidth: DataRate,
    /// Propagation delay applied by the delay line.
    pub latency: SimDuration,
    /// Probability of a random (non-congestion) drop.
    pub loss_rate: f64,
    /// Maximum number of packets the bandwidth queue may hold.
    pub queue_len: usize,
}

impl PipeAttrs {
    /// Creates pipe attributes with no random loss and the default queue.
    pub fn new(bandwidth: DataRate, latency: SimDuration) -> Self {
        PipeAttrs {
            bandwidth,
            latency,
            loss_rate: 0.0,
            queue_len: LinkAttrs::DEFAULT_QUEUE_LEN,
        }
    }

    /// The pipe's reliability, `1 - loss_rate`.
    pub fn reliability(&self) -> f64 {
        1.0 - self.loss_rate
    }

    /// The bandwidth-delay product of the pipe, i.e. the amount of data the
    /// delay line holds when the pipe is fully utilised.
    pub fn bandwidth_delay_product(&self) -> mn_util::ByteSize {
        self.bandwidth.bandwidth_delay_product(self.latency)
    }
}

impl From<LinkAttrs> for PipeAttrs {
    fn from(a: LinkAttrs) -> Self {
        PipeAttrs {
            bandwidth: a.bandwidth,
            latency: a.latency,
            loss_rate: a.loss_rate,
            queue_len: a.queue_len,
        }
    }
}

/// A directed emulated link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pipe {
    /// Node the pipe leaves.
    pub src: NodeId,
    /// Node the pipe enters.
    pub dst: NodeId,
    /// Emulation parameters.
    pub attrs: PipeAttrs,
}

/// The distilled pipe graph.
///
/// Node identifiers are shared with the source [`mn_topology::Topology`]:
/// distillation never renumbers nodes, it only removes links (collapsing them
/// into mesh pipes), so a node that became interior under an end-to-end
/// distillation simply has no incident pipes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DistilledTopology {
    node_count: usize,
    pipes: Vec<Pipe>,
    out_pipes: Vec<Vec<PipeId>>,
    vns: Vec<NodeId>,
    max_route_pipes: usize,
    /// Per-pipe count of target-topology links the pipe stands in for:
    /// 1 for a preserved link, >1 for a collapsed path. Drives the CBR
    /// cross-traffic compensation for distilled-away hops.
    collapsed_hops: Vec<usize>,
}

impl DistilledTopology {
    /// Creates an empty pipe graph over `node_count` nodes with the given VN
    /// (client) set and a bound on route length in pipes (0 = unknown).
    pub fn new(node_count: usize, vns: Vec<NodeId>, max_route_pipes: usize) -> Self {
        DistilledTopology {
            node_count,
            pipes: Vec::new(),
            out_pipes: vec![Vec::new(); node_count],
            vns,
            max_route_pipes,
            collapsed_hops: Vec::new(),
        }
    }

    /// Adds a directed pipe and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range; distillation constructs the
    /// graph from a validated topology so this indicates a logic error.
    pub fn add_pipe(&mut self, src: NodeId, dst: NodeId, attrs: PipeAttrs) -> PipeId {
        self.add_pipe_collapsed(src, dst, attrs, 1)
    }

    /// Adds a directed pipe that stands in for `hops` links of the target
    /// topology (a collapsed path); `hops = 1` is a preserved link.
    pub fn add_pipe_collapsed(
        &mut self,
        src: NodeId,
        dst: NodeId,
        attrs: PipeAttrs,
        hops: usize,
    ) -> PipeId {
        assert!(src.index() < self.node_count, "pipe src out of range");
        assert!(dst.index() < self.node_count, "pipe dst out of range");
        let id = PipeId(self.pipes.len());
        self.pipes.push(Pipe { src, dst, attrs });
        self.out_pipes[src.index()].push(id);
        self.collapsed_hops.push(hops.max(1));
        id
    }

    /// Adds a pipe in each direction between `a` and `b` with identical
    /// attributes, returning both identifiers.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, attrs: PipeAttrs) -> (PipeId, PipeId) {
        (self.add_pipe(a, b, attrs), self.add_pipe(b, a, attrs))
    }

    /// [`DistilledTopology::add_duplex`] for a collapsed path of `hops`
    /// target links.
    pub fn add_duplex_collapsed(
        &mut self,
        a: NodeId,
        b: NodeId,
        attrs: PipeAttrs,
        hops: usize,
    ) -> (PipeId, PipeId) {
        (
            self.add_pipe_collapsed(a, b, attrs, hops),
            self.add_pipe_collapsed(b, a, attrs, hops),
        )
    }

    /// Number of target-topology links the pipe stands in for (1 for a
    /// preserved link, >1 for a collapsed path; 1 if out of range).
    pub fn collapsed_hops(&self, id: PipeId) -> usize {
        self.collapsed_hops.get(id.index()).copied().unwrap_or(1)
    }

    /// Number of nodes (same as the source topology).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of directed pipes.
    pub fn pipe_count(&self) -> usize {
        self.pipes.len()
    }

    /// Number of unordered pipe pairs — the convention the paper uses when it
    /// quotes pipe counts (each bidirectional link counted once).
    pub fn undirected_pipe_count(&self) -> usize {
        self.pipes.len() / 2
    }

    /// Returns the pipe record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the pipe does not exist.
    pub fn pipe(&self, id: PipeId) -> &Pipe {
        &self.pipes[id.index()]
    }

    /// Returns the pipe record for `id`, or `None` if out of range.
    pub fn get_pipe(&self, id: PipeId) -> Option<&Pipe> {
        self.pipes.get(id.index())
    }

    /// Mutable access to a pipe's attributes (used by the dynamic
    /// cross-traffic and fault-injection machinery).
    pub fn pipe_attrs_mut(&mut self, id: PipeId) -> Option<&mut PipeAttrs> {
        self.pipes.get_mut(id.index()).map(|p| &mut p.attrs)
    }

    /// Iterator over all `(id, pipe)` pairs.
    pub fn pipes(&self) -> impl Iterator<Item = (PipeId, &Pipe)> + '_ {
        self.pipes.iter().enumerate().map(|(i, p)| (PipeId(i), p))
    }

    /// Iterator over all pipe identifiers.
    pub fn pipe_ids(&self) -> impl Iterator<Item = PipeId> + '_ {
        (0..self.pipes.len()).map(PipeId)
    }

    /// Outgoing pipes of `node`.
    pub fn out_pipes(&self, node: NodeId) -> &[PipeId] {
        self.out_pipes
            .get(node.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The virtual-node (client) set of the emulation.
    pub fn vns(&self) -> &[NodeId] {
        &self.vns
    }

    /// Upper bound on the number of pipes any VN-to-VN route traverses, or 0
    /// if the distiller did not record one.
    pub fn max_route_pipes(&self) -> usize {
        self.max_route_pipes
    }

    /// Records the route-length bound (used by the distiller).
    pub fn set_max_route_pipes(&mut self, bound: usize) {
        self.max_route_pipes = bound;
    }

    /// Finds a pipe from `src` to `dst` if one exists (first match).
    pub fn find_pipe(&self, src: NodeId, dst: NodeId) -> Option<PipeId> {
        self.out_pipes(src)
            .iter()
            .copied()
            .find(|&p| self.pipes[p.index()].dst == dst)
    }

    /// Total buffering required if every pipe's delay line were full: the sum
    /// of bandwidth-delay products. The paper uses this to argue that a core
    /// node needs only a few hundred megabytes of packet buffer memory.
    pub fn total_bandwidth_delay_product(&self) -> mn_util::ByteSize {
        self.pipes
            .iter()
            .map(|p| p.attrs.bandwidth_delay_product())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(mbps: u64, ms: u64) -> PipeAttrs {
        PipeAttrs::new(DataRate::from_mbps(mbps), SimDuration::from_millis(ms))
    }

    #[test]
    fn add_and_query_pipes() {
        let mut g = DistilledTopology::new(3, vec![NodeId(0), NodeId(2)], 2);
        let (ab, ba) = g.add_duplex(NodeId(0), NodeId(1), attrs(10, 5));
        let (bc, _cb) = g.add_duplex(NodeId(1), NodeId(2), attrs(10, 5));
        assert_eq!(g.pipe_count(), 4);
        assert_eq!(g.undirected_pipe_count(), 2);
        assert_eq!(g.pipe(ab).src, NodeId(0));
        assert_eq!(g.pipe(ba).dst, NodeId(0));
        assert_eq!(g.out_pipes(NodeId(1)), &[ba, bc]);
        assert_eq!(g.find_pipe(NodeId(0), NodeId(1)), Some(ab));
        assert_eq!(g.find_pipe(NodeId(0), NodeId(2)), None);
        assert_eq!(g.vns(), &[NodeId(0), NodeId(2)]);
        assert_eq!(g.max_route_pipes(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pipe_panics() {
        let mut g = DistilledTopology::new(2, vec![], 0);
        g.add_pipe(NodeId(0), NodeId(5), attrs(1, 1));
    }

    #[test]
    fn pipe_attrs_mutation() {
        let mut g = DistilledTopology::new(2, vec![], 0);
        let id = g.add_pipe(NodeId(0), NodeId(1), attrs(10, 5));
        g.pipe_attrs_mut(id).unwrap().bandwidth = DataRate::from_mbps(1);
        assert_eq!(g.pipe(id).attrs.bandwidth, DataRate::from_mbps(1));
        assert!(g.pipe_attrs_mut(PipeId(9)).is_none());
        assert!(g.get_pipe(PipeId(9)).is_none());
    }

    #[test]
    fn pipe_attrs_derived_quantities() {
        let a = attrs(10, 100);
        assert_eq!(a.reliability(), 1.0);
        // 10 Mb/s * 100 ms = 1 Mbit = 125 kB.
        assert_eq!(a.bandwidth_delay_product().as_bytes(), 125_000);
    }

    #[test]
    fn from_link_attrs_copies_fields() {
        let link = LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(7))
            .with_loss(0.05)
            .with_queue_len(13);
        let p: PipeAttrs = link.into();
        assert_eq!(p.bandwidth, DataRate::from_mbps(2));
        assert_eq!(p.latency, SimDuration::from_millis(7));
        assert_eq!(p.loss_rate, 0.05);
        assert_eq!(p.queue_len, 13);
    }

    #[test]
    fn total_bdp_sums_over_pipes() {
        let mut g = DistilledTopology::new(2, vec![], 0);
        g.add_duplex(NodeId(0), NodeId(1), attrs(10, 100));
        assert_eq!(g.total_bandwidth_delay_product().as_bytes(), 250_000);
    }

    #[test]
    fn out_pipes_for_unknown_node_is_empty() {
        let g = DistilledTopology::new(1, vec![], 0);
        assert!(g.out_pipes(NodeId(7)).is_empty());
    }
}
