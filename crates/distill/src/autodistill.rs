//! Auto-distillation: walk the accuracy–scalability continuum and pick the
//! cheapest configuration whose *measured* accuracy fits a budget.
//!
//! The paper presents distillation as a manual dial; `autodistill` turns it
//! into a self-tuning knob. Given the target topology, a sketch of the
//! foreground workload and an error budget, it enumerates candidate
//! configurations — workload-pruned end-to-end, hop-by-hop, the walk-in
//! family — cheapest first, measures each via a caller-supplied harness
//! (typically: emulate the workload and compare per-flow delivery times
//! against the hop-by-hop run), and returns the first configuration whose
//! measured error fits the budget together with its predicted cost.
//!
//! Hop-by-hop is always a candidate and is *defined* as the ground truth, so
//! the search is total: if no distilled configuration fits the budget, the
//! choice degrades to full accuracy at full cost.

use mn_topology::{NodeId, Topology};

use crate::distiller::{distill, distill_end_to_end_pairs, DistillationMode};
use crate::pipe_graph::DistilledTopology;

/// What the foreground workload looks like, as far as distillation cares:
/// which VN pairs exchange traffic.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadSketch<'a> {
    /// Communicating VN pairs. Order and duplicates are ignored. When
    /// non-empty, end-to-end distillation is pruned to exactly these pairs,
    /// which is what lets it undercut hop-by-hop's pipe count.
    pub pairs: &'a [(NodeId, NodeId)],
}

/// The search space and acceptance threshold for [`autodistill`].
#[derive(Debug, Clone)]
pub struct DistillBudget {
    /// Maximum acceptable measured error, as a fraction (0.05 = 5% per-flow
    /// delivery-time error against the hop-by-hop ground truth).
    pub max_error: f64,
    /// Compensation loads to try, in order, for configurations that collapse
    /// hops. Configurations with no collapsed pipes are only tried at 0.
    pub candidate_loads: Vec<f64>,
    /// Largest `walk_in` to include in the candidate set.
    pub max_walk_in: usize,
}

impl Default for DistillBudget {
    fn default() -> Self {
        DistillBudget {
            max_error: 0.05,
            candidate_loads: vec![0.0, 0.25, 0.5, 0.75],
            max_walk_in: 2,
        }
    }
}

/// One point on the continuum, with its predicted cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateConfig {
    /// The distillation mode to run.
    pub mode: DistillationMode,
    /// For [`DistillationMode::EndToEnd`] only: prune the mesh to the
    /// workload sketch's pairs instead of all VN pairs.
    pub pruned_to_workload: bool,
    /// The compensation load to install via
    /// [`compensation_rates`](crate::compensation_rates).
    pub compensation_load: f64,
    /// Predicted memory cost: undirected pipes in the distilled graph.
    pub undirected_pipes: usize,
    /// Predicted per-packet cost: the distilled graph's route-length bound
    /// (pipes a packet crosses end to end).
    pub route_pipe_bound: usize,
}

impl CandidateConfig {
    /// Materialises this configuration's pipe graph.
    pub fn distil(&self, topo: &Topology, sketch: &WorkloadSketch) -> DistilledTopology {
        if self.pruned_to_workload {
            distill_end_to_end_pairs(topo, sketch.pairs)
        } else {
            distill(topo, self.mode)
        }
    }
}

/// The configuration [`autodistill`] settled on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistillChoice {
    /// The chosen configuration, including its predicted cost.
    pub config: CandidateConfig,
    /// The error the measurement harness reported for it (0 for hop-by-hop,
    /// which is the ground truth by definition).
    pub measured_error: f64,
    /// How many measurement runs the search spent before settling.
    pub measurements: usize,
}

/// Picks the cheapest distillation configuration whose measured error fits
/// `budget.max_error`.
///
/// `measure` is called with each candidate (cheapest first, compensation
/// loads in `budget.candidate_loads` order) and must return the workload's
/// error under that configuration as a fraction — e.g. mean per-flow
/// delivery-time error against the hop-by-hop run of the same workload.
/// Hop-by-hop itself is never measured: it is the ground truth, its error is
/// 0 by definition, and it terminates the search if nothing cheaper fits.
pub fn autodistill(
    topo: &Topology,
    sketch: &WorkloadSketch,
    budget: &DistillBudget,
    mut measure: impl FnMut(&CandidateConfig) -> f64,
) -> DistillChoice {
    let mut candidates: Vec<CandidateConfig> = Vec::new();
    let mut push = |mode: DistillationMode, pruned: bool, d: &DistilledTopology| {
        candidates.push(CandidateConfig {
            mode,
            pruned_to_workload: pruned,
            compensation_load: 0.0,
            undirected_pipes: d.undirected_pipe_count(),
            route_pipe_bound: d.max_route_pipes(),
        });
    };

    if sketch.pairs.is_empty() {
        let d = distill(topo, DistillationMode::EndToEnd);
        push(DistillationMode::EndToEnd, false, &d);
    } else {
        let d = distill_end_to_end_pairs(topo, sketch.pairs);
        push(DistillationMode::EndToEnd, true, &d);
    }
    for walk_in in 1..=budget.max_walk_in.max(1) {
        let mode = DistillationMode::WalkIn { walk_in };
        let d = distill(topo, mode);
        push(mode, false, &d);
    }
    let hop = distill(topo, DistillationMode::HopByHop);
    push(DistillationMode::HopByHop, false, &hop);

    // Cheapest first: fewest pipes, then fewest pipes per packet. The sort is
    // stable, so equal-cost candidates keep their construction order (which
    // lists more aggressive distillations first).
    candidates.sort_by_key(|c| (c.undirected_pipes, c.route_pipe_bound));

    let mut measurements = 0;
    for candidate in candidates {
        if candidate.mode == DistillationMode::HopByHop {
            return DistillChoice {
                config: candidate,
                measured_error: 0.0,
                measurements,
            };
        }
        let d = candidate.distil(topo, sketch);
        let collapses = d.pipe_ids().any(|id| d.collapsed_hops(id) > 1);
        let loads: &[f64] = if collapses {
            &budget.candidate_loads
        } else {
            &[0.0]
        };
        for &load in loads {
            let config = CandidateConfig {
                compensation_load: load,
                ..candidate
            };
            measurements += 1;
            let error = measure(&config);
            if error <= budget.max_error {
                return DistillChoice {
                    config,
                    measured_error: error,
                    measurements,
                };
            }
        }
    }
    unreachable!("hop-by-hop is always a candidate and always fits the budget")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topology::generators::{ring_topology, RingParams};

    fn ring() -> Topology {
        ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        })
    }

    fn sketch_pairs(topo: &Topology, n: usize) -> Vec<(NodeId, NodeId)> {
        let vns: Vec<NodeId> = topo.client_nodes().collect();
        (0..n).map(|i| (vns[i], vns[vns.len() - 1 - i])).collect()
    }

    #[test]
    fn picks_the_pruned_end_to_end_mesh_when_it_fits() {
        let topo = ring();
        let pairs = sketch_pairs(&topo, 3);
        let sketch = WorkloadSketch { pairs: &pairs };
        let choice = autodistill(&topo, &sketch, &DistillBudget::default(), |c| {
            // Compensation at 0.25 load brings end-to-end within budget.
            if c.mode == DistillationMode::EndToEnd && c.compensation_load > 0.0 {
                0.02
            } else {
                0.20
            }
        });
        assert_eq!(choice.config.mode, DistillationMode::EndToEnd);
        assert!(choice.config.pruned_to_workload);
        assert_eq!(choice.config.compensation_load, 0.25);
        assert_eq!(choice.config.undirected_pipes, 3);
        assert_eq!(choice.config.route_pipe_bound, 1);
        assert!(choice.measured_error <= 0.05);
        // Loads 0.0 and 0.25 were tried before settling.
        assert_eq!(choice.measurements, 2);
    }

    #[test]
    fn falls_back_to_hop_by_hop_when_nothing_fits() {
        let topo = ring();
        let pairs = sketch_pairs(&topo, 2);
        let sketch = WorkloadSketch { pairs: &pairs };
        let mut tried = Vec::new();
        let choice = autodistill(&topo, &sketch, &DistillBudget::default(), |c| {
            tried.push((c.mode, c.compensation_load));
            1.0
        });
        assert_eq!(choice.config.mode, DistillationMode::HopByHop);
        assert_eq!(choice.measured_error, 0.0);
        // Every cheaper candidate was measured at every load before the
        // fallback; hop-by-hop itself never is.
        assert_eq!(choice.measurements, tried.len());
        assert!(tried.iter().all(|(m, _)| *m != DistillationMode::HopByHop));
        // Candidates came cheapest-first: the 2-pipe pruned mesh before
        // anything else.
        assert_eq!(tried[0].0, DistillationMode::EndToEnd);
    }

    #[test]
    fn candidates_costlier_than_hop_by_hop_are_never_tried() {
        // On the ring, walk-in meshes have *more* pipes than hop-by-hop, so a
        // budget no distilled config meets must stop at hop-by-hop without
        // measuring them.
        let topo = ring();
        let pairs = sketch_pairs(&topo, 2);
        let sketch = WorkloadSketch { pairs: &pairs };
        let choice = autodistill(&topo, &sketch, &DistillBudget::default(), |_| 1.0);
        let hop = distill(&topo, DistillationMode::HopByHop);
        let last_mile = distill(&topo, DistillationMode::LAST_MILE);
        assert!(last_mile.undirected_pipe_count() > hop.undirected_pipe_count());
        // Measured: the pruned mesh at four loads, plus walk-in 2 — which on
        // this shallow ring preserves everything (same pipe count as
        // hop-by-hop, nothing collapsed) and so is tried once at load 0.
        // Last-mile, with more pipes than hop-by-hop, is never measured.
        assert_eq!(choice.measurements, 5);
    }
}
