//! Topology distillation — the *Distill* phase of ModelNet.
//!
//! Distillation transforms the annotated target topology into a **pipe
//! graph** that the emulation core executes. A pipe is a unidirectional
//! emulated link with a bandwidth queue, a delay line, a loss rate and a
//! bounded packet queue. The distillation mode chooses where the emulation
//! sits on the accuracy-versus-scalability continuum (§4.1 of the paper):
//!
//! * [`DistillationMode::HopByHop`] — the pipe graph is isomorphic to the
//!   target network: every link is faithfully emulated, all congestion and
//!   contention effects are captured, per-packet cost is highest.
//! * [`DistillationMode::EndToEnd`] — all interior nodes are removed and each
//!   VN pair is connected by a single pipe whose bandwidth is the minimum
//!   along the original path, latency the sum and reliability the product.
//!   Cheapest per packet, but no shared-link contention is modelled.
//! * [`DistillationMode::WalkIn`] — preserves the first `walk_in` frontier
//!   links from the edges and replaces the interior with a full mesh of
//!   collapsed pipes; each packet traverses at most `2*walk_in + 1` pipes.
//!   `walk_in = 1` is the paper's "last-mile" configuration.
//! * [`DistillationMode::WalkInOut`] — additionally preserves the inner core
//!   (`walk_out` frontier sets around the topological centre) to model an
//!   under-provisioned backbone.

pub mod autodistill;
pub mod distiller;
pub mod pipe_graph;

pub use autodistill::{autodistill, CandidateConfig, DistillBudget, DistillChoice, WorkloadSketch};
pub use distiller::{
    compensation_rates, distill, distill_end_to_end_pairs, frontier_sets, DistillationMode,
};
pub use pipe_graph::{DistilledTopology, Pipe, PipeAttrs, PipeId};
