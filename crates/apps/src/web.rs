//! Replicated web services (§5.2, Figure 11).
//!
//! The paper's experiment plays back 2.5 minutes of a trace against one, two
//! or three Apache replicas placed in different stub domains of a 320-node
//! transit–stub topology, and plots the CDF of client-perceived latency. The
//! IBM trace it uses is not public, so [`WorkloadTrace::synthetic`] generates
//! an open-loop trace with the same aggregate request rate (60–100
//! requests/second) and a heavy-tailed response-size distribution — the
//! substitution is documented in DESIGN.md. Server CPU is not modelled
//! because the paper reports it was only 10 % utilised: the bottleneck the
//! experiment studies is contention on the transit links.

use std::any::Any;
use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use mn_edge::{AppCtx, Application, Message};
use mn_packet::VnId;
use mn_util::rngs::derived_rng;
use mn_util::{SimDuration, SimTime};

/// One request in a client's playback schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// Offset from the start of the playback at which the request is issued.
    pub at: SimDuration,
    /// Response size in bytes.
    pub response_bytes: u32,
}

/// A request trace shared by the clients of one experiment.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkloadTrace {
    entries: Vec<TraceEntry>,
}

impl WorkloadTrace {
    /// Builds a trace from explicit entries.
    pub fn new(mut entries: Vec<TraceEntry>) -> Self {
        entries.sort_by_key(|e| e.at);
        WorkloadTrace { entries }
    }

    /// Generates a synthetic open-loop trace: Poisson arrivals at
    /// `requests_per_sec` for `duration`, response sizes drawn from a
    /// Pareto-like heavy tail with the given mean.
    pub fn synthetic(
        duration: SimDuration,
        requests_per_sec: f64,
        mean_response_bytes: f64,
        seed: u64,
    ) -> Self {
        let mut rng = derived_rng(seed, 0x3EB);
        let mut entries = Vec::new();
        let mut t = 0.0f64;
        let end = duration.as_secs_f64();
        while t < end {
            // Exponential inter-arrival.
            let u: f64 = rng.gen::<f64>().max(1e-12);
            t += -u.ln() / requests_per_sec;
            if t >= end {
                break;
            }
            // Bounded Pareto (alpha = 1.3) scaled to the requested mean.
            let alpha = 1.3f64;
            let xm = mean_response_bytes * (alpha - 1.0) / alpha;
            let p: f64 = rng.gen::<f64>().max(1e-12);
            let size = (xm / p.powf(1.0 / alpha)).min(mean_response_bytes * 50.0);
            entries.push(TraceEntry {
                at: SimDuration::from_secs_f64(t),
                response_bytes: size.max(200.0) as u32,
            });
        }
        WorkloadTrace { entries }
    }

    /// The trace entries in playback order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of requests.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the trace has no requests.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Splits the trace round-robin over `n` clients so that the aggregate
    /// playback reproduces the original arrival process.
    pub fn split(&self, n: usize) -> Vec<WorkloadTrace> {
        let mut out = vec![WorkloadTrace::default(); n.max(1)];
        for (i, e) in self.entries.iter().enumerate() {
            out[i % n.max(1)].entries.push(*e);
        }
        out
    }
}

/// Web protocol messages.
#[derive(Debug, Clone, Copy)]
enum WebMessage {
    Request { id: u64, response_bytes: u32 },
    Response { id: u64 },
}

const REQUEST_WIRE_BYTES: u32 = 360;
const RESPONSE_HEADER_BYTES: u32 = 250;

/// A web server replica: answers every request with the requested number of
/// bytes.
pub struct WebServer {
    requests_served: u64,
    bytes_served: u64,
}

impl WebServer {
    /// Creates an idle server.
    pub fn new() -> Self {
        WebServer {
            requests_served: 0,
            bytes_served: 0,
        }
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests_served
    }

    /// Response bytes served so far.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
}

impl Default for WebServer {
    fn default() -> Self {
        Self::new()
    }
}

impl Application for WebServer {
    fn on_start(&mut self, _ctx: &mut AppCtx) {}

    fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message) {
        if let Some(WebMessage::Request { id, response_bytes }) =
            message.body_as::<WebMessage>().copied()
        {
            self.requests_served += 1;
            self.bytes_served += response_bytes as u64;
            ctx.send(
                from,
                Message::new(
                    response_bytes + RESPONSE_HEADER_BYTES,
                    WebMessage::Response { id },
                ),
            );
        }
    }

    fn on_timer(&mut self, _ctx: &mut AppCtx, _token: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// A trace-playback web client bound to one server replica.
pub struct WebClient {
    server: VnId,
    trace: WorkloadTrace,
    next_entry: usize,
    issued: HashMap<u64, SimTime>,
    latencies: Vec<f64>,
    completed: u64,
}

impl WebClient {
    /// Creates a client that will play `trace` against `server`.
    pub fn new(server: VnId, trace: WorkloadTrace) -> Self {
        WebClient {
            server,
            trace,
            next_entry: 0,
            issued: HashMap::new(),
            latencies: Vec::new(),
            completed: 0,
        }
    }

    /// Completed request latencies in seconds.
    pub fn latencies(&self) -> &[f64] {
        &self.latencies
    }

    /// Requests completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Requests issued but not yet answered.
    pub fn outstanding(&self) -> usize {
        self.issued.len()
    }

    fn schedule_next(&mut self, ctx: &mut AppCtx, playback_start: SimTime) {
        if let Some(entry) = self.trace.entries().get(self.next_entry) {
            let fire_at = playback_start + entry.at;
            let delay = fire_at.duration_since(ctx.now());
            ctx.set_timer(delay, self.next_entry as u64);
        }
    }
}

impl Application for WebClient {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        self.schedule_next(ctx, ctx.now());
    }

    fn on_message(&mut self, ctx: &mut AppCtx, _from: VnId, message: Message) {
        if let Some(WebMessage::Response { id }) = message.body_as::<WebMessage>().copied() {
            if let Some(sent_at) = self.issued.remove(&id) {
                let latency = (ctx.now() - sent_at).as_secs_f64();
                self.latencies.push(latency);
                self.completed += 1;
                ctx.record("web_latency_s", latency);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, token: u64) {
        let idx = token as usize;
        if idx != self.next_entry {
            return;
        }
        let Some(entry) = self.trace.entries().get(idx).copied() else {
            return;
        };
        let id = idx as u64;
        self.issued.insert(id, ctx.now());
        ctx.send(
            self.server,
            Message::new(
                REQUEST_WIRE_BYTES,
                WebMessage::Request {
                    id,
                    response_bytes: entry.response_bytes,
                },
            ),
        );
        self.next_entry += 1;
        // The playback clock is anchored at the original start: the next
        // timer is set relative to this entry's offset.
        let playback_start = ctx.now() - entry.at;
        self.schedule_next(ctx, playback_start);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_trace_matches_requested_rate() {
        let trace = WorkloadTrace::synthetic(SimDuration::from_secs(150), 80.0, 12_000.0, 7);
        let per_sec = trace.len() as f64 / 150.0;
        assert!(
            (60.0..100.0).contains(&per_sec),
            "generated {per_sec} requests/second"
        );
        // Sizes are positive, heavy-tailed but bounded.
        let mean: f64 = trace
            .entries()
            .iter()
            .map(|e| e.response_bytes as f64)
            .sum::<f64>()
            / trace.len() as f64;
        assert!(mean > 3_000.0 && mean < 60_000.0, "mean response {mean}");
        // Entries are time-ordered.
        for w in trace.entries().windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn trace_split_preserves_all_requests() {
        let trace = WorkloadTrace::synthetic(SimDuration::from_secs(30), 50.0, 8_000.0, 3);
        let parts = trace.split(4);
        assert_eq!(parts.len(), 4);
        let total: usize = parts.iter().map(WorkloadTrace::len).sum();
        assert_eq!(total, trace.len());
    }

    #[test]
    fn server_answers_with_requested_size() {
        let mut server = WebServer::new();
        let mut ctx = AppCtx::new(VnId(1), SimTime::ZERO);
        server.on_message(
            &mut ctx,
            VnId(5),
            Message::new(
                REQUEST_WIRE_BYTES,
                WebMessage::Request {
                    id: 9,
                    response_bytes: 20_000,
                },
            ),
        );
        assert_eq!(server.requests_served(), 1);
        assert_eq!(server.bytes_served(), 20_000);
        let actions = ctx.into_actions();
        match &actions[0] {
            mn_edge::AppAction::Send { to, message } => {
                assert_eq!(*to, VnId(5));
                assert_eq!(message.wire_size, 20_000 + RESPONSE_HEADER_BYTES);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn client_plays_back_and_measures_latency() {
        let trace = WorkloadTrace::new(vec![
            TraceEntry {
                at: SimDuration::from_millis(10),
                response_bytes: 1000,
            },
            TraceEntry {
                at: SimDuration::from_millis(30),
                response_bytes: 2000,
            },
        ]);
        let mut client = WebClient::new(VnId(9), trace);
        let mut ctx = AppCtx::new(VnId(0), SimTime::ZERO);
        client.on_start(&mut ctx);
        assert_eq!(ctx.action_count(), 1, "first timer armed");

        // Fire the first timer at its scheduled time.
        let mut ctx = AppCtx::new(VnId(0), SimTime::from_millis(10));
        client.on_timer(&mut ctx, 0);
        assert_eq!(client.outstanding(), 1);
        let actions = ctx.into_actions();
        assert!(actions
            .iter()
            .any(|a| matches!(a, mn_edge::AppAction::Send { to: VnId(9), .. })));

        // The response arrives 42 ms later.
        let mut ctx = AppCtx::new(VnId(0), SimTime::from_millis(52));
        client.on_message(
            &mut ctx,
            VnId(9),
            Message::new(64, WebMessage::Response { id: 0 }),
        );
        assert_eq!(client.completed(), 1);
        assert!((client.latencies()[0] - 0.042).abs() < 1e-9);
    }

    #[test]
    fn duplicate_or_unknown_responses_are_ignored() {
        let mut client = WebClient::new(VnId(9), WorkloadTrace::default());
        let mut ctx = AppCtx::new(VnId(0), SimTime::ZERO);
        client.on_message(
            &mut ctx,
            VnId(9),
            Message::new(64, WebMessage::Response { id: 77 }),
        );
        assert_eq!(client.completed(), 0);
        assert!(client.latencies().is_empty());
    }
}
