//! A gnutella-style flooding overlay.
//!
//! The largest single experiment reported in the paper evaluated the
//! evolution and connectivity of a 10,000-node network of unmodified gnutella
//! clients by mapping 100 VNs onto each of 100 edge machines. This module
//! provides the equivalent workload: each node maintains a small set of
//! overlay neighbours, floods PING messages with a TTL, learns about other
//! peers from the PONGs that come back, and the experiment harness measures
//! how much of the network each node can reach.

use std::any::Any;
use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use mn_edge::{AppCtx, Application, Message};
use mn_packet::VnId;
use mn_util::SimDuration;

/// Configuration of one gnutella node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GnutellaConfig {
    /// Initial neighbour set (bootstrap peers).
    pub neighbours: Vec<VnId>,
    /// TTL of flooded PINGs.
    pub ttl: u8,
    /// Period between PING floods.
    pub ping_period: SimDuration,
    /// Maximum neighbours to keep (new peers learned from PONGs are added up
    /// to this bound).
    pub max_neighbours: usize,
}

impl Default for GnutellaConfig {
    fn default() -> Self {
        GnutellaConfig {
            neighbours: Vec::new(),
            ttl: 7,
            ping_period: SimDuration::from_secs(10),
            max_neighbours: 8,
        }
    }
}

/// Gnutella protocol messages.
#[derive(Debug, Clone, Copy)]
enum GnutellaMessage {
    /// A flooded liveness probe.
    Ping { origin: VnId, id: u64, ttl: u8 },
    /// The answer, routed directly back to the origin.
    Pong {
        responder: VnId,
        #[allow(dead_code)]
        id: u64,
    },
}

const PING_BYTES: u32 = 83;
const PONG_BYTES: u32 = 97;

const TIMER_PING: u64 = 1;

/// One gnutella node.
pub struct GnutellaNode {
    me: VnId,
    config: GnutellaConfig,
    neighbours: Vec<VnId>,
    /// Peers heard from (via PONG) — the node's view of the network.
    known_peers: HashSet<VnId>,
    /// Flood duplicate suppression: (origin, id) pairs already forwarded.
    seen: HashSet<(VnId, u64)>,
    next_ping_id: u64,
    pings_forwarded: u64,
    pongs_received: u64,
}

impl GnutellaNode {
    /// Creates a node with the given bootstrap configuration.
    pub fn new(me: VnId, config: GnutellaConfig) -> Self {
        GnutellaNode {
            me,
            neighbours: config.neighbours.clone(),
            config,
            known_peers: HashSet::new(),
            seen: HashSet::new(),
            next_ping_id: 0,
            pings_forwarded: 0,
            pongs_received: 0,
        }
    }

    /// Peers this node has heard from.
    pub fn known_peers(&self) -> usize {
        self.known_peers.len()
    }

    /// Current neighbour count.
    pub fn neighbour_count(&self) -> usize {
        self.neighbours.len()
    }

    /// PINGs forwarded on behalf of other nodes.
    pub fn pings_forwarded(&self) -> u64 {
        self.pings_forwarded
    }

    /// PONGs received for this node's own floods.
    pub fn pongs_received(&self) -> u64 {
        self.pongs_received
    }

    fn add_peer(&mut self, peer: VnId) {
        if peer == self.me {
            return;
        }
        self.known_peers.insert(peer);
        if self.neighbours.len() < self.config.max_neighbours && !self.neighbours.contains(&peer) {
            self.neighbours.push(peer);
        }
    }

    fn flood(&mut self, ctx: &mut AppCtx, origin: VnId, id: u64, ttl: u8, skip: Option<VnId>) {
        if ttl == 0 {
            return;
        }
        for &n in &self.neighbours {
            if Some(n) == skip || n == origin {
                continue;
            }
            ctx.send(
                n,
                Message::new(PING_BYTES, GnutellaMessage::Ping { origin, id, ttl }),
            );
        }
    }
}

impl Application for GnutellaNode {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        // Stagger the first flood to avoid synchronised bursts.
        let jitter = SimDuration::from_millis((self.me.0 as u64 * 37) % 1000);
        ctx.set_timer(jitter, TIMER_PING);
    }

    fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message) {
        let Some(msg) = message.body_as::<GnutellaMessage>().copied() else {
            return;
        };
        match msg {
            GnutellaMessage::Ping { origin, id, ttl } => {
                self.add_peer(from);
                if origin == self.me || !self.seen.insert((origin, id)) {
                    return;
                }
                // Answer the origin directly and keep flooding.
                ctx.send(
                    origin,
                    Message::new(
                        PONG_BYTES,
                        GnutellaMessage::Pong {
                            responder: self.me,
                            id,
                        },
                    ),
                );
                self.pings_forwarded += 1;
                self.flood(ctx, origin, id, ttl.saturating_sub(1), Some(from));
            }
            GnutellaMessage::Pong { responder, id: _ } => {
                self.pongs_received += 1;
                self.add_peer(responder);
                ctx.record("gnutella_known_peers", self.known_peers.len() as f64);
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, token: u64) {
        if token == TIMER_PING {
            let id = self.next_ping_id;
            self.next_ping_id += 1;
            self.seen.insert((self.me, id));
            self.flood(ctx, self.me, id, self.config.ttl, None);
            ctx.set_timer(self.config.ping_period, TIMER_PING);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_util::SimTime;

    fn node(me: u32, neighbours: &[u32]) -> GnutellaNode {
        GnutellaNode::new(
            VnId(me),
            GnutellaConfig {
                neighbours: neighbours.iter().copied().map(VnId).collect(),
                ..GnutellaConfig::default()
            },
        )
    }

    #[test]
    fn ping_floods_to_all_neighbours_except_sender() {
        let mut n = node(1, &[2, 3, 4]);
        let mut ctx = AppCtx::new(VnId(1), SimTime::ZERO);
        n.on_message(
            &mut ctx,
            VnId(2),
            Message::new(
                PING_BYTES,
                GnutellaMessage::Ping {
                    origin: VnId(9),
                    id: 5,
                    ttl: 3,
                },
            ),
        );
        let sends: Vec<VnId> = ctx
            .into_actions()
            .into_iter()
            .filter_map(|a| match a {
                mn_edge::AppAction::Send { to, .. } => Some(to),
                _ => None,
            })
            .collect();
        // One PONG to the origin + forwards to 3 and 4 (not back to 2).
        assert!(sends.contains(&VnId(9)));
        assert!(sends.contains(&VnId(3)) && sends.contains(&VnId(4)));
        assert!(!sends.iter().filter(|&&v| v == VnId(2)).any(|_| true));
        assert_eq!(n.pings_forwarded(), 1);
    }

    #[test]
    fn duplicate_pings_are_suppressed() {
        let mut n = node(1, &[2, 3]);
        let ping = GnutellaMessage::Ping {
            origin: VnId(9),
            id: 5,
            ttl: 3,
        };
        let mut ctx = AppCtx::new(VnId(1), SimTime::ZERO);
        n.on_message(&mut ctx, VnId(2), Message::new(PING_BYTES, ping));
        let first = ctx.action_count();
        let mut ctx2 = AppCtx::new(VnId(1), SimTime::from_millis(1));
        n.on_message(&mut ctx2, VnId(3), Message::new(PING_BYTES, ping));
        assert!(first > 0);
        assert_eq!(
            ctx2.action_count(),
            0,
            "second copy of the flood is dropped"
        );
    }

    #[test]
    fn ttl_zero_stops_the_flood() {
        let mut n = node(1, &[2, 3]);
        let mut ctx = AppCtx::new(VnId(1), SimTime::ZERO);
        n.on_message(
            &mut ctx,
            VnId(2),
            Message::new(
                PING_BYTES,
                GnutellaMessage::Ping {
                    origin: VnId(9),
                    id: 1,
                    ttl: 1,
                },
            ),
        );
        let sends: Vec<VnId> = ctx
            .into_actions()
            .into_iter()
            .filter_map(|a| match a {
                mn_edge::AppAction::Send { to, .. } => Some(to),
                _ => None,
            })
            .collect();
        // Only the PONG goes out; the decremented TTL of 0 stops forwarding.
        assert_eq!(sends, vec![VnId(9)]);
    }

    #[test]
    fn pongs_grow_the_known_peer_set_and_neighbours() {
        let mut n = node(1, &[2]);
        for peer in 3..9 {
            let mut ctx = AppCtx::new(VnId(1), SimTime::ZERO);
            n.on_message(
                &mut ctx,
                VnId(peer),
                Message::new(
                    PONG_BYTES,
                    GnutellaMessage::Pong {
                        responder: VnId(peer),
                        id: 0,
                    },
                ),
            );
        }
        assert_eq!(n.known_peers(), 6);
        assert_eq!(n.pongs_received(), 6);
        assert!(n.neighbour_count() <= GnutellaConfig::default().max_neighbours);
    }

    #[test]
    fn timer_floods_own_ping() {
        let mut n = node(1, &[2, 3, 4]);
        let mut ctx = AppCtx::new(VnId(1), SimTime::from_secs(1));
        n.on_timer(&mut ctx, TIMER_PING);
        let actions = ctx.into_actions();
        let sends = actions
            .iter()
            .filter(|a| matches!(a, mn_edge::AppAction::Send { .. }))
            .count();
        assert_eq!(sends, 3);
        // And the next round is armed.
        assert!(actions.iter().any(|a| matches!(
            a,
            mn_edge::AppAction::SetTimer {
                token: TIMER_PING,
                ..
            }
        )));
    }
}
