//! Case-study applications (§5 of the paper).
//!
//! Each module implements one of the distributed services the paper runs on
//! ModelNet, written against the [`mn_edge::Application`] callback API so the
//! same code runs over any emulated topology:
//!
//! * [`chord`] / [`cfs`] — a Chord distributed hash table and a CFS-style
//!   block store with a configurable prefetch window (the paper's
//!   reproduction of the CFS/RON experiments, Figures 7–9).
//! * [`web`] — a replicated web service: open-loop clients playing back a
//!   request trace against one to three server replicas (Figure 11).
//! * [`acdc`] — the ACDC two-metric adaptive overlay: nodes self-organise a
//!   distribution tree that meets a delay target at minimum cost and react to
//!   injected delay changes (Figure 12).
//! * [`gnutella`] — a gnutella-style flooding overlay used for the
//!   10,000-node connectivity experiment mentioned in §5.

pub mod acdc;
pub mod cfs;
pub mod chord;
pub mod gnutella;
pub mod web;

pub use acdc::{AcdcConfig, AcdcNode};
pub use cfs::{CfsClient, CfsConfig, CfsServer};
pub use chord::{chord_interval_contains, ChordId, ChordRing};
pub use gnutella::{GnutellaConfig, GnutellaNode};
pub use web::{TraceEntry, WebClient, WebServer, WorkloadTrace};
