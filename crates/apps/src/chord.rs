//! Chord: consistent hashing and finger-table routing.
//!
//! CFS stores blocks on the Chord successor of each block identifier. The
//! paper's CFS experiments run with a small, static membership (the 12 RON
//! nodes), so this implementation models a stable ring: identifiers are
//! 64-bit points on the ring, every node knows the full membership at start
//! (as the experiment scripts arrange), and lookups are resolved by walking
//! fingers — each hop still crosses the emulated network, which is what makes
//! lookup latency sensitive to the underlying topology.

use serde::{Deserialize, Serialize};

use mn_packet::VnId;

/// A point on the Chord identifier circle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChordId(pub u64);

impl ChordId {
    /// Hashes an arbitrary byte string onto the ring (FNV-1a, sufficient for
    /// load spreading in the emulation).
    pub fn hash(data: &[u8]) -> ChordId {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // A final mix spreads short, similar inputs across the whole ring.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        ChordId(h)
    }

    /// The identifier of a VN (its position on the ring).
    pub fn of_vn(vn: VnId) -> ChordId {
        Self::hash(format!("vn-{}", vn.0).as_bytes())
    }

    /// The identifier of block `index` of a named file.
    pub fn of_block(file: &str, index: u64) -> ChordId {
        Self::hash(format!("{file}#{index}").as_bytes())
    }
}

/// Returns `true` if `x` lies in the half-open ring interval `(from, to]`.
pub fn chord_interval_contains(from: ChordId, to: ChordId, x: ChordId) -> bool {
    if from == to {
        // The interval covers the whole ring.
        return true;
    }
    if from < to {
        x > from && x <= to
    } else {
        x > from || x <= to
    }
}

/// A static view of the Chord ring: every member and its identifier.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChordRing {
    /// Members sorted by ring identifier.
    members: Vec<(ChordId, VnId)>,
}

impl ChordRing {
    /// Builds the ring from a membership list.
    pub fn new(members: impl IntoIterator<Item = VnId>) -> Self {
        let mut members: Vec<(ChordId, VnId)> = members
            .into_iter()
            .map(|vn| (ChordId::of_vn(vn), vn))
            .collect();
        members.sort();
        members.dedup();
        ChordRing { members }
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The successor of identifier `id`: the first member whose identifier is
    /// at or after `id` on the circle.
    pub fn successor(&self, id: ChordId) -> Option<VnId> {
        if self.members.is_empty() {
            return None;
        }
        match self.members.iter().find(|(mid, _)| *mid >= id) {
            Some((_, vn)) => Some(*vn),
            None => Some(self.members[0].1),
        }
    }

    /// The member owning (storing) identifier `id` — its successor.
    pub fn owner_of(&self, id: ChordId) -> Option<VnId> {
        self.successor(id)
    }

    /// The finger table of `node`: for each power-of-two offset, the
    /// successor of `node_id + 2^i`. Deduplicated, excluding the node itself
    /// where possible, giving the O(log n) neighbour set Chord routes over.
    pub fn fingers(&self, node: VnId) -> Vec<VnId> {
        let me = ChordId::of_vn(node);
        let mut fingers = Vec::new();
        for i in 0..64u32 {
            let target = ChordId(me.0.wrapping_add(1u64 << i));
            if let Some(s) = self.successor(target) {
                if s != node && !fingers.contains(&s) {
                    fingers.push(s);
                }
            }
        }
        fingers
    }

    /// The next hop `node` uses to route a lookup for `key`: the finger
    /// closest to (but not past) the key, or the key's owner when `node`
    /// already points at it. Returns `None` for a single-node ring.
    pub fn next_hop(&self, node: VnId, key: ChordId) -> Option<VnId> {
        let owner = self.owner_of(key)?;
        if owner == node {
            return None;
        }
        let me = ChordId::of_vn(node);
        // Closest preceding finger: among fingers, the one whose id lies in
        // (me, key) and is closest to the key.
        let mut best: Option<(ChordId, VnId)> = None;
        for f in self.fingers(node) {
            let fid = ChordId::of_vn(f);
            if chord_interval_contains(me, key, fid) {
                let better = match best {
                    None => true,
                    Some((bid, _)) => chord_interval_contains(bid, key, fid),
                };
                if better {
                    best = Some((fid, f));
                }
            }
        }
        Some(best.map(|(_, f)| f).unwrap_or(owner))
    }

    /// Number of hops a lookup from `node` to the owner of `key` takes when
    /// routed greedily through finger tables (an offline estimate used by the
    /// tests and the experiment index).
    pub fn lookup_path_len(&self, node: VnId, key: ChordId) -> usize {
        let mut current = node;
        let mut hops = 0;
        while let Some(next) = self.next_hop(current, key) {
            hops += 1;
            current = next;
            if hops > self.len() {
                break;
            }
        }
        hops
    }

    /// All members.
    pub fn members(&self) -> impl Iterator<Item = VnId> + '_ {
        self.members.iter().map(|(_, vn)| *vn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring(n: u32) -> ChordRing {
        ChordRing::new((0..n).map(VnId))
    }

    #[test]
    fn interval_wraps_around_the_ring() {
        let a = ChordId(100);
        let b = ChordId(200);
        assert!(chord_interval_contains(a, b, ChordId(150)));
        assert!(!chord_interval_contains(a, b, ChordId(250)));
        assert!(chord_interval_contains(b, a, ChordId(250)));
        assert!(chord_interval_contains(b, a, ChordId(50)));
        assert!(!chord_interval_contains(b, a, ChordId(150)));
        // (x, x] is the full ring.
        assert!(chord_interval_contains(a, a, ChordId(999)));
    }

    #[test]
    fn successor_is_circular() {
        let r = ring(12);
        let members: Vec<(ChordId, VnId)> = r.members().map(|m| (ChordId::of_vn(m), m)).collect();
        let max = members.iter().max().unwrap().1;
        // Just past the largest identifier wraps to the smallest.
        let past = ChordId(ChordId::of_vn(max).0.wrapping_add(1));
        let min = members.iter().min().unwrap().1;
        assert_eq!(r.successor(past), Some(min));
    }

    #[test]
    fn owner_is_stable_and_deterministic() {
        let r = ring(12);
        let key = ChordId::of_block("paper.pdf", 3);
        assert_eq!(r.owner_of(key), r.owner_of(key));
        // Ownership is spread: not every block lands on the same node.
        let owners: std::collections::HashSet<VnId> = (0..128)
            .map(|i| r.owner_of(ChordId::of_block("f", i)).unwrap())
            .collect();
        assert!(
            owners.len() >= 6,
            "blocks should spread over the ring: {}",
            owners.len()
        );
    }

    #[test]
    fn fingers_are_logarithmic() {
        let r = ring(64);
        for vn in [VnId(0), VnId(17), VnId(63)] {
            let f = r.fingers(vn);
            assert!(!f.is_empty());
            assert!(
                f.len() <= 16,
                "finger table of a 64-node ring should be O(log n), got {}",
                f.len()
            );
            assert!(!f.contains(&vn));
        }
    }

    #[test]
    fn lookups_terminate_in_logarithmic_hops() {
        let r = ring(64);
        for b in 0..32 {
            let key = ChordId::of_block("data", b);
            let hops = r.lookup_path_len(VnId(5), key);
            assert!(hops <= 10, "lookup took {hops} hops on a 64-node ring");
        }
    }

    #[test]
    fn next_hop_reaches_the_owner() {
        let r = ring(12);
        let key = ChordId::of_block("x", 9);
        let owner = r.owner_of(key).unwrap();
        let mut cur = VnId(0);
        let mut steps = 0;
        while let Some(next) = r.next_hop(cur, key) {
            cur = next;
            steps += 1;
            assert!(steps <= 12);
        }
        assert_eq!(cur, owner);
    }

    #[test]
    fn empty_and_single_rings() {
        let empty = ChordRing::new([]);
        assert!(empty.is_empty());
        assert_eq!(empty.successor(ChordId(1)), None);
        let single = ChordRing::new([VnId(3)]);
        assert_eq!(single.owner_of(ChordId(42)), Some(VnId(3)));
        assert_eq!(single.next_hop(VnId(3), ChordId(42)), None);
    }
}
