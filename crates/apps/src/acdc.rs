//! ACDC: a two-metric adaptive application-layer overlay (§5.3, Figure 12).
//!
//! ACDC builds the lowest-*cost* overlay distribution tree that still meets a
//! target end-to-end *delay* from the root. Cost and delay are independent
//! metrics of the underlying IP network; nodes probe a logarithmic-size set
//! of candidate parents, learn each candidate's cost and delay to the root,
//! and re-parent when the delay target is violated (delay repair) or when a
//! cheaper parent still meets the target (cost optimisation). The Figure 12
//! experiment perturbs IP link delays mid-run and watches the overlay repair
//! itself, then re-optimise cost once conditions subside.
//!
//! Cost between node pairs is supplied at construction as an oracle matrix
//! (computed off-line from the IP topology's per-link costs, exactly as the
//! paper assigns link costs with GT-ITM); delay is *measured* through the
//! emulated network with probe round trips, so injected delay changes are
//! observed the same way the real system would observe them.

use std::any::Any;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mn_edge::{AppCtx, Application, Message};
use mn_packet::VnId;
use mn_util::rngs::derived_rng;
use mn_util::{SimDuration, SimTime};

/// Configuration of one ACDC overlay node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AcdcConfig {
    /// All overlay members (the 120 participants in the paper's run).
    pub members: Vec<VnId>,
    /// The root of the distribution tree.
    pub root: VnId,
    /// Target maximum delay from the root, in seconds (1.5 s in the paper).
    pub delay_target_s: f64,
    /// Period between adaptation rounds.
    pub probe_period: SimDuration,
    /// Number of candidate parents probed each round (O(log n)).
    pub probe_fanout: usize,
    /// Cost oracle: `cost[i][j]` is the IP-path cost between members `i` and
    /// `j` (indexed by position in `members`).
    pub cost: Vec<Vec<f64>>,
    /// RNG seed for candidate selection.
    pub seed: u64,
}

impl AcdcConfig {
    fn index_of(&self, vn: VnId) -> Option<usize> {
        self.members.iter().position(|&m| m == vn)
    }

    fn cost_between(&self, a: VnId, b: VnId) -> f64 {
        match (self.index_of(a), self.index_of(b)) {
            (Some(i), Some(j)) => self.cost[i][j],
            _ => f64::INFINITY,
        }
    }
}

/// Overlay protocol messages.
#[derive(Debug, Clone, Copy)]
enum AcdcMessage {
    /// Measure the RTT to a candidate and learn its state.
    Probe { nonce: u64 },
    /// Probe answer: the responder's current delay to the root (seconds) and
    /// whether it is attached to the tree at all.
    ProbeReply {
        nonce: u64,
        delay_to_root_s: f64,
        attached: bool,
        depth: u32,
    },
}

const PROBE_BYTES: u32 = 120;
const PROBE_REPLY_BYTES: u32 = 140;

/// Timer tokens.
const TIMER_ROUND: u64 = 1;

/// One ACDC overlay node.
pub struct AcdcNode {
    me: VnId,
    config: AcdcConfig,
    /// Current parent (None for the root or while detached).
    parent: Option<VnId>,
    /// Measured one-way delay to the root through the current parent,
    /// in seconds.
    delay_to_root_s: f64,
    /// Depth in the tree (root = 0).
    depth: u32,
    /// Outstanding probes: nonce → (candidate, sent_at).
    outstanding: HashMap<u64, (VnId, SimTime)>,
    /// Results gathered in the current round: candidate → (rtt_s, reply).
    round_results: HashMap<VnId, (f64, f64, bool, u32)>,
    next_nonce: u64,
    parent_switches: u64,
    rng: rand::rngs::StdRng,
}

impl AcdcNode {
    /// Creates an overlay node.
    pub fn new(me: VnId, config: AcdcConfig) -> Self {
        let is_root = me == config.root;
        let seed = config.seed ^ (me.0 as u64);
        AcdcNode {
            me,
            config,
            parent: None,
            delay_to_root_s: if is_root { 0.0 } else { f64::INFINITY },
            depth: if is_root { 0 } else { u32::MAX },
            outstanding: HashMap::new(),
            round_results: HashMap::new(),
            next_nonce: 0,
            parent_switches: 0,
            rng: derived_rng(seed, 0xACDC),
        }
    }

    /// The node's current parent in the tree.
    pub fn parent(&self) -> Option<VnId> {
        self.parent
    }

    /// The node's measured delay to the root, in seconds
    /// (infinite while detached).
    pub fn delay_to_root_s(&self) -> f64 {
        self.delay_to_root_s
    }

    /// Returns `true` once the node has joined the tree (the root always is).
    pub fn is_attached(&self) -> bool {
        self.me == self.config.root || self.parent.is_some()
    }

    /// The cost of the overlay edge to the current parent, from the oracle.
    pub fn parent_cost(&self) -> f64 {
        match self.parent {
            Some(p) => self.config.cost_between(self.me, p),
            None => 0.0,
        }
    }

    /// Number of times this node changed parent.
    pub fn parent_switches(&self) -> u64 {
        self.parent_switches
    }

    fn is_root(&self) -> bool {
        self.me == self.config.root
    }

    fn pick_candidates(&mut self) -> Vec<VnId> {
        use rand::seq::SliceRandom;
        let mut candidates: Vec<VnId> = self
            .config
            .members
            .iter()
            .copied()
            .filter(|&m| m != self.me && Some(m) != self.parent)
            .collect();
        candidates.shuffle(&mut self.rng);
        candidates.truncate(self.config.probe_fanout);
        // Always keep the root in the candidate mix so a detached node can
        // join even with an unlucky shuffle.
        if !candidates.contains(&self.config.root) && self.config.root != self.me {
            candidates.push(self.config.root);
        }
        candidates
    }

    fn start_round(&mut self, ctx: &mut AppCtx) {
        self.round_results.clear();
        // Probe the current parent too, to refresh our own delay estimate.
        let mut targets = self.pick_candidates();
        if let Some(p) = self.parent {
            targets.push(p);
        }
        for candidate in targets {
            let nonce = self.next_nonce;
            self.next_nonce += 1;
            self.outstanding.insert(nonce, (candidate, ctx.now()));
            ctx.send(
                candidate,
                Message::new(PROBE_BYTES, AcdcMessage::Probe { nonce }),
            );
        }
        ctx.set_timer(self.config.probe_period, TIMER_ROUND);
    }

    /// Evaluates the gathered probe results and switches parent if that
    /// improves the (delay, cost) objective.
    fn adapt(&mut self, ctx: &mut AppCtx) {
        if self.is_root() {
            self.delay_to_root_s = 0.0;
            self.depth = 0;
            return;
        }
        let target = self.config.delay_target_s;

        // Refresh our own estimate through the current parent first.
        if let Some(p) = self.parent {
            if let Some(&(rtt, parent_delay, attached, depth)) = self.round_results.get(&p) {
                if attached {
                    self.delay_to_root_s = parent_delay + rtt / 2.0;
                    self.depth = depth.saturating_add(1);
                } else {
                    // Parent fell off the tree: detach.
                    self.parent = None;
                    self.delay_to_root_s = f64::INFINITY;
                }
            }
        }

        // Candidate evaluation: delay through candidate = its delay to root +
        // half the measured RTT; cost = oracle cost of the overlay edge.
        let current_cost = self.parent_cost();
        let current_delay = self.delay_to_root_s;
        let mut best: Option<(VnId, f64, f64)> = None;
        for (&candidate, &(rtt, cand_delay, attached, depth)) in &self.round_results {
            if !attached || Some(candidate) == self.parent {
                continue;
            }
            // Loop prevention: never pick a candidate deeper than us unless we
            // are detached (depth comparison keeps the structure a tree).
            if self.parent.is_some() && depth >= self.depth {
                continue;
            }
            let delay = cand_delay + rtt / 2.0;
            let cost = self.config.cost_between(self.me, candidate);
            let better = match (self.parent, best) {
                (None, None) => true,
                (None, Some((_, bd, _))) => delay < bd,
                (Some(_), _) => {
                    let meets = delay <= target;
                    let current_meets = current_delay <= target;
                    let candidate_beats_best = match best {
                        None => true,
                        Some((_, bd, bc)) => {
                            if current_meets {
                                cost < bc || (cost == bc && delay < bd)
                            } else {
                                delay < bd
                            }
                        }
                    };
                    if current_meets {
                        // Only switch for a cheaper edge that still meets the
                        // delay target.
                        meets && cost < current_cost && candidate_beats_best
                    } else {
                        // Delay repair: take the lowest-delay candidate.
                        delay < current_delay && candidate_beats_best
                    }
                }
            };
            if better {
                best = Some((candidate, delay, cost));
            }
        }
        if let Some((candidate, delay, _)) = best {
            self.parent = Some(candidate);
            self.delay_to_root_s = delay;
            self.depth = self
                .round_results
                .get(&candidate)
                .map(|&(_, _, _, d)| d.saturating_add(1))
                .unwrap_or(u32::MAX);
            self.parent_switches += 1;
            ctx.record("acdc_parent_switches", 1.0);
        }
        ctx.record("acdc_delay_to_root_s", self.delay_to_root_s.min(1e6));
    }
}

impl Application for AcdcNode {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        if self.is_root() {
            self.delay_to_root_s = 0.0;
            self.depth = 0;
        }
        // Stagger the first round so nodes do not probe in lock step.
        let jitter = SimDuration::from_millis_f64(
            (self.me.0 as f64 % 97.0) / 97.0 * self.config.probe_period.as_millis_f64(),
        );
        ctx.set_timer(jitter, TIMER_ROUND);
    }

    fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message) {
        let Some(msg) = message.body_as::<AcdcMessage>().copied() else {
            return;
        };
        match msg {
            AcdcMessage::Probe { nonce } => {
                ctx.send(
                    from,
                    Message::new(
                        PROBE_REPLY_BYTES,
                        AcdcMessage::ProbeReply {
                            nonce,
                            delay_to_root_s: self.delay_to_root_s,
                            attached: self.is_attached(),
                            depth: self.depth,
                        },
                    ),
                );
            }
            AcdcMessage::ProbeReply {
                nonce,
                delay_to_root_s,
                attached,
                depth,
            } => {
                if let Some((candidate, sent_at)) = self.outstanding.remove(&nonce) {
                    let rtt = (ctx.now() - sent_at).as_secs_f64();
                    self.round_results
                        .insert(candidate, (rtt, delay_to_root_s, attached, depth));
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut AppCtx, token: u64) {
        if token == TIMER_ROUND {
            // Evaluate what last round's probes found, then start a new round.
            self.adapt(ctx);
            self.start_round(ctx);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Off-line helpers the Figure 12 harness uses to summarise the overlay.
pub mod summary {
    use super::*;

    /// The total cost of the current overlay tree (sum of every node's edge
    /// to its parent) given read access to every node.
    pub fn tree_cost<'a>(nodes: impl Iterator<Item = &'a AcdcNode>) -> f64 {
        nodes.map(|n| n.parent_cost()).sum()
    }

    /// The worst delay to the root among attached nodes, in seconds, and the
    /// number of attached nodes.
    pub fn max_delay<'a>(nodes: impl Iterator<Item = &'a AcdcNode>) -> (f64, usize) {
        let mut max = 0.0f64;
        let mut attached = 0;
        for n in nodes {
            if n.is_attached() && n.delay_to_root_s().is_finite() {
                attached += 1;
                max = max.max(n.delay_to_root_s());
            }
        }
        (max, attached)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(n: u32) -> AcdcConfig {
        let members: Vec<VnId> = (0..n).map(VnId).collect();
        // Simple symmetric cost: |i - j|.
        let cost = (0..n)
            .map(|i| (0..n).map(|j| (i as f64 - j as f64).abs()).collect())
            .collect();
        AcdcConfig {
            members,
            root: VnId(0),
            delay_target_s: 1.5,
            probe_period: SimDuration::from_secs(5),
            probe_fanout: 3,
            cost,
            seed: 9,
        }
    }

    #[test]
    fn root_is_attached_with_zero_delay() {
        let node = AcdcNode::new(VnId(0), config(8));
        assert!(node.is_attached());
        assert_eq!(node.delay_to_root_s(), 0.0);
        assert_eq!(node.parent(), None);
        assert_eq!(node.parent_cost(), 0.0);
    }

    #[test]
    fn probe_gets_a_reply_with_state() {
        let mut root = AcdcNode::new(VnId(0), config(8));
        let mut ctx = AppCtx::new(VnId(0), SimTime::from_millis(5));
        root.on_message(
            &mut ctx,
            VnId(3),
            Message::new(PROBE_BYTES, AcdcMessage::Probe { nonce: 42 }),
        );
        let actions = ctx.into_actions();
        match &actions[0] {
            mn_edge::AppAction::Send { to, message } => {
                assert_eq!(*to, VnId(3));
                match message.body_as::<AcdcMessage>() {
                    Some(AcdcMessage::ProbeReply {
                        nonce,
                        attached,
                        delay_to_root_s,
                        ..
                    }) => {
                        assert_eq!(*nonce, 42);
                        assert!(*attached);
                        assert_eq!(*delay_to_root_s, 0.0);
                    }
                    other => panic!("unexpected reply {other:?}"),
                }
            }
            other => panic!("unexpected action {other:?}"),
        }
    }

    #[test]
    fn detached_node_joins_through_the_root() {
        let mut node = AcdcNode::new(VnId(5), config(8));
        assert!(!node.is_attached());
        // Simulate a completed probe of the root with a 100 ms RTT.
        node.round_results.insert(VnId(0), (0.1, 0.0, true, 0));
        let mut ctx = AppCtx::new(VnId(5), SimTime::from_secs(1));
        node.adapt(&mut ctx);
        assert_eq!(node.parent(), Some(VnId(0)));
        assert!((node.delay_to_root_s() - 0.05).abs() < 1e-9);
        assert_eq!(node.parent_switches(), 1);
    }

    #[test]
    fn attached_node_switches_to_cheaper_parent_only_within_target() {
        let mut node = AcdcNode::new(VnId(5), config(8));
        // Attach through the root (cost |5-0| = 5).
        node.round_results.insert(VnId(0), (0.2, 0.0, true, 0));
        let mut ctx = AppCtx::new(VnId(5), SimTime::from_secs(1));
        node.adapt(&mut ctx);
        assert_eq!(node.parent(), Some(VnId(0)));
        // Candidate VnId(4): cost 1, delay well within target, shallower
        // depth requirement satisfied (depth 0 < our depth 1 is false — it
        // must be strictly shallower than us, and our depth is 1, so only
        // depth-0 candidates qualify; use the root's sibling at depth 0).
        node.round_results.clear();
        node.round_results
            .insert(node.parent.unwrap(), (0.2, 0.0, true, 0));
        node.round_results.insert(VnId(4), (0.1, 0.05, true, 0));
        let mut ctx = AppCtx::new(VnId(5), SimTime::from_secs(6));
        node.adapt(&mut ctx);
        assert_eq!(
            node.parent(),
            Some(VnId(4)),
            "cheaper parent within target wins"
        );
        // A cheaper candidate that would violate the delay target is refused.
        node.round_results.clear();
        node.round_results.insert(VnId(4), (0.1, 0.05, true, 0));
        node.round_results.insert(VnId(6), (0.1, 5.0, true, 0));
        let mut ctx = AppCtx::new(VnId(5), SimTime::from_secs(11));
        node.adapt(&mut ctx);
        assert_eq!(node.parent(), Some(VnId(4)));
    }

    #[test]
    fn delay_violation_triggers_repair_even_at_higher_cost() {
        let mut node = AcdcNode::new(VnId(5), config(8));
        node.round_results.insert(VnId(4), (0.2, 0.0, true, 0));
        let mut ctx = AppCtx::new(VnId(5), SimTime::from_secs(1));
        node.adapt(&mut ctx);
        assert_eq!(node.parent(), Some(VnId(4)));
        // The parent's delay to root balloons past the target; a higher-cost
        // but faster candidate exists.
        node.round_results.clear();
        node.round_results.insert(VnId(4), (0.2, 3.0, true, 0));
        node.round_results.insert(VnId(1), (0.2, 0.0, true, 0));
        let mut ctx = AppCtx::new(VnId(5), SimTime::from_secs(6));
        node.adapt(&mut ctx);
        assert_eq!(node.parent(), Some(VnId(1)), "delay repair overrides cost");
    }

    #[test]
    fn summary_helpers_aggregate() {
        let cfg = config(4);
        let mut nodes: Vec<AcdcNode> = (0..4)
            .map(|i| AcdcNode::new(VnId(i), cfg.clone()))
            .collect();
        // Attach 1..3 directly to the root by hand.
        for (i, node) in nodes.iter_mut().enumerate().skip(1) {
            node.parent = Some(VnId(0));
            node.delay_to_root_s = 0.1 * i as f64;
        }
        let cost = summary::tree_cost(nodes.iter());
        assert_eq!(cost, 1.0 + 2.0 + 3.0);
        let (max_delay, attached) = summary::max_delay(nodes.iter());
        assert_eq!(attached, 4);
        assert!((max_delay - 0.3).abs() < 1e-12);
    }

    #[test]
    fn start_round_probes_a_bounded_candidate_set() {
        let mut node = AcdcNode::new(VnId(3), config(32));
        let mut ctx = AppCtx::new(VnId(3), SimTime::ZERO);
        node.start_round(&mut ctx);
        let sends = ctx
            .into_actions()
            .iter()
            .filter(|a| matches!(a, mn_edge::AppAction::Send { .. }))
            .count();
        // fanout + root (+ parent when attached).
        assert!(sends <= node.config.probe_fanout + 2);
        assert!(sends >= node.config.probe_fanout);
    }
}
