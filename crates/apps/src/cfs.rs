//! CFS: a cooperative block store over Chord, with prefetching.
//!
//! The paper reproduces the CFS paper's experiments: a 1 MB file is split
//! into 8 KB blocks striped across the participating nodes (each block lives
//! on the Chord successor of its identifier); a client downloads the file
//! while keeping up to a *prefetch window* of block fetches outstanding, and
//! the download speed as a function of that window is the published result
//! (CFS Figures 6–7, reproduced as this repository's Figures 7–8
//! experiments). Lookups are routed through Chord finger tables, so both the
//! lookup and the fetch cross the emulated wide-area network.

use std::any::Any;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mn_edge::{AppCtx, Application, Message};
use mn_packet::VnId;
use mn_util::SimTime;

use crate::chord::{ChordId, ChordRing};

/// Protocol messages exchanged by CFS nodes.
#[derive(Debug, Clone)]
pub enum CfsMessage {
    /// A Chord lookup for the owner of `key`, routed hop by hop; the answer
    /// goes directly back to `origin`.
    Lookup {
        /// The block identifier being resolved.
        key: ChordId,
        /// Block index (carried for the client's bookkeeping).
        block: u64,
        /// Node that issued the lookup.
        origin: VnId,
    },
    /// The lookup answer: `owner` stores the block.
    LookupResult {
        /// Block index.
        block: u64,
        /// Owning node.
        owner: VnId,
    },
    /// A request for the contents of a block.
    BlockRequest {
        /// Block index.
        block: u64,
    },
    /// The block contents (represented only by their size).
    BlockReply {
        /// Block index.
        block: u64,
        /// Payload bytes.
        bytes: u32,
    },
}

/// Wire sizes of the control messages (bytes).
const LOOKUP_BYTES: u32 = 60;
const LOOKUP_RESULT_BYTES: u32 = 48;
const BLOCK_REQUEST_BYTES: u32 = 44;
const BLOCK_HEADER_BYTES: u32 = 64;

/// Configuration of a CFS download experiment.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CfsConfig {
    /// Name of the file (determines block placement).
    pub file_seed: u64,
    /// Total file size in bytes (the paper uses 1 MB).
    pub file_bytes: u64,
    /// Block size in bytes (CFS uses 8 KB).
    pub block_bytes: u32,
    /// Prefetch window in bytes: the maximum amount of block data allowed to
    /// be outstanding (looked-up or requested but not yet received).
    pub prefetch_window: u64,
}

impl Default for CfsConfig {
    fn default() -> Self {
        CfsConfig {
            file_seed: 1,
            file_bytes: 1024 * 1024,
            block_bytes: 8 * 1024,
            prefetch_window: 24 * 1024,
        }
    }
}

impl CfsConfig {
    /// Number of blocks in the file.
    pub fn block_count(&self) -> u64 {
        self.file_bytes.div_ceil(self.block_bytes as u64)
    }

    fn file_name(&self) -> String {
        format!("file-{}", self.file_seed)
    }

    fn block_key(&self, block: u64) -> ChordId {
        ChordId::of_block(&self.file_name(), block)
    }
}

/// A CFS server: stores the blocks whose identifiers it owns and answers
/// Chord lookups.
pub struct CfsServer {
    me: VnId,
    ring: ChordRing,
    blocks_served: u64,
    lookups_forwarded: u64,
    lookups_answered: u64,
}

impl CfsServer {
    /// Creates a server for `me` with the given static ring membership.
    pub fn new(me: VnId, ring: ChordRing) -> Self {
        CfsServer {
            me,
            ring,
            blocks_served: 0,
            lookups_forwarded: 0,
            lookups_answered: 0,
        }
    }

    /// Blocks served so far.
    pub fn blocks_served(&self) -> u64 {
        self.blocks_served
    }

    /// Lookups this node answered as owner.
    pub fn lookups_answered(&self) -> u64 {
        self.lookups_answered
    }

    /// Lookups this node forwarded along the ring.
    pub fn lookups_forwarded(&self) -> u64 {
        self.lookups_forwarded
    }

    fn handle(&mut self, ctx: &mut AppCtx, from: VnId, message: CfsMessage, block_bytes: u32) {
        match message {
            CfsMessage::Lookup { key, block, origin } => match self.ring.next_hop(self.me, key) {
                None => {
                    // We are the owner: answer the origin directly.
                    self.lookups_answered += 1;
                    ctx.send(
                        origin,
                        Message::new(
                            LOOKUP_RESULT_BYTES,
                            CfsMessage::LookupResult {
                                block,
                                owner: self.me,
                            },
                        ),
                    );
                }
                Some(next) => {
                    self.lookups_forwarded += 1;
                    ctx.send(
                        next,
                        Message::new(LOOKUP_BYTES, CfsMessage::Lookup { key, block, origin }),
                    );
                }
            },
            CfsMessage::BlockRequest { block } => {
                self.blocks_served += 1;
                ctx.send(
                    from,
                    Message::new(
                        block_bytes + BLOCK_HEADER_BYTES,
                        CfsMessage::BlockReply {
                            block,
                            bytes: block_bytes,
                        },
                    ),
                );
            }
            _ => {}
        }
    }
}

impl Application for CfsServer {
    fn on_start(&mut self, _ctx: &mut AppCtx) {}

    fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message) {
        if let Ok(msg) = message.into_body::<CfsMessage>() {
            // The reply carries the standard CFS 8 KB block.
            self.handle(ctx, from, *msg, 8 * 1024);
        }
    }

    fn on_timer(&mut self, _ctx: &mut AppCtx, _token: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Per-block download state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockState {
    NotStarted,
    LookingUp,
    Fetching,
    Done,
}

/// The CFS client: downloads the configured file through the ring while
/// honouring the prefetch window, and records the achieved speed.
pub struct CfsClient {
    me: VnId,
    ring: ChordRing,
    config: CfsConfig,
    state: Vec<BlockState>,
    owners: HashMap<u64, VnId>,
    outstanding_bytes: u64,
    completed: u64,
    started_at: Option<SimTime>,
    finished_at: Option<SimTime>,
    server: CfsServer,
}

impl CfsClient {
    /// Creates a client on `me` (which also serves its share of blocks).
    pub fn new(me: VnId, ring: ChordRing, config: CfsConfig) -> Self {
        let blocks = config.block_count() as usize;
        CfsClient {
            me,
            server: CfsServer::new(me, ring.clone()),
            ring,
            config,
            state: vec![BlockState::NotStarted; blocks],
            owners: HashMap::new(),
            outstanding_bytes: 0,
            completed: 0,
            started_at: None,
            finished_at: None,
        }
    }

    /// Returns `true` once every block has arrived.
    pub fn is_complete(&self) -> bool {
        self.finished_at.is_some()
    }

    /// Download duration, once complete.
    pub fn download_time(&self) -> Option<mn_util::SimDuration> {
        Some(self.finished_at? - self.started_at?)
    }

    /// Download speed in kilobytes per second (the unit of the paper's CFS
    /// figures), once complete.
    pub fn download_speed_kbytes_per_sec(&self) -> Option<f64> {
        let t = self.download_time()?.as_secs_f64();
        if t <= 0.0 {
            return None;
        }
        Some(self.config.file_bytes as f64 / 1024.0 / t)
    }

    /// Blocks received so far.
    pub fn blocks_completed(&self) -> u64 {
        self.completed
    }

    fn issue_work(&mut self, ctx: &mut AppCtx) {
        let window = self
            .config
            .prefetch_window
            .max(self.config.block_bytes as u64);
        let block_bytes = self.config.block_bytes as u64;
        for block in 0..self.config.block_count() {
            if self.outstanding_bytes + block_bytes > window {
                break;
            }
            let idx = block as usize;
            if self.state[idx] != BlockState::NotStarted {
                continue;
            }
            let key = self.config.block_key(block);
            let owner_known = self.owners.get(&block).copied().or_else(|| {
                // Blocks we own ourselves need no network activity at all for
                // the lookup; resolve locally like the real client would.
                let owner = self.ring.owner_of(key)?;
                (owner == self.me).then_some(owner)
            });
            self.outstanding_bytes += block_bytes;
            match owner_known {
                Some(owner) if owner == self.me => {
                    // Local block: complete immediately.
                    self.state[idx] = BlockState::Done;
                    self.outstanding_bytes -= block_bytes;
                    self.completed += 1;
                }
                Some(owner) => {
                    self.state[idx] = BlockState::Fetching;
                    ctx.send(
                        owner,
                        Message::new(BLOCK_REQUEST_BYTES, CfsMessage::BlockRequest { block }),
                    );
                }
                None => {
                    self.state[idx] = BlockState::LookingUp;
                    let first_hop = self
                        .ring
                        .next_hop(self.me, key)
                        .expect("multi-node ring has a next hop");
                    ctx.send(
                        first_hop,
                        Message::new(
                            LOOKUP_BYTES,
                            CfsMessage::Lookup {
                                key,
                                block,
                                origin: self.me,
                            },
                        ),
                    );
                }
            }
        }
        if self.completed == self.config.block_count() && self.finished_at.is_none() {
            self.finished_at = Some(ctx.now());
            if let Some(speed) = self.download_speed_kbytes_per_sec() {
                ctx.record("cfs_download_kbytes_per_sec", speed);
            }
        }
    }
}

impl Application for CfsClient {
    fn on_start(&mut self, ctx: &mut AppCtx) {
        self.started_at = Some(ctx.now());
        self.issue_work(ctx);
    }

    fn on_message(&mut self, ctx: &mut AppCtx, from: VnId, message: Message) {
        let Ok(msg) = message.into_body::<CfsMessage>() else {
            return;
        };
        match *msg {
            CfsMessage::LookupResult { block, owner } => {
                self.owners.insert(block, owner);
                let idx = block as usize;
                if self.state[idx] == BlockState::LookingUp {
                    self.state[idx] = BlockState::Fetching;
                    ctx.send(
                        owner,
                        Message::new(BLOCK_REQUEST_BYTES, CfsMessage::BlockRequest { block }),
                    );
                }
            }
            CfsMessage::BlockReply { block, bytes } => {
                let idx = block as usize;
                if self.state[idx] == BlockState::Fetching {
                    self.state[idx] = BlockState::Done;
                    self.completed += 1;
                    self.outstanding_bytes = self
                        .outstanding_bytes
                        .saturating_sub(bytes.max(self.config.block_bytes) as u64);
                    self.issue_work(ctx);
                }
            }
            // The client node also serves its share of the ring.
            other => self
                .server
                .handle(ctx, from, other, self.config.block_bytes),
        }
    }

    fn on_timer(&mut self, _ctx: &mut AppCtx, _token: u64) {}

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_block_count() {
        let c = CfsConfig::default();
        assert_eq!(c.block_count(), 128);
        let odd = CfsConfig {
            file_bytes: 100_000,
            block_bytes: 8192,
            ..CfsConfig::default()
        };
        assert_eq!(odd.block_count(), 13);
    }

    #[test]
    fn client_completes_locally_owned_blocks_without_network() {
        // Single-node ring: every block is local, the download completes in
        // the on_start callback without sending anything.
        let ring = ChordRing::new([VnId(0)]);
        let mut client = CfsClient::new(VnId(0), ring, CfsConfig::default());
        let mut ctx = AppCtx::new(VnId(0), SimTime::from_secs(1));
        client.on_start(&mut ctx);
        assert!(client.is_complete());
        assert_eq!(client.blocks_completed(), 128);
        // Only the completion record, no sends.
        let actions = ctx.into_actions();
        assert!(actions
            .iter()
            .all(|a| !matches!(a, mn_edge::AppAction::Send { .. })));
    }

    #[test]
    fn client_respects_prefetch_window() {
        let members: Vec<VnId> = (0..12).map(VnId).collect();
        let ring = ChordRing::new(members.clone());
        let config = CfsConfig {
            prefetch_window: 16 * 1024, // two blocks
            ..CfsConfig::default()
        };
        let mut client = CfsClient::new(members[0], ring, config);
        let mut ctx = AppCtx::new(members[0], SimTime::ZERO);
        client.on_start(&mut ctx);
        let sends = ctx
            .into_actions()
            .into_iter()
            .filter(|a| matches!(a, mn_edge::AppAction::Send { .. }))
            .count();
        // At most two remote blocks may be outstanding (locally owned blocks
        // complete without counting against the window).
        assert!(
            sends <= 2,
            "issued {sends} remote operations with a 2-block window"
        );
        assert!(!client.is_complete());
    }

    #[test]
    fn server_answers_lookups_it_owns_and_forwards_the_rest() {
        let members: Vec<VnId> = (0..12).map(VnId).collect();
        let ring = ChordRing::new(members.clone());
        let key = ChordId::of_block("file-1", 7);
        let owner = ring.owner_of(key).unwrap();
        let mut server = CfsServer::new(owner, ring.clone());
        let mut ctx = AppCtx::new(owner, SimTime::ZERO);
        server.handle(
            &mut ctx,
            VnId(0),
            CfsMessage::Lookup {
                key,
                block: 7,
                origin: VnId(0),
            },
            8192,
        );
        assert_eq!(server.lookups_answered(), 1);
        assert_eq!(server.lookups_forwarded(), 0);
        // A non-owner forwards.
        let not_owner = members.iter().copied().find(|&m| m != owner).unwrap();
        let mut other = CfsServer::new(not_owner, ring);
        let mut ctx2 = AppCtx::new(not_owner, SimTime::ZERO);
        other.handle(
            &mut ctx2,
            VnId(0),
            CfsMessage::Lookup {
                key,
                block: 7,
                origin: VnId(0),
            },
            8192,
        );
        assert_eq!(other.lookups_forwarded(), 1);
    }

    #[test]
    fn server_serves_blocks_with_full_wire_size() {
        let ring = ChordRing::new((0..4).map(VnId));
        let mut server = CfsServer::new(VnId(1), ring);
        let mut ctx = AppCtx::new(VnId(1), SimTime::ZERO);
        server.handle(
            &mut ctx,
            VnId(2),
            CfsMessage::BlockRequest { block: 3 },
            8192,
        );
        assert_eq!(server.blocks_served(), 1);
        let actions = ctx.into_actions();
        match &actions[0] {
            mn_edge::AppAction::Send { to, message } => {
                assert_eq!(*to, VnId(2));
                assert_eq!(message.wire_size, 8192 + BLOCK_HEADER_BYTES);
            }
            other => panic!("unexpected action {other:?}"),
        }
    }
}
