//! The annotated target-network graph.
//!
//! Nodes are classified as clients, stubs or transits, borrowing the
//! transit–stub terminology the paper takes from Calvert/Doar/Zegura. Client
//! nodes are the attachment points for virtual nodes (VNs); stub and transit
//! nodes form the interior of the network. Links are undirected and carry the
//! attributes a ModelNet pipe needs: bandwidth, one-way latency, loss rate and
//! a maximum queue length.

use std::collections::VecDeque;
use std::fmt;

use serde::{Deserialize, Serialize};

use mn_util::{DataRate, SimDuration};

/// Identifier of a node within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an undirected link within a [`Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Role of a node in the target topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// An end host: the attachment point of one or more virtual nodes.
    Client,
    /// A router inside a stub domain.
    Stub,
    /// A router inside a transit (backbone) domain.
    Transit,
}

impl NodeKind {
    /// Returns `true` for [`NodeKind::Client`].
    pub fn is_client(self) -> bool {
        matches!(self, NodeKind::Client)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeKind::Client => write!(f, "client"),
            NodeKind::Stub => write!(f, "stub"),
            NodeKind::Transit => write!(f, "transit"),
        }
    }
}

/// Attributes of a target-network link, as understood by the emulation core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkAttrs {
    /// Link bandwidth.
    pub bandwidth: DataRate,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Probability in `[0, 1]` that a packet traversing the link is dropped
    /// independently of congestion.
    pub loss_rate: f64,
    /// Maximum number of packets the link's queue may buffer before
    /// congestion drops occur.
    pub queue_len: usize,
}

impl LinkAttrs {
    /// Default queue length used when a source does not specify one.
    ///
    /// dummynet's default of 50 slots is also what the paper's pipes use
    /// unless configured otherwise.
    pub const DEFAULT_QUEUE_LEN: usize = 50;

    /// Creates link attributes with the given bandwidth and latency, no
    /// random loss and the default queue length.
    pub fn new(bandwidth: DataRate, latency: SimDuration) -> Self {
        LinkAttrs {
            bandwidth,
            latency,
            loss_rate: 0.0,
            queue_len: Self::DEFAULT_QUEUE_LEN,
        }
    }

    /// Sets the random loss rate (clamped to `[0, 1]`).
    pub fn with_loss(mut self, loss_rate: f64) -> Self {
        self.loss_rate = loss_rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the maximum queue length in packets.
    pub fn with_queue_len(mut self, queue_len: usize) -> Self {
        self.queue_len = queue_len;
        self
    }

    /// The link's reliability, `1 - loss_rate`.
    pub fn reliability(&self) -> f64 {
        1.0 - self.loss_rate
    }
}

/// A node record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// The node's role.
    pub kind: NodeKind,
    /// Optional human-readable name (preserved through GML round trips).
    pub name: Option<String>,
}

/// An undirected link record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// Emulation attributes.
    pub attrs: LinkAttrs,
}

impl Link {
    /// Given one endpoint of the link, returns the other.
    ///
    /// Returns `None` if `node` is not an endpoint.
    pub fn other(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

/// Errors raised while constructing or editing a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A referenced node does not exist.
    UnknownNode(NodeId),
    /// A referenced link does not exist.
    UnknownLink(LinkId),
    /// Attempted to create a self-loop.
    SelfLoop(NodeId),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownNode(n) => write!(f, "unknown node {n}"),
            TopologyError::UnknownLink(l) => write!(f, "unknown link {l}"),
            TopologyError::SelfLoop(n) => write!(f, "self loop on node {n}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An annotated target-network graph.
///
/// # Examples
///
/// ```
/// use mn_topology::{LinkAttrs, NodeKind, Topology};
/// use mn_util::{DataRate, SimDuration};
///
/// let mut topo = Topology::new();
/// let a = topo.add_node(NodeKind::Client);
/// let r = topo.add_node(NodeKind::Stub);
/// let b = topo.add_node(NodeKind::Client);
/// let attrs = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5));
/// topo.add_link(a, r, attrs).unwrap();
/// topo.add_link(r, b, attrs).unwrap();
/// assert_eq!(topo.node_count(), 3);
/// assert_eq!(topo.client_nodes().count(), 2);
/// assert!(topo.is_connected());
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// Adjacency: for each node, the list of (neighbor, link) pairs.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Adds a node of the given kind and returns its identifier.
    pub fn add_node(&mut self, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node { kind, name: None });
        self.adjacency.push(Vec::new());
        id
    }

    /// Adds a named node of the given kind and returns its identifier.
    pub fn add_named_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = self.add_node(kind);
        self.nodes[id.0].name = Some(name.into());
        id
    }

    /// Adds an undirected link between `a` and `b`.
    ///
    /// Parallel links are permitted (they occur in real AS-level graphs);
    /// self-loops are not.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        attrs: LinkAttrs,
    ) -> Result<LinkId, TopologyError> {
        self.check_node(a)?;
        self.check_node(b)?;
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        let id = LinkId(self.links.len());
        self.links.push(Link { a, b, attrs });
        self.adjacency[a.0].push((b, id));
        self.adjacency[b.0].push((a, id));
        Ok(id)
    }

    fn check_node(&self, n: NodeId) -> Result<(), TopologyError> {
        if n.0 < self.nodes.len() {
            Ok(())
        } else {
            Err(TopologyError::UnknownNode(n))
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Returns the node record, or an error for an unknown id.
    pub fn node(&self, id: NodeId) -> Result<&Node, TopologyError> {
        self.nodes.get(id.0).ok_or(TopologyError::UnknownNode(id))
    }

    /// Returns the link record, or an error for an unknown id.
    pub fn link(&self, id: LinkId) -> Result<&Link, TopologyError> {
        self.links.get(id.0).ok_or(TopologyError::UnknownLink(id))
    }

    /// Mutable access to a link's attributes (used by annotation and by the
    /// dynamic network-change machinery).
    pub fn link_attrs_mut(&mut self, id: LinkId) -> Result<&mut LinkAttrs, TopologyError> {
        self.links
            .get_mut(id.0)
            .map(|l| &mut l.attrs)
            .ok_or(TopologyError::UnknownLink(id))
    }

    /// Iterator over all node identifiers.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// Iterator over all `(id, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> + '_ {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Iterator over all link identifiers.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(LinkId)
    }

    /// Iterator over all `(id, link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Iterator over the client (end-host) node identifiers.
    pub fn client_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes()
            .filter(|(_, n)| n.kind.is_client())
            .map(|(id, _)| id)
    }

    /// Iterator over `(neighbor, link)` pairs adjacent to `node`.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.adjacency
            .get(node.0)
            .map(|v| v.iter().copied())
            .into_iter()
            .flatten()
    }

    /// Degree (number of incident links) of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency.get(node.0).map_or(0, |v| v.len())
    }

    /// Breadth-first search from `start`; returns, for each node, the hop
    /// distance from `start` or `None` if unreachable.
    pub fn bfs_distances(&self, start: NodeId) -> Vec<Option<usize>> {
        let mut dist = vec![None; self.nodes.len()];
        if start.0 >= self.nodes.len() {
            return dist;
        }
        let mut queue = VecDeque::new();
        dist[start.0] = Some(0);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            let d = dist[u.0].unwrap();
            for (v, _) in self.neighbors(u) {
                if dist[v.0].is_none() {
                    dist[v.0] = Some(d + 1);
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Returns `true` if every node is reachable from every other node.
    /// An empty topology is considered connected.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        self.bfs_distances(NodeId(0)).iter().all(Option::is_some)
    }

    /// Returns the set of nodes in the same connected component as `start`.
    pub fn connected_component(&self, start: NodeId) -> Vec<NodeId> {
        self.bfs_distances(start)
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_some())
            .map(|(i, _)| NodeId(i))
            .collect()
    }

    /// The hop-count diameter of the topology (longest shortest path), or 0
    /// for an empty or disconnected topology.
    ///
    /// This is an O(V·E) computation; it is intended for experiment setup and
    /// reporting, not for per-packet work.
    pub fn hop_diameter(&self) -> usize {
        let mut diameter = 0;
        for start in self.node_ids() {
            let dists = self.bfs_distances(start);
            if dists.iter().any(Option::is_none) {
                return 0;
            }
            if let Some(max) = dists.iter().flatten().max() {
                diameter = diameter.max(*max);
            }
        }
        diameter
    }

    /// Applies `f` to every link's attributes. This is the annotation hook the
    /// Create phase exposes: users may overwrite attributes a topology source
    /// did not provide (e.g. assigning loss rates to every transit link).
    pub fn annotate_links<F>(&mut self, mut f: F)
    where
        F: FnMut(LinkId, NodeKind, NodeKind, &mut LinkAttrs),
    {
        for i in 0..self.links.len() {
            let (a, b) = (self.links[i].a, self.links[i].b);
            let ka = self.nodes[a.0].kind;
            let kb = self.nodes[b.0].kind;
            f(LinkId(i), ka, kb, &mut self.links[i].attrs);
        }
    }

    /// Total number of client nodes.
    pub fn client_count(&self) -> usize {
        self.client_nodes().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs() -> LinkAttrs {
        LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5))
    }

    fn line(n: usize) -> Topology {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|_| t.add_node(NodeKind::Stub)).collect();
        for w in nodes.windows(2) {
            t.add_link(w[0], w[1], attrs()).unwrap();
        }
        t
    }

    #[test]
    fn add_nodes_and_links() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Client);
        let b = t.add_named_node(NodeKind::Transit, "core-1");
        let l = t.add_link(a, b, attrs()).unwrap();
        assert_eq!(t.node_count(), 2);
        assert_eq!(t.link_count(), 1);
        assert_eq!(t.link(l).unwrap().other(a), Some(b));
        assert_eq!(t.link(l).unwrap().other(b), Some(a));
        assert_eq!(t.node(b).unwrap().name.as_deref(), Some("core-1"));
        assert_eq!(t.degree(a), 1);
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Client);
        assert_eq!(t.add_link(a, a, attrs()), Err(TopologyError::SelfLoop(a)));
    }

    #[test]
    fn unknown_node_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Client);
        let bogus = NodeId(99);
        assert_eq!(
            t.add_link(a, bogus, attrs()),
            Err(TopologyError::UnknownNode(bogus))
        );
        assert!(t.node(bogus).is_err());
        assert!(t.link(LinkId(99)).is_err());
    }

    #[test]
    fn parallel_links_allowed() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Stub);
        let b = t.add_node(NodeKind::Stub);
        t.add_link(a, b, attrs()).unwrap();
        t.add_link(a, b, attrs()).unwrap();
        assert_eq!(t.link_count(), 2);
        assert_eq!(t.degree(a), 2);
    }

    #[test]
    fn bfs_distances_on_line() {
        let t = line(5);
        let d = t.bfs_distances(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
        assert_eq!(t.hop_diameter(), 4);
        assert!(t.is_connected());
    }

    #[test]
    fn disconnected_detection() {
        let mut t = line(3);
        let lonely = t.add_node(NodeKind::Client);
        assert!(!t.is_connected());
        assert_eq!(t.hop_diameter(), 0);
        assert_eq!(t.connected_component(lonely), vec![lonely]);
        assert_eq!(t.connected_component(NodeId(0)).len(), 3);
    }

    #[test]
    fn client_iteration() {
        let mut t = Topology::new();
        t.add_node(NodeKind::Client);
        t.add_node(NodeKind::Stub);
        t.add_node(NodeKind::Client);
        t.add_node(NodeKind::Transit);
        assert_eq!(t.client_count(), 2);
        assert_eq!(
            t.client_nodes().collect::<Vec<_>>(),
            vec![NodeId(0), NodeId(2)]
        );
    }

    #[test]
    fn annotate_links_rewrites_attrs() {
        let mut t = line(4);
        t.annotate_links(|_, _, _, attrs| {
            attrs.loss_rate = 0.01;
            attrs.queue_len = 10;
        });
        for (_, l) in t.links() {
            assert_eq!(l.attrs.loss_rate, 0.01);
            assert_eq!(l.attrs.queue_len, 10);
        }
    }

    #[test]
    fn link_attrs_builder() {
        let a = attrs().with_loss(0.25).with_queue_len(7);
        assert_eq!(a.loss_rate, 0.25);
        assert_eq!(a.queue_len, 7);
        assert!((a.reliability() - 0.75).abs() < 1e-12);
        // Loss clamps into [0, 1].
        assert_eq!(attrs().with_loss(7.0).loss_rate, 1.0);
        assert_eq!(attrs().with_loss(-7.0).loss_rate, 0.0);
    }

    #[test]
    fn link_attrs_mut_updates() {
        let mut t = line(2);
        let id = LinkId(0);
        t.link_attrs_mut(id).unwrap().bandwidth = DataRate::from_mbps(99);
        assert_eq!(t.link(id).unwrap().attrs.bandwidth, DataRate::from_mbps(99));
        assert!(t.link_attrs_mut(LinkId(5)).is_err());
    }

    #[test]
    fn error_display() {
        assert_eq!(
            TopologyError::UnknownNode(NodeId(3)).to_string(),
            "unknown node n3"
        );
        assert_eq!(
            TopologyError::SelfLoop(NodeId(1)).to_string(),
            "self loop on node n1"
        );
        assert_eq!(
            TopologyError::UnknownLink(LinkId(2)).to_string(),
            "unknown link l2"
        );
    }
}
