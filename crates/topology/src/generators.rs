//! Synthetic topology generators.
//!
//! The paper's evaluation uses several topology families:
//!
//! * a **star** with all VNs connected to a central point (Table 1),
//! * **direct multi-hop paths** between sender/receiver pairs (Figure 4),
//! * a **ring** of transit routers with VNs hanging off each (Figure 5),
//! * GT-ITM style **transit–stub** graphs for the replicated-web and ACDC
//!   case studies (Figures 10–12),
//! * plus generic building blocks (dumbbell, full mesh, Waxman random graph)
//!   commonly used when constructing Internet-like evaluation scenarios.
//!
//! Each generator produces a plain [`Topology`]; clients are marked
//! [`NodeKind::Client`] so that later phases know where VNs may be bound.

use rand::Rng;

use mn_util::rngs::derived_rng;
use mn_util::{DataRate, SimDuration};

use crate::graph::{LinkAttrs, NodeId, NodeKind, Topology};

/// Parameters for [`ring_topology`], defaulting to the paper's distillation
/// experiment: 20 routers interconnected at 20 Mb/s, 20 VNs per router on
/// individual 2 Mb/s links (419 pipes shared by 400 VNs in the undistilled
/// form — 420 undirected links, of which one closes the ring).
#[derive(Debug, Clone)]
pub struct RingParams {
    /// Number of routers on the ring.
    pub routers: usize,
    /// Number of client nodes attached to each router.
    pub clients_per_router: usize,
    /// Bandwidth of ring (transit) links.
    pub ring_bandwidth: DataRate,
    /// Latency of ring links.
    pub ring_latency: SimDuration,
    /// Bandwidth of client access links.
    pub client_bandwidth: DataRate,
    /// Latency of client access links.
    pub client_latency: SimDuration,
}

impl Default for RingParams {
    fn default() -> Self {
        RingParams {
            routers: 20,
            clients_per_router: 20,
            ring_bandwidth: DataRate::from_mbps(20),
            ring_latency: SimDuration::from_millis(5),
            client_bandwidth: DataRate::from_mbps(2),
            client_latency: SimDuration::from_millis(1),
        }
    }
}

/// Generates a ring of routers with clients attached to each router.
pub fn ring_topology(params: &RingParams) -> Topology {
    let mut topo = Topology::new();
    let ring_attrs = LinkAttrs::new(params.ring_bandwidth, params.ring_latency);
    let client_attrs = LinkAttrs::new(params.client_bandwidth, params.client_latency);

    let routers: Vec<NodeId> = (0..params.routers)
        .map(|i| topo.add_named_node(NodeKind::Transit, format!("ring-{i}")))
        .collect();
    for i in 0..params.routers {
        let next = (i + 1) % params.routers;
        if params.routers > 1 && !(params.routers == 2 && i == 1) {
            topo.add_link(routers[i], routers[next], ring_attrs)
                .expect("ring link endpoints exist");
        }
    }
    for (i, &router) in routers.iter().enumerate() {
        for j in 0..params.clients_per_router {
            let client = topo.add_named_node(NodeKind::Client, format!("vn-{i}-{j}"));
            topo.add_link(client, router, client_attrs)
                .expect("client link endpoints exist");
        }
    }
    topo
}

/// Parameters for [`star_topology`], defaulting to the Table 1 experiment:
/// every VN connected to a central point by a 10 Mb/s, 5 ms pipe so that all
/// paths consist of exactly two hops.
#[derive(Debug, Clone)]
pub struct StarParams {
    /// Number of client nodes.
    pub clients: usize,
    /// Bandwidth of each spoke link.
    pub spoke_bandwidth: DataRate,
    /// Latency of each spoke link.
    pub spoke_latency: SimDuration,
}

impl Default for StarParams {
    fn default() -> Self {
        StarParams {
            clients: 1120,
            spoke_bandwidth: DataRate::from_mbps(10),
            spoke_latency: SimDuration::from_millis(5),
        }
    }
}

/// Generates a star: one central router, `clients` clients each connected by
/// an individual spoke link.
pub fn star_topology(params: &StarParams) -> Topology {
    let mut topo = Topology::new();
    let center = topo.add_named_node(NodeKind::Transit, "hub");
    let attrs = LinkAttrs::new(params.spoke_bandwidth, params.spoke_latency);
    for i in 0..params.clients {
        let c = topo.add_named_node(NodeKind::Client, format!("vn-{i}"));
        topo.add_link(c, center, attrs)
            .expect("spoke endpoints exist");
    }
    topo
}

/// Parameters for [`path_pairs_topology`], defaulting to the Figure 4 capacity
/// experiment: sender/receiver pairs connected by a configurable number of
/// 10 Mb/s pipes with 10 ms end-to-end latency.
#[derive(Debug, Clone)]
pub struct PathPairsParams {
    /// Number of sender/receiver pairs.
    pub pairs: usize,
    /// Number of pipes (hops) on each sender→receiver path.
    pub hops: usize,
    /// Per-pipe bandwidth.
    pub bandwidth: DataRate,
    /// End-to-end latency of the whole path (split evenly across hops).
    pub end_to_end_latency: SimDuration,
}

impl Default for PathPairsParams {
    fn default() -> Self {
        PathPairsParams {
            pairs: 24,
            hops: 1,
            bandwidth: DataRate::from_mbps(10),
            end_to_end_latency: SimDuration::from_millis(10),
        }
    }
}

/// Generates disjoint linear paths, one per sender/receiver pair.
///
/// Each path has `hops` links; interior nodes are stubs. Returns the topology
/// together with the list of `(sender, receiver)` client pairs.
pub fn path_pairs_topology(params: &PathPairsParams) -> (Topology, Vec<(NodeId, NodeId)>) {
    assert!(params.hops >= 1, "a path needs at least one hop");
    let mut topo = Topology::new();
    let mut pairs = Vec::with_capacity(params.pairs);
    let per_hop_latency =
        SimDuration::from_nanos(params.end_to_end_latency.as_nanos() / params.hops as u64);
    let attrs = LinkAttrs::new(params.bandwidth, per_hop_latency);
    for p in 0..params.pairs {
        let sender = topo.add_named_node(NodeKind::Client, format!("send-{p}"));
        let mut prev = sender;
        for h in 0..params.hops - 1 {
            let mid = topo.add_named_node(NodeKind::Stub, format!("mid-{p}-{h}"));
            topo.add_link(prev, mid, attrs)
                .expect("path endpoints exist");
            prev = mid;
        }
        let receiver = topo.add_named_node(NodeKind::Client, format!("recv-{p}"));
        topo.add_link(prev, receiver, attrs)
            .expect("path endpoints exist");
        pairs.push((sender, receiver));
    }
    (topo, pairs)
}

/// Parameters for [`dumbbell_topology`]: `n` clients on each side of a single
/// shared bottleneck link.
#[derive(Debug, Clone)]
pub struct DumbbellParams {
    /// Clients on each side.
    pub clients_per_side: usize,
    /// Bandwidth of client access links.
    pub access_bandwidth: DataRate,
    /// Latency of client access links.
    pub access_latency: SimDuration,
    /// Bandwidth of the shared bottleneck link.
    pub bottleneck_bandwidth: DataRate,
    /// Latency of the shared bottleneck link.
    pub bottleneck_latency: SimDuration,
    /// Queue length of the bottleneck link in packets.
    pub bottleneck_queue: usize,
}

impl Default for DumbbellParams {
    fn default() -> Self {
        DumbbellParams {
            clients_per_side: 8,
            access_bandwidth: DataRate::from_mbps(100),
            access_latency: SimDuration::from_millis(1),
            bottleneck_bandwidth: DataRate::from_mbps(10),
            bottleneck_latency: SimDuration::from_millis(20),
            bottleneck_queue: 50,
        }
    }
}

/// Generates the classic dumbbell: two routers joined by a bottleneck with
/// clients fanned out on each side. Returns the topology and the
/// `(left_clients, right_clients)` lists.
pub fn dumbbell_topology(params: &DumbbellParams) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
    let mut topo = Topology::new();
    let left_router = topo.add_named_node(NodeKind::Stub, "left-router");
    let right_router = topo.add_named_node(NodeKind::Stub, "right-router");
    let bottleneck = LinkAttrs::new(params.bottleneck_bandwidth, params.bottleneck_latency)
        .with_queue_len(params.bottleneck_queue);
    topo.add_link(left_router, right_router, bottleneck)
        .expect("router endpoints exist");
    let access = LinkAttrs::new(params.access_bandwidth, params.access_latency);
    let mut left = Vec::new();
    let mut right = Vec::new();
    for i in 0..params.clients_per_side {
        let l = topo.add_named_node(NodeKind::Client, format!("left-{i}"));
        topo.add_link(l, left_router, access)
            .expect("access endpoints exist");
        left.push(l);
        let r = topo.add_named_node(NodeKind::Client, format!("right-{i}"));
        topo.add_link(r, right_router, access)
            .expect("access endpoints exist");
        right.push(r);
    }
    (topo, left, right)
}

/// Generates a full mesh of `n` clients, every pair joined by a dedicated
/// link with the given attributes. Used for end-to-end style scenarios and in
/// tests.
pub fn full_mesh_topology(n: usize, attrs: LinkAttrs) -> Topology {
    let mut topo = Topology::new();
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| topo.add_named_node(NodeKind::Client, format!("vn-{i}")))
        .collect();
    for i in 0..n {
        for j in (i + 1)..n {
            topo.add_link(nodes[i], nodes[j], attrs)
                .expect("mesh endpoints exist");
        }
    }
    topo
}

/// Parameters for [`waxman_topology`]: the Waxman random-graph model used by
/// BRITE-style generators. Nodes are placed uniformly in a unit square and a
/// link between nodes at distance `d` exists with probability
/// `alpha * exp(-d / (beta * L))` where `L` is the maximum distance.
#[derive(Debug, Clone)]
pub struct WaxmanParams {
    /// Number of router nodes.
    pub nodes: usize,
    /// Waxman `alpha` (overall link density).
    pub alpha: f64,
    /// Waxman `beta` (relative weight of long links).
    pub beta: f64,
    /// Link bandwidth.
    pub bandwidth: DataRate,
    /// Latency per unit of Euclidean distance (the unit square is scaled to
    /// this one-way delay across its diagonal).
    pub diameter_latency: SimDuration,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WaxmanParams {
    fn default() -> Self {
        WaxmanParams {
            nodes: 50,
            alpha: 0.25,
            beta: 0.2,
            bandwidth: DataRate::from_mbps(100),
            diameter_latency: SimDuration::from_millis(30),
            seed: 1,
        }
    }
}

/// Generates a Waxman random graph of stub routers, patched up to be
/// connected (a spanning chain is added over any disconnected remainder).
pub fn waxman_topology(params: &WaxmanParams) -> Topology {
    let mut rng = derived_rng(params.seed, 0xAC5);
    let mut topo = Topology::new();
    let positions: Vec<(f64, f64)> = (0..params.nodes)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let nodes: Vec<NodeId> = (0..params.nodes)
        .map(|i| topo.add_named_node(NodeKind::Stub, format!("w-{i}")))
        .collect();
    let max_dist = 2f64.sqrt();
    for i in 0..params.nodes {
        for j in (i + 1)..params.nodes {
            let dx = positions[i].0 - positions[j].0;
            let dy = positions[i].1 - positions[j].1;
            let d = (dx * dx + dy * dy).sqrt();
            let p = params.alpha * (-d / (params.beta * max_dist)).exp();
            if rng.gen::<f64>() < p {
                let latency = params.diameter_latency.mul_f64(d / max_dist);
                let attrs =
                    LinkAttrs::new(params.bandwidth, latency.max(SimDuration::from_micros(100)));
                topo.add_link(nodes[i], nodes[j], attrs)
                    .expect("waxman endpoints exist");
            }
        }
    }
    // Patch connectivity: link each disconnected node to its predecessor.
    for i in 1..params.nodes {
        let reachable = topo.bfs_distances(nodes[0]);
        if reachable[nodes[i].index()].is_none() {
            let attrs = LinkAttrs::new(params.bandwidth, params.diameter_latency.mul_f64(0.5));
            topo.add_link(nodes[i - 1], nodes[i], attrs)
                .expect("patch endpoints exist");
        }
    }
    topo
}

/// Per-class link attributes for a transit–stub topology. The defaults follow
/// the ACDC experiment in the paper: 155 Mb/s transit–transit, 45 Mb/s
/// transit–stub and 100 Mb/s stub–stub links.
#[derive(Debug, Clone)]
pub struct TransitStubLinkClasses {
    /// Transit–transit (backbone) links.
    pub transit_transit: LinkAttrs,
    /// Transit–stub (peering) links.
    pub transit_stub: LinkAttrs,
    /// Stub–stub (intra-domain) links.
    pub stub_stub: LinkAttrs,
    /// Client access links.
    pub client: LinkAttrs,
}

impl Default for TransitStubLinkClasses {
    fn default() -> Self {
        TransitStubLinkClasses {
            transit_transit: LinkAttrs::new(DataRate::from_mbps(155), SimDuration::from_millis(20)),
            transit_stub: LinkAttrs::new(DataRate::from_mbps(45), SimDuration::from_millis(10)),
            stub_stub: LinkAttrs::new(DataRate::from_mbps(100), SimDuration::from_millis(5)),
            client: LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1)),
        }
    }
}

/// Parameters for [`transit_stub_topology`], a GT-ITM-style hierarchical
/// generator: a ring-plus-chords backbone of transit domains, each transit
/// node sponsoring several stub domains, each stub domain containing a few
/// routers with clients attached.
#[derive(Debug, Clone)]
pub struct TransitStubParams {
    /// Number of transit domains.
    pub transit_domains: usize,
    /// Routers per transit domain.
    pub transit_nodes_per_domain: usize,
    /// Stub domains attached to each transit router.
    pub stubs_per_transit_node: usize,
    /// Routers per stub domain.
    pub stub_nodes_per_domain: usize,
    /// Clients attached to each stub router.
    pub clients_per_stub_node: usize,
    /// Link attribute classes.
    pub link_classes: TransitStubLinkClasses,
    /// Extra random intra-domain chords probability.
    pub extra_edge_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TransitStubParams {
    fn default() -> Self {
        TransitStubParams {
            transit_domains: 2,
            transit_nodes_per_domain: 4,
            stubs_per_transit_node: 3,
            stub_nodes_per_domain: 4,
            clients_per_stub_node: 2,
            link_classes: TransitStubLinkClasses::default(),
            extra_edge_prob: 0.2,
            seed: 7,
        }
    }
}

impl TransitStubParams {
    /// Total number of nodes the generator will produce.
    pub fn expected_nodes(&self) -> usize {
        let transit = self.transit_domains * self.transit_nodes_per_domain;
        let stub_routers = transit * self.stubs_per_transit_node * self.stub_nodes_per_domain;
        let clients = stub_routers * self.clients_per_stub_node;
        transit + stub_routers + clients
    }

    /// Chooses parameters so the total node count is close to `target`
    /// (within the granularity of whole stub domains), holding the default
    /// shape ratios. Used to build the paper's "320-node" and "600-node"
    /// transit–stub graphs.
    pub fn sized_for(target: usize, seed: u64) -> Self {
        let mut params = TransitStubParams {
            seed,
            ..TransitStubParams::default()
        };
        // Each transit node sponsors stubs_per_transit_node domains of
        // stub_nodes_per_domain routers with clients_per_stub_node clients:
        // weight per transit node = 1 + s*(r*(1+c)).
        let per_transit = 1 + params.stubs_per_transit_node
            * params.stub_nodes_per_domain
            * (1 + params.clients_per_stub_node);
        let needed_transit = (target / per_transit).max(2);
        params.transit_domains = (needed_transit / params.transit_nodes_per_domain).max(1);
        params.transit_nodes_per_domain = (needed_transit / params.transit_domains).clamp(2, 16);
        params
    }
}

/// The generated transit–stub topology along with the node classification
/// lists that case studies need (e.g. to pick client stub domains).
#[derive(Debug, Clone)]
pub struct TransitStubTopology {
    /// The graph itself.
    pub topology: Topology,
    /// All transit routers.
    pub transit_nodes: Vec<NodeId>,
    /// All stub routers, grouped by stub domain.
    pub stub_domains: Vec<Vec<NodeId>>,
    /// All client nodes, grouped by the stub domain they attach to.
    pub clients_by_domain: Vec<Vec<NodeId>>,
}

/// Generates a GT-ITM-style transit–stub topology.
pub fn transit_stub_topology(params: &TransitStubParams) -> TransitStubTopology {
    let mut rng = derived_rng(params.seed, 0x7575);
    let mut topo = Topology::new();
    let classes = &params.link_classes;

    // Transit domains: each a ring of routers with chords; domains joined in
    // a ring of inter-domain links.
    let mut transit_nodes = Vec::new();
    let mut domain_first = Vec::new();
    for d in 0..params.transit_domains {
        let nodes: Vec<NodeId> = (0..params.transit_nodes_per_domain)
            .map(|i| topo.add_named_node(NodeKind::Transit, format!("t{d}-{i}")))
            .collect();
        for i in 0..nodes.len() {
            let next = (i + 1) % nodes.len();
            if nodes.len() > 1 && !(nodes.len() == 2 && i == 1) {
                topo.add_link(nodes[i], nodes[next], classes.transit_transit)
                    .expect("transit ring endpoints exist");
            }
        }
        // Random chords inside the domain.
        for i in 0..nodes.len() {
            for j in (i + 2)..nodes.len() {
                if rng.gen::<f64>() < params.extra_edge_prob {
                    topo.add_link(nodes[i], nodes[j], classes.transit_transit)
                        .expect("transit chord endpoints exist");
                }
            }
        }
        domain_first.push(nodes[0]);
        transit_nodes.extend(nodes);
    }
    for d in 0..params.transit_domains {
        let next = (d + 1) % params.transit_domains;
        if params.transit_domains > 1 && !(params.transit_domains == 2 && d == 1) {
            topo.add_link(domain_first[d], domain_first[next], classes.transit_transit)
                .expect("inter-domain endpoints exist");
        }
    }

    // Stub domains: a small connected cluster per (transit node, slot).
    let mut stub_domains = Vec::new();
    let mut clients_by_domain = Vec::new();
    for (ti, &tnode) in transit_nodes.iter().enumerate() {
        for s in 0..params.stubs_per_transit_node {
            let routers: Vec<NodeId> = (0..params.stub_nodes_per_domain)
                .map(|i| topo.add_named_node(NodeKind::Stub, format!("s{ti}-{s}-{i}")))
                .collect();
            // Chain plus random chords keeps each stub domain connected.
            for w in routers.windows(2) {
                topo.add_link(w[0], w[1], classes.stub_stub)
                    .expect("stub chain endpoints exist");
            }
            for i in 0..routers.len() {
                for j in (i + 2)..routers.len() {
                    if rng.gen::<f64>() < params.extra_edge_prob {
                        topo.add_link(routers[i], routers[j], classes.stub_stub)
                            .expect("stub chord endpoints exist");
                    }
                }
            }
            // Peering link from the stub domain to its transit router.
            topo.add_link(routers[0], tnode, classes.transit_stub)
                .expect("peering endpoints exist");
            // Clients.
            let mut clients = Vec::new();
            for (ri, &router) in routers.iter().enumerate() {
                for c in 0..params.clients_per_stub_node {
                    let client =
                        topo.add_named_node(NodeKind::Client, format!("c{ti}-{s}-{ri}-{c}"));
                    topo.add_link(client, router, classes.client)
                        .expect("client endpoints exist");
                    clients.push(client);
                }
            }
            stub_domains.push(routers);
            clients_by_domain.push(clients);
        }
    }

    TransitStubTopology {
        topology: topo,
        transit_nodes,
        stub_domains,
        clients_by_domain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_matches_paper_dimensions() {
        let topo = ring_topology(&RingParams::default());
        // 20 routers + 400 clients.
        assert_eq!(topo.node_count(), 420);
        assert_eq!(topo.client_count(), 400);
        // 20 ring links + 400 access links = 420 undirected links
        // (the paper counts 419 pipes because its pipe count collapses the
        // ring-closing link differently; the graph itself is a 20-cycle).
        assert_eq!(topo.link_count(), 420);
        assert!(topo.is_connected());
    }

    #[test]
    fn ring_with_two_routers_has_no_duplicate_link() {
        let params = RingParams {
            routers: 2,
            clients_per_router: 1,
            ..RingParams::default()
        };
        let topo = ring_topology(&params);
        assert_eq!(topo.node_count(), 4);
        assert_eq!(topo.link_count(), 3);
        assert!(topo.is_connected());
    }

    #[test]
    fn star_matches_table1_dimensions() {
        let topo = star_topology(&StarParams::default());
        assert_eq!(topo.node_count(), 1121);
        assert_eq!(topo.client_count(), 1120);
        assert_eq!(topo.link_count(), 1120);
        // Every client-to-client path is exactly two hops.
        let clients: Vec<NodeId> = topo.client_nodes().take(2).collect();
        let dists = topo.bfs_distances(clients[0]);
        assert_eq!(dists[clients[1].index()], Some(2));
    }

    #[test]
    fn path_pairs_hop_count_and_latency_split() {
        let params = PathPairsParams {
            pairs: 3,
            hops: 4,
            ..PathPairsParams::default()
        };
        let (topo, pairs) = path_pairs_topology(&params);
        assert_eq!(pairs.len(), 3);
        // Each path: sender + 3 interior + receiver = 5 nodes, 4 links.
        assert_eq!(topo.node_count(), 15);
        assert_eq!(topo.link_count(), 12);
        let (s, r) = pairs[0];
        let dists = topo.bfs_distances(s);
        assert_eq!(dists[r.index()], Some(4));
        // Latency split evenly: 10 ms / 4 hops = 2.5 ms.
        let (_, link) = topo.links().next().unwrap();
        assert_eq!(link.attrs.latency, SimDuration::from_micros(2500));
    }

    #[test]
    fn single_hop_path_is_direct() {
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: 1,
            hops: 1,
            ..PathPairsParams::default()
        });
        assert_eq!(topo.node_count(), 2);
        assert_eq!(topo.link_count(), 1);
        let (s, r) = pairs[0];
        assert_eq!(topo.bfs_distances(s)[r.index()], Some(1));
    }

    #[test]
    fn dumbbell_structure() {
        let (topo, left, right) = dumbbell_topology(&DumbbellParams::default());
        assert_eq!(left.len(), 8);
        assert_eq!(right.len(), 8);
        assert_eq!(topo.node_count(), 18);
        assert_eq!(topo.link_count(), 17);
        // Left-to-right paths are 3 hops (access, bottleneck, access).
        let dists = topo.bfs_distances(left[0]);
        assert_eq!(dists[right[0].index()], Some(3));
    }

    #[test]
    fn full_mesh_link_count() {
        let attrs = LinkAttrs::new(DataRate::from_mbps(1), SimDuration::from_millis(1));
        let topo = full_mesh_topology(10, attrs);
        assert_eq!(topo.node_count(), 10);
        assert_eq!(topo.link_count(), 45);
        assert_eq!(topo.hop_diameter(), 1);
    }

    #[test]
    fn waxman_is_connected_and_deterministic() {
        let params = WaxmanParams::default();
        let a = waxman_topology(&params);
        let b = waxman_topology(&params);
        assert!(a.is_connected());
        assert_eq!(a.node_count(), 50);
        assert_eq!(a.link_count(), b.link_count());
    }

    #[test]
    fn waxman_density_increases_with_alpha() {
        let sparse = waxman_topology(&WaxmanParams {
            alpha: 0.05,
            ..WaxmanParams::default()
        });
        let dense = waxman_topology(&WaxmanParams {
            alpha: 0.9,
            ..WaxmanParams::default()
        });
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    fn transit_stub_structure() {
        let params = TransitStubParams::default();
        let ts = transit_stub_topology(&params);
        assert!(ts.topology.is_connected());
        assert_eq!(ts.transit_nodes.len(), 8);
        assert_eq!(ts.stub_domains.len(), 8 * 3);
        assert_eq!(ts.clients_by_domain.len(), 24);
        let total_clients: usize = ts.clients_by_domain.iter().map(Vec::len).sum();
        assert_eq!(total_clients, ts.topology.client_count());
        assert_eq!(ts.topology.node_count(), params.expected_nodes());
    }

    #[test]
    fn transit_stub_link_classes_applied() {
        let ts = transit_stub_topology(&TransitStubParams::default());
        let classes = TransitStubLinkClasses::default();
        let mut saw_tt = false;
        let mut saw_client = false;
        for (_, link) in ts.topology.links() {
            let ka = ts.topology.node(link.a).unwrap().kind;
            let kb = ts.topology.node(link.b).unwrap().kind;
            if ka == NodeKind::Transit && kb == NodeKind::Transit {
                assert_eq!(link.attrs.bandwidth, classes.transit_transit.bandwidth);
                saw_tt = true;
            }
            if ka == NodeKind::Client || kb == NodeKind::Client {
                assert_eq!(link.attrs.bandwidth, classes.client.bandwidth);
                saw_client = true;
            }
        }
        assert!(saw_tt && saw_client);
    }

    #[test]
    fn transit_stub_sized_for_reaches_target_scale() {
        let params = TransitStubParams::sized_for(320, 3);
        let n = params.expected_nodes();
        assert!(
            (200..=480).contains(&n),
            "sized_for(320) produced {n} nodes"
        );
        let ts = transit_stub_topology(&params);
        assert!(ts.topology.is_connected());

        let params = TransitStubParams::sized_for(600, 3);
        let n = params.expected_nodes();
        assert!(
            (400..=800).contains(&n),
            "sized_for(600) produced {n} nodes"
        );
    }

    #[test]
    fn transit_stub_deterministic_for_seed() {
        let a = transit_stub_topology(&TransitStubParams::default());
        let b = transit_stub_topology(&TransitStubParams::default());
        assert_eq!(a.topology.link_count(), b.topology.link_count());
        let c = transit_stub_topology(&TransitStubParams {
            seed: 99,
            ..TransitStubParams::default()
        });
        // Different seed shifts the random chords (node counts stay fixed).
        assert_eq!(a.topology.node_count(), c.topology.node_count());
    }
}
