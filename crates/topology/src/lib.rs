//! Target network topologies — the *Create* phase of ModelNet.
//!
//! The first phase of the ModelNet pipeline produces a network topology: a
//! graph whose edges represent network links and whose nodes represent
//! clients, stubs or transits. Sources in the paper include Internet traces,
//! BGP dumps and synthetic topology generators; all are normalised to GML
//! (Graph Modelling Language) and may be annotated with attributes such as
//! loss rates that the original source did not provide.
//!
//! This crate provides:
//!
//! * [`Topology`] — the annotated graph (clients, stubs, transits; links with
//!   bandwidth, latency, loss and queue length).
//! * [`gml`] — a GML parser and writer so topologies round-trip through the
//!   same interchange format the paper uses.
//! * [`generators`] — synthetic generators: ring, star, dumbbell, full mesh,
//!   Waxman random graphs and a GT-ITM-style transit–stub generator used by
//!   the replicated-web and ACDC case studies.
//! * [`ron`] — a synthetic "RON-like" measured mesh standing in for the
//!   published RON inter-node characteristics used by the CFS case study
//!   (see DESIGN.md for the substitution rationale).

pub mod generators;
pub mod gml;
pub mod graph;
pub mod measurements;
pub mod paths;
pub mod ron;

pub use graph::{LinkAttrs, LinkId, NodeId, NodeKind, Topology, TopologyError};
pub use paths::{shortest_path, shortest_path_latency, GraphPath, PathMetric};
