//! Shortest paths and spanning trees over the target-network graph.
//!
//! These graph-level computations are used in three places:
//!
//! * the **distillation** phase collapses interior paths into single pipes and
//!   needs the latency-shortest path between node pairs,
//! * the **ACDC** case study compares the overlay's cost against an off-line
//!   minimum spanning tree and its delay against an off-line shortest path
//!   tree (Figure 12),
//! * experiment setup code frequently needs path latency/bottleneck summaries
//!   for sanity checks.
//!
//! Routing inside the emulation core uses its own pipe-level machinery in
//! `mn-routing`; the functions here operate on the *undirected target graph*.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use mn_util::{DataRate, SimDuration};

use crate::graph::{LinkId, NodeId, Topology};

/// The cost metric used for shortest-path computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMetric {
    /// Minimise the sum of link latencies (ties broken by hop count).
    Latency,
    /// Minimise the number of hops.
    Hops,
}

/// A path through the target graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphPath {
    /// The node sequence, beginning with the source and ending with the
    /// destination.
    pub nodes: Vec<NodeId>,
    /// The link sequence, one entry per hop.
    pub links: Vec<LinkId>,
}

impl GraphPath {
    /// Number of hops (links) on the path.
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Sum of link latencies along the path.
    pub fn total_latency(&self, topo: &Topology) -> SimDuration {
        self.links
            .iter()
            .map(|&l| topo.link(l).expect("path link exists").attrs.latency)
            .sum()
    }

    /// Minimum link bandwidth along the path (the path's bottleneck).
    pub fn bottleneck_bandwidth(&self, topo: &Topology) -> DataRate {
        self.links
            .iter()
            .map(|&l| topo.link(l).expect("path link exists").attrs.bandwidth)
            .fold(DataRate::from_bps(u64::MAX), DataRate::min)
    }

    /// Product of link reliabilities along the path.
    pub fn reliability(&self, topo: &Topology) -> f64 {
        self.links
            .iter()
            .map(|&l| topo.link(l).expect("path link exists").attrs.reliability())
            .product()
    }

    /// Minimum queue length along the path.
    pub fn bottleneck_queue(&self, topo: &Topology) -> usize {
        self.links
            .iter()
            .map(|&l| topo.link(l).expect("path link exists").attrs.queue_len)
            .min()
            .unwrap_or(0)
    }
}

fn link_cost(topo: &Topology, link: LinkId, metric: PathMetric) -> u64 {
    match metric {
        // +1 ns per hop serves as the hop-count tie breaker.
        PathMetric::Latency => {
            topo.link(link)
                .expect("link exists")
                .attrs
                .latency
                .as_nanos()
                + 1
        }
        PathMetric::Hops => 1,
    }
}

/// Single-source shortest paths (Dijkstra) from `source` under `metric`.
///
/// Returns, for every node, the predecessor `(node, link)` on a shortest path
/// from `source`, or `None` if unreachable (or for the source itself).
///
/// Equal-cost ties are pinned to the lowest `(predecessor, link)` pair. Every
/// candidate predecessor of a node is finalised (popped) before the node
/// itself — link costs are at least 1 — so the choice is a pure function of
/// the distance labels, independent of heap relaxation order, and agrees
/// with the distiller's path collapse on tied topologies.
pub fn shortest_path_tree(
    topo: &Topology,
    source: NodeId,
    metric: PathMetric,
) -> Vec<Option<(NodeId, LinkId)>> {
    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut pred: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    if source.index() >= n {
        return pred;
    }
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for (v, link) in topo.neighbors(u) {
            // A zero-bandwidth link models a failure: it carries no traffic,
            // so no path may use it (the routing view of fault injection).
            if topo
                .link(link)
                .expect("link exists")
                .attrs
                .bandwidth
                .is_zero()
            {
                continue;
            }
            let nd = d.saturating_add(link_cost(topo, link, metric));
            let improved = nd < dist[v.index()];
            let tie_break =
                nd == dist[v.index()] && pred[v.index()].is_some_and(|(p, l)| (u, link) < (p, l));
            if improved || tie_break {
                dist[v.index()] = nd;
                pred[v.index()] = Some((u, link));
                if improved {
                    heap.push(Reverse((nd, v)));
                }
            }
        }
    }
    pred
}

/// Computes the shortest path between two nodes under `metric`, or `None` if
/// the destination is unreachable.
pub fn shortest_path(
    topo: &Topology,
    source: NodeId,
    dest: NodeId,
    metric: PathMetric,
) -> Option<GraphPath> {
    if source == dest {
        return Some(GraphPath {
            nodes: vec![source],
            links: vec![],
        });
    }
    let pred = shortest_path_tree(topo, source, metric);
    pred.get(dest.index())?.as_ref()?;
    let mut nodes = vec![dest];
    let mut links = Vec::new();
    let mut cur = dest;
    while cur != source {
        let (p, link) = pred[cur.index()]?;
        links.push(link);
        nodes.push(p);
        cur = p;
    }
    nodes.reverse();
    links.reverse();
    Some(GraphPath { nodes, links })
}

/// Computes the latency of the shortest path between two nodes, or `None` if
/// unreachable.
pub fn shortest_path_latency(topo: &Topology, source: NodeId, dest: NodeId) -> Option<SimDuration> {
    shortest_path(topo, source, dest, PathMetric::Latency).map(|p| p.total_latency(topo))
}

/// An edge selected by [`minimum_spanning_tree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MstEdge {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// The link realising the edge.
    pub link: LinkId,
}

/// Computes a minimum spanning tree (Prim's algorithm) over the connected
/// component containing `root`, using the provided per-link cost function.
///
/// The ACDC case study measures overlay cost relative to an off-line MST
/// computed over the IP topology's link costs.
pub fn minimum_spanning_tree<F>(topo: &Topology, root: NodeId, mut cost: F) -> Vec<MstEdge>
where
    F: FnMut(LinkId) -> f64,
{
    let n = topo.node_count();
    let mut in_tree = vec![false; n];
    let mut edges = Vec::new();
    if root.index() >= n {
        return edges;
    }
    // (cost, insertion seq, from, to, link) — seq keeps ties deterministic.
    type FrontierEdge = (u64, usize, NodeId, NodeId, LinkId);
    let mut heap: BinaryHeap<Reverse<FrontierEdge>> = BinaryHeap::new();
    let mut seq = 0usize;
    in_tree[root.index()] = true;
    for (v, link) in topo.neighbors(root) {
        heap.push(Reverse((to_ordered(cost(link)), seq, root, v, link)));
        seq += 1;
    }
    while let Some(Reverse((_, _, from, to, link))) = heap.pop() {
        if in_tree[to.index()] {
            continue;
        }
        in_tree[to.index()] = true;
        edges.push(MstEdge {
            a: from,
            b: to,
            link,
        });
        for (v, l) in topo.neighbors(to) {
            if !in_tree[v.index()] {
                heap.push(Reverse((to_ordered(cost(l)), seq, to, v, l)));
                seq += 1;
            }
        }
    }
    edges
}

/// Maps a non-negative float cost onto a totally ordered integer for use in
/// the MST heap (NaN and negative values order first).
fn to_ordered(cost: f64) -> u64 {
    if !cost.is_finite() || cost <= 0.0 {
        0
    } else {
        (cost * 1e6) as u64
    }
}

/// Sums the cost of a set of MST edges under the given cost function.
pub fn tree_cost<F>(edges: &[MstEdge], mut cost: F) -> f64
where
    F: FnMut(LinkId) -> f64,
{
    edges.iter().map(|e| cost(e.link)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LinkAttrs, NodeKind};

    fn attrs(mbps: u64, ms: u64) -> LinkAttrs {
        LinkAttrs::new(DataRate::from_mbps(mbps), SimDuration::from_millis(ms))
    }

    /// A diamond: a-b-d is two fast hops, a-c-d is one slow + one fast hop,
    /// plus a direct (high-latency) a-d link.
    fn diamond() -> (Topology, [NodeId; 4]) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Client);
        let b = t.add_node(NodeKind::Stub);
        let c = t.add_node(NodeKind::Stub);
        let d = t.add_node(NodeKind::Client);
        t.add_link(a, b, attrs(10, 2)).unwrap();
        t.add_link(b, d, attrs(10, 2)).unwrap();
        t.add_link(a, c, attrs(100, 10)).unwrap();
        t.add_link(c, d, attrs(100, 10)).unwrap();
        t.add_link(a, d, attrs(1, 30)).unwrap();
        (t, [a, b, c, d])
    }

    #[test]
    fn shortest_path_prefers_low_latency() {
        let (t, [a, _, _, d]) = diamond();
        let p = shortest_path(&t, a, d, PathMetric::Latency).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.total_latency(&t), SimDuration::from_millis(4));
        assert_eq!(p.bottleneck_bandwidth(&t), DataRate::from_mbps(10));
    }

    #[test]
    fn shortest_path_by_hops_prefers_direct_link() {
        let (t, [a, _, _, d]) = diamond();
        let p = shortest_path(&t, a, d, PathMetric::Hops).unwrap();
        assert_eq!(p.hop_count(), 1);
        assert_eq!(p.total_latency(&t), SimDuration::from_millis(30));
    }

    #[test]
    fn shortest_path_to_self_is_empty() {
        let (t, [a, ..]) = diamond();
        let p = shortest_path(&t, a, a, PathMetric::Latency).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.nodes, vec![a]);
        assert_eq!(p.total_latency(&t), SimDuration::ZERO);
        assert_eq!(p.reliability(&t), 1.0);
    }

    #[test]
    fn unreachable_destination_returns_none() {
        let (mut t, [a, ..]) = diamond();
        let lonely = t.add_node(NodeKind::Client);
        assert!(shortest_path(&t, a, lonely, PathMetric::Latency).is_none());
        assert!(shortest_path_latency(&t, a, lonely).is_none());
    }

    #[test]
    fn path_reliability_is_product() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Client);
        let b = t.add_node(NodeKind::Stub);
        let c = t.add_node(NodeKind::Client);
        t.add_link(a, b, attrs(10, 1).with_loss(0.1)).unwrap();
        t.add_link(b, c, attrs(10, 1).with_loss(0.2)).unwrap();
        let p = shortest_path(&t, a, c, PathMetric::Latency).unwrap();
        assert!((p.reliability(&t) - 0.72).abs() < 1e-12);
        assert_eq!(p.bottleneck_queue(&t), LinkAttrs::DEFAULT_QUEUE_LEN);
    }

    #[test]
    fn spt_latency_helper_matches_path() {
        let (t, [a, _, _, d]) = diamond();
        assert_eq!(
            shortest_path_latency(&t, a, d),
            Some(SimDuration::from_millis(4))
        );
    }

    #[test]
    fn mst_spans_connected_component_with_minimum_cost() {
        let (t, [a, b, c, d]) = diamond();
        // Use latency as cost; the MST should avoid the 30 ms direct link.
        let edges =
            minimum_spanning_tree(&t, a, |l| t.link(l).unwrap().attrs.latency.as_millis_f64());
        assert_eq!(edges.len(), 3);
        let cost = tree_cost(&edges, |l| t.link(l).unwrap().attrs.latency.as_millis_f64());
        // Minimum spanning tree: 2 + 2 + 10 = 14 ms.
        assert!((cost - 14.0).abs() < 1e-9);
        let mut covered: Vec<NodeId> = edges.iter().flat_map(|e| [e.a, e.b]).collect();
        covered.sort();
        covered.dedup();
        assert_eq!(covered, vec![a, b, c, d]);
    }

    #[test]
    fn mst_ignores_unreachable_nodes() {
        let (mut t, [a, ..]) = diamond();
        t.add_node(NodeKind::Client);
        let edges = minimum_spanning_tree(&t, a, |_| 1.0);
        assert_eq!(edges.len(), 3);
    }

    #[test]
    fn spt_tree_covers_all_reachable_nodes() {
        let (t, [a, ..]) = diamond();
        let pred = shortest_path_tree(&t, a, PathMetric::Latency);
        let reachable = pred.iter().filter(|p| p.is_some()).count();
        assert_eq!(
            reachable, 3,
            "every node except the source has a predecessor"
        );
    }
}
