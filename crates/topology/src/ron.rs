//! A synthetic "RON-like" wide-area measurement mesh.
//!
//! The CFS case study in the paper converts the *published* RON testbed
//! inter-node characteristics (pairwise bandwidth, latency and loss among
//! ~15 Internet hosts) into a ModelNet topology and replays the CFS
//! experiments on it. Those measurements are not available here, so this
//! module generates a synthetic stand-in with the same structure: a small
//! full mesh of wide-area sites whose pairwise characteristics fall into
//! realistic bands (intra-metro, intra-continent, transcontinental and
//! intercontinental paths). See DESIGN.md §2 for the substitution rationale.
//!
//! The output is an *end-to-end characterisation*: one pipe per ordered site
//! pair, exactly like the data the CFS authors published, which is also why
//! the paper notes that such a topology cannot capture interior contention
//! (its Section 5.1 discussion of error sources).

use rand::Rng;

use mn_util::rngs::derived_rng;
use mn_util::{DataRate, SimDuration};

use crate::graph::{LinkAttrs, NodeId, NodeKind, Topology};

/// A wide-area site in the synthetic mesh.
#[derive(Debug, Clone)]
pub struct RonSite {
    /// Site name (loosely modelled on the RON deployment's mix of
    /// universities, homes and colocation centres).
    pub name: String,
    /// Region used to pick the latency band between site pairs.
    pub region: Region,
    /// Access-link bandwidth cap for this site.
    pub access_bandwidth: DataRate,
}

/// Coarse geographic region of a site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// North-American east coast.
    UsEast,
    /// North-American west coast.
    UsWest,
    /// Europe.
    Europe,
    /// Asia/Pacific.
    Asia,
}

impl Region {
    fn index(self) -> usize {
        match self {
            Region::UsEast => 0,
            Region::UsWest => 1,
            Region::Europe => 2,
            Region::Asia => 3,
        }
    }
}

/// One-way latency bands (milliseconds) between regions, loosely matching
/// public wide-area measurements of the early-2000s Internet.
const REGION_LATENCY_MS: [[(f64, f64); 4]; 4] = [
    // UsEast         UsWest          Europe          Asia
    [(2.0, 15.0), (30.0, 45.0), (40.0, 55.0), (80.0, 110.0)], // UsEast
    [(30.0, 45.0), (2.0, 12.0), (70.0, 90.0), (55.0, 80.0)],  // UsWest
    [(40.0, 55.0), (70.0, 90.0), (3.0, 18.0), (120.0, 160.0)], // Europe
    [(80.0, 110.0), (55.0, 80.0), (120.0, 160.0), (5.0, 25.0)], // Asia
];

/// Parameters for [`ron_mesh`].
#[derive(Debug, Clone)]
pub struct RonMeshParams {
    /// Number of sites (the RON deployment had 15; the CFS experiments used
    /// 12 of them).
    pub sites: usize,
    /// Random loss probability applied to long-haul paths.
    pub long_haul_loss: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RonMeshParams {
    fn default() -> Self {
        RonMeshParams {
            sites: 12,
            long_haul_loss: 0.002,
            seed: 2002,
        }
    }
}

/// The generated mesh: a client node per site and one direct link per site
/// pair carrying that pair's end-to-end characteristics.
#[derive(Debug, Clone)]
pub struct RonMesh {
    /// The end-to-end topology (a full mesh over client nodes).
    pub topology: Topology,
    /// The sites, index-aligned with the client nodes.
    pub sites: Vec<RonSite>,
    /// The client node for each site.
    pub nodes: Vec<NodeId>,
}

/// Site roster used when at most 15 sites are requested. Bandwidths reflect
/// the mix the RON papers describe: well-connected university sites, a few
/// DSL/cable homes and commercial colocation.
fn default_roster() -> Vec<RonSite> {
    let u = |name: &str, region, mbps| RonSite {
        name: name.to_string(),
        region,
        access_bandwidth: DataRate::from_mbps(mbps),
    };
    vec![
        u("mit", Region::UsEast, 100),
        u("cmu", Region::UsEast, 100),
        u("cornell", Region::UsEast, 100),
        u("nyu", Region::UsEast, 100),
        u("dc-colo", Region::UsEast, 45),
        u("cable-home-ma", Region::UsEast, 4),
        u("utah", Region::UsWest, 100),
        u("ucsd", Region::UsWest, 100),
        u("stanford", Region::UsWest, 100),
        u("ca-colo", Region::UsWest, 45),
        u("dsl-home-ca", Region::UsWest, 2),
        u("lulea", Region::Europe, 34),
        u("amsterdam", Region::Europe, 100),
        u("kaist", Region::Asia, 45),
        u("tokyo-colo", Region::Asia, 34),
    ]
}

/// Generates the synthetic RON-like mesh.
///
/// Pairwise path bandwidth is the minimum of the two sites' access
/// bandwidths, degraded for intercontinental paths; latency is drawn from the
/// region-pair band; long-haul paths carry a small random loss rate.
pub fn ron_mesh(params: &RonMeshParams) -> RonMesh {
    let mut rng = derived_rng(params.seed, 0x1201);
    let roster = default_roster();
    let sites: Vec<RonSite> = if params.sites <= roster.len() {
        roster.into_iter().take(params.sites).collect()
    } else {
        // Extend with extra synthetic university sites round-robin across
        // regions when more than 15 sites are requested.
        let mut sites = roster;
        let regions = [Region::UsEast, Region::UsWest, Region::Europe, Region::Asia];
        let mut i = 0;
        while sites.len() < params.sites {
            sites.push(RonSite {
                name: format!("site-{}", sites.len()),
                region: regions[i % regions.len()],
                access_bandwidth: DataRate::from_mbps(100),
            });
            i += 1;
        }
        sites
    };

    let mut topology = Topology::new();
    let nodes: Vec<NodeId> = sites
        .iter()
        .map(|s| topology.add_named_node(NodeKind::Client, s.name.clone()))
        .collect();

    for i in 0..sites.len() {
        for j in (i + 1)..sites.len() {
            let (a, b) = (&sites[i], &sites[j]);
            let band = REGION_LATENCY_MS[a.region.index()][b.region.index()];
            let latency_ms = rng.gen_range(band.0..=band.1);
            let mut bandwidth = a.access_bandwidth.min(b.access_bandwidth);
            let mut loss = 0.0;
            let intercontinental = a.region != b.region
                && (a.region == Region::Asia
                    || b.region == Region::Asia
                    || a.region == Region::Europe
                    || b.region == Region::Europe);
            if intercontinental {
                // Long-haul paths of the era rarely sustained full access
                // rate; degrade to 40–80% and add a small loss rate.
                bandwidth = bandwidth.mul_f64(rng.gen_range(0.4..0.8));
                loss = params.long_haul_loss;
            }
            let attrs = LinkAttrs::new(bandwidth, SimDuration::from_millis_f64(latency_ms))
                .with_loss(loss)
                .with_queue_len(64);
            topology
                .add_link(nodes[i], nodes[j], attrs)
                .expect("mesh endpoints exist");
        }
    }

    RonMesh {
        topology,
        sites,
        nodes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mesh_is_a_12_site_full_mesh() {
        let mesh = ron_mesh(&RonMeshParams::default());
        assert_eq!(mesh.sites.len(), 12);
        assert_eq!(mesh.nodes.len(), 12);
        assert_eq!(mesh.topology.node_count(), 12);
        assert_eq!(mesh.topology.link_count(), 12 * 11 / 2);
        assert_eq!(mesh.topology.client_count(), 12);
        assert_eq!(mesh.topology.hop_diameter(), 1);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = ron_mesh(&RonMeshParams::default());
        let b = ron_mesh(&RonMeshParams::default());
        for (la, lb) in a.topology.links().zip(b.topology.links()) {
            assert_eq!(la.1.attrs, lb.1.attrs);
        }
        let c = ron_mesh(&RonMeshParams {
            seed: 9,
            ..RonMeshParams::default()
        });
        let diff = a
            .topology
            .links()
            .zip(c.topology.links())
            .filter(|(la, lc)| la.1.attrs != lc.1.attrs)
            .count();
        assert!(
            diff > 0,
            "different seeds should change path characteristics"
        );
    }

    #[test]
    fn latencies_fall_in_wide_area_bands() {
        let mesh = ron_mesh(&RonMeshParams::default());
        for (_, link) in mesh.topology.links() {
            let ms = link.attrs.latency.as_millis_f64();
            assert!((2.0..=160.0).contains(&ms), "latency {ms} ms out of band");
            assert!(link.attrs.bandwidth.as_bps() > 0);
        }
    }

    #[test]
    fn can_grow_beyond_roster() {
        let mesh = ron_mesh(&RonMeshParams {
            sites: 20,
            ..RonMeshParams::default()
        });
        assert_eq!(mesh.sites.len(), 20);
        assert_eq!(mesh.topology.link_count(), 20 * 19 / 2);
    }

    #[test]
    fn fifteen_site_roster_has_expected_mix() {
        let mesh = ron_mesh(&RonMeshParams {
            sites: 15,
            ..RonMeshParams::default()
        });
        let slow_sites = mesh
            .sites
            .iter()
            .filter(|s| s.access_bandwidth < DataRate::from_mbps(10))
            .count();
        assert_eq!(slow_sites, 2, "the roster includes two home sites");
    }
}
