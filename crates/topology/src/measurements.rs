//! Pairwise network-measurement import (RON-style end-to-end data).
//!
//! The paper's CFS case study starts from the *published RON inter-node
//! characteristics*: a table of measured bandwidth, latency and loss between
//! every pair of testbed hosts, which the authors convert into a ModelNet
//! topology. This module supports that workflow for any such dataset: a
//! simple line-oriented text format (`src dst bandwidth_kbps latency_ms
//! loss`) is parsed into a full-mesh [`Topology`] of client nodes, one link
//! per measured pair, and can be written back out. The synthetic
//! [`crate::ron`] mesh uses the same representation, so a user with access to
//! real measurements can swap them in without touching the experiment code.

use std::collections::BTreeMap;
use std::fmt;

use mn_util::{DataRate, SimDuration};

use crate::graph::{LinkAttrs, NodeId, NodeKind, Topology};

/// One measured path between two named hosts.
#[derive(Debug, Clone, PartialEq)]
pub struct PairMeasurement {
    /// Source host name.
    pub src: String,
    /// Destination host name.
    pub dst: String,
    /// Available bandwidth observed on the path.
    pub bandwidth: DataRate,
    /// One-way latency observed on the path.
    pub latency: SimDuration,
    /// Loss probability observed on the path.
    pub loss: f64,
}

/// Errors raised while parsing a measurement file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeasurementError {
    /// A line did not have the five expected fields.
    MalformedLine {
        /// 1-based line number.
        line: usize,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The offending field text.
        field: String,
    },
    /// The dataset contained no measurements.
    Empty,
}

impl fmt::Display for MeasurementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeasurementError::MalformedLine { line } => {
                write!(
                    f,
                    "measurement line {line}: expected 'src dst kbps ms loss'"
                )
            }
            MeasurementError::BadNumber { line, field } => {
                write!(f, "measurement line {line}: cannot parse number '{field}'")
            }
            MeasurementError::Empty => write!(f, "measurement dataset is empty"),
        }
    }
}

impl std::error::Error for MeasurementError {}

/// Parses a measurement dataset.
///
/// Blank lines and lines starting with `#` are ignored. Fields are
/// whitespace-separated: source name, destination name, bandwidth in kbit/s,
/// one-way latency in milliseconds, and loss probability.
pub fn parse_measurements(text: &str) -> Result<Vec<PairMeasurement>, MeasurementError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = trimmed.split_whitespace().collect();
        if fields.len() != 5 {
            return Err(MeasurementError::MalformedLine { line });
        }
        let number = |s: &str| -> Result<f64, MeasurementError> {
            s.parse::<f64>().map_err(|_| MeasurementError::BadNumber {
                line,
                field: s.to_string(),
            })
        };
        let kbps = number(fields[2])?;
        let ms = number(fields[3])?;
        let loss = number(fields[4])?;
        out.push(PairMeasurement {
            src: fields[0].to_string(),
            dst: fields[1].to_string(),
            bandwidth: DataRate::from_bps((kbps.max(0.0) * 1_000.0) as u64),
            latency: SimDuration::from_millis_f64(ms.max(0.0)),
            loss: loss.clamp(0.0, 1.0),
        });
    }
    if out.is_empty() {
        return Err(MeasurementError::Empty);
    }
    Ok(out)
}

/// Serialises measurements back to the text format [`parse_measurements`]
/// accepts.
pub fn write_measurements(measurements: &[PairMeasurement]) -> String {
    let mut out = String::from("# src dst bandwidth_kbps latency_ms loss\n");
    for m in measurements {
        out.push_str(&format!(
            "{} {} {:.1} {:.3} {:.5}\n",
            m.src,
            m.dst,
            m.bandwidth.as_kbps_f64(),
            m.latency.as_millis_f64(),
            m.loss
        ));
    }
    out
}

/// Converts a set of pairwise measurements into an end-to-end topology: one
/// client node per host and one link per unordered host pair carrying that
/// pair's measured characteristics (asymmetric measurements are averaged).
///
/// Returns the topology and the host-name → node mapping.
pub fn measurements_to_topology(
    measurements: &[PairMeasurement],
) -> (Topology, BTreeMap<String, NodeId>) {
    let mut topo = Topology::new();
    let mut nodes: BTreeMap<String, NodeId> = BTreeMap::new();
    let node_of = |topo: &mut Topology, name: &str, nodes: &mut BTreeMap<String, NodeId>| {
        *nodes
            .entry(name.to_string())
            .or_insert_with(|| topo.add_named_node(NodeKind::Client, name))
    };
    // Gather both directions before creating links so asymmetric data is
    // averaged.
    let mut pair_data: BTreeMap<(String, String), Vec<&PairMeasurement>> = BTreeMap::new();
    for m in measurements {
        let key = if m.src <= m.dst {
            (m.src.clone(), m.dst.clone())
        } else {
            (m.dst.clone(), m.src.clone())
        };
        pair_data.entry(key).or_default().push(m);
    }
    for ((a_name, b_name), ms) in pair_data {
        if a_name == b_name {
            continue;
        }
        let a = node_of(&mut topo, &a_name, &mut nodes);
        let b = node_of(&mut topo, &b_name, &mut nodes);
        let n = ms.len() as f64;
        let bw = DataRate::from_bps(
            (ms.iter().map(|m| m.bandwidth.as_bps() as f64).sum::<f64>() / n) as u64,
        );
        let lat = SimDuration::from_millis_f64(
            ms.iter().map(|m| m.latency.as_millis_f64()).sum::<f64>() / n,
        );
        let loss = ms.iter().map(|m| m.loss).sum::<f64>() / n;
        let attrs = LinkAttrs::new(bw, lat).with_loss(loss).with_queue_len(64);
        topo.add_link(a, b, attrs).expect("distinct named hosts");
    }
    (topo, nodes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# measured 2002-03-01
mit ucsd 4300 38.2 0.001
ucsd mit 4100 39.0 0.002
mit lulea 1800 92.5 0.004
ucsd lulea 1500 110.0 0.003
";

    #[test]
    fn parse_and_roundtrip() {
        let ms = parse_measurements(SAMPLE).unwrap();
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0].src, "mit");
        assert_eq!(ms[0].bandwidth, DataRate::from_kbps(4300));
        assert_eq!(ms[0].latency, SimDuration::from_micros(38_200));
        let text = write_measurements(&ms);
        let back = parse_measurements(&text).unwrap();
        assert_eq!(back.len(), ms.len());
        assert_eq!(back[2].src, ms[2].src);
        assert!((back[3].loss - ms[3].loss).abs() < 1e-9);
    }

    #[test]
    fn malformed_lines_are_reported_with_position() {
        assert_eq!(
            parse_measurements("a b 1 2\n").unwrap_err(),
            MeasurementError::MalformedLine { line: 1 }
        );
        assert_eq!(
            parse_measurements("a b one 2 0\n").unwrap_err(),
            MeasurementError::BadNumber {
                line: 1,
                field: "one".to_string()
            }
        );
        assert_eq!(
            parse_measurements("# nothing\n").unwrap_err(),
            MeasurementError::Empty
        );
    }

    #[test]
    fn topology_conversion_builds_a_mesh_and_averages_directions() {
        let ms = parse_measurements(SAMPLE).unwrap();
        let (topo, nodes) = measurements_to_topology(&ms);
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.client_count(), 3);
        assert_eq!(topo.link_count(), 3);
        let mit = nodes["mit"];
        let ucsd = nodes["ucsd"];
        // The mit-ucsd pair was measured in both directions: averaged.
        let link = topo
            .links()
            .find(|(_, l)| l.other(mit) == Some(ucsd))
            .map(|(_, l)| l)
            .unwrap();
        assert_eq!(link.attrs.bandwidth, DataRate::from_kbps(4200));
        assert!((link.attrs.latency.as_millis_f64() - 38.6).abs() < 1e-9);
    }

    #[test]
    fn converted_topology_feeds_distillation() {
        let ms = parse_measurements(SAMPLE).unwrap();
        let (topo, _) = measurements_to_topology(&ms);
        assert!(topo.is_connected());
        assert_eq!(topo.hop_diameter(), 1);
    }

    #[test]
    fn error_messages_are_descriptive() {
        assert!(MeasurementError::Empty.to_string().contains("empty"));
        assert!(MeasurementError::MalformedLine { line: 7 }
            .to_string()
            .contains('7'));
    }
}
