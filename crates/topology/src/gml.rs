//! GML (Graph Modelling Language) import and export.
//!
//! ModelNet normalises every topology source — Internet traces, BGP dumps,
//! synthetic generators — into GML and lets users annotate the GML graph with
//! attributes the source did not provide. This module implements a
//! self-contained GML tokenizer/parser and a writer, plus the conversion
//! between the generic GML tree and [`Topology`].
//!
//! The attribute vocabulary understood on links is:
//!
//! | key | meaning | unit |
//! |---|---|---|
//! | `bandwidth` | link bandwidth | bits per second |
//! | `latency` | one-way propagation delay | milliseconds (fractional allowed) |
//! | `loss` | random loss probability | `[0, 1]` |
//! | `queue` | maximum queue length | packets |
//!
//! Nodes carry `id`, an optional `label` and an optional `kind`
//! (`"client"`, `"stub"` or `"transit"`; unknown kinds default to stub).

use std::collections::BTreeMap;
use std::fmt;

use mn_util::{DataRate, SimDuration};

use crate::graph::{LinkAttrs, NodeId, NodeKind, Topology};

/// A GML value: a number, a quoted string or a nested list of key/value pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum GmlValue {
    /// An integer literal.
    Int(i64),
    /// A floating point literal.
    Float(f64),
    /// A quoted string.
    Str(String),
    /// A bracketed list of key/value pairs.
    List(Vec<(String, GmlValue)>),
}

impl GmlValue {
    /// Interprets the value as a float if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            GmlValue::Int(i) => Some(*i as f64),
            GmlValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interprets the value as an integer if it is an integer literal.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            GmlValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Interprets the value as a string if it is a string literal.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            GmlValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Interprets the value as a list if it is one.
    pub fn as_list(&self) -> Option<&[(String, GmlValue)]> {
        match self {
            GmlValue::List(l) => Some(l),
            _ => None,
        }
    }
}

/// Errors raised while parsing or interpreting GML text.
#[derive(Debug, Clone, PartialEq)]
pub enum GmlError {
    /// Unexpected character or malformed token at the given byte offset.
    Syntax { offset: usize, message: String },
    /// The document did not contain a `graph [...]` section.
    MissingGraph,
    /// A node or edge record was missing a required key.
    MissingKey {
        record: &'static str,
        key: &'static str,
    },
    /// An edge referenced a node id that was not declared.
    UnknownNodeRef(i64),
    /// A node id was declared twice.
    DuplicateNodeId(i64),
}

impl fmt::Display for GmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmlError::Syntax { offset, message } => {
                write!(f, "GML syntax error at byte {offset}: {message}")
            }
            GmlError::MissingGraph => write!(f, "GML document has no graph section"),
            GmlError::MissingKey { record, key } => {
                write!(f, "GML {record} record missing required key '{key}'")
            }
            GmlError::UnknownNodeRef(id) => write!(f, "GML edge references unknown node id {id}"),
            GmlError::DuplicateNodeId(id) => write!(f, "GML node id {id} declared twice"),
        }
    }
}

impl std::error::Error for GmlError {}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Key(String),
    Int(i64),
    Float(f64),
    Str(String),
    Open,
    Close,
}

struct Lexer<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            text: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> GmlError {
        GmlError::Syntax {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws_and_comments(&mut self) {
        while self.pos < self.text.len() {
            let c = self.text[self.pos];
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'#' {
                // Comment to end of line.
                while self.pos < self.text.len() && self.text[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn next_token(&mut self) -> Result<Option<Token>, GmlError> {
        self.skip_ws_and_comments();
        if self.pos >= self.text.len() {
            return Ok(None);
        }
        let c = self.text[self.pos];
        match c {
            b'[' => {
                self.pos += 1;
                Ok(Some(Token::Open))
            }
            b']' => {
                self.pos += 1;
                Ok(Some(Token::Close))
            }
            b'"' => {
                self.pos += 1;
                let start = self.pos;
                while self.pos < self.text.len() && self.text[self.pos] != b'"' {
                    self.pos += 1;
                }
                if self.pos >= self.text.len() {
                    return Err(self.error("unterminated string"));
                }
                let s = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                self.pos += 1;
                Ok(Some(Token::Str(s)))
            }
            b'-' | b'+' | b'0'..=b'9' | b'.' => {
                let start = self.pos;
                self.pos += 1;
                while self.pos < self.text.len()
                    && matches!(
                        self.text[self.pos],
                        b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+'
                    )
                {
                    self.pos += 1;
                }
                let s = std::str::from_utf8(&self.text[start..self.pos])
                    .map_err(|_| self.error("invalid number"))?;
                if let Ok(i) = s.parse::<i64>() {
                    Ok(Some(Token::Int(i)))
                } else if let Ok(f) = s.parse::<f64>() {
                    Ok(Some(Token::Float(f)))
                } else {
                    Err(self.error(format!("malformed numeric literal '{s}'")))
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = self.pos;
                while self.pos < self.text.len()
                    && (self.text[self.pos].is_ascii_alphanumeric() || self.text[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                let s = String::from_utf8_lossy(&self.text[start..self.pos]).into_owned();
                Ok(Some(Token::Key(s)))
            }
            other => Err(self.error(format!("unexpected character '{}'", other as char))),
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Parses a GML document into its top-level key/value pairs.
pub fn parse_document(text: &str) -> Result<Vec<(String, GmlValue)>, GmlError> {
    let mut lexer = Lexer::new(text);
    let mut tokens = Vec::new();
    while let Some(t) = lexer.next_token()? {
        tokens.push(t);
    }
    let mut pos = 0;
    let pairs = parse_pairs(&tokens, &mut pos, text.len())?;
    if pos != tokens.len() {
        return Err(GmlError::Syntax {
            offset: text.len(),
            message: "trailing tokens after document".to_string(),
        });
    }
    Ok(pairs)
}

fn parse_pairs(
    tokens: &[Token],
    pos: &mut usize,
    doc_len: usize,
) -> Result<Vec<(String, GmlValue)>, GmlError> {
    let mut out = Vec::new();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            Token::Close => break,
            Token::Key(k) => {
                let key = k.clone();
                *pos += 1;
                let value = parse_value(tokens, pos, doc_len)?;
                out.push((key, value));
            }
            other => {
                return Err(GmlError::Syntax {
                    offset: doc_len,
                    message: format!("expected key, found {other:?}"),
                })
            }
        }
    }
    Ok(out)
}

fn parse_value(tokens: &[Token], pos: &mut usize, doc_len: usize) -> Result<GmlValue, GmlError> {
    let Some(tok) = tokens.get(*pos) else {
        return Err(GmlError::Syntax {
            offset: doc_len,
            message: "unexpected end of document, expected value".to_string(),
        });
    };
    match tok {
        Token::Int(i) => {
            *pos += 1;
            Ok(GmlValue::Int(*i))
        }
        Token::Float(f) => {
            *pos += 1;
            Ok(GmlValue::Float(*f))
        }
        Token::Str(s) => {
            *pos += 1;
            Ok(GmlValue::Str(s.clone()))
        }
        Token::Open => {
            *pos += 1;
            let pairs = parse_pairs(tokens, pos, doc_len)?;
            match tokens.get(*pos) {
                Some(Token::Close) => {
                    *pos += 1;
                    Ok(GmlValue::List(pairs))
                }
                _ => Err(GmlError::Syntax {
                    offset: doc_len,
                    message: "unterminated list (missing ']')".to_string(),
                }),
            }
        }
        Token::Close | Token::Key(_) => Err(GmlError::Syntax {
            offset: doc_len,
            message: "expected value".to_string(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Topology conversion
// ---------------------------------------------------------------------------

fn find<'a>(pairs: &'a [(String, GmlValue)], key: &str) -> Option<&'a GmlValue> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Default attributes applied to links whose GML record carries no bandwidth
/// or latency annotation: 100 Mb/s, 1 ms, lossless, default queue.
pub fn default_link_attrs() -> LinkAttrs {
    LinkAttrs::new(DataRate::from_mbps(100), SimDuration::from_millis(1))
}

/// Parses a GML document into a [`Topology`].
pub fn parse_topology(text: &str) -> Result<Topology, GmlError> {
    let doc = parse_document(text)?;
    let graph = find(&doc, "graph")
        .and_then(GmlValue::as_list)
        .ok_or(GmlError::MissingGraph)?;

    let mut topo = Topology::new();
    let mut id_map: BTreeMap<i64, NodeId> = BTreeMap::new();

    for (key, value) in graph {
        if key != "node" {
            continue;
        }
        let rec = value.as_list().ok_or(GmlError::MissingKey {
            record: "node",
            key: "id",
        })?;
        let id = find(rec, "id")
            .and_then(GmlValue::as_i64)
            .ok_or(GmlError::MissingKey {
                record: "node",
                key: "id",
            })?;
        if id_map.contains_key(&id) {
            return Err(GmlError::DuplicateNodeId(id));
        }
        let kind = match find(rec, "kind").and_then(GmlValue::as_str) {
            Some("client") => NodeKind::Client,
            Some("transit") => NodeKind::Transit,
            _ => NodeKind::Stub,
        };
        let node = match find(rec, "label").and_then(GmlValue::as_str) {
            Some(label) => topo.add_named_node(kind, label),
            None => topo.add_node(kind),
        };
        id_map.insert(id, node);
    }

    for (key, value) in graph {
        if key != "edge" {
            continue;
        }
        let rec = value.as_list().ok_or(GmlError::MissingKey {
            record: "edge",
            key: "source",
        })?;
        let source =
            find(rec, "source")
                .and_then(GmlValue::as_i64)
                .ok_or(GmlError::MissingKey {
                    record: "edge",
                    key: "source",
                })?;
        let target =
            find(rec, "target")
                .and_then(GmlValue::as_i64)
                .ok_or(GmlError::MissingKey {
                    record: "edge",
                    key: "target",
                })?;
        let a = *id_map
            .get(&source)
            .ok_or(GmlError::UnknownNodeRef(source))?;
        let b = *id_map
            .get(&target)
            .ok_or(GmlError::UnknownNodeRef(target))?;

        let mut attrs = default_link_attrs();
        if let Some(bw) = find(rec, "bandwidth").and_then(GmlValue::as_f64) {
            attrs.bandwidth = DataRate::from_bps(bw.max(0.0) as u64);
        }
        if let Some(lat_ms) = find(rec, "latency").and_then(GmlValue::as_f64) {
            attrs.latency = SimDuration::from_millis_f64(lat_ms);
        }
        if let Some(loss) = find(rec, "loss").and_then(GmlValue::as_f64) {
            attrs.loss_rate = loss.clamp(0.0, 1.0);
        }
        if let Some(q) = find(rec, "queue").and_then(GmlValue::as_f64) {
            attrs.queue_len = q.max(1.0) as usize;
        }
        // Self-loops or bad references surface as MissingKey-level issues at
        // topology construction; map them to a syntax error with context.
        topo.add_link(a, b, attrs).map_err(|e| GmlError::Syntax {
            offset: 0,
            message: format!("invalid edge {source}->{target}: {e}"),
        })?;
    }

    Ok(topo)
}

/// Serialises a [`Topology`] to GML text that [`parse_topology`] can read
/// back.
pub fn write_topology(topo: &Topology) -> String {
    let mut out = String::new();
    out.push_str("# ModelNet-RS topology\ngraph [\n  directed 0\n");
    for (id, node) in topo.nodes() {
        out.push_str("  node [\n");
        out.push_str(&format!("    id {}\n", id.index()));
        if let Some(name) = &node.name {
            out.push_str(&format!("    label \"{name}\"\n"));
        }
        out.push_str(&format!("    kind \"{}\"\n", node.kind));
        out.push_str("  ]\n");
    }
    for (_, link) in topo.links() {
        out.push_str("  edge [\n");
        out.push_str(&format!("    source {}\n", link.a.index()));
        out.push_str(&format!("    target {}\n", link.b.index()));
        out.push_str(&format!(
            "    bandwidth {}\n",
            link.attrs.bandwidth.as_bps()
        ));
        out.push_str(&format!(
            "    latency {}\n",
            link.attrs.latency.as_millis_f64()
        ));
        out.push_str(&format!("    loss {}\n", link.attrs.loss_rate));
        out.push_str(&format!("    queue {}\n", link.attrs.queue_len));
        out.push_str("  ]\n");
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{ring_topology, RingParams};

    const SAMPLE: &str = r#"
# A two-client topology with one stub router.
graph [
  directed 0
  node [ id 0 label "client-a" kind "client" ]
  node [ id 1 kind "stub" ]
  node [ id 2 label "client-b" kind "client" ]
  edge [ source 0 target 1 bandwidth 2000000 latency 5 loss 0.01 queue 20 ]
  edge [ source 1 target 2 bandwidth 10000000 latency 2.5 ]
]
"#;

    #[test]
    fn parse_sample_topology() {
        let topo = parse_topology(SAMPLE).unwrap();
        assert_eq!(topo.node_count(), 3);
        assert_eq!(topo.link_count(), 2);
        assert_eq!(topo.client_count(), 2);
        let (_, first) = topo.links().next().unwrap();
        assert_eq!(first.attrs.bandwidth, DataRate::from_mbps(2));
        assert_eq!(first.attrs.latency, SimDuration::from_millis(5));
        assert_eq!(first.attrs.loss_rate, 0.01);
        assert_eq!(first.attrs.queue_len, 20);
        let (_, second) = topo.links().nth(1).unwrap();
        assert_eq!(second.attrs.latency, SimDuration::from_micros(2500));
        assert_eq!(second.attrs.loss_rate, 0.0);
        assert_eq!(second.attrs.queue_len, LinkAttrs::DEFAULT_QUEUE_LEN);
    }

    #[test]
    fn node_labels_and_kinds_preserved() {
        let topo = parse_topology(SAMPLE).unwrap();
        assert_eq!(
            topo.node(NodeId(0)).unwrap().name.as_deref(),
            Some("client-a")
        );
        assert_eq!(topo.node(NodeId(1)).unwrap().kind, NodeKind::Stub);
        assert_eq!(topo.node(NodeId(2)).unwrap().kind, NodeKind::Client);
    }

    #[test]
    fn roundtrip_through_writer() {
        let orig = parse_topology(SAMPLE).unwrap();
        let text = write_topology(&orig);
        let back = parse_topology(&text).unwrap();
        assert_eq!(back.node_count(), orig.node_count());
        assert_eq!(back.link_count(), orig.link_count());
        for (id, link) in orig.links() {
            let rlink = back.link(id).unwrap();
            assert_eq!(rlink.attrs, link.attrs);
            assert_eq!(rlink.a, link.a);
            assert_eq!(rlink.b, link.b);
        }
        for (id, node) in orig.nodes() {
            assert_eq!(back.node(id).unwrap().kind, node.kind);
        }
    }

    #[test]
    fn roundtrip_generated_topology() {
        let topo = ring_topology(&RingParams::default());
        let text = write_topology(&topo);
        let back = parse_topology(&text).unwrap();
        assert_eq!(back.node_count(), topo.node_count());
        assert_eq!(back.link_count(), topo.link_count());
        assert_eq!(back.client_count(), topo.client_count());
    }

    #[test]
    fn missing_graph_section() {
        assert_eq!(parse_topology("foo 3").unwrap_err(), GmlError::MissingGraph);
    }

    #[test]
    fn edge_with_unknown_node() {
        let text = r#"graph [ node [ id 0 ] edge [ source 0 target 7 ] ]"#;
        assert_eq!(
            parse_topology(text).unwrap_err(),
            GmlError::UnknownNodeRef(7)
        );
    }

    #[test]
    fn duplicate_node_id() {
        let text = r#"graph [ node [ id 0 ] node [ id 0 ] ]"#;
        assert_eq!(
            parse_topology(text).unwrap_err(),
            GmlError::DuplicateNodeId(0)
        );
    }

    #[test]
    fn node_missing_id() {
        let text = r#"graph [ node [ label "x" ] ]"#;
        assert!(matches!(
            parse_topology(text),
            Err(GmlError::MissingKey { record: "node", .. })
        ));
    }

    #[test]
    fn unterminated_string_is_syntax_error() {
        let text = r#"graph [ node [ id 0 label "oops ] ]"#;
        assert!(matches!(parse_topology(text), Err(GmlError::Syntax { .. })));
    }

    #[test]
    fn unterminated_list_is_syntax_error() {
        let text = r#"graph [ node [ id 0 ]"#;
        assert!(matches!(parse_topology(text), Err(GmlError::Syntax { .. })));
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let text = "graph [ # comment\n  node [ id 0 ] # another\n]\n";
        let topo = parse_topology(text).unwrap();
        assert_eq!(topo.node_count(), 1);
    }

    #[test]
    fn gml_value_accessors() {
        assert_eq!(GmlValue::Int(3).as_f64(), Some(3.0));
        assert_eq!(GmlValue::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(GmlValue::Str("x".into()).as_f64(), None);
        assert_eq!(GmlValue::Int(3).as_i64(), Some(3));
        assert_eq!(GmlValue::Float(2.5).as_i64(), None);
        assert_eq!(GmlValue::Str("x".into()).as_str(), Some("x"));
        assert!(GmlValue::List(vec![]).as_list().is_some());
    }

    #[test]
    fn error_display_strings() {
        let e = GmlError::MissingKey {
            record: "edge",
            key: "source",
        };
        assert!(e.to_string().contains("edge"));
        assert!(GmlError::UnknownNodeRef(9).to_string().contains('9'));
    }
}
