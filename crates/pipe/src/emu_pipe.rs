//! The pipe emulation unit: bandwidth queue + delay line.
//!
//! The timing model follows §2.2 of the paper exactly. When a packet arrives
//! at a pipe at time *t*:
//!
//! 1. it may be dropped by the configured random loss rate, by RED, or
//!    because the bandwidth queue already holds `queue_len` packets;
//! 2. otherwise its *drain finish* time is computed from the packet size, the
//!    sizes of all earlier packets waiting to enter the pipe, and the pipe
//!    bandwidth: `drain_finish = max(t, previous drain_finish) + size/bw`;
//! 3. it then sits in the delay line until `exit = drain_finish + latency`,
//!    at which point the scheduler either moves it to the next pipe on its
//!    route or delivers it to the destination edge node.
//!
//! The pipe is generic over the descriptor type `T` it transports, so the
//! same machinery serves the emulation core's descriptors and the unit tests'
//! plain markers.

use std::collections::VecDeque;

use rand::Rng;

use mn_distill::PipeAttrs;
use mn_util::{ByteSize, DataRate, SimTime};

use crate::discipline::{QueueDiscipline, RedState};
use crate::stats::PipeStats;

/// Result of offering a packet to a pipe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The packet was accepted and will exit the pipe at the given time.
    Accepted {
        /// Time the packet exits the pipe's delay line.
        exit_time: SimTime,
    },
    /// Dropped: the bandwidth queue was full (congestion drop), or the pipe
    /// is configured with zero bandwidth (a failed link).
    DroppedOverflow,
    /// Dropped by the configured random loss rate.
    DroppedLoss,
    /// Dropped early by the RED policy.
    DroppedRed,
}

impl EnqueueOutcome {
    /// Returns `true` if the packet was accepted.
    pub fn is_accepted(&self) -> bool {
        matches!(self, EnqueueOutcome::Accepted { .. })
    }
}

/// A packet leaving the pipe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DequeuedPacket<T> {
    /// The transported descriptor.
    pub item: T,
    /// The wire size used for bandwidth accounting.
    pub size: ByteSize,
    /// The exit deadline the emulation computed for this packet.
    pub exit_time: SimTime,
}

#[derive(Debug, Clone)]
struct InFlight<T> {
    item: T,
    size: ByteSize,
    drain_finish: SimTime,
    exit_time: SimTime,
}

/// One emulated link inside a core node.
#[derive(Debug, Clone)]
pub struct EmuPipe<T> {
    attrs: PipeAttrs,
    discipline: QueueDiscipline,
    red_state: RedState,
    in_flight: VecDeque<InFlight<T>>,
    drain_busy_until: SimTime,
    stats: PipeStats,
    /// Bandwidth consumed by flow-level (fluid) traffic modelled on this
    /// pipe. Packets see only the residual: their transmission time and the
    /// failed-link check use `bandwidth - fluid_demand`.
    fluid_demand: DataRate,
}

impl<T> EmuPipe<T> {
    /// Creates a pipe with the given attributes and the default FIFO
    /// drop-tail discipline.
    pub fn new(attrs: PipeAttrs) -> Self {
        Self::with_discipline(attrs, QueueDiscipline::DropTail)
    }

    /// Creates a pipe with an explicit queueing discipline.
    pub fn with_discipline(attrs: PipeAttrs, discipline: QueueDiscipline) -> Self {
        EmuPipe {
            attrs,
            discipline,
            red_state: RedState::default(),
            in_flight: VecDeque::new(),
            drain_busy_until: SimTime::ZERO,
            stats: PipeStats::default(),
            fluid_demand: DataRate::ZERO,
        }
    }

    /// Current emulation parameters.
    pub fn attrs(&self) -> &PipeAttrs {
        &self.attrs
    }

    /// Replaces the emulation parameters. Packets already inside the pipe
    /// keep the deadlines computed when they entered; only future arrivals
    /// see the new bandwidth/latency/loss/queue values. This is the hook the
    /// dynamic cross-traffic and fault-injection machinery uses.
    pub fn set_attrs(&mut self, attrs: PipeAttrs) {
        self.attrs = attrs;
    }

    /// Replaces the queueing discipline.
    pub fn set_discipline(&mut self, discipline: QueueDiscipline) {
        self.discipline = discipline;
    }

    /// Sets the bandwidth consumed by fluid flows crossing this pipe.
    /// Packets already inside keep their deadlines; future arrivals drain
    /// at the residual rate.
    pub fn set_fluid_demand(&mut self, demand: DataRate) {
        self.fluid_demand = demand;
    }

    /// Bandwidth currently consumed by fluid flows on this pipe.
    pub fn fluid_demand(&self) -> DataRate {
        self.fluid_demand
    }

    /// The bandwidth left for packets after fluid demand is served.
    #[inline]
    fn residual_bandwidth(&self) -> DataRate {
        DataRate::from_bps(
            self.attrs
                .bandwidth
                .as_bps()
                .saturating_sub(self.fluid_demand.as_bps()),
        )
    }

    /// Counters.
    pub fn stats(&self) -> &PipeStats {
        &self.stats
    }

    /// Number of packets currently being emulated (bandwidth queue + delay
    /// line).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Returns `true` if no packet is inside the pipe.
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty()
    }

    /// Number of packets still waiting to finish draining into the pipe at
    /// time `now` — the instantaneous bandwidth-queue occupancy used for the
    /// overflow check.
    pub fn queue_occupancy(&self, now: SimTime) -> usize {
        // `in_flight` is ordered by drain_finish (drain times are assigned
        // monotonically), so a binary search finds the drained prefix.
        let drained = self.partition_drained(now);
        self.in_flight.len() - drained
    }

    fn partition_drained(&self, now: SimTime) -> usize {
        let mut lo = 0;
        let mut hi = self.in_flight.len();
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.in_flight[mid].drain_finish <= now {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The earliest exit deadline among packets inside the pipe, i.e. the
    /// pipe's position in the core scheduler's deadline heap.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.in_flight.front().map(|p| p.exit_time)
    }

    /// Offers a packet to the pipe at time `now`.
    pub fn enqueue<R: Rng + ?Sized>(
        &mut self,
        now: SimTime,
        size: ByteSize,
        item: T,
        rng: &mut R,
    ) -> EnqueueOutcome {
        // A zero-residual pipe models a failed link (or one fully consumed
        // by fluid demand): everything is dropped as congestion loss.
        let residual = self.residual_bandwidth();
        if residual.is_zero() {
            self.stats.dropped_overflow += 1;
            return EnqueueOutcome::DroppedOverflow;
        }
        // Configured random loss.
        if self.attrs.loss_rate > 0.0 && rng.gen::<f64>() < self.attrs.loss_rate {
            self.stats.dropped_loss += 1;
            return EnqueueOutcome::DroppedLoss;
        }
        let occupancy = self.queue_occupancy(now);
        // RED early drop (before the tail-drop check, as in dummynet).
        if let QueueDiscipline::Red(params) = self.discipline {
            let avg = self.red_state.observe(&params, occupancy);
            let p = params.drop_probability(avg);
            if p > 0.0 && rng.gen::<f64>() < p {
                self.stats.dropped_red += 1;
                return EnqueueOutcome::DroppedRed;
            }
        }
        // Tail drop on a full bandwidth queue.
        if occupancy >= self.attrs.queue_len {
            self.stats.dropped_overflow += 1;
            return EnqueueOutcome::DroppedOverflow;
        }

        let drain_start = now.max(self.drain_busy_until);
        let drain_finish = drain_start.saturating_add(residual.transmission_time(size));
        let exit_time = drain_finish.saturating_add(self.attrs.latency);
        self.drain_busy_until = drain_finish;
        self.in_flight.push_back(InFlight {
            item,
            size,
            drain_finish,
            exit_time,
        });
        self.stats.enqueued += 1;
        EnqueueOutcome::Accepted { exit_time }
    }

    /// Removes every packet whose exit deadline is at or before `now` and
    /// appends it to `out` in exit order.
    ///
    /// This is the scheduler's steady-state entry point: the caller owns the
    /// buffer, so a warmed capacity is reused tick after tick instead of a
    /// fresh `Vec` being allocated per due pipe.
    pub fn dequeue_ready_into(&mut self, now: SimTime, out: &mut Vec<DequeuedPacket<T>>) {
        while let Some(front) = self.in_flight.front() {
            if front.exit_time > now {
                break;
            }
            let f = self.in_flight.pop_front().expect("front exists");
            self.stats.dequeued += 1;
            self.stats.bytes_out += f.size.as_bytes();
            out.push(DequeuedPacket {
                item: f.item,
                size: f.size,
                exit_time: f.exit_time,
            });
        }
    }

    /// Removes and returns every packet whose exit deadline is at or before
    /// `now`, in exit order, allocating a fresh buffer (convenience wrapper
    /// over [`EmuPipe::dequeue_ready_into`]).
    pub fn dequeue_ready(&mut self, now: SimTime) -> Vec<DequeuedPacket<T>> {
        let mut out = Vec::new();
        self.dequeue_ready_into(now, &mut out);
        out
    }

    /// The configured queueing discipline.
    pub fn discipline(&self) -> QueueDiscipline {
        self.discipline
    }

    /// The RED average-queue estimate (0.0 for drop-tail pipes).
    pub fn red_average(&self) -> f64 {
        self.red_state.average()
    }

    /// The drain-finish time of the most recently admitted packet — the
    /// bandwidth queue's busy horizon.
    pub fn drain_busy_until(&self) -> SimTime {
        self.drain_busy_until
    }

    /// The packets inside the pipe in FIFO order, each as
    /// `(item, size, drain_finish, exit_time)`. Together with the scalar
    /// accessors this captures the pipe's complete emulation state for a
    /// checkpoint.
    pub fn in_flight_entries(&self) -> impl Iterator<Item = (&T, ByteSize, SimTime, SimTime)> {
        self.in_flight
            .iter()
            .map(|f| (&f.item, f.size, f.drain_finish, f.exit_time))
    }

    /// Rebuilds a pipe from state captured by the snapshot accessors.
    /// `in_flight` must be supplied in the FIFO order produced by
    /// [`EmuPipe::in_flight_entries`]; the restored pipe then behaves
    /// bit-identically to the one that was captured.
    #[allow(clippy::too_many_arguments)]
    pub fn from_snapshot_parts(
        attrs: PipeAttrs,
        discipline: QueueDiscipline,
        red_average: f64,
        drain_busy_until: SimTime,
        stats: PipeStats,
        fluid_demand: DataRate,
        in_flight: impl IntoIterator<Item = (T, ByteSize, SimTime, SimTime)>,
    ) -> Self {
        EmuPipe {
            attrs,
            discipline,
            red_state: RedState::from_average(red_average),
            in_flight: in_flight
                .into_iter()
                .map(|(item, size, drain_finish, exit_time)| InFlight {
                    item,
                    size,
                    drain_finish,
                    exit_time,
                })
                .collect(),
            drain_busy_until,
            stats,
            fluid_demand,
        }
    }

    /// Drains every packet regardless of deadline (used when tearing an
    /// emulation down).
    pub fn drain_all(&mut self) -> Vec<DequeuedPacket<T>> {
        let mut out = Vec::new();
        while let Some(f) = self.in_flight.pop_front() {
            self.stats.dequeued += 1;
            self.stats.bytes_out += f.size.as_bytes();
            out.push(DequeuedPacket {
                item: f.item,
                size: f.size,
                exit_time: f.exit_time,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_util::rngs::seeded_rng;
    use mn_util::{DataRate, SimDuration};

    fn attrs(mbps: u64, latency_ms: u64, queue: usize) -> PipeAttrs {
        let mut a = PipeAttrs::new(
            DataRate::from_mbps(mbps),
            SimDuration::from_millis(latency_ms),
        );
        a.queue_len = queue;
        a
    }

    fn kb(bytes: u64) -> ByteSize {
        ByteSize::from_bytes(bytes)
    }

    #[test]
    fn single_packet_timing() {
        // 1500 bytes at 10 Mb/s = 1.2 ms transmission + 10 ms latency.
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(10, 10, 50));
        let mut rng = seeded_rng(1);
        let out = pipe.enqueue(SimTime::ZERO, kb(1500), 7, &mut rng);
        let expected_exit = SimTime::from_micros(1200) + SimDuration::from_millis(10);
        assert_eq!(
            out,
            EnqueueOutcome::Accepted {
                exit_time: expected_exit
            }
        );
        assert_eq!(pipe.next_deadline(), Some(expected_exit));
        assert!(pipe.dequeue_ready(SimTime::from_millis(11)).is_empty());
        let ready = pipe.dequeue_ready(expected_exit);
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].item, 7);
        assert_eq!(ready[0].exit_time, expected_exit);
        assert!(pipe.is_idle());
    }

    #[test]
    fn back_to_back_packets_serialise_on_bandwidth() {
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(10, 0, 50));
        let mut rng = seeded_rng(1);
        let t = SimTime::ZERO;
        let a = pipe.enqueue(t, kb(1500), 1, &mut rng);
        let b = pipe.enqueue(t, kb(1500), 2, &mut rng);
        let (
            EnqueueOutcome::Accepted { exit_time: ea },
            EnqueueOutcome::Accepted { exit_time: eb },
        ) = (a, b)
        else {
            panic!("both packets should be accepted")
        };
        // Second packet waits for the first to drain: exits 1.2 ms later.
        assert_eq!(eb - ea, SimDuration::from_micros(1200));
    }

    #[test]
    fn queue_overflow_drops() {
        // Queue of 2 packets; offer 4 back to back.
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(1, 5, 2));
        let mut rng = seeded_rng(1);
        let t = SimTime::ZERO;
        assert!(pipe.enqueue(t, kb(1500), 1, &mut rng).is_accepted());
        assert!(pipe.enqueue(t, kb(1500), 2, &mut rng).is_accepted());
        assert_eq!(
            pipe.enqueue(t, kb(1500), 3, &mut rng),
            EnqueueOutcome::DroppedOverflow
        );
        assert_eq!(pipe.stats().dropped_overflow, 1);
        assert_eq!(pipe.stats().enqueued, 2);
        assert!(pipe.stats().is_conserved(3));
    }

    #[test]
    fn queue_frees_as_packets_drain() {
        // 1500 B at 12 Mb/s = 1 ms drain time, queue of 1.
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(12, 50, 1));
        let mut rng = seeded_rng(1);
        assert!(pipe
            .enqueue(SimTime::ZERO, kb(1500), 1, &mut rng)
            .is_accepted());
        assert_eq!(
            pipe.enqueue(SimTime::ZERO, kb(1500), 2, &mut rng),
            EnqueueOutcome::DroppedOverflow
        );
        // After the first packet drains into the delay line, a slot is free.
        let later = SimTime::from_micros(1001);
        assert_eq!(pipe.queue_occupancy(later), 0);
        assert!(pipe.enqueue(later, kb(1500), 3, &mut rng).is_accepted());
        assert_eq!(pipe.in_flight_count(), 2);
    }

    #[test]
    fn random_loss_drops_expected_fraction() {
        let mut a = attrs(100, 1, 10_000);
        a.loss_rate = 0.3;
        let mut pipe: EmuPipe<u32> = EmuPipe::new(a);
        let mut rng = seeded_rng(42);
        let mut dropped = 0;
        for i in 0..10_000 {
            let t = SimTime::from_micros(i * 200);
            if !pipe.enqueue(t, kb(100), i as u32, &mut rng).is_accepted() {
                dropped += 1;
            }
        }
        let rate = dropped as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "observed loss {rate}");
        assert_eq!(pipe.stats().dropped_loss, dropped);
    }

    #[test]
    fn zero_bandwidth_models_failed_link() {
        let mut pipe: EmuPipe<u32> =
            EmuPipe::new(PipeAttrs::new(DataRate::ZERO, SimDuration::from_millis(1)));
        let mut rng = seeded_rng(1);
        assert_eq!(
            pipe.enqueue(SimTime::ZERO, kb(100), 1, &mut rng),
            EnqueueOutcome::DroppedOverflow
        );
    }

    #[test]
    fn red_drops_before_tail_drop() {
        let params = crate::RedParams {
            min_threshold: 1.0,
            max_threshold: 3.0,
            max_drop_probability: 1.0,
            weight: 1.0,
        };
        let mut pipe: EmuPipe<u32> =
            EmuPipe::with_discipline(attrs(1, 1, 100), QueueDiscipline::Red(params));
        let mut rng = seeded_rng(3);
        let t = SimTime::ZERO;
        let mut red_drops = 0;
        for i in 0..50 {
            if pipe.enqueue(t, kb(1500), i, &mut rng) == EnqueueOutcome::DroppedRed {
                red_drops += 1
            }
        }
        assert!(red_drops > 0, "RED should have dropped something");
        assert_eq!(pipe.stats().dropped_red, red_drops);
        // With a 100-slot queue and RED firing, no tail drops occurred.
        assert_eq!(pipe.stats().dropped_overflow, 0);
    }

    #[test]
    fn dequeue_order_is_fifo() {
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(10, 5, 50));
        let mut rng = seeded_rng(1);
        for i in 0..5 {
            pipe.enqueue(SimTime::from_micros(i as u64 * 10), kb(500), i, &mut rng);
        }
        let all = pipe.dequeue_ready(SimTime::from_secs(1));
        let order: Vec<u32> = all.iter().map(|p| p.item).collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        assert_eq!(pipe.stats().dequeued, 5);
        assert_eq!(pipe.stats().bytes_out, 2500);
    }

    #[test]
    fn set_attrs_affects_only_future_packets() {
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(10, 10, 50));
        let mut rng = seeded_rng(1);
        let EnqueueOutcome::Accepted { exit_time: first } =
            pipe.enqueue(SimTime::ZERO, kb(1500), 1, &mut rng)
        else {
            panic!()
        };
        // Slow the pipe down and double its latency.
        pipe.set_attrs(attrs(1, 20, 50));
        let EnqueueOutcome::Accepted { exit_time: second } =
            pipe.enqueue(SimTime::ZERO, kb(1500), 2, &mut rng)
        else {
            panic!()
        };
        assert_eq!(
            first,
            SimTime::from_micros(1200) + SimDuration::from_millis(10)
        );
        // Second: waits for first drain (1.2 ms), then 12 ms at 1 Mb/s + 20 ms.
        assert_eq!(
            second,
            SimTime::from_micros(1200 + 12_000) + SimDuration::from_millis(20)
        );
    }

    #[test]
    fn fluid_demand_leaves_packets_the_residual() {
        // 10 Mb/s pipe with 5 Mb/s of fluid demand: packets drain at the
        // 5 Mb/s residual, so 1500 B takes 2.4 ms instead of 1.2 ms.
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(10, 0, 50));
        pipe.set_fluid_demand(DataRate::from_mbps(5));
        let mut rng = seeded_rng(1);
        let EnqueueOutcome::Accepted { exit_time } =
            pipe.enqueue(SimTime::ZERO, kb(1500), 1, &mut rng)
        else {
            panic!("accepted")
        };
        assert_eq!(exit_time, SimTime::from_micros(2400));
        // Demand at (or beyond) line rate leaves no residual: drops.
        pipe.set_fluid_demand(DataRate::from_mbps(10));
        assert_eq!(
            pipe.enqueue(SimTime::from_secs(1), kb(1500), 2, &mut rng),
            EnqueueOutcome::DroppedOverflow
        );
        // Clearing the demand restores full line rate for new arrivals.
        pipe.set_fluid_demand(DataRate::ZERO);
        assert_eq!(pipe.fluid_demand(), DataRate::ZERO);
        let EnqueueOutcome::Accepted { exit_time } =
            pipe.enqueue(SimTime::from_secs(2), kb(1500), 3, &mut rng)
        else {
            panic!("accepted")
        };
        assert_eq!(
            exit_time,
            SimTime::from_secs(2) + SimDuration::from_micros(1200)
        );
    }

    #[test]
    fn drain_all_empties_the_pipe() {
        let mut pipe: EmuPipe<u32> = EmuPipe::new(attrs(10, 1000, 50));
        let mut rng = seeded_rng(1);
        for i in 0..3 {
            pipe.enqueue(SimTime::ZERO, kb(100), i, &mut rng);
        }
        assert_eq!(pipe.drain_all().len(), 3);
        assert!(pipe.is_idle());
        assert_eq!(pipe.next_deadline(), None);
    }

    #[test]
    fn delay_line_holds_bandwidth_delay_product() {
        // 10 Mb/s, 100 ms: BDP = 125 kB ~ 83 packets of 1500 B. Offer a
        // saturating stream and check the in-flight count approaches that.
        let mut pipe: EmuPipe<u64> = EmuPipe::new(attrs(10, 100, 100));
        let mut rng = seeded_rng(1);
        let mut t = SimTime::ZERO;
        let mut sent = 0u64;
        // Send at exactly line rate for 300 ms.
        while t < SimTime::from_millis(300) {
            pipe.enqueue(t, kb(1500), sent, &mut rng);
            let _ = pipe.dequeue_ready(t);
            sent += 1;
            t += SimDuration::from_micros(1200);
        }
        let in_flight = pipe.in_flight_count();
        assert!(
            (70..=95).contains(&in_flight),
            "in-flight {in_flight} should be near the 83-packet BDP"
        );
    }

    #[test]
    fn snapshot_parts_round_trip_is_exact() {
        let params = crate::RedParams {
            min_threshold: 1.0,
            max_threshold: 30.0,
            max_drop_probability: 0.2,
            weight: 0.3,
        };
        let mut pipe: EmuPipe<u32> =
            EmuPipe::with_discipline(attrs(5, 10, 40), QueueDiscipline::Red(params));
        pipe.set_fluid_demand(DataRate::from_mbps(1));
        let mut rng = seeded_rng(11);
        for i in 0..20 {
            pipe.enqueue(SimTime::from_micros(i as u64 * 50), kb(700), i, &mut rng);
        }

        let restored: EmuPipe<u32> = EmuPipe::from_snapshot_parts(
            *pipe.attrs(),
            pipe.discipline(),
            pipe.red_average(),
            pipe.drain_busy_until(),
            *pipe.stats(),
            pipe.fluid_demand(),
            pipe.in_flight_entries()
                .map(|(item, size, drain, exit)| (*item, size, drain, exit))
                .collect::<Vec<_>>(),
        );

        assert_eq!(restored.attrs(), pipe.attrs());
        assert_eq!(restored.discipline(), pipe.discipline());
        assert_eq!(
            restored.red_average().to_bits(),
            pipe.red_average().to_bits()
        );
        assert_eq!(restored.drain_busy_until(), pipe.drain_busy_until());
        assert_eq!(restored.fluid_demand(), pipe.fluid_demand());
        assert_eq!(restored.in_flight_count(), pipe.in_flight_count());
        assert_eq!(restored.next_deadline(), pipe.next_deadline());
        assert_eq!(restored.stats().enqueued, pipe.stats().enqueued);

        // Identical future behaviour: same draws against a cloned RNG stream
        // produce the same admissions and deadlines.
        let mut a = pipe;
        let mut b = restored;
        let mut rng_a = seeded_rng(99);
        let mut rng_b = seeded_rng(99);
        for i in 0..30u32 {
            let t = SimTime::from_millis(2) + SimDuration::from_micros(i as u64 * 80);
            assert_eq!(
                a.enqueue(t, kb(900), 100 + i, &mut rng_a),
                b.enqueue(t, kb(900), 100 + i, &mut rng_b),
            );
            assert_eq!(a.dequeue_ready(t), b.dequeue_ready(t));
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn conservation_property_under_random_load() {
        let mut pipe: EmuPipe<u64> = EmuPipe::new(attrs(5, 10, 10));
        let mut rng = seeded_rng(9);
        let mut offered = 0u64;
        let mut delivered = 0u64;
        let mut t = SimTime::ZERO;
        for i in 0..5_000u64 {
            t += SimDuration::from_micros(100 + (i % 7) * 137);
            offered += 1;
            let _ = pipe.enqueue(t, kb(200 + (i % 5) * 300), i, &mut rng);
            delivered += pipe.dequeue_ready(t).len() as u64;
        }
        delivered += pipe.drain_all().len() as u64;
        let s = pipe.stats();
        assert!(s.is_conserved(offered));
        assert_eq!(delivered, s.dequeued);
        assert_eq!(offered, s.dequeued + s.dropped_total());
    }
}
