//! Per-pipe counters.
//!
//! The distinction the paper draws between *virtual* drops (imposed by the
//! emulated network: queue overflow, configured loss, RED) and *physical*
//! drops (an overloaded core failing to service its NIC) is central to its
//! accuracy argument, so the counters keep the virtual-drop causes separate;
//! physical drops are counted by the core, not by pipes.

use serde::{Deserialize, Serialize};

use mn_util::ByteSize;

/// Counters maintained by each pipe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeStats {
    /// Packets that entered the bandwidth queue.
    pub enqueued: u64,
    /// Packets that exited the pipe (completed bandwidth + delay emulation).
    pub dequeued: u64,
    /// Packets dropped because the bandwidth queue was full.
    pub dropped_overflow: u64,
    /// Packets dropped by the configured random loss rate.
    pub dropped_loss: u64,
    /// Packets dropped early by the RED policy.
    pub dropped_red: u64,
    /// Payload + header bytes that exited the pipe.
    pub bytes_out: u64,
}

impl PipeStats {
    /// Total virtual drops of any cause.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_overflow + self.dropped_loss + self.dropped_red
    }

    /// Packets currently accounted for inside the pipe
    /// (entered but neither exited nor dropped).
    pub fn in_flight(&self) -> u64 {
        self.enqueued - self.dequeued
    }

    /// Bytes delivered, as a size.
    pub fn bytes_out_size(&self) -> ByteSize {
        ByteSize::from_bytes(self.bytes_out)
    }

    /// Conservation check: every packet offered to the pipe is either still
    /// inside, delivered, or counted in exactly one drop bucket.
    pub fn is_conserved(&self, offered: u64) -> bool {
        offered == self.enqueued + self.dropped_total() && self.enqueued >= self.dequeued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = PipeStats {
            enqueued: 100,
            dequeued: 90,
            dropped_overflow: 5,
            dropped_loss: 3,
            dropped_red: 2,
            bytes_out: 90_000,
        };
        assert_eq!(s.dropped_total(), 10);
        assert_eq!(s.in_flight(), 10);
        assert_eq!(s.bytes_out_size().as_bytes(), 90_000);
        assert!(s.is_conserved(110));
        assert!(!s.is_conserved(111));
    }

    #[test]
    fn default_is_zeroed() {
        let s = PipeStats::default();
        assert_eq!(s.dropped_total(), 0);
        assert_eq!(s.in_flight(), 0);
        assert!(s.is_conserved(0));
    }
}
