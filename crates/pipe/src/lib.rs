//! Pipe emulation units — the per-link machinery inside a ModelNet core.
//!
//! Each pipe follows the dummynet design the paper extends: arriving packets
//! first pass a loss check and a bounded **bandwidth queue**; the time to
//! drain into the pipe is computed from the packet size, the sizes of all
//! earlier queued packets and the pipe bandwidth. A drained packet then sits
//! in the pipe's **delay line** for the configured latency before it exits
//! and either moves to the next pipe on its route or is delivered to the
//! destination edge node. Overflowing the bandwidth queue, failing the random
//! loss check, or an (optional) RED early drop all count as *virtual* drops —
//! drops the emulated network would have imposed — as opposed to the
//! *physical* drops an overloaded core suffers at its NIC.

pub mod cbr;
pub mod discipline;
pub mod emu_pipe;
pub mod stats;

pub use cbr::CbrConfig;
pub use discipline::{QueueDiscipline, RedParams};
pub use emu_pipe::{DequeuedPacket, EmuPipe, EnqueueOutcome};
pub use stats::PipeStats;
