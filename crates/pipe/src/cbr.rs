//! Constant-bit-rate background traffic configuration.
//!
//! ModelNet compensates for distilled-away hops by placing background cross
//! traffic on the collapsed pipes (§4.1/§4.3 of the paper): a flow crossing
//! such a pipe then competes for bandwidth and queue slots exactly as it
//! would have competed with real traffic on the removed links. A
//! [`CbrConfig`] describes one such injector — packets of a fixed wire size
//! offered to one pipe at a constant rate. The emulation core schedules the
//! injections on its tick path; this type only carries the parameters.

use serde::{Deserialize, Serialize};

use mn_util::{ByteSize, DataRate, SimDuration};

/// Parameters of one constant-bit-rate background injector on a pipe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CbrConfig {
    /// Offered background load in bits per second of wire size.
    pub rate: DataRate,
    /// Wire size of each background packet.
    pub packet_size: ByteSize,
}

impl CbrConfig {
    /// A CBR injector offering `rate` of background load in packets of
    /// `packet_size`.
    pub fn new(rate: DataRate, packet_size: ByteSize) -> Self {
        CbrConfig { rate, packet_size }
    }

    /// Inter-packet gap that realises the configured rate, or `None` for a
    /// degenerate configuration that injects nothing — zero rate, zero
    /// size, or a gap that truncates to zero nanoseconds (which would make
    /// an injector spin forever without advancing virtual time).
    pub fn interval(&self) -> Option<SimDuration> {
        if self.rate.is_zero() || self.packet_size.as_bytes() == 0 {
            return None;
        }
        let gap = self.rate.transmission_time(self.packet_size);
        (gap > SimDuration::ZERO).then_some(gap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_realises_the_rate() {
        // 1000-byte packets at 2 Mb/s: one packet every 4 ms.
        let cbr = CbrConfig::new(DataRate::from_mbps(2), ByteSize::from_bytes(1000));
        assert_eq!(cbr.interval(), Some(SimDuration::from_millis(4)));
    }

    #[test]
    fn degenerate_configs_inject_nothing() {
        assert_eq!(
            CbrConfig::new(DataRate::ZERO, ByteSize::from_bytes(1000)).interval(),
            None
        );
        assert_eq!(
            CbrConfig::new(DataRate::from_mbps(1), ByteSize::from_bytes(0)).interval(),
            None
        );
        // A gap that truncates to 0 ns (tiny packet on an enormous rate)
        // must also be rejected, or the injector would never advance.
        assert_eq!(
            CbrConfig::new(DataRate::from_gbps(10), ByteSize::from_bytes(1)).interval(),
            None
        );
    }
}
