//! Queueing disciplines for the pipe bandwidth queue.
//!
//! Pipes are FIFO drop-tail by default, exactly as in the paper. A RED
//! (random early detection) discipline is available as the paper's optional
//! per-pipe policy: it probabilistically drops arrivals as the average queue
//! length moves between a minimum and maximum threshold, which desynchronises
//! TCP flows sharing the pipe.

use serde::{Deserialize, Serialize};

/// Parameters of the RED (random early detection) policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RedParams {
    /// Average queue length (packets) below which no packet is dropped.
    pub min_threshold: f64,
    /// Average queue length (packets) at and above which every packet is
    /// dropped.
    pub max_threshold: f64,
    /// Drop probability when the average queue reaches `max_threshold`.
    pub max_drop_probability: f64,
    /// Exponential weight for the average queue estimate (0 < w ≤ 1).
    pub weight: f64,
}

impl Default for RedParams {
    fn default() -> Self {
        // Classic "gentle" defaults scaled for the 50-slot dummynet queue.
        RedParams {
            min_threshold: 5.0,
            max_threshold: 15.0,
            max_drop_probability: 0.1,
            weight: 0.002,
        }
    }
}

impl RedParams {
    /// Drop probability for the given average queue length.
    pub fn drop_probability(&self, avg_queue: f64) -> f64 {
        if avg_queue < self.min_threshold {
            0.0
        } else if avg_queue >= self.max_threshold {
            1.0
        } else {
            let frac = (avg_queue - self.min_threshold) / (self.max_threshold - self.min_threshold);
            (frac * self.max_drop_probability).clamp(0.0, 1.0)
        }
    }
}

/// The discipline applied to a pipe's bandwidth queue.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// FIFO with tail drop on overflow (the ModelNet default).
    #[default]
    DropTail,
    /// Random early detection.
    Red(RedParams),
}

/// Tracks the RED average-queue estimate for one pipe.
#[derive(Debug, Clone, Copy, Default)]
pub struct RedState {
    avg_queue: f64,
}

impl RedState {
    /// Updates the average with the instantaneous queue length observed at an
    /// arrival and returns the new average.
    pub fn observe(&mut self, params: &RedParams, instantaneous: usize) -> f64 {
        self.avg_queue =
            (1.0 - params.weight) * self.avg_queue + params.weight * instantaneous as f64;
        self.avg_queue
    }

    /// The current average estimate.
    pub fn average(&self) -> f64 {
        self.avg_queue
    }

    /// Rebuilds the estimator from an average captured by
    /// [`RedState::average`], for checkpoint/restore of a pipe mid-run.
    pub fn from_average(avg_queue: f64) -> Self {
        RedState { avg_queue }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_discipline_is_droptail() {
        assert_eq!(QueueDiscipline::default(), QueueDiscipline::DropTail);
    }

    #[test]
    fn red_probability_is_zero_below_min() {
        let p = RedParams::default();
        assert_eq!(p.drop_probability(0.0), 0.0);
        assert_eq!(p.drop_probability(4.9), 0.0);
    }

    #[test]
    fn red_probability_is_one_at_max() {
        let p = RedParams::default();
        assert_eq!(p.drop_probability(15.0), 1.0);
        assert_eq!(p.drop_probability(100.0), 1.0);
    }

    #[test]
    fn red_probability_interpolates_linearly() {
        let p = RedParams::default();
        let mid = p.drop_probability(10.0);
        assert!((mid - 0.05).abs() < 1e-12);
        assert!(p.drop_probability(7.0) < p.drop_probability(12.0));
    }

    #[test]
    fn red_state_converges_toward_observed_queue() {
        let params = RedParams {
            weight: 0.5,
            ..RedParams::default()
        };
        let mut state = RedState::default();
        for _ in 0..32 {
            state.observe(&params, 10);
        }
        assert!((state.average() - 10.0).abs() < 0.01);
    }

    #[test]
    fn red_state_smooths_transients() {
        let params = RedParams::default(); // small weight
        let mut state = RedState::default();
        state.observe(&params, 50);
        assert!(
            state.average() < 1.0,
            "one burst should barely move the average"
        );
    }
}
