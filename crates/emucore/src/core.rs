//! A single ModelNet core node.
//!
//! The core holds the pipes assigned to it, a scheduler heap of pipe
//! deadlines, and the hardware capacity model. Two priorities govern its
//! behaviour, mirroring the kernel design in the paper:
//!
//! * the **scheduler** (pipe-to-pipe movement and final delivery) runs every
//!   clock tick and always completes its due work — emulated delays are never
//!   stretched by load;
//! * **packet admission** (the NIC interrupt path) runs at lower priority: if
//!   the accumulated emulation work exceeds the CPU's ability to keep up, or
//!   the NIC line rate / buffering is exceeded, newly arriving packets are
//!   dropped *physically* and counted as such.

use std::sync::Arc;

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use mn_assign::CoreId;
use mn_distill::{PipeAttrs, PipeId};
use mn_pipe::{CbrConfig, DequeuedPacket, EmuPipe, EnqueueOutcome, PipeStats, QueueDiscipline};
use mn_routing::RouteTable;
use mn_util::rngs::derived_rng;
use mn_util::{ByteSize, DataRate, SimDuration, SimTime, TimerWheel};

use crate::accuracy::AccuracyLog;
use crate::descriptor::{Delivery, Descriptor};
use crate::hardware::HardwareProfile;

/// Result of offering a packet to the core's NIC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressOutcome {
    /// The packet was admitted and scheduled onto its first pipe (or queued
    /// for tunnelling if the first pipe lives on a peer core).
    Accepted,
    /// Dropped at the NIC: the line rate / receive buffer was exceeded.
    PhysicalDropNic,
    /// Dropped at the NIC because emulation work has saturated the CPU and
    /// interrupt handling is starved.
    PhysicalDropCpu,
    /// The packet was dropped by the first pipe's admission (virtual drop:
    /// queue overflow, random loss or RED).
    VirtualDrop,
}

impl IngressOutcome {
    /// Returns `true` if the packet entered the emulation.
    pub fn is_accepted(&self) -> bool {
        matches!(self, IngressOutcome::Accepted)
    }

    /// Returns `true` for a physical (NIC/CPU) drop.
    pub fn is_physical_drop(&self) -> bool {
        matches!(
            self,
            IngressOutcome::PhysicalDropNic | IngressOutcome::PhysicalDropCpu
        )
    }
}

/// Counters for one core.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreStats {
    /// Packets offered by edge nodes.
    pub packets_offered: u64,
    /// Packets admitted into the emulation.
    pub packets_admitted: u64,
    /// Packets delivered to their destination edge node by this core.
    pub packets_delivered: u64,
    /// Descriptors tunnelled to a peer core.
    pub tunnels_out: u64,
    /// Descriptors received from peer cores.
    pub tunnels_in: u64,
    /// Packets dropped at the NIC because of line-rate/buffer exhaustion.
    pub physical_drops_nic: u64,
    /// Packets dropped at the NIC because the CPU was saturated by emulation.
    pub physical_drops_cpu: u64,
    /// Bytes received (edge ingress plus tunnels in).
    pub bytes_in: u64,
    /// Bytes transmitted (deliveries plus tunnels out).
    pub bytes_out: u64,
    /// Background CBR cross-traffic packets injected into local pipes.
    pub cbr_injected: u64,
    /// Descriptors dropped because their next pipe was a failed link
    /// (configured bandwidth zero, e.g. after a `NodeDown` event). Without
    /// this counter such packets would vanish from the per-core ledger:
    /// admitted but never delivered, tunnelled or physically dropped.
    pub dropped_unreachable: u64,
    /// Bytes of traffic modelled at flow level (fluid) on this core's
    /// pipes: the per-pipe fluid demand integrated over virtual time.
    pub fluid_modelled_bytes: u64,
}

impl CoreStats {
    /// All physical drops.
    pub fn physical_drops(&self) -> u64 {
        self.physical_drops_nic + self.physical_drops_cpu
    }

    /// Folds another core's counters into this one, field by field.
    ///
    /// Every field is a plain sum, so merging is associative and
    /// commutative: per-thread stats drained in any grouping (one core at a
    /// time, pairwise trees, all at once) produce the same total. The
    /// parallel backend relies on this when each core thread reports its
    /// counters independently.
    pub fn merge(&mut self, other: &CoreStats) {
        self.packets_offered += other.packets_offered;
        self.packets_admitted += other.packets_admitted;
        self.packets_delivered += other.packets_delivered;
        self.tunnels_out += other.tunnels_out;
        self.tunnels_in += other.tunnels_in;
        self.physical_drops_nic += other.physical_drops_nic;
        self.physical_drops_cpu += other.physical_drops_cpu;
        self.bytes_in += other.bytes_in;
        self.bytes_out += other.bytes_out;
        self.cbr_injected += other.cbr_injected;
        self.dropped_unreachable += other.dropped_unreachable;
        self.fluid_modelled_bytes += other.fluid_modelled_bytes;
    }

    /// [`CoreStats::merge`] as a by-value fold step.
    pub fn merged(mut self, other: &CoreStats) -> CoreStats {
        self.merge(other);
        self
    }
}

/// The output of one scheduler pass. Callers on the steady-state path keep
/// one of these alive and pass it to [`EmulatorCore::tick_into`] so its
/// buffers are reused tick after tick instead of reallocated.
#[derive(Debug, Default)]
pub struct TickOutput {
    /// Packets that exited their last pipe and must be forwarded to the
    /// destination edge node.
    pub deliveries: Vec<Delivery>,
    /// Descriptors whose next pipe is owned by another core, together with
    /// that pipe and the time they left their previous pipe.
    pub tunnels: Vec<(PipeId, Descriptor, SimTime)>,
}

impl TickOutput {
    /// Empties both buffers, keeping their capacity.
    pub fn clear(&mut self) {
        self.deliveries.clear();
        self.tunnels.clear();
    }

    /// Returns `true` if the pass produced no work.
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty() && self.tunnels.is_empty()
    }
}

/// One scheduled constant-bit-rate background injector on a locally owned
/// pipe (the paper's hop-by-hop compensation for distilled-away links).
///
/// Since the hybrid fluid model took over the bandwidth contention (the
/// coordinator registers a CBR episode as a fixed-rate fluid demand on the
/// pipe), the source is a pure meter: it advances `next_at` and counts
/// injections, but no longer materialises per-packet descriptors.
#[derive(Debug, Clone, Copy)]
struct CbrSource {
    /// The pipe the injector feeds.
    pipe: PipeId,
    /// Wire size of each injected packet.
    packet_size: mn_util::ByteSize,
    /// Inter-packet gap realising the configured rate.
    interval: SimDuration,
    /// Virtual time of the next injection.
    next_at: SimTime,
}

/// One emulation core.
#[derive(Debug, Clone)]
pub struct EmulatorCore {
    id: CoreId,
    profile: HardwareProfile,
    /// The interned routes shared by every core of the emulation; descriptors
    /// carry a `RouteId` into this table instead of a route of their own.
    /// The table is sharded copy-on-write: a reconfiguration publishes a new
    /// `Arc` whose untouched row blocks are the same allocations this core
    /// was already reading, so the per-packet lookup stays a fixed chain of
    /// indexed loads and a swap invalidates nothing that did not change.
    routes: Arc<RouteTable>,
    /// Dense pipe table indexed by `PipeId`: `Some` for the pipes this core
    /// owns, `None` for slots owned by peer cores. Sized once at
    /// construction to the distilled topology's pipe count.
    pipes: Vec<Option<EmuPipe<Descriptor>>>,
    /// Scheduler wheel: one entry per accepted packet, keyed by its pipe exit
    /// deadline. O(1) push/pop regardless of how many pipes are pending (the
    /// paper's requirement for scheduling tens of thousands of pipes at
    /// 100 µs fidelity). Entries for packets that were already moved by an
    /// earlier pass are stale and simply find no due work.
    wheel: TimerWheel<PipeId>,
    /// Descriptors whose next pipe lives on a peer core, staged until the
    /// next tick emits them as tunnel requests.
    pending_remote: Vec<(PipeId, Descriptor, SimTime)>,
    /// Drained-and-restored body of `pending_remote`, kept so its capacity
    /// survives across ticks.
    pending_scratch: Vec<(PipeId, Descriptor, SimTime)>,
    /// Reusable buffer `tick` drains due pipes into; capacity persists across
    /// ticks so the steady state allocates nothing.
    ready_scratch: Vec<DequeuedPacket<Descriptor>>,
    /// Scheduled CBR background injectors on locally owned pipes, in
    /// installation order (the injection order, identical on both
    /// execution backends).
    cbr: Vec<CbrSource>,
    /// Sum of fluid demand over locally owned pipes, in bits/second.
    fluid_total_bps: u64,
    /// Virtual time the fluid byte integral has been advanced to.
    fluid_last: SimTime,
    /// Sub-byte remainder of the fluid integral, in bit-nanoseconds
    /// (always `< 8e9`, so the accounting is exact across epochs).
    fluid_bits_ns_rem: u64,
    // CPU model.
    cpu_backlog: SimDuration,
    cpu_busy_total: SimDuration,
    cpu_last_credit: SimTime,
    started_at: SimTime,
    last_seen: SimTime,
    // NIC receive model (token bucket at line rate, capped by the buffer).
    rx_tokens: f64,
    rx_last_refill: SimTime,
    stats: CoreStats,
    accuracy: AccuracyLog,
    rng: StdRng,
}

impl EmulatorCore {
    /// Creates a core with the given identity and hardware profile.
    /// `pipe_slots` is the distilled topology's total pipe count: the dense
    /// pipe table has one slot per pipe id, installed or not.
    pub fn new(
        id: CoreId,
        profile: HardwareProfile,
        seed: u64,
        routes: Arc<RouteTable>,
        pipe_slots: usize,
    ) -> Self {
        EmulatorCore {
            id,
            profile,
            routes,
            pipes: std::iter::repeat_with(|| None).take(pipe_slots).collect(),
            wheel: TimerWheel::new(),
            pending_remote: Vec::new(),
            pending_scratch: Vec::new(),
            ready_scratch: Vec::new(),
            cbr: Vec::new(),
            fluid_total_bps: 0,
            fluid_last: SimTime::ZERO,
            fluid_bits_ns_rem: 0,
            cpu_backlog: SimDuration::ZERO,
            cpu_busy_total: SimDuration::ZERO,
            cpu_last_credit: SimTime::ZERO,
            started_at: SimTime::ZERO,
            last_seen: SimTime::ZERO,
            rx_tokens: profile.nic_buffer.as_bytes() as f64,
            rx_last_refill: SimTime::ZERO,
            stats: CoreStats::default(),
            accuracy: AccuracyLog::new(),
            rng: derived_rng(seed, 0xC0DE + id.index() as u64),
        }
    }

    /// This core's identity.
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// The hardware profile in force.
    pub fn profile(&self) -> &HardwareProfile {
        &self.profile
    }

    /// Installs a pipe on this core with the default FIFO discipline.
    ///
    /// # Panics
    ///
    /// Panics if the pipe id is outside the table this core was sized for.
    pub fn install_pipe(&mut self, pipe: PipeId, attrs: PipeAttrs) {
        self.pipes[pipe.index()] = Some(EmuPipe::new(attrs));
    }

    /// Installs a pipe with an explicit queueing discipline.
    pub fn install_pipe_with_discipline(
        &mut self,
        pipe: PipeId,
        attrs: PipeAttrs,
        discipline: QueueDiscipline,
    ) {
        self.pipes[pipe.index()] = Some(EmuPipe::with_discipline(attrs, discipline));
    }

    /// Returns `true` if this core owns the pipe.
    pub fn owns_pipe(&self, pipe: PipeId) -> bool {
        self.pipe(pipe).is_some()
    }

    /// The installed pipe for `id`, if this core owns it.
    #[inline]
    fn pipe(&self, id: PipeId) -> Option<&EmuPipe<Descriptor>> {
        self.pipes.get(id.index()).and_then(Option::as_ref)
    }

    /// Mutable access to the installed pipe for `id`.
    #[inline]
    fn pipe_mut(&mut self, id: PipeId) -> Option<&mut EmuPipe<Descriptor>> {
        self.pipes.get_mut(id.index()).and_then(Option::as_mut)
    }

    /// Replaces the interned route table (after an explicit routing rebuild).
    pub fn set_route_table(&mut self, routes: Arc<RouteTable>) {
        self.routes = routes;
    }

    /// Updates a pipe's emulation parameters (dynamic network changes).
    /// Returns `false` if the pipe is not installed here.
    pub fn update_pipe_attrs(&mut self, pipe: PipeId, attrs: PipeAttrs) -> bool {
        match self.pipe_mut(pipe) {
            Some(p) => {
                p.set_attrs(attrs);
                true
            }
            None => false,
        }
    }

    /// Installs, replaces or (with `None`) removes the CBR background
    /// injector on a locally owned pipe. Injection starts at `from` and is
    /// driven by the tick path, so it costs no allocation at steady state.
    /// Returns `false` if the pipe is not installed here.
    pub fn set_pipe_cbr(&mut self, pipe: PipeId, config: Option<CbrConfig>, from: SimTime) -> bool {
        if !self.owns_pipe(pipe) {
            return false;
        }
        self.cbr.retain(|s| s.pipe != pipe);
        if let Some(config) = config {
            if let Some(interval) = config.interval() {
                self.cbr.push(CbrSource {
                    pipe,
                    packet_size: config.packet_size,
                    interval,
                    next_at: from,
                });
            }
        }
        true
    }

    /// Sets the fluid (flow-level) bandwidth demand on a locally owned pipe,
    /// effective from virtual time `at`. The byte integral of the previous
    /// demand is settled up to `at` first, so piecewise-constant rates
    /// accumulate exactly. Returns `false` if the pipe is not installed here.
    pub fn set_pipe_fluid_demand(&mut self, pipe: PipeId, demand: DataRate, at: SimTime) -> bool {
        if !self.owns_pipe(pipe) {
            return false;
        }
        self.integrate_fluid_to(at);
        let p = self.pipes[pipe.index()]
            .as_mut()
            .expect("ownership checked");
        let old = p.fluid_demand().as_bps();
        p.set_fluid_demand(demand);
        self.fluid_total_bps = self.fluid_total_bps - old + demand.as_bps();
        true
    }

    /// Advances the fluid byte integral to `now`: every locally owned
    /// pipe's fluid demand counts toward [`CoreStats::fluid_modelled_bytes`]
    /// for the elapsed interval. Exact (a bit-nanosecond remainder is
    /// carried), monotonic, and allocation-free.
    pub fn integrate_fluid_to(&mut self, now: SimTime) {
        if now <= self.fluid_last {
            return;
        }
        let elapsed_ns = (now - self.fluid_last).as_nanos();
        self.fluid_last = now;
        if self.fluid_total_bps == 0 {
            return;
        }
        let bits_ns =
            self.fluid_total_bps as u128 * elapsed_ns as u128 + self.fluid_bits_ns_rem as u128;
        self.stats.fluid_modelled_bytes += (bits_ns / 8_000_000_000) as u64;
        self.fluid_bits_ns_rem = (bits_ns % 8_000_000_000) as u64;
    }

    /// The CBR injectors currently installed on this core, as
    /// `(pipe, packet size, inter-packet gap)` triples.
    pub fn cbr_sources(
        &self,
    ) -> impl Iterator<Item = (PipeId, mn_util::ByteSize, SimDuration)> + '_ {
        self.cbr.iter().map(|s| (s.pipe, s.packet_size, s.interval))
    }

    /// Advances every CBR meter past `now`, counting the injections that
    /// would have occurred. The bandwidth the injections consume is carried
    /// by the pipe's fluid demand (installed by the coordinator alongside
    /// the meter), so no per-packet descriptor is built and no RNG is
    /// drawn. Runs at the head of each scheduler pass; allocates nothing.
    fn inject_cbr(&mut self, now: SimTime) {
        for source in &mut self.cbr {
            while source.next_at <= now {
                source.next_at += source.interval;
                self.stats.cbr_injected += 1;
            }
        }
    }

    /// Counters.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The per-packet accuracy log.
    pub fn accuracy(&self) -> &AccuracyLog {
        &self.accuracy
    }

    /// Aggregated virtual-drop and throughput counters over this core's
    /// pipes.
    pub fn pipe_stats_total(&self) -> PipeStats {
        let mut total = PipeStats::default();
        for p in self.pipes.iter().flatten() {
            let s = p.stats();
            total.enqueued += s.enqueued;
            total.dequeued += s.dequeued;
            total.dropped_overflow += s.dropped_overflow;
            total.dropped_loss += s.dropped_loss;
            total.dropped_red += s.dropped_red;
            total.bytes_out += s.bytes_out;
        }
        total
    }

    /// Counters for a single pipe, if installed here.
    pub fn pipe_stats(&self, pipe: PipeId) -> Option<&PipeStats> {
        self.pipe(pipe).map(|p| p.stats())
    }

    /// Fraction of wall time the CPU spent on emulation work so far.
    pub fn cpu_utilization(&self) -> f64 {
        let elapsed = (self.last_seen - self.started_at).as_secs_f64();
        if elapsed <= 0.0 {
            0.0
        } else {
            (self.cpu_busy_total.as_secs_f64() / elapsed).min(1.0)
        }
    }

    /// Earliest time at which this core has scheduler work due, rounded up to
    /// its tick boundary. Covers both pipe deadlines and descriptors staged
    /// for tunnelling to a peer core.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let heap_next = self.wheel.peek_time();
        let staged_next = self.pending_remote.iter().map(|(_, _, t)| *t).min();
        // An installed CBR injector keeps the core perpetually busy: its
        // next injection is always due work (background load never stops).
        let cbr_next = self.cbr.iter().map(|s| s.next_at).min();
        [heap_next, staged_next, cbr_next]
            .into_iter()
            .flatten()
            .min()
            .map(|t| self.profile.next_tick_at(t))
    }

    fn credit_cpu(&mut self, now: SimTime) {
        if now <= self.cpu_last_credit {
            return;
        }
        let elapsed = now - self.cpu_last_credit;
        let worked = self.cpu_backlog.min(elapsed);
        self.cpu_backlog -= worked;
        self.cpu_busy_total += worked;
        self.cpu_last_credit = now;
        self.last_seen = now;
    }

    fn refill_nic(&mut self, now: SimTime) {
        if now <= self.rx_last_refill {
            return;
        }
        let elapsed = now - self.rx_last_refill;
        self.rx_tokens = (self.rx_tokens
            + self.profile.nic_rate.bytes_in(elapsed).as_bytes() as f64)
            .min(self.profile.nic_buffer.as_bytes() as f64);
        self.rx_last_refill = now;
    }

    fn nic_admit(&mut self, size: ByteSize) -> bool {
        let needed = size.as_bytes() as f64;
        if self.rx_tokens >= needed {
            self.rx_tokens -= needed;
            true
        } else {
            false
        }
    }

    fn cpu_saturated(&self) -> bool {
        self.cpu_backlog > self.profile.saturation_backlog
    }

    /// Offers a packet arriving from an edge node (the ipfw intercept path).
    ///
    /// The caller has already performed route lookup; the descriptor's first
    /// pipe may or may not be owned by this core. If it is not, the accepted
    /// descriptor is emitted through the next [`EmulatorCore::tick`] as a
    /// tunnel request.
    pub fn ingress(&mut self, now: SimTime, mut descriptor: Descriptor) -> IngressOutcome {
        self.credit_cpu(now);
        self.refill_nic(now);
        self.stats.packets_offered += 1;
        let size = descriptor.packet.size;

        if !self.nic_admit(size) {
            self.stats.physical_drops_nic += 1;
            return IngressOutcome::PhysicalDropNic;
        }
        if self.cpu_saturated() {
            self.stats.physical_drops_cpu += 1;
            return IngressOutcome::PhysicalDropCpu;
        }
        self.cpu_backlog += self.profile.per_packet_cpu;
        self.stats.packets_admitted += 1;
        self.stats.bytes_in += size.as_bytes();
        descriptor.entered_at = now;

        let Some(first_pipe) = descriptor.next_pipe(&self.routes) else {
            // Zero-hop route: deliver on the next tick via an empty-route
            // descriptor placed on a synthetic immediate deadline. Simplest is
            // to treat it as complete right now by storing it as a delivery in
            // the next tick; we do that by pushing it through a zero-latency
            // path: record directly.
            // (Handled by MultiCoreEmulator, which never submits empty routes
            // to a core; defensive fallback.)
            return IngressOutcome::Accepted;
        };
        if let Some(pipe) = self
            .pipes
            .get_mut(first_pipe.index())
            .and_then(Option::as_mut)
        {
            match pipe.enqueue(now, size, descriptor, &mut self.rng) {
                EnqueueOutcome::Accepted { exit_time } => {
                    self.wheel.push(exit_time, first_pipe);
                    IngressOutcome::Accepted
                }
                _ => IngressOutcome::VirtualDrop,
            }
        } else {
            // First pipe owned by a peer core: stage for tunnelling at the
            // next tick by pushing a zero-deadline marker on a local holding
            // area. We reuse the heap with an immediate deadline and a
            // sentinel pipe id that tick() resolves via `pending_remote`.
            self.pending_remote.push((first_pipe, descriptor, now));
            IngressOutcome::Accepted
        }
    }

    /// Accepts a descriptor tunnelled from a peer core; the next pipe must be
    /// installed locally.
    pub fn accept_tunnel(&mut self, now: SimTime, descriptor: Descriptor) -> IngressOutcome {
        self.credit_cpu(now);
        self.refill_nic(now);
        self.stats.tunnels_in += 1;
        let wire = if self.profile.payload_caching {
            ByteSize::from_bytes(HardwareProfile::DESCRIPTOR_BYTES)
        } else {
            descriptor.packet.size
        };
        if !self.nic_admit(wire) {
            self.stats.physical_drops_nic += 1;
            return IngressOutcome::PhysicalDropNic;
        }
        if self.cpu_saturated() {
            self.stats.physical_drops_cpu += 1;
            return IngressOutcome::PhysicalDropCpu;
        }
        self.cpu_backlog += self.profile.tunnel_cpu;
        self.stats.bytes_in += wire.as_bytes();
        self.enqueue_descriptor(now, descriptor)
    }

    /// Enqueues a descriptor onto its next pipe (which must be local).
    fn enqueue_descriptor(&mut self, at: SimTime, descriptor: Descriptor) -> IngressOutcome {
        let Some(pipe_id) = descriptor.next_pipe(&self.routes) else {
            return IngressOutcome::Accepted;
        };
        let size = descriptor.packet.size;
        if let Some(pipe) = self.pipes.get_mut(pipe_id.index()).and_then(Option::as_mut) {
            // A failed link (bandwidth configured to zero, e.g. the pipe's
            // far node is down) is unreachability, not congestion: count it
            // so every admitted packet stays on the ledger. The skipped
            // enqueue would have dropped before its first RNG draw, so the
            // deterministic random stream is unchanged.
            if pipe.attrs().bandwidth.is_zero() {
                self.stats.dropped_unreachable += 1;
                return IngressOutcome::VirtualDrop;
            }
            match pipe.enqueue(at, size, descriptor, &mut self.rng) {
                EnqueueOutcome::Accepted { exit_time } => {
                    self.wheel.push(exit_time, pipe_id);
                    IngressOutcome::Accepted
                }
                _ => IngressOutcome::VirtualDrop,
            }
        } else {
            self.pending_remote.push((pipe_id, descriptor, at));
            IngressOutcome::Accepted
        }
    }

    /// Runs one scheduler pass at time `now`, allocating fresh output
    /// buffers. Steady-state callers use [`EmulatorCore::tick_into`] with a
    /// long-lived [`TickOutput`] instead.
    pub fn tick(&mut self, now: SimTime) -> TickOutput {
        let mut out = TickOutput::default();
        self.tick_into(now, &mut out);
        out
    }

    /// Runs one scheduler pass at time `now`: moves every descriptor whose
    /// pipe deadline has passed to its next pipe, its destination edge node,
    /// or a peer core. `out` is cleared and refilled; with a warmed
    /// `TickOutput` the pass performs no heap allocation.
    pub fn tick_into(&mut self, now: SimTime, out: &mut TickOutput) {
        self.credit_cpu(now);
        out.clear();

        // Background cross traffic first: due injections enter their pipes
        // with their ideal timestamps, so they contend with (and are ordered
        // against) the foreground work this pass services.
        self.inject_cbr(now);

        // Descriptors whose next pipe is remote (staged at ingress). Swap the
        // staging buffer with a persistent scratch so its capacity is reused
        // instead of reallocated every tick.
        let mut staged = std::mem::replace(
            &mut self.pending_remote,
            std::mem::take(&mut self.pending_scratch),
        );
        for (pipe, descriptor, at) in staged.drain(..) {
            self.stats.tunnels_out += 1;
            let wire = if self.profile.payload_caching {
                HardwareProfile::DESCRIPTOR_BYTES
            } else {
                descriptor.packet.size.as_bytes()
            };
            self.cpu_backlog += self.profile.tunnel_cpu;
            self.stats.bytes_out += wire;
            out.tunnels.push((pipe, descriptor, at));
        }
        self.pending_scratch = staged;

        // Drain due pipes through a persistent scratch buffer rather than a
        // fresh Vec per pipe.
        let mut ready = std::mem::take(&mut self.ready_scratch);
        while let Some((_, pipe_id)) = self.wheel.pop_due(now) {
            let Some(pipe) = self.pipes.get_mut(pipe_id.index()).and_then(Option::as_mut) else {
                continue;
            };
            pipe.dequeue_ready_into(now, &mut ready);
            for dequeued in ready.drain(..) {
                let mut descriptor = dequeued.item;
                self.cpu_backlog += self.profile.per_hop_cpu;
                let lateness = now.duration_since(dequeued.exit_time);
                if self.profile.packet_debt_correction {
                    // With debt correction every pipe is entered at its ideal
                    // time, so the end-to-end error is only the lateness of
                    // the hop currently being serviced — it does not
                    // accumulate across hops.
                    descriptor.accumulated_error = lateness;
                } else {
                    descriptor.accumulated_error += lateness;
                }
                descriptor.advance_hop();
                // Packet-debt correction re-enters at the ideal time so error
                // does not accumulate across hops.
                let reentry = if self.profile.packet_debt_correction {
                    dequeued.exit_time
                } else {
                    now
                };
                if descriptor.is_complete(&self.routes) {
                    let delivered_at = if self.profile.packet_debt_correction {
                        dequeued.exit_time.max(descriptor.entered_at)
                    } else {
                        now
                    };
                    let delivery = Delivery {
                        hops: descriptor.total_hops(&self.routes),
                        emulation_error: descriptor.accumulated_error,
                        entered_at: descriptor.entered_at,
                        delivered_at,
                        packet: descriptor.packet,
                    };
                    self.stats.packets_delivered += 1;
                    self.stats.bytes_out += delivery.packet.size.as_bytes();
                    self.accuracy.record(&delivery);
                    out.deliveries.push(delivery);
                } else {
                    let next = descriptor
                        .next_pipe(&self.routes)
                        .expect("incomplete route has a next pipe");
                    if let Some(next_pipe) =
                        self.pipes.get_mut(next.index()).and_then(Option::as_mut)
                    {
                        if next_pipe.attrs().bandwidth.is_zero() {
                            // The next hop is a failed link: the descriptor
                            // can never cross it. Account for it instead of
                            // letting it vanish (the skipped enqueue draws
                            // no randomness before its own zero-bandwidth
                            // drop, so determinism is preserved).
                            self.stats.dropped_unreachable += 1;
                            continue;
                        }
                        let size = descriptor.packet.size;
                        if let EnqueueOutcome::Accepted { exit_time } =
                            next_pipe.enqueue(reentry, size, descriptor, &mut self.rng)
                        {
                            self.wheel.push(exit_time, next);
                        }
                        // Virtual drops simply vanish here; the pipe counted
                        // them.
                    } else {
                        self.stats.tunnels_out += 1;
                        let wire = if self.profile.payload_caching {
                            HardwareProfile::DESCRIPTOR_BYTES
                        } else {
                            descriptor.packet.size.as_bytes()
                        };
                        self.cpu_backlog += self.profile.tunnel_cpu;
                        self.stats.bytes_out += wire;
                        out.tunnels.push((next, descriptor, reentry));
                    }
                }
            }
        }
        self.ready_scratch = ready;
    }

    /// Number of packets currently being emulated across this core's pipes.
    pub fn in_flight(&self) -> usize {
        self.pipes
            .iter()
            .flatten()
            .map(|p| p.in_flight_count())
            .sum()
    }
}

impl EmulatorCore {
    /// Packets staged for tunnelling before the next tick.
    pub fn pending_remote_len(&self) -> usize {
        self.pending_remote.len()
    }
}

impl EmulatorCore {
    /// Serializes this core's complete emulation state for a checkpoint:
    /// every installed pipe (attributes, discipline, RED average, drain
    /// clock, stats, fluid demand and in-flight packets in queue order), the
    /// scheduler wheel's pending entries in pop order (stale entries
    /// included, so the restored wheel services deadlines identically),
    /// staged tunnel descriptors, CBR meters, the fluid/CPU/NIC accounting,
    /// counters, the accuracy log and the RNG stream position. The hardware
    /// profile and route table are shared emulator-level state and are
    /// written once by the emulator snapshot, not per core.
    pub fn encode_state(&self, w: &mut mn_util::ByteWriter) {
        use crate::snapshot::put_descriptor;

        w.put_usize(self.id.index());
        w.put_len(self.pipes.len());
        for slot in &self.pipes {
            let Some(pipe) = slot else {
                w.put_bool(false);
                continue;
            };
            w.put_bool(true);
            let attrs = *pipe.attrs();
            w.put_rate(attrs.bandwidth);
            w.put_duration(attrs.latency);
            w.put_f64(attrs.loss_rate);
            w.put_usize(attrs.queue_len);
            match pipe.discipline() {
                QueueDiscipline::DropTail => w.put_u8(0),
                QueueDiscipline::Red(params) => {
                    w.put_u8(1);
                    w.put_f64(params.min_threshold);
                    w.put_f64(params.max_threshold);
                    w.put_f64(params.max_drop_probability);
                    w.put_f64(params.weight);
                }
            }
            w.put_f64(pipe.red_average());
            w.put_time(pipe.drain_busy_until());
            let stats = *pipe.stats();
            w.put_u64(stats.enqueued);
            w.put_u64(stats.dequeued);
            w.put_u64(stats.dropped_overflow);
            w.put_u64(stats.dropped_loss);
            w.put_u64(stats.dropped_red);
            w.put_u64(stats.bytes_out);
            w.put_rate(pipe.fluid_demand());
            w.put_len(pipe.in_flight_count());
            for (item, size, drain_finish, exit_time) in pipe.in_flight_entries() {
                put_descriptor(w, item);
                w.put_size(size);
                w.put_time(drain_finish);
                w.put_time(exit_time);
            }
        }
        let wheel_entries = self.wheel.entries_in_order();
        w.put_len(wheel_entries.len());
        for (time, pipe) in wheel_entries {
            w.put_time(time);
            w.put_usize(pipe.index());
        }
        w.put_len(self.pending_remote.len());
        for (pipe, descriptor, at) in &self.pending_remote {
            w.put_usize(pipe.index());
            put_descriptor(w, descriptor);
            w.put_time(*at);
        }
        w.put_len(self.cbr.len());
        for source in &self.cbr {
            w.put_usize(source.pipe.index());
            w.put_size(source.packet_size);
            w.put_duration(source.interval);
            w.put_time(source.next_at);
        }
        w.put_u64(self.fluid_total_bps);
        w.put_time(self.fluid_last);
        w.put_u64(self.fluid_bits_ns_rem);
        w.put_duration(self.cpu_backlog);
        w.put_duration(self.cpu_busy_total);
        w.put_time(self.cpu_last_credit);
        w.put_time(self.started_at);
        w.put_time(self.last_seen);
        w.put_f64(self.rx_tokens);
        w.put_time(self.rx_last_refill);
        let s = &self.stats;
        for v in [
            s.packets_offered,
            s.packets_admitted,
            s.packets_delivered,
            s.tunnels_out,
            s.tunnels_in,
            s.physical_drops_nic,
            s.physical_drops_cpu,
            s.bytes_in,
            s.bytes_out,
            s.cbr_injected,
            s.dropped_unreachable,
            s.fluid_modelled_bytes,
        ] {
            w.put_u64(v);
        }
        let (error, per_hop, delivered, max_hops) = self.accuracy.snapshot_parts();
        for stats in [error, per_hop] {
            let (count, mean, m2, min, max) = stats.snapshot_parts();
            w.put_u64(count);
            w.put_f64(mean);
            w.put_f64(m2);
            w.put_f64(min);
            w.put_f64(max);
        }
        w.put_u64(delivered);
        w.put_usize(max_hops);
        for word in self.rng.state() {
            w.put_u64(word);
        }
    }

    /// Rebuilds a core from [`EmulatorCore::encode_state`] output. `profile`
    /// and `routes` are the emulator-level shared state the snapshot carries
    /// once. The restored core is observationally identical to the one that
    /// was encoded: same deadlines, same queue contents, same RNG draws.
    pub fn decode_state(
        r: &mut mn_util::ByteReader,
        profile: HardwareProfile,
        routes: Arc<RouteTable>,
    ) -> Result<Self, mn_util::CodecError> {
        use crate::snapshot::get_descriptor;
        use mn_util::CodecError;

        let id = CoreId(r.get_usize()?);
        let pipe_slots = r.get_len()?;
        let mut pipes: Vec<Option<EmuPipe<Descriptor>>> = Vec::with_capacity(pipe_slots);
        for _ in 0..pipe_slots {
            if !r.get_bool()? {
                pipes.push(None);
                continue;
            }
            let attrs = PipeAttrs {
                bandwidth: r.get_rate()?,
                latency: r.get_duration()?,
                loss_rate: r.get_f64()?,
                queue_len: r.get_usize()?,
            };
            let discipline = match r.get_u8()? {
                0 => QueueDiscipline::DropTail,
                1 => QueueDiscipline::Red(mn_pipe::RedParams {
                    min_threshold: r.get_f64()?,
                    max_threshold: r.get_f64()?,
                    max_drop_probability: r.get_f64()?,
                    weight: r.get_f64()?,
                }),
                _ => return Err(CodecError::Invalid("unknown queue discipline tag")),
            };
            let red_average = r.get_f64()?;
            let drain_busy_until = r.get_time()?;
            let stats = PipeStats {
                enqueued: r.get_u64()?,
                dequeued: r.get_u64()?,
                dropped_overflow: r.get_u64()?,
                dropped_loss: r.get_u64()?,
                dropped_red: r.get_u64()?,
                bytes_out: r.get_u64()?,
            };
            let fluid_demand = r.get_rate()?;
            let in_flight_count = r.get_len()?;
            let mut in_flight = Vec::with_capacity(in_flight_count);
            for _ in 0..in_flight_count {
                let item = get_descriptor(r)?;
                let size = r.get_size()?;
                let drain_finish = r.get_time()?;
                let exit_time = r.get_time()?;
                in_flight.push((item, size, drain_finish, exit_time));
            }
            pipes.push(Some(EmuPipe::from_snapshot_parts(
                attrs,
                discipline,
                red_average,
                drain_busy_until,
                stats,
                fluid_demand,
                in_flight,
            )));
        }
        let wheel_count = r.get_len()?;
        let mut wheel = TimerWheel::new();
        for _ in 0..wheel_count {
            let time = r.get_time()?;
            let pipe = PipeId(r.get_usize()?);
            wheel.push(time, pipe);
        }
        let pending_count = r.get_len()?;
        let mut pending_remote = Vec::with_capacity(pending_count);
        for _ in 0..pending_count {
            let pipe = PipeId(r.get_usize()?);
            let descriptor = get_descriptor(r)?;
            let at = r.get_time()?;
            pending_remote.push((pipe, descriptor, at));
        }
        let cbr_count = r.get_len()?;
        let mut cbr = Vec::with_capacity(cbr_count);
        for _ in 0..cbr_count {
            cbr.push(CbrSource {
                pipe: PipeId(r.get_usize()?),
                packet_size: r.get_size()?,
                interval: r.get_duration()?,
                next_at: r.get_time()?,
            });
        }
        let fluid_total_bps = r.get_u64()?;
        let fluid_last = r.get_time()?;
        let fluid_bits_ns_rem = r.get_u64()?;
        let cpu_backlog = r.get_duration()?;
        let cpu_busy_total = r.get_duration()?;
        let cpu_last_credit = r.get_time()?;
        let started_at = r.get_time()?;
        let last_seen = r.get_time()?;
        let rx_tokens = r.get_f64()?;
        let rx_last_refill = r.get_time()?;
        let stats = CoreStats {
            packets_offered: r.get_u64()?,
            packets_admitted: r.get_u64()?,
            packets_delivered: r.get_u64()?,
            tunnels_out: r.get_u64()?,
            tunnels_in: r.get_u64()?,
            physical_drops_nic: r.get_u64()?,
            physical_drops_cpu: r.get_u64()?,
            bytes_in: r.get_u64()?,
            bytes_out: r.get_u64()?,
            cbr_injected: r.get_u64()?,
            dropped_unreachable: r.get_u64()?,
            fluid_modelled_bytes: r.get_u64()?,
        };
        let mut running = [mn_util::RunningStats::new(), mn_util::RunningStats::new()];
        for slot in &mut running {
            let count = r.get_u64()?;
            let mean = r.get_f64()?;
            let m2 = r.get_f64()?;
            let min = r.get_f64()?;
            let max = r.get_f64()?;
            *slot = mn_util::RunningStats::from_snapshot_parts(count, mean, m2, min, max);
        }
        let delivered = r.get_u64()?;
        let max_hops = r.get_usize()?;
        let accuracy =
            AccuracyLog::from_snapshot_parts(running[0], running[1], delivered, max_hops);
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = r.get_u64()?;
        }
        Ok(EmulatorCore {
            id,
            profile,
            routes,
            pipes,
            wheel,
            pending_remote,
            pending_scratch: Vec::new(),
            ready_scratch: Vec::new(),
            cbr,
            fluid_total_bps,
            fluid_last,
            fluid_bits_ns_rem,
            cpu_backlog,
            cpu_busy_total,
            cpu_last_credit,
            started_at,
            last_seen,
            rx_tokens,
            rx_last_refill,
            stats,
            accuracy,
            rng: StdRng::from_state(rng_state),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(seed: u64) -> CoreStats {
        // Distinct primes per field so any dropped or double-counted field
        // changes the result.
        CoreStats {
            packets_offered: seed * 3 + 1,
            packets_admitted: seed * 5 + 2,
            packets_delivered: seed * 7 + 3,
            tunnels_out: seed * 11 + 4,
            tunnels_in: seed * 13 + 5,
            physical_drops_nic: seed * 17 + 6,
            physical_drops_cpu: seed * 19 + 7,
            bytes_in: seed * 23 + 8,
            bytes_out: seed * 29 + 9,
            cbr_injected: seed * 31 + 10,
            dropped_unreachable: seed * 41 + 12,
            fluid_modelled_bytes: seed * 37 + 11,
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (sample(1), sample(2), sample(3));
        // (a + b) + c == a + (b + c)
        let left = a.merged(&b).merged(&c);
        let right = a.merged(&b.merged(&c));
        assert_eq!(left, right);
        // a + b == b + a, and folding in any order over a larger set too.
        assert_eq!(a.merged(&b), b.merged(&a));
        let stats: Vec<CoreStats> = (0..8).map(sample).collect();
        let forward = stats
            .iter()
            .fold(CoreStats::default(), |acc, s| acc.merged(s));
        let reverse = stats
            .iter()
            .rev()
            .fold(CoreStats::default(), |acc, s| acc.merged(s));
        let pairwise = {
            let halves: Vec<CoreStats> = stats
                .chunks(2)
                .map(|pair| pair.iter().fold(CoreStats::default(), |a, s| a.merged(s)))
                .collect();
            halves
                .iter()
                .fold(CoreStats::default(), |acc, s| acc.merged(s))
        };
        assert_eq!(forward, reverse);
        assert_eq!(forward, pairwise);
    }

    #[test]
    fn merge_with_identity_is_a_no_op() {
        let a = sample(4);
        assert_eq!(a.merged(&CoreStats::default()), a);
        assert_eq!(CoreStats::default().merged(&a), a);
    }
}
