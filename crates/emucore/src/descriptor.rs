//! Packet descriptors and deliveries.
//!
//! A descriptor is the unit the core schedules: a reference to the buffered
//! packet plus a handle to its interned route and the index of the next pipe
//! to traverse. Descriptors are what multi-core configurations tunnel
//! between cores; neither the packet payload nor the route itself ever moves
//! — every core holds the same [`RouteTable`] (installed at Bind time), so a
//! tunnelled descriptor carries only the 4-byte [`RouteId`] and its hop
//! index, exactly as the paper's descriptors reference routing state that is
//! pre-installed on each core node.

use mn_packet::Packet;
use mn_routing::{RouteId, RouteTable};
use mn_util::{SimDuration, SimTime};

/// A scheduled packet inside the core: the packet descriptor plus its route
/// progress and accuracy book-keeping.
#[derive(Debug, Clone)]
pub struct Descriptor {
    /// The packet being emulated (headers and size only — no payload bytes).
    pub packet: Packet,
    /// Handle to the interned pipe route from source to destination.
    pub route: RouteId,
    /// Index of the next pipe to enter (hops `0..hop` are already done).
    pub hop: usize,
    /// Time the packet entered the core (for per-packet latency reporting).
    pub entered_at: SimTime,
    /// Accumulated scheduling lateness across hops (actual service time minus
    /// pipe deadline); the accuracy log records this at delivery.
    pub accumulated_error: SimDuration,
}

impl Descriptor {
    /// Creates a descriptor at the start of its route.
    pub fn new(packet: Packet, route: RouteId, entered_at: SimTime) -> Self {
        Descriptor {
            packet,
            route,
            hop: 0,
            entered_at,
            accumulated_error: SimDuration::ZERO,
        }
    }

    /// Total number of pipes on the route.
    pub fn total_hops(&self, routes: &RouteTable) -> usize {
        routes.pipes(self.route).len()
    }

    /// The next pipe to traverse, or `None` if the route is complete.
    #[inline]
    pub fn next_pipe(&self, routes: &RouteTable) -> Option<mn_distill::PipeId> {
        routes.pipes(self.route).get(self.hop).copied()
    }

    /// Marks the current hop as traversed.
    #[inline]
    pub fn advance_hop(&mut self) {
        self.hop += 1;
    }

    /// Returns `true` once every pipe on the route has been traversed.
    #[inline]
    pub fn is_complete(&self, routes: &RouteTable) -> bool {
        self.hop >= routes.pipes(self.route).len()
    }
}

/// A packet that has exited the emulated network and must be forwarded to the
/// edge node hosting the destination VN.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The delivered packet.
    pub packet: Packet,
    /// Time the packet left the last pipe (ip_output time).
    pub delivered_at: SimTime,
    /// Time the packet entered the core.
    pub entered_at: SimTime,
    /// Number of pipes the packet traversed.
    pub hops: usize,
    /// Scheduling error accumulated across all hops.
    pub emulation_error: SimDuration,
}

impl Delivery {
    /// The end-to-end delay the packet experienced inside the emulated
    /// network (queueing + transmission + propagation + scheduling error).
    pub fn core_delay(&self) -> SimDuration {
        self.delivered_at - self.entered_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::PipeId;
    use mn_packet::{FlowKey, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
    use mn_routing::Route;

    fn packet() -> Packet {
        Packet::new(
            PacketId(1),
            FlowKey {
                src: VnId(0),
                dst: VnId(1),
                src_port: 1,
                dst_port: 2,
                protocol: Protocol::Tcp,
            },
            TransportHeader::Tcp {
                seq: 0,
                ack: 0,
                payload_len: 100,
                flags: TcpFlags::ACK,
                window: 65535,
            },
            SimTime::ZERO,
        )
    }

    fn table_with(pipes: Vec<PipeId>) -> (RouteTable, RouteId) {
        let mut table = RouteTable::new(2);
        let id = table.intern(Route::new(pipes));
        table.set_pair(0, 1, id);
        (table, id)
    }

    #[test]
    fn descriptor_walks_its_route() {
        let (routes, id) = table_with(vec![PipeId(3), PipeId(7), PipeId(9)]);
        let mut d = Descriptor::new(packet(), id, SimTime::from_millis(1));
        assert_eq!(d.total_hops(&routes), 3);
        assert_eq!(d.next_pipe(&routes), Some(PipeId(3)));
        d.advance_hop();
        assert_eq!(d.next_pipe(&routes), Some(PipeId(7)));
        d.advance_hop();
        d.advance_hop();
        assert!(d.is_complete(&routes));
        assert_eq!(d.next_pipe(&routes), None);
    }

    #[test]
    fn empty_route_is_immediately_complete() {
        let (routes, id) = table_with(vec![]);
        let d = Descriptor::new(packet(), id, SimTime::ZERO);
        assert!(d.is_complete(&routes));
        assert_eq!(d.total_hops(&routes), 0);
    }

    #[test]
    fn tunnelled_descriptors_share_the_interned_route() {
        // Cloning a descriptor (what a tunnel does) must not clone the route:
        // both descriptors resolve to the same interned pipe slice.
        let (routes, id) = table_with(vec![PipeId(1), PipeId(2)]);
        let d1 = Descriptor::new(packet(), id, SimTime::ZERO);
        let d2 = d1.clone();
        assert_eq!(d1.route, d2.route);
        assert!(std::ptr::eq(routes.pipes(d1.route), routes.pipes(d2.route)));
    }

    #[test]
    fn delivery_core_delay() {
        let del = Delivery {
            packet: packet(),
            delivered_at: SimTime::from_millis(25),
            entered_at: SimTime::from_millis(5),
            hops: 2,
            emulation_error: SimDuration::from_micros(40),
        };
        assert_eq!(del.core_delay(), SimDuration::from_millis(20));
    }
}
