//! Packet descriptors and deliveries.
//!
//! A descriptor is the unit the core schedules: a reference to the buffered
//! packet plus the pipe route and the index of the next pipe to traverse.
//! Descriptors are what multi-core configurations tunnel between cores; the
//! packet payload itself never moves (payload caching leaves it buffered on
//! the entry node until the packet exits the emulated network).

use std::sync::Arc;

use mn_packet::Packet;
use mn_routing::Route;
use mn_util::{SimDuration, SimTime};

/// A scheduled packet inside the core: the packet descriptor plus its route
/// progress and accuracy book-keeping.
#[derive(Debug, Clone)]
pub struct Descriptor {
    /// The packet being emulated (headers and size only — no payload bytes).
    pub packet: Packet,
    /// The ordered pipe route from source to destination.
    pub route: Arc<Route>,
    /// Index of the next pipe to enter (hops `0..hop` are already done).
    pub hop: usize,
    /// Time the packet entered the core (for per-packet latency reporting).
    pub entered_at: SimTime,
    /// Accumulated scheduling lateness across hops (actual service time minus
    /// pipe deadline); the accuracy log records this at delivery.
    pub accumulated_error: SimDuration,
}

impl Descriptor {
    /// Creates a descriptor at the start of its route.
    pub fn new(packet: Packet, route: Arc<Route>, entered_at: SimTime) -> Self {
        Descriptor {
            packet,
            route,
            hop: 0,
            entered_at,
            accumulated_error: SimDuration::ZERO,
        }
    }

    /// Total number of pipes on the route.
    pub fn total_hops(&self) -> usize {
        self.route.pipes.len()
    }

    /// The next pipe to traverse, or `None` if the route is complete.
    pub fn next_pipe(&self) -> Option<mn_distill::PipeId> {
        self.route.pipes.get(self.hop).copied()
    }

    /// Marks the current hop as traversed.
    pub fn advance_hop(&mut self) {
        self.hop += 1;
    }

    /// Returns `true` once every pipe on the route has been traversed.
    pub fn is_complete(&self) -> bool {
        self.hop >= self.route.pipes.len()
    }
}

/// A packet that has exited the emulated network and must be forwarded to the
/// edge node hosting the destination VN.
#[derive(Debug, Clone)]
pub struct Delivery {
    /// The delivered packet.
    pub packet: Packet,
    /// Time the packet left the last pipe (ip_output time).
    pub delivered_at: SimTime,
    /// Time the packet entered the core.
    pub entered_at: SimTime,
    /// Number of pipes the packet traversed.
    pub hops: usize,
    /// Scheduling error accumulated across all hops.
    pub emulation_error: SimDuration,
}

impl Delivery {
    /// The end-to-end delay the packet experienced inside the emulated
    /// network (queueing + transmission + propagation + scheduling error).
    pub fn core_delay(&self) -> SimDuration {
        self.delivered_at - self.entered_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::PipeId;
    use mn_packet::{FlowKey, PacketId, Protocol, TcpFlags, TransportHeader, VnId};

    fn packet() -> Packet {
        Packet::new(
            PacketId(1),
            FlowKey {
                src: VnId(0),
                dst: VnId(1),
                src_port: 1,
                dst_port: 2,
                protocol: Protocol::Tcp,
            },
            TransportHeader::Tcp {
                seq: 0,
                ack: 0,
                payload_len: 100,
                flags: TcpFlags::ACK,
                window: 65535,
            },
            SimTime::ZERO,
        )
    }

    #[test]
    fn descriptor_walks_its_route() {
        let route = Arc::new(Route::new(vec![PipeId(3), PipeId(7), PipeId(9)]));
        let mut d = Descriptor::new(packet(), route, SimTime::from_millis(1));
        assert_eq!(d.total_hops(), 3);
        assert_eq!(d.next_pipe(), Some(PipeId(3)));
        d.advance_hop();
        assert_eq!(d.next_pipe(), Some(PipeId(7)));
        d.advance_hop();
        d.advance_hop();
        assert!(d.is_complete());
        assert_eq!(d.next_pipe(), None);
    }

    #[test]
    fn empty_route_is_immediately_complete() {
        let d = Descriptor::new(packet(), Arc::new(Route::default()), SimTime::ZERO);
        assert!(d.is_complete());
        assert_eq!(d.total_hops(), 0);
    }

    #[test]
    fn delivery_core_delay() {
        let del = Delivery {
            packet: packet(),
            delivered_at: SimTime::from_millis(25),
            entered_at: SimTime::from_millis(5),
            hops: 2,
            emulation_error: SimDuration::from_micros(40),
        };
        assert_eq!(del.core_delay(), SimDuration::from_millis(20));
    }
}
