//! Test-only fault injection for the threaded backend.
//!
//! A [`ChaosPlan`] arms deterministic fault points inside a worker thread:
//! a panic at a chosen epoch, a stall (sleep) at a chosen epoch, or a panic
//! on the next command the worker processes. The chaos tests use these to
//! prove that recovery from the last checkpoint lands on the *exact* output
//! of an uninterrupted run — worker death becomes a structured
//! [`crate::EmuError::WorkerFailure`], never a hang or process abort.
//!
//! The module is always compiled (integration tests in the workspace root
//! cannot see `#[cfg(test)]` APIs), but nothing routes through it unless
//! [`crate::ParallelEmulator::set_chaos`] is called; a default plan is
//! completely inert and costs two branch checks per epoch.

use std::time::Duration;

/// A set of armed fault points for one worker core.
///
/// Epochs are the global, monotonically increasing barrier counters a worker
/// advances through (they never reset between `advance` calls), so "panic at
/// epoch N" pinpoints a deterministic position in the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosPlan {
    pub(crate) panic_at_epoch: Option<u64>,
    pub(crate) stall_at_epoch: Option<(u64, Duration)>,
    pub(crate) panic_on_next_command: bool,
}

impl ChaosPlan {
    /// An inert plan: no fault points armed.
    pub fn new() -> Self {
        ChaosPlan::default()
    }

    /// Arms a worker panic at the start of the given epoch.
    pub fn panic_at_epoch(mut self, epoch: u64) -> Self {
        self.panic_at_epoch = Some(epoch);
        self
    }

    /// Arms a wall-clock stall (the worker sleeps, holding the epoch barrier
    /// hostage) at the start of the given epoch.
    pub fn stall_at_epoch(mut self, epoch: u64, hold: Duration) -> Self {
        self.stall_at_epoch = Some((epoch, hold));
        self
    }

    /// Arms a panic on the next command the worker pops after installing
    /// this plan (the installing `SetChaos` command itself is exempt). This
    /// kills a worker *outside* an advance, which is how the coordinator's
    /// send path — rather than its response-wait path — observes the death.
    pub fn panic_on_next_command(mut self) -> Self {
        self.panic_on_next_command = true;
        self
    }

    /// Runs the epoch-boundary fault points. Called by the worker at the
    /// start of every epoch; panics or sleeps if a fault is due.
    pub(crate) fn check_epoch(&mut self, epoch: u64) {
        if let Some((at, hold)) = self.stall_at_epoch {
            if epoch >= at {
                self.stall_at_epoch = None;
                std::thread::sleep(hold);
            }
        }
        if self.panic_at_epoch.is_some_and(|at| epoch >= at) {
            panic!("chaos: injected worker panic at epoch {epoch}");
        }
    }

    /// Runs the command-boundary fault point. Called by the worker before
    /// handling each popped command (after the plan was installed).
    pub(crate) fn check_command(&mut self) {
        if self.panic_on_next_command {
            panic!("chaos: injected worker panic on command");
        }
    }
}
