//! The ModelNet core — §2.2 and §3 of the paper.
//!
//! A core router intercepts every packet a VN emits (the ipfw 10.0.0.0/8
//! rule), looks up the pipe route for its (source, destination) pair, and
//! schedules a descriptor referencing the buffered packet onto the pipes of
//! that route. Packet scheduling uses a heap of pipes sorted by earliest
//! deadline; the scheduler runs once every clock tick (10 kHz in the paper's
//! configuration) at the kernel's highest priority. Because emulation runs at
//! a *higher* priority than NIC interrupt handling, an overloaded core drops
//! packets physically at its NIC rather than emulating inaccurately — the
//! relative accuracy of a run is therefore proportional to the number of
//! physical drops.
//!
//! The crate provides:
//!
//! * [`HardwareProfile`] — the CPU/NIC capacity model standing in for the
//!   paper's Pentium III + gigabit NIC testbed (see DESIGN.md §2),
//! * [`EmulatorCore`] — a single core node: pipes, deadline heap, tick
//!   scheduler, CPU/NIC admission, accuracy log,
//! * [`MultiCoreEmulator`] — several cores cooperating through the pipe
//!   ownership directory, tunnelling descriptors when a route crosses cores,
//! * [`ParallelEmulator`] — the same cooperation with every core on its own
//!   OS thread, exchanging tunnels over bounded SPSC rings under an epoch
//!   barrier, bit-identical to the sequential backend,
//! * [`wireless`] — the ad-hoc wireless extension sketched in §5 (broadcast
//!   medium, node mobility).

pub mod accuracy;
pub mod chaos;
pub mod core;
pub mod descriptor;
pub mod error;
pub mod fluid;
pub mod hardware;
pub mod multicore;
pub mod parallel;
pub mod snapshot;
pub mod wireless;

pub use accuracy::AccuracyLog;
pub use chaos::ChaosPlan;
pub use core::{CoreStats, EmulatorCore, IngressOutcome, TickOutput};
pub use descriptor::{Delivery, Descriptor};
pub use error::{EmuError, FailureCause};
pub use fluid::FluidState;
pub use hardware::HardwareProfile;
pub use multicore::{MultiCoreEmulator, SubmitOutcome};
pub use parallel::ParallelEmulator;
pub use snapshot::{EmulatorSnapshot, SNAPSHOT_VERSION};
