//! Structured emulator failures.
//!
//! The threaded backend runs each core on its own OS thread; a core that
//! panics or stops making progress used to take the whole process down (the
//! coordinator asserted the thread was alive and panicked itself otherwise).
//! Worker death is instead surfaced as a typed [`EmuError::WorkerFailure`]
//! through [`crate::ParallelEmulator::advance_into`] and friends, so a
//! supervisor (the runner) can tear the pool down and recover from the last
//! checkpoint instead of aborting.

use std::fmt;
use std::time::Duration;

use mn_assign::CoreId;

/// Why a worker core stopped servicing its command ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureCause {
    /// The worker thread panicked; the payload message is preserved when it
    /// was a string (the common case — `panic!("...")`).
    Panicked(String),
    /// The worker thread is alive but made no heartbeat progress for at
    /// least the configured stall timeout (see
    /// [`crate::ParallelEmulator::set_stall_timeout`]).
    Stalled {
        /// How long the coordinator waited without observing a heartbeat.
        waited: Duration,
    },
}

/// A structured emulator error.
///
/// Today the only variant is a worker failure on the threaded backend; the
/// enum is `#[non_exhaustive]` in spirit (matched with a wildcard arm by
/// callers that only care about the message) but kept open so future error
/// classes slot in without a breaking change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EmuError {
    /// A worker core thread died or stalled. The emulator is poisoned once
    /// this is returned: every subsequent submit/advance call yields the
    /// same error until the pool is rebuilt (e.g. by restoring a snapshot).
    WorkerFailure {
        /// The core whose thread failed.
        core: CoreId,
        /// What happened to it.
        cause: FailureCause,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::WorkerFailure { core, cause } => match cause {
                FailureCause::Panicked(msg) => {
                    write!(f, "emulator core {} panicked: {msg}", core.index())
                }
                FailureCause::Stalled { waited } => write!(
                    f,
                    "emulator core {} stalled: no heartbeat for {waited:?}",
                    core.index()
                ),
            },
        }
    }
}

impl std::error::Error for EmuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_core_and_cause() {
        let e = EmuError::WorkerFailure {
            core: CoreId(3),
            cause: FailureCause::Panicked("boom".into()),
        };
        assert_eq!(e.to_string(), "emulator core 3 panicked: boom");

        let e = EmuError::WorkerFailure {
            core: CoreId(1),
            cause: FailureCause::Stalled {
                waited: Duration::from_millis(50),
            },
        };
        assert!(e.to_string().contains("core 1 stalled"));
    }
}
