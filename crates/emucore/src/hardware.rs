//! The hardware capacity model.
//!
//! The paper's evaluation runs on 1.4 GHz Pentium III core routers with
//! gigabit NICs; its scalability results (Figure 4, Table 1) are consequences
//! of two ceilings: the NIC/link rate and the CPU cost of emulation
//! (measured there as a fixed 8.3 µs per packet plus 0.5 µs per emulated
//! hop, against a plain-forwarding capacity of ~250 k small packets/s).
//! [`HardwareProfile`] captures those ceilings so the same saturation
//! behaviour emerges in the virtual-time reproduction. The default constants
//! are calibrated so that the Figure 4 knees land where the paper reports
//! them: NIC-bound at ≈120 kpkt/s for short routes, CPU-bound at ≈90 kpkt/s
//! for 8-hop routes (see EXPERIMENTS.md for the calibration notes).

use serde::{Deserialize, Serialize};

use mn_util::{ByteSize, DataRate, SimDuration};

/// Capacity model of one core node and its network attachment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareProfile {
    /// Line rate of the core's NIC (each direction).
    pub nic_rate: DataRate,
    /// Receive buffering available before the NIC starts dropping packets
    /// when the link or CPU is oversubscribed.
    pub nic_buffer: ByteSize,
    /// Fixed CPU cost charged for every packet that crosses the core
    /// (interrupt handling, ipfw match, route lookup, ip_output).
    pub per_packet_cpu: SimDuration,
    /// CPU cost charged for every emulated hop a descriptor traverses.
    pub per_hop_cpu: SimDuration,
    /// CPU cost charged on each side when a descriptor is tunnelled to a
    /// peer core.
    pub tunnel_cpu: SimDuration,
    /// One-way latency of the physical switch between cores (descriptor
    /// tunnelling delay).
    pub tunnel_latency: SimDuration,
    /// Scheduler tick interval (the paper's 10 kHz clock = 100 µs).
    pub tick: SimDuration,
    /// How much CPU work may be backlogged before the core is considered
    /// saturated and starts dropping arrivals physically.
    pub saturation_backlog: SimDuration,
    /// When `true`, a descriptor is entered into its next pipe at the
    /// previous pipe's exit *deadline* rather than at the (tick-quantised)
    /// service time, cancelling accumulated scheduling error. This is the
    /// "packet debt handling" optimisation the paper describes as in
    /// progress.
    pub packet_debt_correction: bool,
    /// When `true`, descriptor tunnels carry only descriptor-sized payloads
    /// (the paper's payload-caching option, which leaves packet contents on
    /// the entry core); otherwise the full packet crosses the inter-core
    /// link.
    pub payload_caching: bool,
}

impl HardwareProfile {
    /// Size of a tunnelled descriptor when payload caching is enabled.
    pub const DESCRIPTOR_BYTES: u64 = 64;

    /// The profile modelling the paper's testbed core node.
    pub fn paper_core() -> Self {
        HardwareProfile {
            nic_rate: DataRate::from_gbps(1),
            nic_buffer: ByteSize::from_kb(512),
            per_packet_cpu: SimDuration::from_nanos(4_900),
            per_hop_cpu: SimDuration::from_nanos(800),
            tunnel_cpu: SimDuration::from_nanos(3_500),
            tunnel_latency: SimDuration::from_micros(20),
            tick: SimDuration::from_micros(100),
            saturation_backlog: SimDuration::from_micros(300),
            packet_debt_correction: false,
            payload_caching: false,
        }
    }

    /// A deliberately unconstrained profile for functional tests and for
    /// experiments that want ideal emulation (no resource ceilings).
    pub fn unconstrained() -> Self {
        HardwareProfile {
            nic_rate: DataRate::from_gbps(1_000),
            nic_buffer: ByteSize::from_mb(1_000),
            per_packet_cpu: SimDuration::ZERO,
            per_hop_cpu: SimDuration::ZERO,
            tunnel_cpu: SimDuration::ZERO,
            tunnel_latency: SimDuration::ZERO,
            tick: SimDuration::from_micros(100),
            saturation_backlog: SimDuration::from_secs(1),
            packet_debt_correction: false,
            payload_caching: false,
        }
    }

    /// Enables packet debt correction.
    pub fn with_debt_correction(mut self) -> Self {
        self.packet_debt_correction = true;
        self
    }

    /// Enables payload caching for inter-core tunnels.
    pub fn with_payload_caching(mut self) -> Self {
        self.payload_caching = true;
        self
    }

    /// Sets the scheduler tick.
    pub fn with_tick(mut self, tick: SimDuration) -> Self {
        self.tick = tick;
        self
    }

    /// CPU time needed to emulate one packet that traverses `hops` pipes on
    /// this core (excluding tunnelling).
    pub fn packet_cpu_cost(&self, hops: usize) -> SimDuration {
        self.per_packet_cpu + self.per_hop_cpu * hops as u64
    }

    /// Upper bound on sustainable packets/second for routes of `hops` hops,
    /// considering only the CPU ceiling.
    pub fn cpu_capacity_pps(&self, hops: usize) -> f64 {
        let cost = self.packet_cpu_cost(hops);
        if cost.is_zero() {
            f64::INFINITY
        } else {
            1.0 / cost.as_secs_f64()
        }
    }

    /// Upper bound on sustainable packets/second for packets of `size`,
    /// considering only the NIC line rate.
    pub fn nic_capacity_pps(&self, size: ByteSize) -> f64 {
        if size.is_zero() {
            return f64::INFINITY;
        }
        self.nic_rate.as_bps() as f64 / size.as_bits() as f64
    }

    /// Rounds `t` up to the next scheduler tick boundary.
    pub fn next_tick_at(&self, t: mn_util::SimTime) -> mn_util::SimTime {
        let tick = self.tick.as_nanos().max(1);
        let nanos = t.as_nanos();
        let rounded = nanos.div_ceil(tick) * tick;
        mn_util::SimTime::from_nanos(rounded)
    }
}

impl Default for HardwareProfile {
    fn default() -> Self {
        Self::paper_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_util::SimTime;

    #[test]
    fn paper_profile_matches_figure4_knees() {
        let p = HardwareProfile::paper_core();
        // Average emulated packet in the capacity experiment is ~1 KB
        // (two 1500-byte data packets per 40-byte ACK).
        let avg = ByteSize::from_bytes(1013);
        let nic = p.nic_capacity_pps(avg);
        assert!(
            (115_000.0..135_000.0).contains(&nic),
            "NIC ceiling {nic} should be ~123 kpps"
        );
        // CPU ceiling for 1 and 4 hops sits above the NIC ceiling…
        assert!(p.cpu_capacity_pps(1) > nic);
        assert!(p.cpu_capacity_pps(4) > nic);
        // …and for 8 hops it falls to roughly 90 kpps.
        let cpu8 = p.cpu_capacity_pps(8);
        assert!(
            (80_000.0..100_000.0).contains(&cpu8),
            "8-hop CPU ceiling {cpu8} should be ~90 kpps"
        );
        // 12 hops is lower still.
        assert!(p.cpu_capacity_pps(12) < cpu8);
    }

    #[test]
    fn packet_cpu_cost_is_affine_in_hops() {
        let p = HardwareProfile::paper_core();
        let one = p.packet_cpu_cost(1);
        let two = p.packet_cpu_cost(2);
        let ten = p.packet_cpu_cost(10);
        assert_eq!(two - one, p.per_hop_cpu);
        assert_eq!(ten - one, p.per_hop_cpu * 9);
    }

    #[test]
    fn unconstrained_profile_has_no_ceilings() {
        let p = HardwareProfile::unconstrained();
        assert!(p.cpu_capacity_pps(100).is_infinite());
        assert!(p.nic_capacity_pps(ByteSize::from_bytes(1500)) > 1e7);
    }

    #[test]
    fn tick_rounding() {
        let p = HardwareProfile::paper_core();
        assert_eq!(
            p.next_tick_at(SimTime::from_micros(150)),
            SimTime::from_micros(200)
        );
        assert_eq!(
            p.next_tick_at(SimTime::from_micros(200)),
            SimTime::from_micros(200)
        );
        assert_eq!(p.next_tick_at(SimTime::ZERO), SimTime::ZERO);
    }

    #[test]
    fn builder_toggles() {
        let p = HardwareProfile::paper_core()
            .with_debt_correction()
            .with_payload_caching()
            .with_tick(SimDuration::from_micros(50));
        assert!(p.packet_debt_correction);
        assert!(p.payload_caching);
        assert_eq!(p.tick, SimDuration::from_micros(50));
    }

    #[test]
    fn zero_size_nic_capacity_is_infinite() {
        let p = HardwareProfile::paper_core();
        assert!(p.nic_capacity_pps(ByteSize::ZERO).is_infinite());
    }
}
