//! The accuracy log — the reproduction of the paper's kernel logging package
//! (§3.1).
//!
//! The paper instruments the core to record, per packet, the expected and
//! actual delay so that emulation error can be analysed off-line. The claim
//! it substantiates: with the scheduler at the highest priority, each
//! packet-hop is emulated to within the hardware timer granularity (100 µs),
//! so a 10-hop path sees at most ~1 ms of error, and accuracy is maintained
//! up to and including 100% CPU utilisation (beyond which packets are dropped
//! physically rather than emulated late).

use serde::{Deserialize, Serialize};

use mn_util::{RunningStats, SimDuration};

use crate::descriptor::Delivery;

/// Aggregated per-packet emulation-error statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AccuracyLog {
    error: RunningStats,
    per_hop_error: RunningStats,
    delivered: u64,
    max_hops: usize,
}

impl AccuracyLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        AccuracyLog::default()
    }

    /// Records one delivered packet.
    pub fn record(&mut self, delivery: &Delivery) {
        let err_us = delivery.emulation_error.as_micros_f64();
        self.error.add(err_us);
        if delivery.hops > 0 {
            self.per_hop_error.add(err_us / delivery.hops as f64);
        }
        self.delivered += 1;
        self.max_hops = self.max_hops.max(delivery.hops);
    }

    /// Number of deliveries recorded.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Mean end-to-end emulation error in microseconds.
    pub fn mean_error_us(&self) -> f64 {
        self.error.mean()
    }

    /// Worst observed end-to-end emulation error.
    pub fn max_error(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.error.max().unwrap_or(0.0))
    }

    /// Mean per-hop emulation error in microseconds.
    pub fn mean_per_hop_error_us(&self) -> f64 {
        self.per_hop_error.mean()
    }

    /// Worst observed per-hop error.
    pub fn max_per_hop_error(&self) -> SimDuration {
        SimDuration::from_micros_f64(self.per_hop_error.max().unwrap_or(0.0))
    }

    /// The longest route observed, in hops.
    pub fn max_hops(&self) -> usize {
        self.max_hops
    }

    /// The raw accumulators `(error, per_hop_error, delivered, max_hops)`,
    /// for checkpointing the log mid-run.
    pub fn snapshot_parts(&self) -> (RunningStats, RunningStats, u64, usize) {
        (
            self.error,
            self.per_hop_error,
            self.delivered,
            self.max_hops,
        )
    }

    /// Rebuilds a log from accumulators captured by
    /// [`AccuracyLog::snapshot_parts`].
    pub fn from_snapshot_parts(
        error: RunningStats,
        per_hop_error: RunningStats,
        delivered: u64,
        max_hops: usize,
    ) -> Self {
        AccuracyLog {
            error,
            per_hop_error,
            delivered,
            max_hops,
        }
    }

    /// Checks the paper's accuracy bound: every per-hop error within the
    /// scheduler tick, every end-to-end error within `max_hops * tick`.
    pub fn within_bound(&self, tick: SimDuration) -> bool {
        if self.delivered == 0 {
            return true;
        }
        self.max_per_hop_error() <= tick && self.max_error() <= tick * self.max_hops.max(1) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_packet::{FlowKey, Packet, PacketId, Protocol, TransportHeader, VnId};
    use mn_util::SimTime;

    fn delivery(hops: usize, error_us: u64) -> Delivery {
        Delivery {
            packet: Packet::new(
                PacketId(0),
                FlowKey {
                    src: VnId(0),
                    dst: VnId(1),
                    src_port: 0,
                    dst_port: 0,
                    protocol: Protocol::Udp,
                },
                TransportHeader::Udp {
                    payload_len: 100,
                    seq: 0,
                },
                SimTime::ZERO,
            ),
            delivered_at: SimTime::from_millis(1),
            entered_at: SimTime::ZERO,
            hops,
            emulation_error: SimDuration::from_micros(error_us),
        }
    }

    #[test]
    fn records_and_aggregates() {
        let mut log = AccuracyLog::new();
        log.record(&delivery(2, 100));
        log.record(&delivery(4, 200));
        assert_eq!(log.delivered(), 2);
        assert!((log.mean_error_us() - 150.0).abs() < 1e-9);
        assert_eq!(log.max_error(), SimDuration::from_micros(200));
        assert_eq!(log.max_hops(), 4);
        assert!((log.mean_per_hop_error_us() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn bound_check_matches_paper_claim() {
        let tick = SimDuration::from_micros(100);
        let mut log = AccuracyLog::new();
        // 10 hops, 1 ms total error: exactly the paper's worst case.
        log.record(&delivery(10, 1000));
        assert!(log.within_bound(tick));
        // A single hop late by 150 µs violates the per-hop bound.
        let mut bad = AccuracyLog::new();
        bad.record(&delivery(1, 150));
        assert!(!bad.within_bound(tick));
    }

    #[test]
    fn empty_log_is_within_bound() {
        let log = AccuracyLog::new();
        assert!(log.within_bound(SimDuration::from_micros(1)));
        assert_eq!(log.delivered(), 0);
        assert_eq!(log.max_error(), SimDuration::ZERO);
    }
}
