//! Flow-level (fluid) traffic modelling: rate processes on the pipe graph.
//!
//! Per-packet emulation pays ~160 ns per packet-hop; for bulk/background
//! traffic whose aggregate behaviour is all that matters, that cost buys
//! nothing. The hybrid fast path models designated flows as *fluid rate
//! processes*: each flow is a demand (bits/second) with a weight (how many
//! modelled clients it aggregates) over its route's pipes, and a weighted
//! max-min fair share is solved at discrete virtual-time epochs. Between
//! epochs the rates are piecewise-constant; each pipe exposes the summed
//! fluid demand to the packet path as consumed capacity, so foreground
//! packets queue and drop against the *residual* bandwidth — accuracy where
//! it counts, flow-level cost for the bulk.
//!
//! The PR 4 CBR injectors are a special case: a CBR episode is a fixed-rate
//! fluid demand pinned to a single pipe (allocated before the max-min pass,
//! in installation order), with the per-packet injection reduced to a pure
//! meter on the owning core.
//!
//! Everything here is integer arithmetic on bits/second and bit-nanoseconds:
//! the solve is deterministic, identical on the sequential and threaded
//! backends, and allocation-free at steady state (all scratch is retained).

use std::collections::HashMap;

use mn_distill::PipeId;
use mn_packet::VnId;
use mn_routing::RouteTable;
use mn_util::{DataRate, SimDuration, SimTime, DEFAULT_WHEEL_QUANTUM};

/// Default cadence at which fluid rates are recomputed while flows are live:
/// `2^23` ns ≈ 8.39 ms, exactly 64 default timer-wheel slots. A cadence
/// commensurate with the wheel's slot grid keeps epoch timers landing on
/// recycled slots; the old 10 ms default drifted across slot boundaries and
/// made the wheel's high-water mark creep for the whole run.
pub const DEFAULT_FLUID_EPOCH: SimDuration = SimDuration::from_nanos(1 << 23);

/// Bit-nanoseconds per byte: the divisor turning a `bps × ns` integral into
/// bytes.
const BITS_NS_PER_BYTE: u128 = 8_000_000_000;

/// Identity of a fluid flow inside the state: user flows are keyed by the
/// caller's tag, CBR episodes by their pipe (the two spaces never collide).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum FlowKey {
    /// A caller-tagged bulk flow routed between two VNs.
    User(u64),
    /// A CBR cross-traffic episode pinned to one pipe.
    Cbr(PipeId),
}

/// What a fluid flow crosses.
#[derive(Debug, Clone, Copy)]
enum FlowKind {
    /// Routed between two VNs; the pipe list follows the route table and is
    /// re-resolved whenever routing changes.
    Route { src: VnId, dst: VnId },
    /// Pinned to a single pipe (CBR episodes).
    Pipe { pipe: PipeId },
}

/// One fluid flow: demand, weight, and the solver's current allocation.
#[derive(Debug)]
struct FlowSlot {
    key: FlowKey,
    kind: FlowKind,
    /// Aggregate offered rate in bits/second.
    demand_bps: u64,
    /// Max-min weight: the number of modelled clients this flow aggregates.
    weight: u64,
    /// Allocated rate from the last solve, bits/second.
    rate_bps: u64,
    /// Resolved pipe route (for `Pipe` kind, the single pinned pipe).
    pipes: Vec<PipeId>,
    /// `false` when the route lookup failed (unroutable flows get rate 0).
    routable: bool,
    /// Exact integral of the allocated rate over virtual time.
    goodput_bits_ns: u128,
    /// Solver scratch: the flow's allocation is final for this solve.
    frozen: bool,
}

/// Coordinator-owned fluid flow state: the flow set, per-pipe capacities and
/// demands, and the epoch clock. Both execution backends drive one of these
/// identically, which is what makes the combined fluid+packet stream
/// bit-identical across them.
#[derive(Debug)]
pub struct FluidState {
    /// Virtual time all flow integrals have been settled to.
    clock: SimTime,
    /// Recompute cadence while any flow is live.
    epoch: SimDuration,
    /// Next scheduled rate recompute, if any flow is live.
    next_epoch: Option<SimTime>,
    flows: Vec<FlowSlot>,
    index: HashMap<FlowKey, usize>,
    /// Per-pipe capacity in bits/second, kept in sync with pipe attrs.
    capacity_bps: Vec<u64>,
    /// Per-pipe fluid demand distributed to the cores, bits/second.
    demand_bps: Vec<u64>,
    /// Scratch: demand totals of the solve in progress.
    new_demand: Vec<u64>,
    /// Scratch: per-pipe residual capacity during a solve.
    remaining: Vec<u64>,
    /// Scratch: per-pipe unfrozen weight sums during a solve.
    wsum: Vec<u64>,
    /// Pipes whose demand changed in the last solve, with the new demand.
    changed: Vec<(PipeId, u64)>,
    /// Routing changed since the last solve: re-resolve `Route` flows.
    routes_dirty: bool,
}

impl FluidState {
    /// Creates the state over `capacity_bps[pipe]` capacities.
    pub fn new(capacity_bps: Vec<u64>) -> Self {
        let pipes = capacity_bps.len();
        FluidState {
            clock: SimTime::ZERO,
            epoch: DEFAULT_FLUID_EPOCH,
            next_epoch: None,
            flows: Vec::new(),
            index: HashMap::new(),
            capacity_bps,
            demand_bps: vec![0; pipes],
            new_demand: vec![0; pipes],
            remaining: vec![0; pipes],
            wsum: vec![0; pipes],
            changed: Vec::new(),
            routes_dirty: false,
        }
    }

    /// Sets the rate-recompute cadence (effective from the next epoch).
    ///
    /// The cadence is rounded down to a non-zero multiple of the default
    /// timer-wheel slot width so the epoch grid stays commensurate with the
    /// wheel — an unaligned cadence makes every epoch timer land in a fresh
    /// slot and the wheel's high-water mark creep without bound.
    pub fn set_epoch(&mut self, epoch: SimDuration) {
        if epoch > SimDuration::ZERO {
            let quantum = DEFAULT_WHEEL_QUANTUM.as_nanos();
            let slots = (epoch.as_nanos() / quantum).max(1);
            self.epoch = SimDuration::from_nanos(slots * quantum);
        }
    }

    /// Returns `true` while any fluid flow (or CBR episode) is live.
    pub fn has_flows(&self) -> bool {
        !self.flows.is_empty()
    }

    /// The next scheduled rate-recompute epoch, if flows are live.
    pub fn next_epoch(&self) -> Option<SimTime> {
        self.next_epoch
    }

    /// The virtual time the flow integrals are settled to.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Number of live fluid flows (CBR episodes included).
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Sum of modelled clients (weights) across user flows.
    pub fn modelled_clients(&self) -> u64 {
        self.flows
            .iter()
            .filter(|f| matches!(f.key, FlowKey::User(_)))
            .map(|f| f.weight)
            .sum()
    }

    /// Adds a routed bulk flow: `demand` offered from `src` to `dst`,
    /// aggregating `clients` modelled clients (its max-min weight). Returns
    /// `false` if the tag is already in use.
    pub fn add_flow(
        &mut self,
        tag: u64,
        src: VnId,
        dst: VnId,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        let key = FlowKey::User(tag);
        if self.index.contains_key(&key) {
            return false;
        }
        self.integrate_to(at);
        self.index.insert(key, self.flows.len());
        self.flows.push(FlowSlot {
            key,
            kind: FlowKind::Route { src, dst },
            demand_bps: demand.as_bps(),
            weight: clients.max(1) as u64,
            rate_bps: 0,
            pipes: Vec::new(),
            routable: false,
            goodput_bits_ns: 0,
            frozen: false,
        });
        self.routes_dirty = true;
        true
    }

    /// Resizes a flow's demand and client count. Returns `false` for an
    /// unknown tag.
    pub fn resize_flow(&mut self, tag: u64, demand: DataRate, clients: u32, at: SimTime) -> bool {
        let Some(&slot) = self.index.get(&FlowKey::User(tag)) else {
            return false;
        };
        self.integrate_to(at);
        let flow = &mut self.flows[slot];
        flow.demand_bps = demand.as_bps();
        flow.weight = clients.max(1) as u64;
        true
    }

    /// Removes a flow. Returns `false` for an unknown tag.
    pub fn remove_flow(&mut self, tag: u64, at: SimTime) -> bool {
        self.remove_key(FlowKey::User(tag), at)
    }

    /// Installs, replaces or (with `None`) removes the fixed-rate fluid
    /// demand backing a CBR episode on `pipe`.
    pub fn set_cbr(&mut self, pipe: PipeId, rate: Option<DataRate>, at: SimTime) {
        let key = FlowKey::Cbr(pipe);
        match rate {
            None => {
                self.remove_key(key, at);
            }
            Some(rate) => {
                self.integrate_to(at);
                if let Some(&slot) = self.index.get(&key) {
                    self.flows[slot].demand_bps = rate.as_bps();
                } else {
                    self.index.insert(key, self.flows.len());
                    self.flows.push(FlowSlot {
                        key,
                        kind: FlowKind::Pipe { pipe },
                        demand_bps: rate.as_bps(),
                        weight: 1,
                        rate_bps: 0,
                        pipes: vec![pipe],
                        routable: true,
                        goodput_bits_ns: 0,
                        frozen: false,
                    });
                }
            }
        }
    }

    fn remove_key(&mut self, key: FlowKey, at: SimTime) -> bool {
        let Some(slot) = self.index.remove(&key) else {
            return false;
        };
        self.integrate_to(at);
        self.flows.swap_remove(slot);
        if let Some(moved) = self.flows.get(slot) {
            self.index.insert(moved.key, slot);
        }
        true
    }

    /// Removes every routed fluid flow that sources from or sinks at `vn`
    /// (a departed endpoint keeps no demand on the network). Returns the
    /// number of flows removed; the caller follows up with
    /// [`FluidState::recompute`] to redistribute the freed share.
    pub fn remove_vn_flows(&mut self, vn: VnId, at: SimTime) -> usize {
        let doomed: Vec<FlowKey> = self
            .flows
            .iter()
            .filter(|f| matches!(f.kind, FlowKind::Route { src, dst } if src == vn || dst == vn))
            .map(|f| f.key)
            .collect();
        for key in &doomed {
            self.remove_key(*key, at);
        }
        doomed.len()
    }

    /// The rate allocated to a flow by the last solve.
    pub fn flow_rate(&self, tag: u64) -> Option<DataRate> {
        self.index
            .get(&FlowKey::User(tag))
            .map(|&slot| DataRate::from_bps(self.flows[slot].rate_bps))
    }

    /// Bytes of goodput a flow has accumulated up to the settled clock.
    pub fn flow_goodput_bytes(&self, tag: u64) -> Option<u64> {
        self.index
            .get(&FlowKey::User(tag))
            .map(|&slot| (self.flows[slot].goodput_bits_ns / BITS_NS_PER_BYTE) as u64)
    }

    /// Updates a pipe's capacity after its attributes changed. The caller
    /// follows up with [`FluidState::recompute`] at the current clock.
    pub fn set_capacity(&mut self, pipe: PipeId, bandwidth: DataRate) {
        if let Some(slot) = self.capacity_bps.get_mut(pipe.index()) {
            *slot = bandwidth.as_bps();
        }
    }

    /// Marks routed flows stale after a routing change; the next solve
    /// re-resolves their pipe lists.
    pub fn mark_routes_dirty(&mut self) {
        self.routes_dirty = true;
    }

    /// Settles every flow's goodput integral up to `at` at the current
    /// piecewise-constant rates.
    pub fn integrate_to(&mut self, at: SimTime) {
        if at <= self.clock {
            return;
        }
        let elapsed_ns = (at - self.clock).as_nanos() as u128;
        self.clock = at;
        for flow in &mut self.flows {
            flow.goodput_bits_ns += flow.rate_bps as u128 * elapsed_ns;
        }
    }

    /// Settles integrals to `at`, re-solves the weighted max-min fair share,
    /// and returns the pipes whose total fluid demand changed (with the new
    /// demand in bits/second) for distribution to the owning cores.
    ///
    /// CBR episodes are allocated first, in installation order, each taking
    /// `min(demand, remaining capacity)` on its pipe — preserving PR 4's
    /// semantics where cross traffic consumes its configured rate
    /// unconditionally. Routed flows then water-fill the residual:
    /// every unfrozen flow grows at `weight × increment` until its demand is
    /// met or a crossed pipe saturates. Integer floor arithmetic throughout;
    /// each round freezes at least one flow, so the solve terminates in at
    /// most `flows` rounds with per-flow error below one weight-quantum of
    /// bits/second.
    pub fn recompute(&mut self, at: SimTime, routes: &RouteTable) -> &[(PipeId, u64)] {
        self.integrate_to(at);
        if self.routes_dirty {
            self.resolve_routes(routes);
            self.routes_dirty = false;
        }
        self.solve();
        // Diff the new per-pipe totals against what the cores currently
        // apply, reusing the changed buffer.
        self.changed.clear();
        for (idx, (&new, old)) in self
            .new_demand
            .iter()
            .zip(self.demand_bps.iter_mut())
            .enumerate()
        {
            if new != *old {
                *old = new;
                self.changed.push((PipeId(idx), new));
            }
        }
        // Maintain the epoch grid: live flows keep a recompute scheduled.
        if self.flows.is_empty() {
            self.next_epoch = None;
        } else if self.next_epoch.is_none_or(|e| e <= at) {
            self.next_epoch = Some(at + self.epoch);
        }
        &self.changed
    }

    /// Serializes the fluid state for a checkpoint: the settled clock, epoch
    /// grid, every flow slot in order (so restore reproduces slot indices and
    /// therefore CBR allocation order exactly), and the per-pipe capacity and
    /// distributed-demand vectors. Solver scratch is excluded.
    pub fn encode(&self, w: &mut mn_util::ByteWriter) {
        w.put_time(self.clock);
        w.put_duration(self.epoch);
        match self.next_epoch {
            None => w.put_bool(false),
            Some(t) => {
                w.put_bool(true);
                w.put_time(t);
            }
        }
        w.put_len(self.flows.len());
        for flow in &self.flows {
            match flow.key {
                FlowKey::User(tag) => {
                    w.put_u8(0);
                    w.put_u64(tag);
                }
                FlowKey::Cbr(pipe) => {
                    w.put_u8(1);
                    w.put_usize(pipe.index());
                }
            }
            match flow.kind {
                FlowKind::Route { src, dst } => {
                    w.put_u8(0);
                    w.put_u32(src.0);
                    w.put_u32(dst.0);
                }
                FlowKind::Pipe { pipe } => {
                    w.put_u8(1);
                    w.put_usize(pipe.index());
                }
            }
            w.put_u64(flow.demand_bps);
            w.put_u64(flow.weight);
            w.put_u64(flow.rate_bps);
            w.put_len(flow.pipes.len());
            for pipe in &flow.pipes {
                w.put_usize(pipe.index());
            }
            w.put_bool(flow.routable);
            w.put_u128(flow.goodput_bits_ns);
            w.put_bool(flow.frozen);
        }
        w.put_len(self.capacity_bps.len());
        for &c in &self.capacity_bps {
            w.put_u64(c);
        }
        for &d in &self.demand_bps {
            w.put_u64(d);
        }
        w.put_bool(self.routes_dirty);
    }

    /// Rebuilds the state from [`FluidState::encode`] output. The flow index
    /// and solver scratch are reconstructed; a restored state produces the
    /// same solves, integrals and epoch schedule as the original.
    pub fn decode(r: &mut mn_util::ByteReader) -> Result<Self, mn_util::CodecError> {
        let clock = r.get_time()?;
        let epoch = r.get_duration()?;
        let next_epoch = if r.get_bool()? {
            Some(r.get_time()?)
        } else {
            None
        };
        let flow_count = r.get_len()?;
        let mut flows = Vec::with_capacity(flow_count);
        let mut index = HashMap::with_capacity(flow_count);
        for slot in 0..flow_count {
            let key = match r.get_u8()? {
                0 => FlowKey::User(r.get_u64()?),
                1 => FlowKey::Cbr(PipeId(r.get_usize()?)),
                _ => return Err(mn_util::CodecError::Invalid("unknown fluid flow key tag")),
            };
            let kind = match r.get_u8()? {
                0 => FlowKind::Route {
                    src: VnId(r.get_u32()?),
                    dst: VnId(r.get_u32()?),
                },
                1 => FlowKind::Pipe {
                    pipe: PipeId(r.get_usize()?),
                },
                _ => return Err(mn_util::CodecError::Invalid("unknown fluid flow kind tag")),
            };
            let demand_bps = r.get_u64()?;
            let weight = r.get_u64()?;
            let rate_bps = r.get_u64()?;
            let pipe_count = r.get_len()?;
            let mut pipes = Vec::with_capacity(pipe_count);
            for _ in 0..pipe_count {
                pipes.push(PipeId(r.get_usize()?));
            }
            let routable = r.get_bool()?;
            let goodput_bits_ns = r.get_u128()?;
            let frozen = r.get_bool()?;
            index.insert(key, slot);
            flows.push(FlowSlot {
                key,
                kind,
                demand_bps,
                weight,
                rate_bps,
                pipes,
                routable,
                goodput_bits_ns,
                frozen,
            });
        }
        let pipe_count = r.get_len()?;
        let mut capacity_bps = Vec::with_capacity(pipe_count);
        for _ in 0..pipe_count {
            capacity_bps.push(r.get_u64()?);
        }
        let mut demand_bps = Vec::with_capacity(pipe_count);
        for _ in 0..pipe_count {
            demand_bps.push(r.get_u64()?);
        }
        let routes_dirty = r.get_bool()?;
        Ok(FluidState {
            clock,
            epoch,
            next_epoch,
            flows,
            index,
            capacity_bps,
            demand_bps,
            new_demand: vec![0; pipe_count],
            remaining: vec![0; pipe_count],
            wsum: vec![0; pipe_count],
            changed: Vec::new(),
            routes_dirty,
        })
    }

    /// Re-resolves every routed flow's pipe list from the route table.
    fn resolve_routes(&mut self, routes: &RouteTable) {
        for flow in &mut self.flows {
            let FlowKind::Route { src, dst } = flow.kind else {
                continue;
            };
            flow.pipes.clear();
            match routes.route_id(src.index(), dst.index()) {
                Some(id) => {
                    flow.routable = true;
                    flow.pipes.extend_from_slice(routes.pipes(id));
                }
                None => {
                    // Same-location pairs share a row slot with "no route";
                    // src == dst flows are local and see no pipe, anything
                    // else is unroutable until a reroute restores a path.
                    flow.routable = src == dst;
                }
            }
        }
    }

    /// The weighted bounded max-min water-fill over `self.flows`, writing
    /// per-pipe totals into `self.new_demand` and per-flow rates in place.
    fn solve(&mut self) {
        self.new_demand.iter_mut().for_each(|d| *d = 0);
        self.remaining.copy_from_slice(&self.capacity_bps);
        self.wsum.iter_mut().for_each(|w| *w = 0);

        // Pass 1: CBR episodes, installation order, demand-or-residual.
        for flow in &mut self.flows {
            flow.frozen = false;
            let FlowKind::Pipe { pipe } = flow.kind else {
                continue;
            };
            let p = pipe.index();
            let rate = flow.demand_bps.min(self.remaining[p]);
            flow.rate_bps = rate;
            flow.frozen = true;
            self.remaining[p] -= rate;
            self.new_demand[p] += rate;
        }

        // Pass 2: routed flows water-fill the residual.
        for flow in &mut self.flows {
            if flow.frozen {
                continue;
            }
            flow.rate_bps = 0;
            if !flow.routable {
                flow.frozen = true;
                continue;
            }
            if flow.pipes.is_empty() || flow.demand_bps == 0 {
                // Local (zero-hop) flows get their full demand off-network.
                flow.rate_bps = flow.demand_bps;
                flow.frozen = true;
            }
        }
        loop {
            // Weight sums over unfrozen flows, and the bottleneck increment.
            let mut any = false;
            for flow in &self.flows {
                if flow.frozen {
                    continue;
                }
                any = true;
                for &pipe in &flow.pipes {
                    self.wsum[pipe.index()] += flow.weight;
                }
            }
            if !any {
                break;
            }
            let mut inc = u64::MAX;
            for flow in &self.flows {
                if flow.frozen {
                    continue;
                }
                for &pipe in &flow.pipes {
                    let p = pipe.index();
                    inc = inc.min(self.remaining[p] / self.wsum[p]);
                }
                // Demand-bounded: no flow needs more than its headroom.
                inc = inc.min((flow.demand_bps - flow.rate_bps).div_ceil(flow.weight));
            }
            // Grant the increment and freeze saturated flows. A flow crossing
            // the bottleneck pipe (whose residual fell below its weight sum)
            // freezes, so every round retires at least one flow.
            for flow in &mut self.flows {
                if flow.frozen {
                    continue;
                }
                let grant = (inc.saturating_mul(flow.weight)).min(flow.demand_bps - flow.rate_bps);
                flow.rate_bps += grant;
                for &pipe in &flow.pipes {
                    let p = pipe.index();
                    self.remaining[p] -= grant.min(self.remaining[p]);
                }
                if flow.rate_bps >= flow.demand_bps {
                    flow.frozen = true;
                }
            }
            for flow in &mut self.flows {
                if flow.frozen {
                    continue;
                }
                if flow
                    .pipes
                    .iter()
                    .any(|pipe| self.remaining[pipe.index()] < self.wsum[pipe.index()])
                {
                    flow.frozen = true;
                }
            }
            // Reset the weight sums for the next round (only touched pipes).
            for flow in &self.flows {
                for &pipe in &flow.pipes {
                    self.wsum[pipe.index()] = 0;
                }
            }
        }
        // Top-off: integer water-filling floors the per-round increment, so
        // a bottleneck can be left with up to (weight sum - 1) bps
        // unallocated. Hand the dregs out in installation order — a
        // saturated pipe must end at exactly zero residual, or the packet
        // path would see a sliver of bandwidth where the fluid model means
        // "full".
        for flow in &mut self.flows {
            if matches!(flow.kind, FlowKind::Pipe { .. }) || !flow.routable || flow.pipes.is_empty()
            {
                continue;
            }
            let headroom = flow.demand_bps - flow.rate_bps;
            if headroom == 0 {
                continue;
            }
            let avail = flow
                .pipes
                .iter()
                .map(|pipe| self.remaining[pipe.index()])
                .min()
                .unwrap_or(0);
            let grant = headroom.min(avail);
            if grant == 0 {
                continue;
            }
            flow.rate_bps += grant;
            for &pipe in &flow.pipes {
                self.remaining[pipe.index()] -= grant;
            }
        }
        // Per-pipe totals for routed flows.
        for flow in &self.flows {
            if matches!(flow.kind, FlowKind::Pipe { .. }) {
                continue;
            }
            for &pipe in &flow.pipes {
                self.new_demand[pipe.index()] += flow.rate_bps;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_routing::Route;

    fn table(routes: &[(usize, usize, Vec<PipeId>)], endpoints: usize) -> RouteTable {
        let mut t = RouteTable::new(endpoints);
        for (src, dst, pipes) in routes {
            let id = t.intern(Route::new(pipes.clone()));
            t.set_pair(*src, *dst, id);
        }
        t
    }

    fn mbps(m: u64) -> DataRate {
        DataRate::from_mbps(m)
    }

    #[test]
    fn single_flow_is_demand_bounded() {
        let routes = table(&[(0, 1, vec![PipeId(0)])], 2);
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        assert!(fluid.add_flow(1, VnId(0), VnId(1), mbps(4), 1, SimTime::ZERO));
        let changed = fluid.recompute(SimTime::ZERO, &routes);
        assert_eq!(changed, &[(PipeId(0), mbps(4).as_bps())]);
        assert_eq!(fluid.flow_rate(1), Some(mbps(4)));
    }

    #[test]
    fn bottleneck_is_shared_by_weight() {
        // Two flows over the same 9 Mb/s pipe, weights 1 and 2: 3 + 6.
        let routes = table(&[(0, 1, vec![PipeId(0)]), (2, 3, vec![PipeId(0)])], 4);
        let mut fluid = FluidState::new(vec![mbps(9).as_bps()]);
        assert!(fluid.add_flow(1, VnId(0), VnId(1), mbps(100), 1, SimTime::ZERO));
        assert!(fluid.add_flow(2, VnId(2), VnId(3), mbps(100), 2, SimTime::ZERO));
        fluid.recompute(SimTime::ZERO, &routes);
        assert_eq!(fluid.flow_rate(1), Some(mbps(3)));
        assert_eq!(fluid.flow_rate(2), Some(mbps(6)));
    }

    #[test]
    fn satisfied_flow_frees_its_share() {
        // Weight-equal flows, one demand-limited at 1 Mb/s: the other takes
        // the rest of the 10 Mb/s bottleneck (classic max-min, not 5/5).
        let routes = table(&[(0, 1, vec![PipeId(0)]), (2, 3, vec![PipeId(0)])], 4);
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        fluid.add_flow(1, VnId(0), VnId(1), mbps(1), 1, SimTime::ZERO);
        fluid.add_flow(2, VnId(2), VnId(3), mbps(100), 1, SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        assert_eq!(fluid.flow_rate(1), Some(mbps(1)));
        assert_eq!(fluid.flow_rate(2), Some(mbps(9)));
    }

    #[test]
    fn multi_hop_flow_is_limited_by_its_tightest_pipe() {
        let routes = table(
            &[(0, 1, vec![PipeId(0), PipeId(1)]), (2, 3, vec![PipeId(1)])],
            4,
        );
        // Pipe 0: 4 Mb/s, pipe 1: 10 Mb/s shared.
        let mut fluid = FluidState::new(vec![mbps(4).as_bps(), mbps(10).as_bps()]);
        fluid.add_flow(1, VnId(0), VnId(1), mbps(100), 1, SimTime::ZERO);
        fluid.add_flow(2, VnId(2), VnId(3), mbps(100), 1, SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        // Flow 1 is capped at 4 by pipe 0; flow 2 takes the remaining 6.
        assert_eq!(fluid.flow_rate(1), Some(mbps(4)));
        assert_eq!(fluid.flow_rate(2), Some(mbps(6)));
    }

    #[test]
    fn cbr_episodes_are_allocated_before_routed_flows() {
        let routes = table(&[(0, 1, vec![PipeId(0)])], 2);
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        fluid.set_cbr(PipeId(0), Some(mbps(4)), SimTime::ZERO);
        fluid.add_flow(1, VnId(0), VnId(1), mbps(100), 8, SimTime::ZERO);
        let changed = fluid.recompute(SimTime::ZERO, &routes);
        // CBR takes its 4 Mb/s off the top; the routed flow gets the rest.
        assert_eq!(changed, &[(PipeId(0), mbps(10).as_bps())]);
        assert_eq!(fluid.flow_rate(1), Some(mbps(6)));
        // Removing the episode hands its share to the routed flow; the
        // pipe's total demand is unchanged, so nothing is redistributed.
        fluid.set_cbr(PipeId(0), None, SimTime::ZERO);
        let changed = fluid.recompute(SimTime::ZERO, &routes);
        assert_eq!(changed, &[]);
        assert_eq!(fluid.flow_rate(1), Some(mbps(10)));
    }

    #[test]
    fn goodput_integrates_piecewise_constant_rates() {
        let routes = table(&[(0, 1, vec![PipeId(0)])], 2);
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        fluid.add_flow(1, VnId(0), VnId(1), mbps(8), 1, SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        // 8 Mb/s for one second = 1 MB.
        fluid.integrate_to(SimTime::from_secs(1));
        assert_eq!(fluid.flow_goodput_bytes(1), Some(1_000_000));
        // Resize to 2 Mb/s for another second: +250 kB.
        fluid.resize_flow(1, mbps(2), 1, SimTime::from_secs(1));
        fluid.recompute(SimTime::from_secs(1), &routes);
        fluid.integrate_to(SimTime::from_secs(2));
        assert_eq!(fluid.flow_goodput_bytes(1), Some(1_250_000));
    }

    #[test]
    fn epochs_are_scheduled_while_flows_live() {
        let routes = table(&[(0, 1, vec![PipeId(0)])], 2);
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        assert_eq!(fluid.next_epoch(), None);
        fluid.add_flow(1, VnId(0), VnId(1), mbps(1), 1, SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        assert_eq!(
            fluid.next_epoch(),
            Some(SimTime::ZERO + DEFAULT_FLUID_EPOCH)
        );
        // A mid-epoch mutation recompute keeps the grid.
        fluid.recompute(SimTime::from_millis(3), &routes);
        assert_eq!(
            fluid.next_epoch(),
            Some(SimTime::ZERO + DEFAULT_FLUID_EPOCH)
        );
        // Crossing the epoch reschedules; removing the flow retires it.
        fluid.recompute(SimTime::from_millis(10), &routes);
        assert_eq!(
            fluid.next_epoch(),
            Some(SimTime::from_millis(10) + DEFAULT_FLUID_EPOCH)
        );
        fluid.remove_flow(1, SimTime::from_millis(12));
        fluid.recompute(SimTime::from_millis(12), &routes);
        assert_eq!(fluid.next_epoch(), None);
    }

    #[test]
    fn epoch_cadence_rounds_to_wheel_slot_granularity() {
        let quantum = mn_util::DEFAULT_WHEEL_QUANTUM.as_nanos();
        // The default itself sits on the slot grid.
        assert_eq!(DEFAULT_FLUID_EPOCH.as_nanos() % quantum, 0);
        let routes = table(&[(0, 1, vec![PipeId(0)])], 2);
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        // 10 ms is not a multiple of the ~131 µs slot: rounds down to 76.
        fluid.set_epoch(SimDuration::from_millis(10));
        fluid.add_flow(1, VnId(0), VnId(1), mbps(1), 1, SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        let epoch = fluid.next_epoch().unwrap() - SimTime::ZERO;
        assert_eq!(epoch.as_nanos() % quantum, 0);
        assert_eq!(epoch.as_nanos(), (10_000_000 / quantum) * quantum);
        // Sub-slot cadences clamp up to one slot rather than zero.
        fluid.set_epoch(SimDuration::from_nanos(1));
        fluid.recompute(SimTime::from_millis(20), &routes);
        let epoch = fluid.next_epoch().unwrap() - SimTime::from_millis(20);
        assert_eq!(epoch.as_nanos(), quantum);
    }

    #[test]
    fn departed_vn_flows_are_removed_in_bulk() {
        let routes = table(&[(0, 1, vec![PipeId(0)]), (2, 3, vec![PipeId(0)])], 4);
        let mut fluid = FluidState::new(vec![mbps(9).as_bps()]);
        fluid.add_flow(1, VnId(0), VnId(1), mbps(100), 1, SimTime::ZERO);
        fluid.add_flow(2, VnId(2), VnId(3), mbps(100), 2, SimTime::ZERO);
        fluid.add_flow(3, VnId(1), VnId(2), mbps(100), 1, SimTime::ZERO);
        fluid.set_cbr(PipeId(0), Some(mbps(1)), SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        // VN 1 departs: flows 1 (dst) and 3 (src) go; flow 2 and CBR stay.
        assert_eq!(fluid.remove_vn_flows(VnId(1), SimTime::ZERO), 2);
        assert_eq!(fluid.flow_count(), 2);
        assert_eq!(fluid.flow_rate(1), None);
        assert_eq!(fluid.flow_rate(3), None);
        fluid.recompute(SimTime::ZERO, &routes);
        // The survivor takes the whole residual after the CBR episode.
        assert_eq!(fluid.flow_rate(2), Some(mbps(8)));
        // Removing for an uninvolved VN is a no-op.
        assert_eq!(fluid.remove_vn_flows(VnId(0), SimTime::ZERO), 0);
    }

    #[test]
    fn codec_round_trip_is_byte_stable_and_resumes_identically() {
        let routes = table(
            &[(0, 1, vec![PipeId(0), PipeId(1)]), (2, 3, vec![PipeId(1)])],
            4,
        );
        let mut fluid = FluidState::new(vec![mbps(4).as_bps(), mbps(10).as_bps()]);
        fluid.add_flow(1, VnId(0), VnId(1), mbps(100), 3, SimTime::ZERO);
        fluid.add_flow(2, VnId(2), VnId(3), mbps(100), 1, SimTime::ZERO);
        fluid.set_cbr(PipeId(1), Some(mbps(2)), SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        fluid.integrate_to(SimTime::from_millis(7));

        let mut w = mn_util::ByteWriter::new();
        fluid.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored = FluidState::decode(&mut mn_util::ByteReader::new(&bytes)).unwrap();

        // Snapshot → restore → snapshot is byte-identical.
        let mut w2 = mn_util::ByteWriter::new();
        restored.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        // The restored state observes and evolves exactly like the original.
        assert_eq!(restored.clock(), fluid.clock());
        assert_eq!(restored.next_epoch(), fluid.next_epoch());
        assert_eq!(restored.flow_rate(1), fluid.flow_rate(1));
        assert_eq!(restored.flow_goodput_bytes(2), fluid.flow_goodput_bytes(2));
        assert_eq!(restored.modelled_clients(), fluid.modelled_clients());
        for state in [&mut fluid, &mut restored] {
            state.resize_flow(1, mbps(3), 2, SimTime::from_millis(7));
            state.recompute(SimTime::from_millis(9), &routes);
            state.integrate_to(SimTime::from_millis(20));
        }
        assert_eq!(restored.flow_rate(1), fluid.flow_rate(1));
        assert_eq!(restored.flow_rate(2), fluid.flow_rate(2));
        assert_eq!(restored.flow_goodput_bytes(1), fluid.flow_goodput_bytes(1));
        assert_eq!(restored.flow_goodput_bytes(2), fluid.flow_goodput_bytes(2));
    }

    #[test]
    fn decode_rejects_corrupt_flow_tag() {
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        fluid.set_cbr(PipeId(0), Some(mbps(1)), SimTime::ZERO);
        let mut w = mn_util::ByteWriter::new();
        fluid.encode(&mut w);
        let mut bytes = w.into_bytes();
        // The flow-key tag byte follows clock + epoch + Option tag + len.
        let tag_at = 8 + 8 + 1 + 8;
        assert_eq!(bytes[tag_at], 1, "layout drifted; fix the offset");
        bytes[tag_at] = 9;
        assert!(FluidState::decode(&mut mn_util::ByteReader::new(&bytes)).is_err());
    }

    #[test]
    fn unroutable_flows_get_zero_until_rerouted() {
        let routes = table(&[(0, 1, vec![PipeId(0)])], 4);
        let mut fluid = FluidState::new(vec![mbps(10).as_bps()]);
        fluid.add_flow(1, VnId(2), VnId(3), mbps(5), 1, SimTime::ZERO);
        fluid.recompute(SimTime::ZERO, &routes);
        assert_eq!(fluid.flow_rate(1), Some(DataRate::ZERO));
        // Routing appears: the dirty mark re-resolves it.
        let routes = table(&[(0, 1, vec![PipeId(0)]), (2, 3, vec![PipeId(0)])], 4);
        fluid.mark_routes_dirty();
        fluid.recompute(SimTime::from_millis(1), &routes);
        assert_eq!(fluid.flow_rate(1), Some(mbps(5)));
    }
}
