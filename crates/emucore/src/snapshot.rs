//! Deterministic checkpoint/restore of the emulator state.
//!
//! A snapshot captures the *complete* state of a running emulation — every
//! pipe's queue contents and drain clock, per-core timing wheels (stale
//! entries included), staged and in-flight tunnel descriptors, CBR meters,
//! fluid flows and their epoch cursor, the published route-table generation
//! and routing matrix (tombstones and free slots verbatim), VN membership
//! and entry-core assignment, per-core counters and accuracy logs, and the
//! exact position of every deterministic RNG stream. Restoring a snapshot
//! and running forward is **bit-identical** to never having stopped: same
//! deliveries at the same virtual times, same stats, same RNG draws — on
//! either execution backend, at any core count.
//!
//! The wire format is versioned and checksummed (FNV-1a over the payload):
//! a truncated, corrupted or future-version snapshot is a structured
//! [`CodecError`], never a mis-restore. What is *not* captured: application
//! state (traffic sources attached to a [`crate::MultiCoreEmulator`] via a
//! runner live outside the emulator; the runner documents its own policy)
//! and coordinator scratch buffers, which are rebuilt empty.

use mn_packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader, VnId};
use mn_routing::RouteId;
use mn_util::codec::fnv1a64;
use mn_util::{ByteReader, ByteWriter, CodecError};

use crate::descriptor::{Delivery, Descriptor};

/// Magic bytes identifying an emulator snapshot ("MNSP").
pub const SNAPSHOT_MAGIC: u32 = 0x4D4E_5350;

/// Current snapshot format version. Bumped on any layout change; older
/// readers reject newer snapshots with [`CodecError::BadVersion`].
pub const SNAPSHOT_VERSION: u32 = 1;

/// A serialized emulator checkpoint.
///
/// Produced by [`crate::MultiCoreEmulator::snapshot`] and
/// [`crate::ParallelEmulator::snapshot`]; restorable into either backend.
/// The payload encoding is backend-independent, so a snapshot taken on the
/// sequential backend restores into the threaded one (and vice versa) with
/// bit-identical continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EmulatorSnapshot {
    payload: Vec<u8>,
}

impl EmulatorSnapshot {
    /// Wraps an encoded emulator payload (crate-internal: the emulators
    /// build payloads, callers only see framed snapshots).
    pub(crate) fn from_payload(payload: Vec<u8>) -> Self {
        EmulatorSnapshot { payload }
    }

    /// A reader over the payload, for restore.
    pub(crate) fn reader(&self) -> ByteReader<'_> {
        ByteReader::new(&self.payload)
    }

    /// Size of the raw payload in bytes (the framed form adds 24 bytes of
    /// header and checksum).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// Frames the snapshot for storage: magic, version, length-prefixed
    /// payload, FNV-1a-64 payload checksum.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::with_capacity(self.payload.len() + 24);
        w.put_u32(SNAPSHOT_MAGIC);
        w.put_u32(SNAPSHOT_VERSION);
        w.put_len(self.payload.len());
        w.put_bytes(&self.payload);
        w.put_u64(fnv1a64(&self.payload));
        w.into_bytes()
    }

    /// Parses and validates a framed snapshot. Rejects bad magic, versions
    /// this build cannot read, truncation, and checksum mismatches.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != SNAPSHOT_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let len = r.get_len()?;
        let payload = r.take_bytes(len)?.to_vec();
        let checksum = r.get_u64()?;
        if fnv1a64(&payload) != checksum {
            return Err(CodecError::BadChecksum);
        }
        Ok(EmulatorSnapshot { payload })
    }
}

/// Encodes a packet, preserving the wire size verbatim (it is *not*
/// re-derived from the header on decode, so size overrides survive).
pub(crate) fn put_packet(w: &mut ByteWriter, p: &Packet) {
    w.put_u64(p.id.0);
    w.put_u32(p.flow.src.0);
    w.put_u32(p.flow.dst.0);
    w.put_u16(p.flow.src_port);
    w.put_u16(p.flow.dst_port);
    w.put_u8(match p.flow.protocol {
        Protocol::Tcp => 0,
        Protocol::Udp => 1,
    });
    match p.header {
        TransportHeader::Tcp {
            seq,
            ack,
            payload_len,
            flags,
            window,
        } => {
            w.put_u8(0);
            w.put_u64(seq);
            w.put_u64(ack);
            w.put_u32(payload_len);
            w.put_bool(flags.syn);
            w.put_bool(flags.fin);
            w.put_bool(flags.ack);
            w.put_u32(window);
        }
        TransportHeader::Udp { payload_len, seq } => {
            w.put_u8(1);
            w.put_u32(payload_len);
            w.put_u64(seq);
        }
    }
    w.put_size(p.size);
    w.put_time(p.sent_at);
}

/// Decodes a packet written by [`put_packet`].
pub(crate) fn get_packet(r: &mut ByteReader) -> Result<Packet, CodecError> {
    let id = PacketId(r.get_u64()?);
    let src = VnId(r.get_u32()?);
    let dst = VnId(r.get_u32()?);
    let src_port = r.get_u16()?;
    let dst_port = r.get_u16()?;
    let protocol = match r.get_u8()? {
        0 => Protocol::Tcp,
        1 => Protocol::Udp,
        _ => return Err(CodecError::Invalid("unknown protocol tag")),
    };
    let header = match r.get_u8()? {
        0 => TransportHeader::Tcp {
            seq: r.get_u64()?,
            ack: r.get_u64()?,
            payload_len: r.get_u32()?,
            flags: TcpFlags {
                syn: r.get_bool()?,
                fin: r.get_bool()?,
                ack: r.get_bool()?,
            },
            window: r.get_u32()?,
        },
        1 => TransportHeader::Udp {
            payload_len: r.get_u32()?,
            seq: r.get_u64()?,
        },
        _ => return Err(CodecError::Invalid("unknown transport header tag")),
    };
    let size = r.get_size()?;
    let sent_at = r.get_time()?;
    Ok(Packet {
        id,
        flow: FlowKey {
            src,
            dst,
            src_port,
            dst_port,
            protocol,
        },
        header,
        size,
        sent_at,
    })
}

/// Encodes a scheduled descriptor (packet + route progress + error
/// book-keeping).
pub(crate) fn put_descriptor(w: &mut ByteWriter, d: &Descriptor) {
    put_packet(w, &d.packet);
    w.put_u32(d.route.0);
    w.put_usize(d.hop);
    w.put_time(d.entered_at);
    w.put_duration(d.accumulated_error);
}

/// Decodes a descriptor written by [`put_descriptor`].
pub(crate) fn get_descriptor(r: &mut ByteReader) -> Result<Descriptor, CodecError> {
    let packet = get_packet(r)?;
    let route = RouteId(r.get_u32()?);
    let hop = r.get_usize()?;
    let entered_at = r.get_time()?;
    let accumulated_error = r.get_duration()?;
    Ok(Descriptor {
        packet,
        route,
        hop,
        entered_at,
        accumulated_error,
    })
}

/// Encodes a delivered packet (pending same-location local deliveries are
/// part of the emulator state).
pub(crate) fn put_delivery(w: &mut ByteWriter, d: &Delivery) {
    put_packet(w, &d.packet);
    w.put_time(d.delivered_at);
    w.put_time(d.entered_at);
    w.put_usize(d.hops);
    w.put_duration(d.emulation_error);
}

/// Decodes a delivery written by [`put_delivery`].
pub(crate) fn get_delivery(r: &mut ByteReader) -> Result<Delivery, CodecError> {
    let packet = get_packet(r)?;
    let delivered_at = r.get_time()?;
    let entered_at = r.get_time()?;
    let hops = r.get_usize()?;
    let emulation_error = r.get_duration()?;
    Ok(Delivery {
        packet,
        delivered_at,
        entered_at,
        hops,
        emulation_error,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_util::{SimDuration, SimTime};

    fn sample_descriptor() -> Descriptor {
        Descriptor {
            packet: Packet {
                id: PacketId(42),
                flow: FlowKey {
                    src: VnId(3),
                    dst: VnId(9),
                    src_port: 1234,
                    dst_port: 80,
                    protocol: Protocol::Tcp,
                },
                header: TransportHeader::Tcp {
                    seq: 1_000_000,
                    ack: 77,
                    payload_len: 1460,
                    flags: TcpFlags {
                        syn: false,
                        fin: true,
                        ack: true,
                    },
                    window: 65_535,
                },
                size: mn_util::ByteSize::from_bytes(1500),
                sent_at: SimTime::from_micros(17),
            },
            route: RouteId(5),
            hop: 2,
            entered_at: SimTime::from_micros(19),
            accumulated_error: SimDuration::from_nanos(321),
        }
    }

    #[test]
    fn descriptor_round_trip_is_exact() {
        let d = sample_descriptor();
        let mut w = ByteWriter::new();
        put_descriptor(&mut w, &d);
        let bytes = w.into_bytes();
        let out = get_descriptor(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(out.packet.id, d.packet.id);
        assert_eq!(out.packet.flow, d.packet.flow);
        assert_eq!(out.packet.size, d.packet.size);
        assert_eq!(out.packet.sent_at, d.packet.sent_at);
        assert_eq!(out.route, d.route);
        assert_eq!(out.hop, d.hop);
        assert_eq!(out.entered_at, d.entered_at);
        assert_eq!(out.accumulated_error, d.accumulated_error);
        match (out.packet.header, d.packet.header) {
            (
                TransportHeader::Tcp {
                    seq: s1,
                    ack: a1,
                    payload_len: p1,
                    flags: f1,
                    window: w1,
                },
                TransportHeader::Tcp {
                    seq: s2,
                    ack: a2,
                    payload_len: p2,
                    flags: f2,
                    window: w2,
                },
            ) => {
                assert_eq!((s1, a1, p1, w1), (s2, a2, p2, w2));
                assert_eq!((f1.syn, f1.fin, f1.ack), (f2.syn, f2.fin, f2.ack));
            }
            _ => panic!("header variant changed in round trip"),
        }
    }

    #[test]
    fn framing_detects_corruption_truncation_and_bad_version() {
        let snap = EmulatorSnapshot::from_payload(vec![1, 2, 3, 4, 5, 6, 7, 8]);
        let bytes = snap.to_bytes();
        assert_eq!(EmulatorSnapshot::from_bytes(&bytes).unwrap(), snap);

        // Flip a payload bit: checksum mismatch.
        let mut corrupt = bytes.clone();
        corrupt[16] ^= 0x40;
        assert!(matches!(
            EmulatorSnapshot::from_bytes(&corrupt),
            Err(CodecError::BadChecksum)
        ));

        // Truncate: structured EOF, not a panic.
        assert!(EmulatorSnapshot::from_bytes(&bytes[..bytes.len() - 3]).is_err());

        // Wrong magic.
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(
            EmulatorSnapshot::from_bytes(&wrong_magic),
            Err(CodecError::BadMagic)
        ));

        // Future version.
        let mut future = bytes;
        future[4] = 0xEE;
        assert!(matches!(
            EmulatorSnapshot::from_bytes(&future),
            Err(CodecError::BadVersion(_))
        ));
    }
}
